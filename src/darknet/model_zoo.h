#ifndef THALI_DARKNET_MODEL_ZOO_H_
#define THALI_DARKNET_MODEL_ZOO_H_

#include <string>

namespace thali {

// Generators for the Darknet cfg texts this project trains and tests.
// Emitting cfg text (rather than constructing layers directly) keeps the
// cfg parser on the critical path, exactly as a Darknet user would run.

// Options for the scaled-down YOLOv4 used throughout the reproduction.
// Architecturally it keeps every YOLOv4 ingredient — CSP channel-split
// backbone blocks with mish, an SPP block, a PAN-style top-down neck with
// leaky activations, three anchor-based detection heads with per-scale
// scale_x_y, CIoU loss with multi-anchor assignment — at a width and
// input resolution a single CPU core can train in minutes.
struct YoloThaliOptions {
  int classes = 10;
  int width = 96;
  int height = 96;
  int batch = 4;
  float learning_rate = 2.5e-3f;
  float momentum = 0.9f;
  float decay = 5e-4f;
  int burn_in = 50;
  int max_batches = 2000;
  // Step decays (x0.2 at 40%, x0.1 at 75% of max_batches) are emitted
  // automatically. The published cfg steps at 80%/90%; the shortened
  // schedule needs the first decay earlier — small-batch CIoU training is
  // noisy at full rate, and the paper's Table II plateau only appears
  // once the rate drops.
  bool mosaic = true;
  // YOLOv4's multi-anchor assignment threshold.
  float iou_thresh = 0.213f;
  // Photometric/geometric augmentation strengths (Darknet [net] keys).
  // Milder than the published 1.5/1.5/0.1: the synthetic classes carry
  // most of their identity in color, which is exactly what the paper
  // notes about Indian dishes; strong hue augmentation destroys the
  // signal at this training scale.
  float saturation = 1.15f;
  float exposure = 1.15f;
  float hue = 0.02f;
  float jitter = 0.1f;
  bool flip = true;
};

// Emits the yolov4-thali cfg. The backbone+SPP span (class-independent)
// covers layers [0, kYoloThaliBackboneCutoff).
std::string YoloThaliCfg(const YoloThaliOptions& options);

// Layer cutoff for transfer: everything before the first head is
// independent of the class count, so weights saved with this cutoff are
// this project's equivalent of yolov4.conv.137.
inline constexpr int kYoloThaliBackboneCutoff = 35;

// The pretraining network: identical architecture with
// `pretrain_classes` generic-object classes (the synthetic stand-in for
// MS-COCO pretraining).
std::string PretrainCfg(int pretrain_classes = 4, int width = 96,
                        int height = 96, int batch = 4, int max_batches = 200);

// Full-scale YOLOv4 (CSPDarknet53 + SPP + PAN, 3 heads), emitted
// programmatically from the stage structure of yolov4.cfg.
// `width_divisor` divides every filter count (1 = the real 64M-parameter
// network; tests use 8+ to keep memory in check). Input defaults to
// 416x416 like the published cfg.
std::string FullYoloV4Cfg(int classes = 80, int width = 416, int height = 416,
                          int width_divisor = 1);

}  // namespace thali

#endif  // THALI_DARKNET_MODEL_ZOO_H_
