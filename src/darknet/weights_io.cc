#include "darknet/weights_io.h"

#include <cstdint>
#include <cstring>
#include <string>

#include "base/file_util.h"
#include "base/string_util.h"
#include "nn/conv_layer.h"

namespace thali {

namespace {

constexpr int32_t kMajor = 0;
constexpr int32_t kMinor = 2;
constexpr int32_t kRevision = 5;

void AppendRaw(std::string& out, const void* p, size_t n) {
  out.append(reinterpret_cast<const char*>(p), n);
}

void AppendTensor(std::string& out, const Tensor& t) {
  AppendRaw(out, t.data(), static_cast<size_t>(t.size()) * sizeof(float));
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  Status Read(void* dst, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("weights file truncated");
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadTensor(Tensor& t) {
    return Read(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveWeights(Network& net, const std::string& path, uint64_t seen,
                   int cutoff) {
  if (!net.finalized()) return Status::FailedPrecondition("net not finalized");
  std::string out;
  AppendRaw(out, &kMajor, sizeof(kMajor));
  AppendRaw(out, &kMinor, sizeof(kMinor));
  AppendRaw(out, &kRevision, sizeof(kRevision));
  AppendRaw(out, &seen, sizeof(seen));

  const int limit = cutoff < 0 ? net.num_layers() : cutoff;
  for (int i = 0; i < net.num_layers() && i < limit; ++i) {
    Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    auto& conv = static_cast<ConvLayer&>(l);
    AppendTensor(out, conv.biases());
    if (conv.options().batch_normalize) {
      AppendTensor(out, conv.scales());
      AppendTensor(out, conv.rolling_mean());
      AppendTensor(out, conv.rolling_var());
    }
    AppendTensor(out, conv.weights());
  }
  return WriteStringToFile(path, out);
}

StatusOr<int> LoadWeights(Network& net, const std::string& path, int cutoff) {
  if (!net.finalized()) return Status::FailedPrecondition("net not finalized");
  THALI_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  Reader r(data);

  int32_t major, minor, revision;
  THALI_RETURN_IF_ERROR(r.Read(&major, sizeof(major)));
  THALI_RETURN_IF_ERROR(r.Read(&minor, sizeof(minor)));
  THALI_RETURN_IF_ERROR(r.Read(&revision, sizeof(revision)));
  if (major * 10 + minor >= 2) {
    uint64_t seen;
    THALI_RETURN_IF_ERROR(r.Read(&seen, sizeof(seen)));
  } else {
    uint32_t seen32;
    THALI_RETURN_IF_ERROR(r.Read(&seen32, sizeof(seen32)));
  }

  const int limit = cutoff < 0 ? net.num_layers() : cutoff;
  int loaded = 0;
  for (int i = 0; i < net.num_layers() && i < limit; ++i) {
    Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    if (r.AtEnd()) break;  // shorter checkpoint (e.g. backbone-only file)
    auto& conv = static_cast<ConvLayer&>(l);
    const size_t need =
        sizeof(float) *
        static_cast<size_t>(
            conv.biases().size() +
            (conv.options().batch_normalize ? 3 * conv.scales().size() : 0) +
            conv.weights().size());
    if (r.remaining() < need) {
      return Status::Corruption(
          StrFormat("weights truncated at conv layer %d", i));
    }
    THALI_RETURN_IF_ERROR(r.ReadTensor(conv.biases()));
    if (conv.options().batch_normalize) {
      THALI_RETURN_IF_ERROR(r.ReadTensor(conv.scales()));
      THALI_RETURN_IF_ERROR(r.ReadTensor(conv.rolling_mean()));
      THALI_RETURN_IF_ERROR(r.ReadTensor(conv.rolling_var()));
    }
    THALI_RETURN_IF_ERROR(r.ReadTensor(conv.weights()));
    conv.MarkWeightsDirty();  // inference nets re-pack on the next Forward
    ++loaded;
  }
  return loaded;
}

StatusOr<uint64_t> ReadWeightsSeen(const std::string& path) {
  THALI_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  Reader r(data);
  int32_t major, minor, revision;
  THALI_RETURN_IF_ERROR(r.Read(&major, sizeof(major)));
  THALI_RETURN_IF_ERROR(r.Read(&minor, sizeof(minor)));
  THALI_RETURN_IF_ERROR(r.Read(&revision, sizeof(revision)));
  if (major * 10 + minor >= 2) {
    uint64_t seen;
    THALI_RETURN_IF_ERROR(r.Read(&seen, sizeof(seen)));
    return seen;
  }
  uint32_t seen32;
  THALI_RETURN_IF_ERROR(r.Read(&seen32, sizeof(seen32)));
  return static_cast<uint64_t>(seen32);
}

}  // namespace thali
