#ifndef THALI_DARKNET_WEIGHTS_IO_H_
#define THALI_DARKNET_WEIGHTS_IO_H_

#include <string>

#include "base/statusor.h"
#include "nn/network.h"

namespace thali {

// Darknet .weights binary serialization. Layout matches AlexeyAB Darknet:
//   int32 major, int32 minor, int32 revision,
//   uint64 seen (images trained on; uint32 when major*10+minor < 2),
//   then for each convolutional layer in network order:
//     biases[f], (if batch_normalize) scales[f], rolling_mean[f],
//     rolling_var[f], weights[f*c*k*k]
// all little-endian float32.
//
// Partial loading with `cutoff` reads only the first `cutoff` layers —
// Darknet's transfer-learning entry point (yolov4.conv.137 is exactly a
// weights file consumed with a cutoff).

// Saves all (or the first `cutoff`) layers' parameters.
Status SaveWeights(Network& net, const std::string& path,
                   uint64_t seen = 0, int cutoff = -1);

// Loads parameters into an already-built network. Layers beyond `cutoff`
// (or beyond the data present in the file) keep their current weights.
// Returns the number of conv layers loaded.
StatusOr<int> LoadWeights(Network& net, const std::string& path,
                          int cutoff = -1);

// Reads the `seen` counter from a weights file header.
StatusOr<uint64_t> ReadWeightsSeen(const std::string& path);

}  // namespace thali

#endif  // THALI_DARKNET_WEIGHTS_IO_H_
