#ifndef THALI_DARKNET_SUMMARY_H_
#define THALI_DARKNET_SUMMARY_H_

#include <string>

#include "nn/network.h"

namespace thali {

// Renders the Darknet-style layer table a `./darknet detector` invocation
// prints at startup:
//
//   idx  type            filters  size/str        input -> output   params
//     0  convolutional         8  3x3/2    3x96x96 -> 8x48x48          216
//   ...
//
// plus a footer with total parameters and workspace size.
std::string NetworkSummary(const Network& net);

}  // namespace thali

#endif  // THALI_DARKNET_SUMMARY_H_
