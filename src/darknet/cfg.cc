#include "darknet/cfg.h"

#include <utility>

#include "base/string_util.h"
#include "nn/conv_layer.h"
#include "nn/maxpool_layer.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "nn/upsample_layer.h"

namespace thali {

StatusOr<int> CfgSection::GetInt(const std::string& key) const {
  auto it = options.find(key);
  if (it == options.end()) {
    return Status::NotFound("[" + name + "] missing key: " + key);
  }
  return ParseInt(it->second);
}

int CfgSection::GetInt(const std::string& key, int default_value) const {
  auto it = options.find(key);
  if (it == options.end()) return default_value;
  auto v = ParseInt(it->second);
  return v.ok() ? *v : default_value;
}

float CfgSection::GetFloat(const std::string& key, float default_value) const {
  auto it = options.find(key);
  if (it == options.end()) return default_value;
  auto v = ParseFloat(it->second);
  return v.ok() ? *v : default_value;
}

StatusOr<std::string> CfgSection::GetString(const std::string& key) const {
  auto it = options.find(key);
  if (it == options.end()) {
    return Status::NotFound("[" + name + "] missing key: " + key);
  }
  return it->second;
}

std::string CfgSection::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = options.find(key);
  return it == options.end() ? default_value : it->second;
}

StatusOr<std::vector<int>> CfgSection::GetIntList(
    const std::string& key) const {
  THALI_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  std::vector<int> out;
  for (const std::string& part : Split(raw, ',')) {
    if (StripWhitespace(part).empty()) continue;
    THALI_ASSIGN_OR_RETURN(int v, ParseInt(part));
    out.push_back(v);
  }
  return out;
}

StatusOr<std::vector<float>> CfgSection::GetFloatList(
    const std::string& key) const {
  THALI_ASSIGN_OR_RETURN(std::string raw, GetString(key));
  std::vector<float> out;
  for (const std::string& part : Split(raw, ',')) {
    if (StripWhitespace(part).empty()) continue;
    THALI_ASSIGN_OR_RETURN(float v, ParseFloat(part));
    out.push_back(v);
  }
  return out;
}

StatusOr<std::vector<CfgSection>> ParseCfg(const std::string& text) {
  std::vector<CfgSection> sections;
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::Corruption(
            StrFormat("cfg line %d: unterminated section header", line_no));
      }
      CfgSection s;
      s.name = std::string(line.substr(1, line.size() - 2));
      sections.push_back(std::move(s));
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption(
          StrFormat("cfg line %d: expected key=value", line_no));
    }
    if (sections.empty()) {
      return Status::Corruption(
          StrFormat("cfg line %d: option before any section", line_no));
    }
    const std::string key(StripWhitespace(line.substr(0, eq)));
    const std::string value(StripWhitespace(line.substr(eq + 1)));
    sections.back().options[key] = value;
  }
  if (sections.empty()) return Status::InvalidArgument("empty cfg");
  if (sections.front().name != "net" && sections.front().name != "network") {
    return Status::Corruption("cfg must start with [net]");
  }
  return sections;
}

namespace {

StatusOr<NetOptions> ParseNetOptions(const CfgSection& s) {
  NetOptions o;
  o.width = s.GetInt("width", o.width);
  o.height = s.GetInt("height", o.height);
  o.channels = s.GetInt("channels", o.channels);
  o.batch = s.GetInt("batch", o.batch);
  o.learning_rate = s.GetFloat("learning_rate", o.learning_rate);
  o.momentum = s.GetFloat("momentum", o.momentum);
  o.decay = s.GetFloat("decay", o.decay);
  o.burn_in = s.GetInt("burn_in", o.burn_in);
  o.max_batches = s.GetInt("max_batches", o.max_batches);
  if (s.Has("steps")) {
    THALI_ASSIGN_OR_RETURN(o.steps, s.GetIntList("steps"));
  }
  if (s.Has("scales")) {
    THALI_ASSIGN_OR_RETURN(o.scales, s.GetFloatList("scales"));
  }
  o.saturation = s.GetFloat("saturation", o.saturation);
  o.exposure = s.GetFloat("exposure", o.exposure);
  o.hue = s.GetFloat("hue", o.hue);
  o.mosaic = s.GetInt("mosaic", o.mosaic ? 1 : 0) != 0;
  o.flip = s.GetInt("flip", o.flip ? 1 : 0) != 0;
  o.jitter = s.GetFloat("jitter", o.jitter);
  return o;
}

StatusOr<std::unique_ptr<Layer>> MakeLayer(const CfgSection& s) {
  if (s.name == "convolutional") {
    ConvLayer::Options o;
    THALI_ASSIGN_OR_RETURN(o.filters, s.GetInt("filters"));
    o.ksize = s.GetInt("size", 1);
    o.stride = s.GetInt("stride", 1);
    o.batch_normalize = s.GetInt("batch_normalize", 0) != 0;
    // Darknet: pad=1 means "pad by size/2"; an explicit `padding` wins.
    const int pad_flag = s.GetInt("pad", 0);
    o.pad = s.GetInt("padding", pad_flag ? o.ksize / 2 : 0);
    THALI_ASSIGN_OR_RETURN(
        o.activation,
        ActivationFromString(s.GetString("activation", "linear")));
    return std::unique_ptr<Layer>(new ConvLayer(o));
  }
  if (s.name == "maxpool") {
    MaxPoolLayer::Options o;
    o.size = s.GetInt("size", 2);
    o.stride = s.GetInt("stride", o.size);
    o.padding = s.GetInt("padding", o.size - 1);
    return std::unique_ptr<Layer>(new MaxPoolLayer(o));
  }
  if (s.name == "upsample") {
    return std::unique_ptr<Layer>(new UpsampleLayer(s.GetInt("stride", 2)));
  }
  if (s.name == "route") {
    RouteLayer::Options o;
    THALI_ASSIGN_OR_RETURN(o.layers, s.GetIntList("layers"));
    o.groups = s.GetInt("groups", 1);
    o.group_id = s.GetInt("group_id", 0);
    return std::unique_ptr<Layer>(new RouteLayer(o));
  }
  if (s.name == "shortcut") {
    ShortcutLayer::Options o;
    THALI_ASSIGN_OR_RETURN(o.from, s.GetInt("from"));
    THALI_ASSIGN_OR_RETURN(
        o.activation,
        ActivationFromString(s.GetString("activation", "linear")));
    return std::unique_ptr<Layer>(new ShortcutLayer(o));
  }
  if (s.name == "yolo") {
    YoloLayer::Options o;
    THALI_ASSIGN_OR_RETURN(std::vector<float> flat, s.GetFloatList("anchors"));
    if (flat.size() % 2 != 0) {
      return Status::Corruption("odd anchor list length");
    }
    for (size_t i = 0; i + 1 < flat.size(); i += 2) {
      o.anchors.emplace_back(flat[i], flat[i + 1]);
    }
    THALI_ASSIGN_OR_RETURN(o.mask, s.GetIntList("mask"));
    THALI_ASSIGN_OR_RETURN(o.classes, s.GetInt("classes"));
    o.ignore_thresh = s.GetFloat("ignore_thresh", 0.7f);
    o.iou_thresh = s.GetFloat("iou_thresh", 1.0f);
    o.scale_x_y = s.GetFloat("scale_x_y", 1.0f);
    o.iou_normalizer = s.GetFloat("iou_normalizer", 0.07f);
    o.obj_normalizer = s.GetFloat("obj_normalizer", 1.0f);
    o.cls_normalizer = s.GetFloat("cls_normalizer", 1.0f);
    return std::unique_ptr<Layer>(new YoloLayer(o));
  }
  return Status::Unimplemented("unsupported cfg section: [" + s.name + "]");
}

}  // namespace

StatusOr<BuiltNetwork> BuildNetworkFromCfg(const std::string& text,
                                           int batch_override, Rng& rng,
                                           ExecMode mode) {
  THALI_ASSIGN_OR_RETURN(std::vector<CfgSection> sections, ParseCfg(text));
  THALI_ASSIGN_OR_RETURN(NetOptions opts, ParseNetOptions(sections[0]));
  const int batch = batch_override > 0 ? batch_override : opts.batch;

  BuiltNetwork built;
  built.options = opts;
  built.net = std::make_unique<Network>(opts.width, opts.height, opts.channels,
                                        batch);
  for (size_t i = 1; i < sections.size(); ++i) {
    THALI_ASSIGN_OR_RETURN(std::unique_ptr<Layer> layer,
                           MakeLayer(sections[i]));
    built.net->Add(std::move(layer));
  }
  THALI_RETURN_IF_ERROR(built.net->Finalize(mode));

  // Initialize weights and collect heads.
  for (int i = 0; i < built.net->num_layers(); ++i) {
    Layer& l = built.net->layer(i);
    if (std::string_view(l.kind()) == "convolutional") {
      static_cast<ConvLayer&>(l).InitWeights(rng);
    }
  }
  built.yolo_layers = FindYoloLayers(*built.net);
  return built;
}

std::vector<YoloLayer*> FindYoloLayers(Network& net) {
  std::vector<YoloLayer*> out;
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "yolo") {
      out.push_back(static_cast<YoloLayer*>(&net.layer(i)));
    }
  }
  return out;
}

}  // namespace thali
