#include "darknet/model_zoo.h"

#include <vector>

#include "base/logging.h"
#include "base/string_util.h"

namespace thali {

namespace {

// Appends a [convolutional] section.
void EmitConv(std::string& cfg, int filters, int size, int stride, bool bn,
              const char* activation) {
  cfg += "[convolutional]\n";
  if (bn) cfg += "batch_normalize=1\n";
  cfg += StrFormat("filters=%d\nsize=%d\nstride=%d\npad=1\nactivation=%s\n\n",
                   filters, size, stride, activation);
}

void EmitMaxpool(std::string& cfg, int size, int stride) {
  cfg += StrFormat("[maxpool]\nsize=%d\nstride=%d\n\n", size, stride);
}

std::string JoinInts(const std::vector<int>& v) {
  std::vector<std::string> parts;
  parts.reserve(v.size());
  for (int x : v) parts.push_back(std::to_string(x));
  return Join(parts, ",");
}

}  // namespace

std::string YoloThaliCfg(const YoloThaliOptions& o) {
  THALI_CHECK_EQ(o.width % 32, 0) << "input width must be divisible by 32";
  THALI_CHECK_EQ(o.height % 32, 0);

  // Anchors tuned for the synthetic platter distribution at 96px input;
  // scaled linearly for other input sizes.
  const float ax = o.width / 96.0f;
  const float ay = o.height / 96.0f;
  const std::string anchors = StrFormat(
      "%d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d",
      int(10 * ax), int(10 * ay), int(16 * ax), int(14 * ay), int(14 * ax),
      int(20 * ay), int(26 * ax), int(26 * ay), int(38 * ax), int(30 * ay),
      int(30 * ax), int(42 * ay), int(55 * ax), int(55 * ay), int(75 * ax),
      int(60 * ay), int(62 * ax), int(80 * ay));

  auto yolo_section = [&](const char* mask, float scale_xy) {
    return StrFormat(
        "[yolo]\nmask=%s\nanchors=%s\nclasses=%d\nignore_thresh=0.7\n"
        "iou_thresh=%.3f\nscale_x_y=%.2f\niou_normalizer=0.75\n"
        "cls_normalizer=1.0\n\n",
        mask, anchors.c_str(), o.classes, o.iou_thresh, scale_xy);
  };

  const int head_filters = 3 * (5 + o.classes);

  std::string cfg;
  cfg += StrFormat(
      "[net]\n"
      "width=%d\nheight=%d\nchannels=3\nbatch=%d\n"
      "learning_rate=%g\nmomentum=%g\ndecay=%g\nburn_in=%d\n"
      "max_batches=%d\nsteps=%d,%d\nscales=0.2,0.1\n"
      "saturation=%g\nexposure=%g\nhue=%g\nmosaic=%d\njitter=%g\nflip=%d\n\n",
      o.width, o.height, o.batch, o.learning_rate, o.momentum, o.decay,
      o.burn_in, o.max_batches, o.max_batches * 4 / 10,
      o.max_batches * 3 / 4, o.saturation, o.exposure, o.hue,
      o.mosaic ? 1 : 0, o.jitter, o.flip ? 1 : 0);

  // --- Backbone: CSP blocks with mish (layers 0-26) ---
  EmitConv(cfg, 8, 3, 2, true, "mish");    // 0: 48x48
  EmitConv(cfg, 16, 3, 2, true, "mish");   // 1: 24x24

  auto csp_block = [&](int filters) {
    // Entry conv, channel split, two partial convs, merge, transition,
    // and the cross-stage concat — the yolov4-tiny CSP pattern.
    EmitConv(cfg, filters, 3, 1, true, "mish");            // k
    cfg += "[route]\nlayers=-1\ngroups=2\ngroup_id=1\n\n";  // k+1
    EmitConv(cfg, filters / 2, 3, 1, true, "mish");        // k+2
    EmitConv(cfg, filters / 2, 3, 1, true, "mish");        // k+3
    cfg += "[route]\nlayers=-1,-2\n\n";                     // k+4
    EmitConv(cfg, filters, 1, 1, true, "mish");            // k+5
    cfg += "[route]\nlayers=-6,-1\n\n";                     // k+6 (2F ch)
  };

  csp_block(16);           // layers 2-8 (out: 24x24x32)
  EmitMaxpool(cfg, 2, 2);  // 9: 12x12
  csp_block(32);           // layers 10-16 (out: 12x12x64); layer 16 -> P3
  EmitMaxpool(cfg, 2, 2);  // 17: 6x6
  csp_block(64);           // layers 18-24; layer 23 (1x1 merge) -> P4
  EmitMaxpool(cfg, 2, 2);  // 25: 3x3
  EmitConv(cfg, 128, 3, 1, true, "mish");  // 26: 3x3x128

  // --- SPP (layers 27-34) ---
  EmitConv(cfg, 64, 1, 1, true, "leaky");  // 27
  EmitMaxpool(cfg, 5, 1);                  // 28
  cfg += "[route]\nlayers=-2\n\n";          // 29
  EmitMaxpool(cfg, 9, 1);                  // 30
  cfg += "[route]\nlayers=-4\n\n";          // 31
  EmitMaxpool(cfg, 13, 1);                 // 32
  cfg += "[route]\nlayers=-1,-3,-5,-6\n\n";  // 33: 256 ch
  EmitConv(cfg, 64, 1, 1, true, "leaky");  // 34  <- backbone cutoff (35)

  // --- Head P5, stride 32 (layers 35-37) ---
  EmitConv(cfg, 128, 3, 1, true, "leaky");              // 35
  EmitConv(cfg, head_filters, 1, 1, false, "linear");   // 36
  cfg += yolo_section("6,7,8", 1.05f);                   // 37

  // --- PAN up to stride 16 (layers 38-44) ---
  cfg += "[route]\nlayers=34\n\n";                        // 38
  EmitConv(cfg, 32, 1, 1, true, "leaky");               // 39
  cfg += "[upsample]\nstride=2\n\n";                      // 40: 6x6
  cfg += "[route]\nlayers=-1,23\n\n";                     // 41: 32+64
  EmitConv(cfg, 64, 3, 1, true, "leaky");               // 42
  EmitConv(cfg, head_filters, 1, 1, false, "linear");   // 43
  cfg += yolo_section("3,4,5", 1.1f);                    // 44

  // --- PAN up to stride 8 (layers 45-51) ---
  cfg += "[route]\nlayers=42\n\n";                        // 45
  EmitConv(cfg, 16, 1, 1, true, "leaky");               // 46
  cfg += "[upsample]\nstride=2\n\n";                      // 47: 12x12
  cfg += "[route]\nlayers=-1,16\n\n";                     // 48: 16+64
  EmitConv(cfg, 32, 3, 1, true, "leaky");               // 49
  EmitConv(cfg, head_filters, 1, 1, false, "linear");   // 50
  cfg += yolo_section("0,1,2", 1.2f);                    // 51

  return cfg;
}

std::string PretrainCfg(int pretrain_classes, int width, int height, int batch,
                        int max_batches) {
  YoloThaliOptions o;
  o.classes = pretrain_classes;
  o.width = width;
  o.height = height;
  o.batch = batch;
  o.max_batches = max_batches;
  o.burn_in = 10;
  return YoloThaliCfg(o);
}

std::string FullYoloV4Cfg(int classes, int width, int height,
                          int width_divisor) {
  THALI_CHECK_GE(width_divisor, 1);
  auto f = [width_divisor](int filters) {
    return std::max(2, filters / width_divisor);
  };

  std::string cfg = StrFormat(
      "[net]\nwidth=%d\nheight=%d\nchannels=3\nbatch=1\n"
      "learning_rate=0.001\nmomentum=0.949\ndecay=0.0005\nburn_in=1000\n"
      "max_batches=500500\nsteps=400000,450000\nscales=0.1,0.1\nmosaic=1\n\n",
      width, height);

  int index = -1;  // index of the most recently emitted layer
  auto conv = [&](int filters, int size, int stride, const char* act) {
    EmitConv(cfg, filters, size, stride, true, act);
    return ++index;
  };
  auto conv_head = [&](int filters) {
    EmitConv(cfg, filters, 1, 1, false, "linear");
    return ++index;
  };
  auto route = [&](const std::vector<int>& layers) {
    cfg += StrFormat("[route]\nlayers=%s\n\n", JoinInts(layers).c_str());
    return ++index;
  };
  auto shortcut = [&](int from) {
    cfg += StrFormat("[shortcut]\nfrom=%d\nactivation=linear\n\n", from);
    return ++index;
  };
  auto upsample = [&]() {
    cfg += "[upsample]\nstride=2\n\n";
    return ++index;
  };
  auto maxpool = [&](int size) {
    EmitMaxpool(cfg, size, 1);
    return ++index;
  };

  // CSPDarknet53 stage: downsample to `filters`, then a cross-stage
  // partial pattern around `blocks` residual units.
  auto csp_stage = [&](int filters, int blocks, bool first) {
    conv(f(filters), 3, 2, "mish");
    const int split_f = first ? f(filters) : f(filters) / 2;
    const int split_a = conv(split_f, 1, 1, "mish");
    route({split_a - 1});
    conv(split_f, 1, 1, "mish");
    for (int b = 0; b < blocks; ++b) {
      conv(first ? f(filters) / 2 : split_f, 1, 1, "mish");
      conv(split_f, 3, 1, "mish");
      shortcut(-3);
    }
    conv(split_f, 1, 1, "mish");
    route({index, split_a});
    return conv(f(filters), 1, 1, "mish");  // stage output
  };

  conv(f(32), 3, 1, "mish");
  csp_stage(64, 1, true);
  csp_stage(128, 2, false);
  const int p3 = csp_stage(256, 8, false);
  const int p4 = csp_stage(512, 8, false);
  csp_stage(1024, 4, false);

  // Neck: conv trio + SPP + conv trio.
  conv(f(512), 1, 1, "leaky");
  conv(f(1024), 3, 1, "leaky");
  const int pre_spp = conv(f(512), 1, 1, "leaky");
  const int m5 = maxpool(5);
  route({pre_spp});
  const int m9 = maxpool(9);
  route({pre_spp});
  const int m13 = maxpool(13);
  route({m13, m9, m5, pre_spp});
  conv(f(512), 1, 1, "leaky");
  conv(f(1024), 3, 1, "leaky");
  const int n5 = conv(f(512), 1, 1, "leaky");

  // PAN top-down to P4.
  conv(f(256), 1, 1, "leaky");
  const int up4 = upsample();
  route({p4});
  const int lat4 = conv(f(256), 1, 1, "leaky");
  route({lat4, up4});
  conv(f(256), 1, 1, "leaky");
  conv(f(512), 3, 1, "leaky");
  conv(f(256), 1, 1, "leaky");
  conv(f(512), 3, 1, "leaky");
  const int n4 = conv(f(256), 1, 1, "leaky");

  // PAN top-down to P3.
  conv(f(128), 1, 1, "leaky");
  const int up3 = upsample();
  route({p3});
  const int lat3 = conv(f(128), 1, 1, "leaky");
  route({lat3, up3});
  conv(f(128), 1, 1, "leaky");
  conv(f(256), 3, 1, "leaky");
  conv(f(128), 1, 1, "leaky");
  conv(f(256), 3, 1, "leaky");
  const int n3 = conv(f(128), 1, 1, "leaky");

  const float sx = width / 608.0f;
  const float sy = height / 608.0f;
  const std::string anchors = StrFormat(
      "%d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d, %d,%d",
      int(12 * sx), int(16 * sy), int(19 * sx), int(36 * sy), int(40 * sx),
      int(28 * sy), int(36 * sx), int(75 * sy), int(76 * sx), int(55 * sy),
      int(72 * sx), int(146 * sy), int(142 * sx), int(110 * sy),
      int(192 * sx), int(243 * sy), int(459 * sx), int(401 * sy));
  auto yolo = [&](const char* mask, float scale_xy) {
    cfg += StrFormat(
        "[yolo]\nmask=%s\nanchors=%s\nclasses=%d\nignore_thresh=0.7\n"
        "iou_thresh=0.213\nscale_x_y=%.2f\niou_normalizer=0.07\n\n",
        mask, anchors.c_str(), classes, scale_xy);
    return ++index;
  };

  const int head_filters = 3 * (5 + classes);

  // P3 head (stride 8).
  conv(f(256), 3, 1, "leaky");
  conv_head(head_filters);
  yolo("0,1,2", 1.2f);

  // PAN bottom-up to P4 head (stride 16).
  route({n3});
  conv(f(256), 3, 2, "leaky");
  const int down4 = index;
  route({down4, n4});
  conv(f(256), 1, 1, "leaky");
  conv(f(512), 3, 1, "leaky");
  conv(f(256), 1, 1, "leaky");
  conv(f(512), 3, 1, "leaky");
  const int m4 = conv(f(256), 1, 1, "leaky");
  conv(f(512), 3, 1, "leaky");
  conv_head(head_filters);
  yolo("3,4,5", 1.1f);

  // PAN bottom-up to P5 head (stride 32).
  route({m4});
  conv(f(512), 3, 2, "leaky");
  const int down5 = index;
  route({down5, n5});
  conv(f(512), 1, 1, "leaky");
  conv(f(1024), 3, 1, "leaky");
  conv(f(512), 1, 1, "leaky");
  conv(f(1024), 3, 1, "leaky");
  conv(f(512), 1, 1, "leaky");
  conv(f(1024), 3, 1, "leaky");
  conv_head(head_filters);
  yolo("6,7,8", 1.05f);

  return cfg;
}

}  // namespace thali
