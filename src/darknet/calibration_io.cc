#include "darknet/calibration_io.h"

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "base/file_util.h"
#include "nn/conv_layer.h"

namespace thali {

namespace {

constexpr char kMagic[8] = {'T', 'H', 'A', 'L', 'I', 'C', 'A', 'L'};
constexpr int32_t kVersion = 1;

struct Entry {
  int32_t layer_index;
  float range_min;
  float range_max;
};

void AppendRaw(std::string& out, const void* p, size_t n) {
  out.append(reinterpret_cast<const char*>(p), n);
}

}  // namespace

Status SaveCalibration(const Network& net, const std::string& path) {
  if (!net.finalized()) return Status::FailedPrecondition("net not finalized");
  std::vector<Entry> entries;
  for (int i = 0; i < net.num_layers(); ++i) {
    const Layer& l = net.layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    const auto& conv = static_cast<const ConvLayer&>(l);
    if (!conv.has_activation_range()) continue;
    entries.push_back({i, conv.activation_range_min(),
                       conv.activation_range_max()});
  }
  std::string out;
  AppendRaw(out, kMagic, sizeof(kMagic));
  AppendRaw(out, &kVersion, sizeof(kVersion));
  const int32_t count = static_cast<int32_t>(entries.size());
  AppendRaw(out, &count, sizeof(count));
  for (const Entry& e : entries) AppendRaw(out, &e, sizeof(e));
  return WriteStringToFile(path, out);
}

StatusOr<int> LoadCalibration(Network& net, const std::string& path) {
  if (!net.finalized()) return Status::FailedPrecondition("net not finalized");
  THALI_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  size_t pos = 0;
  auto read = [&](void* dst, size_t n) -> bool {
    if (pos + n > data.size()) return false;
    std::memcpy(dst, data.data() + pos, n);
    pos += n;
    return true;
  };
  char magic[8];
  int32_t version = 0, count = 0;
  if (!read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a calibration file");
  }
  if (!read(&version, sizeof(version)) || version != kVersion) {
    return Status::Corruption("unsupported calibration version");
  }
  if (!read(&count, sizeof(count)) || count < 0) {
    return Status::Corruption("calibration file truncated");
  }
  int armed = 0;
  for (int32_t i = 0; i < count; ++i) {
    Entry e;
    if (!read(&e, sizeof(e))) {
      return Status::Corruption("calibration file truncated");
    }
    if (e.layer_index < 0 || e.layer_index >= net.num_layers() ||
        std::string_view(net.layer(e.layer_index).kind()) !=
            "convolutional") {
      return Status::Corruption("calibration entry does not match network");
    }
    if (!(e.range_min <= e.range_max)) {  // also rejects NaN
      return Status::Corruption("calibration entry has an invalid range");
    }
    static_cast<ConvLayer&>(net.layer(e.layer_index))
        .SetActivationRange(e.range_min, e.range_max);
    ++armed;
  }
  // Installed ranges enable quantize-once chaining; recompile the plan
  // so the chains take effect before the next Forward.
  THALI_RETURN_IF_ERROR(net.ReplanInference());
  return armed;
}

}  // namespace thali
