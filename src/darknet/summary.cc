#include "darknet/summary.h"

#include <sstream>
#include <string_view>

#include "base/cpu_features.h"
#include "base/string_util.h"
#include "nn/conv_layer.h"
#include "nn/maxpool_layer.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "nn/upsample_layer.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/qtensor.h"

namespace thali {

namespace {

std::string DimString(const Shape& s) {
  if (s.rank() != 4) return s.ToString();
  return StrFormat("%lldx%lldx%lld", static_cast<long long>(s.dim(1)),
                   static_cast<long long>(s.dim(2)),
                   static_cast<long long>(s.dim(3)));
}

}  // namespace

std::string NetworkSummary(const Network& net) {
  std::ostringstream os;
  os << StrFormat("%4s  %-14s %8s  %-8s %22s  %10s\n", "idx", "type",
                  "filters", "size/str", "input -> output", "params");

  int64_t total_params = 0;
  int64_t packed_bytes = 0;
  for (int i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    const std::string_view kind = layer.kind();
    if (kind == "convolutional") {
      packed_bytes +=
          static_cast<const ConvLayer&>(layer).packed_weight_bytes();
    }

    std::string filters = "-";
    std::string geom = "-";
    if (kind == "convolutional") {
      const auto& conv = static_cast<const ConvLayer&>(layer);
      filters = std::to_string(conv.options().filters);
      geom = StrFormat("%dx%d/%d", conv.options().ksize, conv.options().ksize,
                       conv.options().stride);
    } else if (kind == "maxpool") {
      const auto& pool = static_cast<const MaxPoolLayer&>(layer);
      geom = StrFormat("%dx%d/%d", pool.options().size, pool.options().size,
                       pool.options().stride);
    } else if (kind == "upsample") {
      geom = StrFormat("x%d", static_cast<const UpsampleLayer&>(layer).stride());
    } else if (kind == "route") {
      const auto& route = static_cast<const RouteLayer&>(layer);
      std::string refs;
      for (int src : route.source_indices()) {
        if (!refs.empty()) refs += ",";
        refs += std::to_string(src);
      }
      geom = refs;
    } else if (kind == "shortcut") {
      geom = StrFormat(
          "from %d", static_cast<const ShortcutLayer&>(layer).from_index());
    }

    int64_t params = 0;
    for (const ConstParam& p : layer.Params()) params += p.value->size();
    total_params += params;

    os << StrFormat("%4d  %-14s %8s  %-8s %10s -> %-10s %10lld\n", i,
                    std::string(kind).c_str(), filters.c_str(), geom.c_str(),
                    DimString(layer.input_shape()).c_str(),
                    DimString(layer.output_shape()).c_str(),
                    static_cast<long long>(params));
  }
  // Compiled-plan table: which algorithm/layout/dtype each layer actually
  // runs with, so plan decisions are inspectable without digging through
  // ExecPlan::ToString logs. Only meaningful once a fused inference plan
  // exists; reference plans print the headline line only.
  const ExecPlan& plan = net.exec_plan();
  int64_t int8_bytes = 0;
  int int8_layers = 0;
  if (plan.fused) {
    os << StrFormat("\nplan: %4s  %-14s %10s  %5s %5s  %6s %5s  %4s %4s %8s\n",
                    "idx", "type", "algo", "in", "out", "elide", "dtype",
                    "din", "dout", "chain");
    for (int i = 0; i < net.num_layers(); ++i) {
      const Layer& layer = net.layer(i);
      const LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
      const char* dtype = "f32";
      if (lp.conv_algo == ConvAlgo::kQuantInt8 ||
          lp.conv_algo == ConvAlgo::kQuantInt8Direct1x1) {
        const auto& conv = static_cast<const ConvLayer&>(layer);
        // A quantized plan entry runs fp32 until calibration arms it.
        dtype = conv.has_activation_range() ? DTypeName(DType::kI8) : "f32*";
        int8_bytes += conv.int8_weight_bytes();
        ++int8_layers;
      }
      os << StrFormat("plan: %4d  %-14s %10s  %5s %5s  %6s %5s  %4s %4s %8s\n",
                      i, std::string(layer.kind()).c_str(),
                      ConvAlgoName(lp.conv_algo), ActLayoutName(lp.in_layout),
                      ActLayoutName(lp.out_layout),
                      lp.copy_elided ? "elide" : "-", dtype,
                      DTypeName(lp.in_dtype), DTypeName(lp.out_dtype),
                      lp.in_dtype == DType::kU8 ? "chained" : "-");
    }
  }
  os << StrFormat(
      "total: %lld parameters, %lld floats of per-thread workspace, batch %d\n",
      static_cast<long long>(total_params),
      static_cast<long long>(net.workspace_size()), net.batch());
  os << StrFormat("gemm: %s kernel (cpu: %s), %lld bytes of pre-packed weights\n",
                  GemmKernelName(), CpuFeatureString().c_str(),
                  static_cast<long long>(packed_bytes));
  if (net.int8_enabled()) {
    os << StrFormat(
        "int8: %s kernel, %d quantized conv layers, %lld bytes of int8 "
        "weights, %d quantized layers total, %d chained edges, %d dequant "
        "edges\n",
        SelectInt8GemmKernel().name, int8_layers,
        static_cast<long long>(int8_bytes), plan.quantized_layers,
        plan.chained_edges, plan.dequant_edges);
  }
  return os.str();
}

}  // namespace thali
