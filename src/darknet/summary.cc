#include "darknet/summary.h"

#include <sstream>
#include <string_view>

#include "base/cpu_features.h"
#include "base/string_util.h"
#include "nn/conv_layer.h"
#include "nn/maxpool_layer.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "nn/upsample_layer.h"
#include "tensor/gemm.h"

namespace thali {

namespace {

std::string DimString(const Shape& s) {
  if (s.rank() != 4) return s.ToString();
  return StrFormat("%lldx%lldx%lld", static_cast<long long>(s.dim(1)),
                   static_cast<long long>(s.dim(2)),
                   static_cast<long long>(s.dim(3)));
}

}  // namespace

std::string NetworkSummary(const Network& net) {
  std::ostringstream os;
  os << StrFormat("%4s  %-14s %8s  %-8s %22s  %10s\n", "idx", "type",
                  "filters", "size/str", "input -> output", "params");

  int64_t total_params = 0;
  int64_t packed_bytes = 0;
  for (int i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    const std::string_view kind = layer.kind();
    if (kind == "convolutional") {
      packed_bytes +=
          static_cast<const ConvLayer&>(layer).packed_weight_bytes();
    }

    std::string filters = "-";
    std::string geom = "-";
    if (kind == "convolutional") {
      const auto& conv = static_cast<const ConvLayer&>(layer);
      filters = std::to_string(conv.options().filters);
      geom = StrFormat("%dx%d/%d", conv.options().ksize, conv.options().ksize,
                       conv.options().stride);
    } else if (kind == "maxpool") {
      const auto& pool = static_cast<const MaxPoolLayer&>(layer);
      geom = StrFormat("%dx%d/%d", pool.options().size, pool.options().size,
                       pool.options().stride);
    } else if (kind == "upsample") {
      geom = StrFormat("x%d", static_cast<const UpsampleLayer&>(layer).stride());
    } else if (kind == "route") {
      const auto& route = static_cast<const RouteLayer&>(layer);
      std::string refs;
      for (int src : route.source_indices()) {
        if (!refs.empty()) refs += ",";
        refs += std::to_string(src);
      }
      geom = refs;
    } else if (kind == "shortcut") {
      geom = StrFormat(
          "from %d", static_cast<const ShortcutLayer&>(layer).from_index());
    }

    int64_t params = 0;
    for (const ConstParam& p : layer.Params()) params += p.value->size();
    total_params += params;

    os << StrFormat("%4d  %-14s %8s  %-8s %10s -> %-10s %10lld\n", i,
                    std::string(kind).c_str(), filters.c_str(), geom.c_str(),
                    DimString(layer.input_shape()).c_str(),
                    DimString(layer.output_shape()).c_str(),
                    static_cast<long long>(params));
  }
  os << StrFormat(
      "total: %lld parameters, %lld floats of per-thread workspace, batch %d\n",
      static_cast<long long>(total_params),
      static_cast<long long>(net.workspace_size()), net.batch());
  os << StrFormat("gemm: %s kernel (cpu: %s), %lld bytes of pre-packed weights\n",
                  GemmKernelName(), CpuFeatureString().c_str(),
                  static_cast<long long>(packed_bytes));
  return os.str();
}

}  // namespace thali
