#ifndef THALI_DARKNET_CALIBRATION_IO_H_
#define THALI_DARKNET_CALIBRATION_IO_H_

#include <string>

#include "base/statusor.h"
#include "nn/network.h"

namespace thali {

// Persistence for int8 activation-calibration results, styled after the
// .weights serialization (weights_io.h): a calibration run is expensive
// relative to model load, so deployments calibrate once and ship the
// ranges next to the weights file.
//
// Binary layout (little-endian):
//   char magic[8] = "THALICAL", int32 version = 1, int32 count,
//   then `count` entries of { int32 layer_index, float range_min,
//   float range_max } — one per conv layer that holds a calibrated
//   activation range, in network order.

// Saves every calibrated conv layer's activation range.
Status SaveCalibration(const Network& net, const std::string& path);

// Installs saved ranges into an already-built network (layer indices
// must match the cfg the file was calibrated against). Returns the
// number of conv layers armed.
StatusOr<int> LoadCalibration(Network& net, const std::string& path);

}  // namespace thali

#endif  // THALI_DARKNET_CALIBRATION_IO_H_
