#ifndef THALI_DARKNET_CFG_H_
#define THALI_DARKNET_CFG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/statusor.h"
#include "nn/network.h"
#include "nn/yolo_layer.h"

namespace thali {

// One `[section]` of a Darknet .cfg file with its key=value options.
struct CfgSection {
  std::string name;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  StatusOr<int> GetInt(const std::string& key) const;
  int GetInt(const std::string& key, int default_value) const;
  float GetFloat(const std::string& key, float default_value) const;
  StatusOr<std::string> GetString(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  // Comma-separated lists.
  StatusOr<std::vector<int>> GetIntList(const std::string& key) const;
  StatusOr<std::vector<float>> GetFloatList(const std::string& key) const;
};

// Parses Darknet cfg text ('#'/';' comments, [section] headers,
// key=value lines). The first section must be [net]/[network].
StatusOr<std::vector<CfgSection>> ParseCfg(const std::string& text);

// Training hyperparameters read from the [net] section.
struct NetOptions {
  int width = 96;
  int height = 96;
  int channels = 3;
  int batch = 4;
  float learning_rate = 1e-3f;
  float momentum = 0.9f;
  float decay = 5e-4f;
  int burn_in = 0;
  int max_batches = 1000;
  std::vector<int> steps;
  std::vector<float> scales;
  // Augmentation knobs (Darknet names).
  float saturation = 1.5f;
  float exposure = 1.5f;
  float hue = 0.1f;
  bool mosaic = false;
  bool flip = true;
  float jitter = 0.2f;
};

// A network built from a cfg, plus its hyperparameters and convenience
// pointers to the detection heads (owned by the network).
struct BuiltNetwork {
  std::unique_ptr<Network> net;
  NetOptions options;
  std::vector<YoloLayer*> yolo_layers;
};

// Instantiates a network from cfg text. `batch_override` (>0) replaces the
// cfg batch (training uses the cfg value; inference typically wants 1).
// Weights are randomly initialized from `rng`. `mode` selects the buffer
// plan: kTraining allocates per-layer deltas and backward caches;
// kInference skips both and arena-plans the activations (see
// nn/exec_plan.h).
StatusOr<BuiltNetwork> BuildNetworkFromCfg(const std::string& text,
                                           int batch_override, Rng& rng,
                                           ExecMode mode = ExecMode::kTraining);

// Collects the YoloLayer heads of an already-built network.
std::vector<YoloLayer*> FindYoloLayers(Network& net);

}  // namespace thali

#endif  // THALI_DARKNET_CFG_H_
