#include "baseline/ssd_detector.h"

#include "nn/conv_layer.h"
#include "nn/maxpool_layer.h"

namespace thali {

namespace {

std::unique_ptr<ConvLayer> Conv(int filters, int ksize, int stride,
                                Activation act, bool bn = true) {
  ConvLayer::Options o;
  o.filters = filters;
  o.ksize = ksize;
  o.stride = stride;
  o.pad = ksize / 2;
  o.batch_normalize = bn;
  o.activation = act;
  return std::make_unique<ConvLayer>(o);
}

}  // namespace

StatusOr<SsdBaseline> BuildSsdBaseline(int classes, int width, int height,
                                       int batch, BaselineTier tier,
                                       Rng& rng) {
  if (width % 16 != 0 || height % 16 != 0) {
    return Status::InvalidArgument("baseline input must be divisible by 16");
  }
  SsdBaseline out;
  out.width = width;
  out.height = height;
  out.net = std::make_unique<Network>(width, height, 3, batch);
  Network& net = *out.net;

  const bool legacy = tier == BaselineTier::kLegacy;
  const int base = legacy ? 6 : 12;

  // Plain VGG-style feature extractor down to stride 16; single scale.
  net.Add(Conv(base, 3, 2, Activation::kLeaky));       // /2
  net.Add(Conv(base * 2, 3, 2, Activation::kLeaky));   // /4
  net.Add(Conv(base * 2, 3, 1, Activation::kLeaky));
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{2, 2, -1}));
  net.Add(Conv(base * 4, 3, 1, Activation::kLeaky));   // /8
  net.Add(std::make_unique<MaxPoolLayer>(MaxPoolLayer::Options{2, 2, -1}));
  net.Add(Conv(base * 4, 3, 1, Activation::kLeaky));   // /16
  if (!legacy) {
    net.Add(Conv(base * 8, 3, 1, Activation::kLeaky));
    net.Add(Conv(base * 4, 1, 1, Activation::kLeaky));
  }

  SsdHeadLayer::Options ho;
  ho.classes = classes;
  const float ax = width / 96.0f;
  const float ay = height / 96.0f;
  if (legacy) {
    ho.anchors = {{48 * ax, 48 * ay}};
  } else {
    ho.anchors = {{16 * ax, 16 * ay},
                  {32 * ax, 32 * ay},
                  {48 * ax, 40 * ay},
                  {64 * ax, 64 * ay},
                  {84 * ax, 72 * ay}};
  }
  const int head_channels =
      static_cast<int>(ho.anchors.size()) * (5 + classes);
  net.Add(Conv(head_channels, 1, 1, Activation::kLinear, /*bn=*/false));
  auto head = std::make_unique<SsdHeadLayer>(ho);
  out.head = head.get();
  net.Add(std::move(head));

  THALI_RETURN_IF_ERROR(net.Finalize());
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).InitWeights(rng);
    }
  }
  return out;
}

}  // namespace thali
