#ifndef THALI_BASELINE_SSD_HEAD_LAYER_H_
#define THALI_BASELINE_SSD_HEAD_LAYER_H_

#include <utility>
#include <vector>

#include "nn/detection_head.h"
#include "nn/layer.h"

namespace thali {

// Single-scale anchor-grid detection head in the style of the pre-YOLOv4
// one-stage pipelines the paper compares against (SSD+InceptionV2 [13],
// BTBU-Food-60 [14]). Differences from the YOLOv4 head, on purpose:
//   * one detection scale only (no FPN/PAN multi-scale fusion),
//   * MSE loss on the box transform coordinates instead of CIoU,
//   * no ignore-threshold, no multi-anchor assignment, no
//     grid-sensitivity scaling.
// Input channels must equal anchors.size() * (5 + classes).
class SsdHeadLayer : public Layer, public DetectionHead {
 public:
  struct Options {
    std::vector<std::pair<float, float>> anchors;  // net-input pixels
    int classes = 10;
    float box_scale = 1.0f;  // MSE weight
    float obj_scale = 1.0f;
    float cls_scale = 1.0f;
  };

  explicit SsdHeadLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "ssd_head"; }
  // Detections are decoded from the head output after the forward pass.
  bool OutputLiveAfterForward() const override { return true; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;

  HeadLossStats ComputeLoss(const TruthBatch& truths, int net_w,
                            int net_h) override;
  std::vector<Detection> GetDetections(int b, float conf_thresh, int net_w,
                                       int net_h) const override;

  const Options& options() const { return opts_; }

 private:
  int64_t Entry(int64_t b, int64_t n, int64_t attr, int64_t y,
                int64_t x) const;
  Box PredBox(int64_t b, int64_t n, int64_t y, int64_t x, int net_w,
              int net_h) const;

  Options opts_;
};

}  // namespace thali

#endif  // THALI_BASELINE_SSD_HEAD_LAYER_H_
