#ifndef THALI_BASELINE_SSD_DETECTOR_H_
#define THALI_BASELINE_SSD_DETECTOR_H_

#include <memory>

#include "base/rng.h"
#include "base/statusor.h"
#include "baseline/ssd_head_layer.h"
#include "nn/network.h"

namespace thali {

// Builder for the Table III comparison baselines. `kModern` is an
// SSD-style single-scale detector with a plain (non-CSP) backbone;
// `kLegacy` narrows the backbone and uses a single anchor — standing in
// for the older/weaker pipeline whose published number (67.7%) trails the
// SSD one (76.9%).
enum class BaselineTier { kLegacy, kModern };

struct SsdBaseline {
  std::unique_ptr<Network> net;
  SsdHeadLayer* head = nullptr;  // owned by net
  int width = 96;
  int height = 96;
};

// Builds a single-scale baseline detector for `classes` classes at
// (width x height x 3) input with the given batch size.
StatusOr<SsdBaseline> BuildSsdBaseline(int classes, int width, int height,
                                       int batch, BaselineTier tier, Rng& rng);

}  // namespace thali

#endif  // THALI_BASELINE_SSD_DETECTOR_H_
