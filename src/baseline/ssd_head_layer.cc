#include "baseline/ssd_head_layer.h"

#include <algorithm>
#include <cmath>

#include "nn/network.h"
#include "tensor/ops.h"

namespace thali {

Status SsdHeadLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("ssd head input must be NCHW");
  }
  if (opts_.anchors.empty() || opts_.classes <= 0) {
    return Status::InvalidArgument("ssd head needs anchors and classes");
  }
  const int64_t want =
      static_cast<int64_t>(opts_.anchors.size()) * (5 + opts_.classes);
  if (input_shape.dim(1) != want) {
    return Status::InvalidArgument("ssd head channel mismatch");
  }
  SetShapes(input_shape, input_shape);
  return Status::OK();
}

int64_t SsdHeadLayer::Entry(int64_t b, int64_t n, int64_t attr, int64_t y,
                            int64_t x) const {
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t c = out_shape_.dim(1);
  return ((b * c + n * (5 + opts_.classes) + attr) * gh + y) * gw + x;
}

void SsdHeadLayer::Forward(const Tensor& input, Network&, bool) {
  std::copy(input.data(), input.data() + input.size(), output_.data());
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_shape_.dim(2) * out_shape_.dim(3);
  const int64_t n_anchors = static_cast<int64_t>(opts_.anchors.size());
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t n = 0; n < n_anchors; ++n) {
      for (int64_t attr = 0; attr < 5 + opts_.classes; ++attr) {
        if (attr == 2 || attr == 3) continue;  // w,h stay raw
        float* p = output_.data() + Entry(b, n, attr, 0, 0);
        for (int64_t i = 0; i < spatial; ++i) p[i] = Sigmoid(p[i]);
      }
    }
  }
}

void SsdHeadLayer::Backward(const Tensor&, Tensor* input_delta, Network&) {
  if (input_delta == nullptr) return;
  float* id = input_delta->data();
  const float* d = delta_.data();
  for (int64_t i = 0; i < delta_.size(); ++i) id[i] += d[i];
}

Box SsdHeadLayer::PredBox(int64_t b, int64_t n, int64_t y, int64_t x,
                          int net_w, int net_h) const {
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const auto& anchor = opts_.anchors[static_cast<size_t>(n)];
  Box box;
  box.x = (static_cast<float>(x) + output_[Entry(b, n, 0, y, x)]) / gw;
  box.y = (static_cast<float>(y) + output_[Entry(b, n, 1, y, x)]) / gh;
  box.w = anchor.first * std::exp(output_[Entry(b, n, 2, y, x)]) / net_w;
  box.h = anchor.second * std::exp(output_[Entry(b, n, 3, y, x)]) / net_h;
  return box;
}

HeadLossStats SsdHeadLayer::ComputeLoss(const TruthBatch& truths, int net_w,
                                        int net_h) {
  const int64_t batch = out_shape_.dim(0);
  THALI_CHECK_EQ(static_cast<int64_t>(truths.size()), batch);
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t n_anchors = static_cast<int64_t>(opts_.anchors.size());

  HeadLossStats stats;
  float iou_sum = 0.0f;

  // Background objectness everywhere (no ignore region — one of the
  // classic pipeline's weaknesses on crowded platters).
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t n = 0; n < n_anchors; ++n) {
      float* d = delta_.data() + Entry(b, n, 4, 0, 0);
      const float* o = output_.data() + Entry(b, n, 4, 0, 0);
      for (int64_t i = 0; i < gh * gw; ++i) {
        d[i] = o[i] * opts_.obj_scale;
        stats.obj += -std::log(std::clamp(1.0f - o[i], 1e-7f, 1.0f)) *
                     opts_.obj_scale;
      }
    }
  }

  for (int64_t b = 0; b < batch; ++b) {
    for (const TruthBox& t : truths[static_cast<size_t>(b)]) {
      if (t.box.w <= 0 || t.box.h <= 0) continue;
      const int64_t cx =
          std::clamp<int64_t>(static_cast<int64_t>(t.box.x * gw), 0, gw - 1);
      const int64_t cy =
          std::clamp<int64_t>(static_cast<int64_t>(t.box.y * gh), 0, gh - 1);
      // Best anchor by wh-IoU.
      int best = 0;
      float best_wh = -1.0f;
      for (int64_t a = 0; a < n_anchors; ++a) {
        const float wh =
            WhIou(t.box.w * net_w, t.box.h * net_h,
                  opts_.anchors[static_cast<size_t>(a)].first,
                  opts_.anchors[static_cast<size_t>(a)].second);
        if (wh > best_wh) {
          best_wh = wh;
          best = static_cast<int>(a);
        }
      }
      const int64_t n = best;
      const auto& anchor = opts_.anchors[static_cast<size_t>(n)];

      // MSE on the transform coordinates.
      const float tx = t.box.x * gw - static_cast<float>(cx);
      const float ty = t.box.y * gh - static_cast<float>(cy);
      const float tw = std::log(std::max(t.box.w * net_w / anchor.first,
                                         1e-6f));
      const float th = std::log(std::max(t.box.h * net_h / anchor.second,
                                         1e-6f));

      const float sx = output_[Entry(b, n, 0, cy, cx)];
      const float sy = output_[Entry(b, n, 1, cy, cx)];
      const float rw = output_[Entry(b, n, 2, cy, cx)];
      const float rh = output_[Entry(b, n, 3, cy, cx)];

      // d(MSE)/dlogit for the sigmoid-activated coords includes sigma'.
      delta_[Entry(b, n, 0, cy, cx)] +=
          opts_.box_scale * (sx - tx) * sx * (1.0f - sx);
      delta_[Entry(b, n, 1, cy, cx)] +=
          opts_.box_scale * (sy - ty) * sy * (1.0f - sy);
      delta_[Entry(b, n, 2, cy, cx)] += opts_.box_scale * (rw - tw);
      delta_[Entry(b, n, 3, cy, cx)] += opts_.box_scale * (rh - th);
      stats.box += 0.5f * opts_.box_scale *
                   ((sx - tx) * (sx - tx) + (sy - ty) * (sy - ty) +
                    (rw - tw) * (rw - tw) + (rh - th) * (rh - th));

      const float obj = output_[Entry(b, n, 4, cy, cx)];
      // Replace the background term this cell received in the first pass
      // (delta and loss value alike) with the positive target.
      stats.obj -= -std::log(std::clamp(1.0f - obj, 1e-7f, 1.0f)) *
                   opts_.obj_scale;
      delta_[Entry(b, n, 4, cy, cx)] = (obj - 1.0f) * opts_.obj_scale;
      stats.obj +=
          -std::log(std::clamp(obj, 1e-7f, 1.0f)) * opts_.obj_scale;

      for (int c = 0; c < opts_.classes; ++c) {
        const float p = output_[Entry(b, n, 5 + c, cy, cx)];
        const float target = c == t.class_id ? 1.0f : 0.0f;
        delta_[Entry(b, n, 5 + c, cy, cx)] = (p - target) * opts_.cls_scale;
        const float pc =
            std::clamp(target > 0.5f ? p : 1.0f - p, 1e-7f, 1.0f);
        stats.cls += -std::log(pc) * opts_.cls_scale;
      }

      iou_sum += Iou(PredBox(b, n, cy, cx, net_w, net_h), t.box);
      ++stats.assigned;
    }
  }
  stats.avg_iou = stats.assigned > 0 ? iou_sum / stats.assigned : 0.0f;
  stats.total = stats.box + stats.obj + stats.cls;
  return stats;
}

std::vector<Detection> SsdHeadLayer::GetDetections(int b, float conf_thresh,
                                                   int net_w,
                                                   int net_h) const {
  std::vector<Detection> dets;
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t n_anchors = static_cast<int64_t>(opts_.anchors.size());
  for (int64_t n = 0; n < n_anchors; ++n) {
    for (int64_t y = 0; y < gh; ++y) {
      for (int64_t x = 0; x < gw; ++x) {
        const float obj = output_[Entry(b, n, 4, y, x)];
        if (obj < conf_thresh) continue;
        const Box box = PredBox(b, n, y, x, net_w, net_h);
        for (int c = 0; c < opts_.classes; ++c) {
          const float conf = obj * output_[Entry(b, n, 5 + c, y, x)];
          if (conf < conf_thresh) continue;
          dets.push_back({box, c, conf});
        }
      }
    }
  }
  return dets;
}

}  // namespace thali
