#ifndef THALI_NET_EVENT_LOOP_H_
#define THALI_NET_EVENT_LOOP_H_

#include <unordered_map>
#include <vector>

#include "base/statusor.h"

namespace thali {
namespace net {

// Readiness multiplexer over the server's fds: epoll(7) where available,
// with a portable poll(2) backend selected when epoll is unavailable or
// THALI_NET_POLL=1 (the fallback path stays continuously tested that
// way). Level-triggered in both backends — the connection state machines
// re-arm write interest explicitly, so edge semantics buy nothing here.
class EventLoop {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  // HUP / ERR: close the connection
  };

  enum class Backend { kEpoll, kPoll };

  // Picks the backend (env override first, then epoll, then poll).
  static StatusOr<EventLoop> Create();

  EventLoop(EventLoop&& other) noexcept;
  EventLoop& operator=(EventLoop&&) = delete;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Backend backend() const { return backend_; }

  // Registers `fd` for readability (always) and writability (if
  // `want_write`).
  Status Add(int fd, bool want_write);
  // Updates write interest for a registered fd.
  Status SetWantWrite(int fd, bool want_write);
  // Deregisters; call before closing the fd.
  void Remove(int fd);

  // Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  // *out (cleared first). Returns the number of events.
  StatusOr<int> Wait(std::vector<Event>* out, int timeout_ms);

 private:
  explicit EventLoop(Backend backend, int epoll_fd)
      : backend_(backend), epoll_fd_(epoll_fd) {}

  Backend backend_;
  int epoll_fd_ = -1;                       // kEpoll only
  std::unordered_map<int, bool> want_write_;  // fd -> write interest
};

}  // namespace net
}  // namespace thali

#endif  // THALI_NET_EVENT_LOOP_H_
