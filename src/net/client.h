#ifndef THALI_NET_CLIENT_H_
#define THALI_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "eval/detection.h"
#include "net/protocol.h"

namespace thali {
namespace net {

// Blocking loopback client for the THL1 protocol. One request in flight
// at a time per client (send frame, read the reply); open several
// clients for concurrency — the server multiplexes them. Not
// thread-safe: one caller per instance, like Detector.
class NetClient {
 public:
  // Connects to 127.0.0.1:`port`.
  static StatusOr<NetClient> Connect(uint16_t port);

  ~NetClient();

  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&&) = delete;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Round-trips a PING; kInternal if the echo does not match.
  Status Ping();

  // Submits one image and blocks for the detections. A server-side
  // rejection (shed, deadline, bad request) comes back as that Status.
  StatusOr<std::vector<Detection>> Detect(const DetectRequest& request);

  // Fetches the server's stats JSON.
  StatusOr<std::string> Stats();

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  // Sends one frame and reads the complete reply frame (validating the
  // header and echoed op).
  Status RoundTrip(Op op, std::span<const uint8_t> request_payload,
                   std::vector<uint8_t>* response_payload);

  int fd_;
};

}  // namespace net
}  // namespace thali

#endif  // THALI_NET_CLIENT_H_
