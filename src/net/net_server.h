#ifndef THALI_NET_NET_SERVER_H_
#define THALI_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "base/statusor.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "serve/router.h"

namespace thali {
namespace net {

// Loopback TCP front-end over a ModelRouter: one event-loop thread
// multiplexes every client with epoll (or poll — see EventLoop),
// non-blocking reads feed per-connection frame reassembly, DETECT frames
// are admitted through the routed serve::Server (priority lanes, deadline
// and shed policies run there), and responses stream back with partial-
// write continuation, in request order per connection.
//
//   clients ──TCP──▶ EventLoop ──decode──▶ ModelRouter::Route
//                        ▲                       │ Submit (admission)
//                        └──encode ◀── future ◀──┘ worker pool
//
// Fairness: each loop tick services ready connections starting from a
// rotating offset and dispatches at most one frame per connection per
// tick, so one chatty client cannot starve the rest; a connection with
// max_inflight_per_conn unanswered DETECTs stops being parsed until
// replies drain (per-client backpressure that also bounds memory).
//
// The detection futures resolve on serve-layer worker threads; the loop
// polls pending heads with a zero-timeout wait while any reply is
// outstanding (1 ms ticks), and sleeps long otherwise.
class NetServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral; read back with port()
    int max_connections = 64;
    // DETECTs in flight per connection before the server stops reading
    // more frames from it.
    int max_inflight_per_conn = 32;
  };

  struct Counters {
    std::atomic<int64_t> connections_accepted{0};
    std::atomic<int64_t> connections_dropped{0};  // framing/io errors
    std::atomic<int64_t> frames_received{0};
    std::atomic<int64_t> detects{0};
    std::atomic<int64_t> detect_errors{0};  // non-OK submit or decode
    std::atomic<int64_t> pings{0};
    std::atomic<int64_t> stats_requests{0};
  };

  // Binds 127.0.0.1:port and starts the loop thread. `router` must
  // outlive the server and have at least one model registered.
  static StatusOr<std::unique_ptr<NetServer>> Start(
      const Options& options, serve::ModelRouter* router);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return port_; }
  const Counters& counters() const { return counters_; }
  EventLoop::Backend backend() const { return loop_.backend(); }

  // Stops the loop thread and closes every connection. Requests already
  // handed to the serve layer still complete there (their replies are
  // dropped with the sockets). Idempotent; also run by the destructor.
  void Shutdown();

 private:
  NetServer(const Options& options, serve::ModelRouter* router,
            EventLoop loop, int listen_fd, uint16_t port, int wake_rx,
            int wake_tx);

  void LoopThread();
  void AcceptPending();
  // Reads whatever the socket has; returns false if the connection died
  // (io/framing error or EOF) and must be closed.
  bool ReadFromConnection(Connection* conn);
  // Decodes and dispatches one frame. Never fails the connection: bad
  // requests get error replies (framing errors are handled upstream).
  void DispatchFrame(Connection* conn, const FrameHeader& header,
                     std::vector<uint8_t> payload);
  void CloseConnection(int fd);
  std::string BuildStatsJson() const;

  Options options_;
  serve::ModelRouter* router_;
  EventLoop loop_;
  int listen_fd_;
  uint16_t port_;
  // Self-pipe waking the loop out of a long sleep for shutdown.
  int wake_rx_;
  int wake_tx_;

  Counters counters_;
  std::map<int, std::unique_ptr<Connection>> conns_;  // loop thread only
  std::vector<int> rr_order_;  // rotating fairness order, loop thread only
  size_t rr_next_ = 0;

  std::atomic<bool> stop_{false};
  std::thread loop_thread_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace net
}  // namespace thali

#endif  // THALI_NET_NET_SERVER_H_
