#ifndef THALI_NET_PROTOCOL_H_
#define THALI_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "eval/detection.h"
#include "image/image.h"
#include "serve/lane_queue.h"

namespace thali {
namespace net {

// THL1 wire protocol: a length-prefixed binary framing for loopback TCP.
// Every message (request or response) is one frame:
//
//   header (12 bytes, little-endian):
//     u32 magic   'T''H''L''1' (0x314C4854)
//     u16 version (kProtocolVersion; mismatches are rejected)
//     u16 op      (Op below; responses echo the request op)
//     u32 payload_len
//   payload (payload_len bytes, op-specific, little-endian)
//
// Request payloads:
//   kPing:   arbitrary bytes (echoed back verbatim)
//   kDetect: u8  priority (0 interactive, 1 batch)
//            u32 deadline_ms (0 = no deadline)
//            u8  model_len, model_len bytes model id ("" = routed)
//            u16 width, u16 height, u8 channels
//            f32 pixels[channels*height*width]  (planar CHW, as Image)
//   kStats:  empty
//
// Response payloads begin with a status block:
//            u8  status code (thali::StatusCode)
//            u16 message_len, message bytes
// followed on success by the op-specific body:
//   kPing:   the request payload, echoed
//   kDetect: u32 count, then per detection:
//            i32 class_id, f32 confidence, f32 x, f32 y, f32 w, f32 h
//   kStats:  u32 text_len, text bytes (JSON; see ModelRouter::StatsJson)
//
// Floats travel as raw IEEE-754 little-endian bytes, so a loopback
// round-trip is bitwise lossless — the e2e test pins socket-served
// detections bitwise-equal to in-process results.

inline constexpr uint32_t kMagic = 0x314C4854;  // "THL1" little-endian
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 12;
// Upper bound on payload_len; a 608x608x3 float image is ~4.4 MB, so
// 16 MB leaves headroom while still rejecting garbage lengths instantly.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

enum class Op : uint16_t {
  kPing = 1,
  kDetect = 2,
  kStats = 3,
};

struct FrameHeader {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t op = 0;
  uint32_t payload_len = 0;
};

// Little-endian primitive append/read helpers (shared by src/net and its
// tests; the host is assumed little-endian — x86-64 — and the image float
// payloads are memcpy'd).
void AppendU8(std::vector<uint8_t>* buf, uint8_t v);
void AppendU16(std::vector<uint8_t>* buf, uint16_t v);
void AppendU32(std::vector<uint8_t>* buf, uint32_t v);
void AppendF32(std::vector<uint8_t>* buf, float v);
void AppendBytes(std::vector<uint8_t>* buf, const void* data, size_t len);

// Cursor-based reader over one payload; every Read checks bounds and
// returns kCorruption on truncation (a malformed or hostile frame must
// never read past the payload).
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  Status ReadU8(uint8_t* v);
  Status ReadU16(uint16_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadF32(float* v);
  Status ReadBytes(void* out, size_t len);
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- framing --

// Serializes a complete frame: header + payload.
std::vector<uint8_t> EncodeFrame(Op op, std::span<const uint8_t> payload);

// Parses the 12-byte header; kCorruption on bad magic,
// kUnimplemented on a version mismatch, kResourceExhausted on an
// oversized payload length.
Status ParseHeader(std::span<const uint8_t> bytes, FrameHeader* header);

// Incremental frame reassembly over a byte stream: Feed whatever arrived
// (any split points, including mid-header), then drain complete frames
// with NextFrame. A framing error (bad magic/version/length) is sticky —
// the connection cannot be resynchronized and must be closed.
class FrameReader {
 public:
  // Appends received bytes; returns the first framing error encountered.
  Status Feed(std::span<const uint8_t> bytes);

  // Moves the next complete frame out; false if none is buffered.
  bool NextFrame(FrameHeader* header, std::vector<uint8_t>* payload);

 private:
  std::vector<uint8_t> buf_;
  Status error_;  // sticky
};

// ------------------------------------------------------------ detect --

struct DetectRequest {
  serve::Priority priority = serve::Priority::kInteractive;
  uint32_t deadline_ms = 0;  // 0 = none
  std::string model_id;      // "" = default route (A/B split applies)
  Image image;
};

// Encodes the request *payload* only (callers frame it with EncodeFrame;
// the response encoders below return complete frames because the server
// writes them to the socket as-is).
std::vector<uint8_t> EncodeDetectRequest(const DetectRequest& req);
Status DecodeDetectRequest(std::span<const uint8_t> payload,
                           DetectRequest* req);

std::vector<uint8_t> EncodeDetectResponse(
    const Status& status, std::span<const Detection> detections);
// On a non-OK wire status, *status holds it and detections is empty.
Status DecodeDetectResponse(std::span<const uint8_t> payload, Status* status,
                            std::vector<Detection>* detections);

// ------------------------------------------------------- ping / stats --

std::vector<uint8_t> EncodePingResponse(std::span<const uint8_t> echo);

std::vector<uint8_t> EncodeStatsResponse(const Status& status,
                                         const std::string& stats_json);
Status DecodeStatsResponse(std::span<const uint8_t> payload, Status* status,
                           std::string* stats_json);

// Error response usable for any op (status block only, no body).
std::vector<uint8_t> EncodeErrorResponse(Op op, const Status& status);

}  // namespace net
}  // namespace thali

#endif  // THALI_NET_PROTOCOL_H_
