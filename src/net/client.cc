#include "net/client.h"

#include <algorithm>
#include <utility>

#include "base/net_util.h"
#include "base/string_util.h"

namespace thali {
namespace net {

StatusOr<NetClient> NetClient::Connect(uint16_t port) {
  StatusOr<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  return NetClient(*fd);
}

NetClient::~NetClient() { CloseFd(fd_); }

NetClient::NetClient(NetClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Status NetClient::RoundTrip(Op op, std::span<const uint8_t> request_payload,
                            std::vector<uint8_t>* response_payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client moved-from");
  const std::vector<uint8_t> frame = EncodeFrame(op, request_payload);
  Status sent = SendAll(fd_, frame.data(), frame.size());
  if (!sent.ok()) return sent;

  uint8_t header_bytes[kHeaderBytes];
  Status got = RecvAll(fd_, header_bytes, kHeaderBytes);
  if (!got.ok()) return got;
  FrameHeader header;
  Status parsed = ParseHeader(
      std::span<const uint8_t>(header_bytes, kHeaderBytes), &header);
  if (!parsed.ok()) return parsed;
  if (header.op != static_cast<uint16_t>(op)) {
    return Status::Corruption(
        StrFormat("response op %u does not match request op %u", header.op,
                  static_cast<uint16_t>(op)));
  }
  response_payload->resize(header.payload_len);
  if (header.payload_len > 0) {
    got = RecvAll(fd_, response_payload->data(), header.payload_len);
    if (!got.ok()) return got;
  }
  return Status::OK();
}

Status NetClient::Ping() {
  static constexpr uint8_t kProbe[] = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> reply;
  Status rt = RoundTrip(Op::kPing, kProbe, &reply);
  if (!rt.ok()) return rt;
  // Status block (u8 code, u16 len, msg), then the raw echo.
  PayloadReader reader(reply);
  uint8_t code = 0;
  uint16_t msg_len = 0;
  Status ok = reader.ReadU8(&code);
  if (ok.ok()) ok = reader.ReadU16(&msg_len);
  std::string msg(msg_len, '\0');
  if (ok.ok()) ok = reader.ReadBytes(msg.data(), msg_len);
  if (!ok.ok()) return ok;
  if (code != 0) {
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  uint8_t echo[sizeof(kProbe)] = {};
  if (reader.remaining() != sizeof(kProbe) ||
      !reader.ReadBytes(echo, sizeof(echo)).ok() ||
      !std::equal(kProbe, kProbe + sizeof(kProbe), echo)) {
    return Status::Internal("ping echo mismatch");
  }
  return Status::OK();
}

StatusOr<std::vector<Detection>> NetClient::Detect(
    const DetectRequest& request) {
  const std::vector<uint8_t> payload = EncodeDetectRequest(request);
  std::vector<uint8_t> reply;
  Status rt = RoundTrip(Op::kDetect, payload, &reply);
  if (!rt.ok()) return rt;
  Status wire_status;
  std::vector<Detection> detections;
  Status decoded = DecodeDetectResponse(reply, &wire_status, &detections);
  if (!decoded.ok()) return decoded;
  if (!wire_status.ok()) return wire_status;
  return detections;
}

StatusOr<std::string> NetClient::Stats() {
  std::vector<uint8_t> reply;
  Status rt = RoundTrip(Op::kStats, {}, &reply);
  if (!rt.ok()) return rt;
  Status wire_status;
  std::string json;
  Status decoded = DecodeStatsResponse(reply, &wire_status, &json);
  if (!decoded.ok()) return decoded;
  if (!wire_status.ok()) return wire_status;
  return json;
}

}  // namespace net
}  // namespace thali
