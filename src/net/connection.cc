#include "net/connection.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "base/string_util.h"

namespace thali {
namespace net {

void Connection::EnqueueReady(std::vector<uint8_t> frame) {
  PendingReply r;
  r.ready = true;
  r.encoded = std::move(frame);
  pending_.push_back(std::move(r));
}

void Connection::EnqueueFuture(Op op,
                               std::future<serve::Server::Result> future) {
  PendingReply r;
  r.ready = false;
  r.op = op;
  r.future = std::move(future);
  pending_.push_back(std::move(r));
}

bool Connection::PumpPending() {
  bool produced = false;
  while (!pending_.empty()) {
    PendingReply& head = pending_.front();
    if (!head.ready) {
      if (head.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        break;  // head-of-line not resolved; later replies must wait
      }
      serve::Server::Result result = head.future.get();
      head.encoded = result.ok()
                         ? EncodeDetectResponse(Status::OK(), *result)
                         : EncodeDetectResponse(result.status(), {});
      head.ready = true;
    }
    outbox_.insert(outbox_.end(), head.encoded.begin(), head.encoded.end());
    pending_.pop_front();
    produced = true;
  }
  return produced;
}

Status Connection::FlushWrites() {
  while (outbox_off_ < outbox_.size()) {
    const ssize_t n = send(fd_, outbox_.data() + outbox_off_,
                           outbox_.size() - outbox_off_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Compact lazily: drop the sent prefix only once it dominates,
        // so a slow reader does not trigger a memmove per partial send.
        if (outbox_off_ > outbox_.size() / 2) {
          outbox_.erase(outbox_.begin(),
                        outbox_.begin() +
                            static_cast<ptrdiff_t>(outbox_off_));
          outbox_off_ = 0;
        }
        return Status::Unavailable("socket send buffer full");
      }
      return Status::IOError(StrFormat("send: %s", strerror(errno)));
    }
    outbox_off_ += static_cast<size_t>(n);
  }
  outbox_.clear();
  outbox_off_ = 0;
  return Status::OK();
}

}  // namespace net
}  // namespace thali
