#include "net/net_server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/logging.h"
#include "base/net_util.h"
#include "base/string_util.h"

namespace thali {
namespace net {

namespace {

// Loop sleep while replies are pending (futures need polling) vs idle.
constexpr int kBusyTimeoutMs = 1;
constexpr int kIdleTimeoutMs = 50;

}  // namespace

StatusOr<std::unique_ptr<NetServer>> NetServer::Start(
    const Options& options, serve::ModelRouter* router) {
  if (router == nullptr || router->ModelNames().empty()) {
    return Status::InvalidArgument("router must have at least one model");
  }
  StatusOr<int> listen_fd = ListenLoopback(options.port);
  if (!listen_fd.ok()) return listen_fd.status();
  StatusOr<uint16_t> port = LocalPort(*listen_fd);
  if (!port.ok()) {
    CloseFd(*listen_fd);
    return port.status();
  }
  StatusOr<EventLoop> loop = EventLoop::Create();
  if (!loop.ok()) {
    CloseFd(*listen_fd);
    return loop.status();
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    CloseFd(*listen_fd);
    return Status::IOError(StrFormat("pipe: %s", strerror(errno)));
  }
  Status nb = SetNonBlocking(pipe_fds[0], true);
  if (!nb.ok()) {
    CloseFd(*listen_fd);
    CloseFd(pipe_fds[0]);
    CloseFd(pipe_fds[1]);
    return nb;
  }
  return std::unique_ptr<NetServer>(
      new NetServer(options, router, std::move(loop).value(), *listen_fd,
                    *port, pipe_fds[0], pipe_fds[1]));
}

NetServer::NetServer(const Options& options, serve::ModelRouter* router,
                     EventLoop loop, int listen_fd, uint16_t port,
                     int wake_rx, int wake_tx)
    : options_(options),
      router_(router),
      loop_(std::move(loop)),
      listen_fd_(listen_fd),
      port_(port),
      wake_rx_(wake_rx),
      wake_tx_(wake_tx) {
  THALI_CHECK_OK(loop_.Add(listen_fd_, /*want_write=*/false));
  THALI_CHECK_OK(loop_.Add(wake_rx_, /*want_write=*/false));
  loop_thread_ = std::thread([this] { LoopThread(); });
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  stop_.store(true, std::memory_order_release);
  // Wake the loop out of its idle sleep.
  const char byte = 'x';
  (void)!write(wake_tx_, &byte, 1);
  loop_thread_.join();
  for (auto& [fd, conn] : conns_) CloseFd(fd);
  conns_.clear();
  CloseFd(listen_fd_);
  CloseFd(wake_rx_);
  CloseFd(wake_tx_);
}

void NetServer::AcceptPending() {
  for (;;) {
    StatusOr<int> fd = AcceptConnection(listen_fd_);
    if (!fd.ok()) {
      if (fd.status().code() != StatusCode::kUnavailable) {
        THALI_LOG(Warning) << "accept failed: " << fd.status().ToString();
      }
      return;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // At the connection cap the newcomer is turned away outright —
      // admission control for sockets, mirroring queue backpressure.
      CloseFd(*fd);
      counters_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status added = loop_.Add(*fd, /*want_write=*/false);
    if (!added.ok()) {
      CloseFd(*fd);
      continue;
    }
    conns_.emplace(*fd, std::make_unique<Connection>(*fd));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::ReadFromConnection(Connection* conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(conn->fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      Status fed = conn->FeedBytes(std::span<const uint8_t>(
          buf, static_cast<size_t>(n)));
      if (!fed.ok()) return false;  // framing error: cut the peer off
      if (static_cast<size_t>(n) < sizeof(buf)) return true;
      continue;  // more may be buffered
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

std::string NetServer::BuildStatsJson() const {
  std::string json = "{\"router\": ";
  json += router_->StatsJson();
  json += StrFormat(
      ", \"net\": {\"backend\": \"%s\", \"connections\": %zu, "
      "\"connections_accepted\": %lld, \"connections_dropped\": %lld, "
      "\"frames_received\": %lld, \"detects\": %lld, \"detect_errors\": "
      "%lld, \"pings\": %lld, \"stats_requests\": %lld}}",
      loop_.backend() == EventLoop::Backend::kEpoll ? "epoll" : "poll",
      conns_.size(),
      static_cast<long long>(
          counters_.connections_accepted.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.connections_dropped.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.frames_received.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.detects.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.detect_errors.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.pings.load(std::memory_order_relaxed)),
      static_cast<long long>(
          counters_.stats_requests.load(std::memory_order_relaxed)));
  return json;
}

void NetServer::DispatchFrame(Connection* conn, const FrameHeader& header,
                              std::vector<uint8_t> payload) {
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
  switch (static_cast<Op>(header.op)) {
    case Op::kPing:
      counters_.pings.fetch_add(1, std::memory_order_relaxed);
      conn->EnqueueReady(EncodePingResponse(payload));
      return;
    case Op::kStats:
      counters_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      conn->EnqueueReady(
          EncodeStatsResponse(Status::OK(), BuildStatsJson()));
      return;
    case Op::kDetect: {
      counters_.detects.fetch_add(1, std::memory_order_relaxed);
      DetectRequest req;
      Status decoded = DecodeDetectRequest(payload, &req);
      if (!decoded.ok()) {
        counters_.detect_errors.fetch_add(1, std::memory_order_relaxed);
        conn->EnqueueReady(EncodeDetectResponse(decoded, {}));
        return;
      }
      StatusOr<serve::Server*> server = router_->Route(req.model_id);
      if (!server.ok()) {
        counters_.detect_errors.fetch_add(1, std::memory_order_relaxed);
        conn->EnqueueReady(EncodeDetectResponse(server.status(), {}));
        return;
      }
      serve::Server::SubmitOptions submit;
      submit.priority = req.priority;
      if (req.deadline_ms > 0) {
        submit.deadline = serve::ServeClock::now() +
                          std::chrono::milliseconds(req.deadline_ms);
      }
      auto future = (*server)->Submit(std::move(req.image), submit);
      if (!future.ok()) {
        // Shed / backpressure / shutdown: the rejection status goes back
        // on the wire immediately, preserving reply order.
        counters_.detect_errors.fetch_add(1, std::memory_order_relaxed);
        conn->EnqueueReady(EncodeDetectResponse(future.status(), {}));
        return;
      }
      conn->EnqueueFuture(Op::kDetect, std::move(future).value());
      return;
    }
  }
  conn->EnqueueReady(EncodeErrorResponse(
      static_cast<Op>(header.op),
      Status::Unimplemented(StrFormat("unknown op %u", header.op))));
}

void NetServer::CloseConnection(int fd) {
  loop_.Remove(fd);
  CloseFd(fd);
  conns_.erase(fd);
  counters_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::LoopThread() {
  std::vector<EventLoop::Event> events;
  std::vector<int> dead;
  while (!stop_.load(std::memory_order_acquire)) {
    bool any_pending = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn->HasPendingWork()) {
        any_pending = true;
        break;
      }
    }
    StatusOr<int> n =
        loop_.Wait(&events, any_pending ? kBusyTimeoutMs : kIdleTimeoutMs);
    if (!n.ok()) {
      THALI_LOG(Warning) << "event loop wait failed: "
                         << n.status().ToString();
      continue;
    }

    // Readable/writable/error per fd this tick.
    dead.clear();
    bool accept_ready = false;
    std::map<int, EventLoop::Event> by_fd;
    for (const EventLoop::Event& e : events) {
      if (e.fd == listen_fd_) {
        accept_ready = e.readable;
        continue;
      }
      if (e.fd == wake_rx_) {
        char drain[16];
        while (read(wake_rx_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      by_fd[e.fd] = e;
    }
    if (accept_ready) AcceptPending();

    // Service connections in rotating order: at most one dispatched
    // frame per connection per tick (per-client round-robin fairness).
    rr_order_.clear();
    for (const auto& [fd, conn] : conns_) rr_order_.push_back(fd);
    if (!rr_order_.empty()) {
      rr_next_ %= rr_order_.size();
      std::rotate(rr_order_.begin(),
                  rr_order_.begin() + static_cast<ptrdiff_t>(rr_next_),
                  rr_order_.end());
      ++rr_next_;
    }

    for (int fd : rr_order_) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      const auto ev = by_fd.find(fd);
      const bool readable = ev != by_fd.end() && ev->second.readable;
      const bool error = ev != by_fd.end() && ev->second.error;

      if (error) {
        dead.push_back(fd);
        continue;
      }
      if (readable && !ReadFromConnection(conn)) {
        dead.push_back(fd);
        continue;
      }
      // Dispatch at most one frame, and only while the connection is
      // under its in-flight cap (per-client backpressure).
      if (conn->pending_count() <
          static_cast<size_t>(options_.max_inflight_per_conn)) {
        FrameHeader header;
        std::vector<uint8_t> payload;
        if (conn->NextFrame(&header, &payload)) {
          DispatchFrame(conn, header, std::move(payload));
        }
      }
      // Move resolved replies into the write buffer and flush.
      conn->PumpPending();
      if (conn->wants_write()) {
        Status flushed = conn->FlushWrites();
        if (!flushed.ok() &&
            flushed.code() != StatusCode::kUnavailable) {
          dead.push_back(fd);
          continue;
        }
      }
      Status armed = loop_.SetWantWrite(fd, conn->wants_write());
      if (!armed.ok()) dead.push_back(fd);
    }
    for (int fd : dead) CloseConnection(fd);
  }
}

}  // namespace net
}  // namespace thali
