#include "net/event_loop.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <cstdlib>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "base/net_util.h"
#include "base/string_util.h"

namespace thali {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

bool ForcePollBackend() {
  const char* env = std::getenv("THALI_NET_POLL");
  return env != nullptr && env[0] == '1';
}

}  // namespace

StatusOr<EventLoop> EventLoop::Create() {
#ifdef __linux__
  if (!ForcePollBackend()) {
    const int efd = epoll_create1(0);
    if (efd >= 0) return EventLoop(Backend::kEpoll, efd);
    // Fall through to poll on any epoll failure.
  }
#endif
  return EventLoop(Backend::kPoll, -1);
}

EventLoop::EventLoop(EventLoop&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(other.epoll_fd_),
      want_write_(std::move(other.want_write_)) {
  other.epoll_fd_ = -1;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) CloseFd(epoll_fd_);
}

Status EventLoop::Add(int fd, bool want_write) {
  want_write_[fd] = want_write;
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      want_write_.erase(fd);
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  return Status::OK();
}

Status EventLoop::SetWantWrite(int fd, bool want_write) {
  auto it = want_write_.find(fd);
  if (it == want_write_.end()) {
    return Status::NotFound("fd not registered");
  }
  if (it->second == want_write) return Status::OK();
  it->second = want_write;
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (want_write_.erase(fd) == 0) return;
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

StatusOr<int> EventLoop::Wait(std::vector<Event>* out, int timeout_ms) {
  out->clear();
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int n;
    do {
      n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("epoll_wait");
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(want_write_.size());
  for (const auto& [fd, ww] : want_write_) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN | (ww ? POLLOUT : 0);
    pfds.push_back(p);
  }
  int n;
  do {
    n = poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("poll");
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(e);
  }
  return static_cast<int>(out->size());
}

}  // namespace net
}  // namespace thali
