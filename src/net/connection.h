#ifndef THALI_NET_CONNECTION_H_
#define THALI_NET_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "base/statusor.h"
#include "eval/detection.h"
#include "net/protocol.h"
#include "serve/server.h"

namespace thali {
namespace net {

// Per-client connection state: a FrameReader reassembling the inbound
// byte stream, an ordered pending-reply queue, and an outbound byte
// buffer with partial-write continuation. All methods run on the event
// loop thread — a Connection is single-threaded state; the only
// cross-thread touch is the serve-layer worker fulfilling a pending
// reply's future.
//
// Responses go out in request order (the protocol has no correlation
// ids): a DETECT reply whose future resolved early waits behind an
// older pending reply. PumpPending moves resolved head replies into the
// write buffer; the server then flushes as the socket allows.
class Connection {
 public:
  // One queued reply: either already encoded (PING, STATS, errors) or a
  // future from serve::Server::Submit that still has to resolve.
  struct PendingReply {
    bool ready = false;
    Op op = Op::kDetect;
    std::vector<uint8_t> encoded;  // valid when ready
    std::future<serve::Server::Result> future;  // valid when !ready
  };

  explicit Connection(int fd) : fd_(fd) {}

  int fd() const { return fd_; }

  // Feeds received bytes into the frame reassembler. A framing error is
  // sticky and means the connection must be closed.
  Status FeedBytes(std::span<const uint8_t> bytes) {
    return reader_.Feed(bytes);
  }

  // Pops the next complete inbound frame, if any.
  bool NextFrame(FrameHeader* header, std::vector<uint8_t>* payload) {
    return reader_.NextFrame(header, payload);
  }

  // Queues an already-encoded reply (keeps request order).
  void EnqueueReady(std::vector<uint8_t> frame);
  // Queues a reply that materializes when `future` resolves.
  void EnqueueFuture(Op op, std::future<serve::Server::Result> future);

  // Moves every resolved head-of-line reply into the write buffer.
  // Returns true if new bytes became writable.
  bool PumpPending();

  // True while any reply is queued or buffered (the event loop polls
  // futures only for connections that report true).
  bool HasPendingWork() const {
    return !pending_.empty() || !outbox_.empty();
  }
  size_t pending_count() const { return pending_.size(); }

  // Flushes the write buffer with non-blocking send(); returns
  // kUnavailable when the socket would block (re-arm write interest),
  // IOError on a dead peer. Clears flushed bytes.
  Status FlushWrites();

  bool wants_write() const { return !outbox_.empty(); }

 private:
  int fd_;
  FrameReader reader_;
  std::deque<PendingReply> pending_;
  std::vector<uint8_t> outbox_;
  size_t outbox_off_ = 0;  // bytes of outbox_ already sent
};

}  // namespace net
}  // namespace thali

#endif  // THALI_NET_CONNECTION_H_
