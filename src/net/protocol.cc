#include "net/protocol.h"

#include <algorithm>
#include <cstring>

#include "base/string_util.h"

namespace thali {
namespace net {

void AppendU8(std::vector<uint8_t>* buf, uint8_t v) { buf->push_back(v); }

void AppendU16(std::vector<uint8_t>* buf, uint16_t v) {
  buf->push_back(static_cast<uint8_t>(v & 0xff));
  buf->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendF32(std::vector<uint8_t>* buf, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(buf, bits);
}

void AppendBytes(std::vector<uint8_t>* buf, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf->insert(buf->end(), p, p + len);
}

Status PayloadReader::ReadBytes(void* out, size_t len) {
  if (remaining() < len) {
    return Status::Corruption("truncated payload");
  }
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status PayloadReader::ReadU8(uint8_t* v) { return ReadBytes(v, 1); }

Status PayloadReader::ReadU16(uint16_t* v) {
  uint8_t b[2];
  THALI_RETURN_IF_ERROR(ReadBytes(b, 2));
  *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
  return Status::OK();
}

Status PayloadReader::ReadU32(uint32_t* v) {
  uint8_t b[4];
  THALI_RETURN_IF_ERROR(ReadBytes(b, 4));
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return Status::OK();
}

Status PayloadReader::ReadF32(float* v) {
  uint32_t bits;
  THALI_RETURN_IF_ERROR(ReadU32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

// ----------------------------------------------------------- framing --

std::vector<uint8_t> EncodeFrame(Op op, std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendU32(&frame, kMagic);
  AppendU16(&frame, kProtocolVersion);
  AppendU16(&frame, static_cast<uint16_t>(op));
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendBytes(&frame, payload.data(), payload.size());
  return frame;
}

Status ParseHeader(std::span<const uint8_t> bytes, FrameHeader* header) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("header needs 12 bytes");
  }
  PayloadReader r(bytes.subspan(0, kHeaderBytes));
  THALI_RETURN_IF_ERROR(r.ReadU32(&header->magic));
  THALI_RETURN_IF_ERROR(r.ReadU16(&header->version));
  THALI_RETURN_IF_ERROR(r.ReadU16(&header->op));
  THALI_RETURN_IF_ERROR(r.ReadU32(&header->payload_len));
  if (header->magic != kMagic) {
    return Status::Corruption(
        StrFormat("bad magic 0x%08x (want 0x%08x)", header->magic, kMagic));
  }
  if (header->version != kProtocolVersion) {
    return Status::Unimplemented(
        StrFormat("protocol version %u not supported (want %u)",
                  header->version, kProtocolVersion));
  }
  if (header->payload_len > kMaxPayloadBytes) {
    return Status::ResourceExhausted(
        StrFormat("payload of %u bytes exceeds limit %u",
                  header->payload_len, kMaxPayloadBytes));
  }
  return Status::OK();
}

Status FrameReader::Feed(std::span<const uint8_t> bytes) {
  if (!error_.ok()) return error_;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  // Validate the header as soon as it is complete so a bad peer is cut
  // off before it streams an entire bogus payload.
  if (buf_.size() >= kHeaderBytes) {
    FrameHeader h;
    Status st = ParseHeader(buf_, &h);
    if (!st.ok()) error_ = st;
  }
  return error_;
}

bool FrameReader::NextFrame(FrameHeader* header, std::vector<uint8_t>* payload) {
  if (!error_.ok() || buf_.size() < kHeaderBytes) return false;
  FrameHeader h;
  Status st = ParseHeader(buf_, &h);
  if (!st.ok()) {
    error_ = st;
    return false;
  }
  const size_t total = kHeaderBytes + h.payload_len;
  if (buf_.size() < total) return false;
  *header = h;
  payload->assign(buf_.begin() + kHeaderBytes, buf_.begin() + total);
  buf_.erase(buf_.begin(), buf_.begin() + total);
  // The next frame's header (if buffered) gets validated eagerly too.
  if (buf_.size() >= kHeaderBytes) {
    FrameHeader next;
    Status nst = ParseHeader(buf_, &next);
    if (!nst.ok()) error_ = nst;
  }
  return true;
}

// ------------------------------------------------------------ detect --

std::vector<uint8_t> EncodeDetectRequest(const DetectRequest& req) {
  std::vector<uint8_t> payload;
  const Image& img = req.image;
  payload.reserve(16 + req.model_id.size() +
                  static_cast<size_t>(img.size()) * 4);
  AppendU8(&payload, req.priority == serve::Priority::kBatch ? 1 : 0);
  AppendU32(&payload, req.deadline_ms);
  AppendU8(&payload, static_cast<uint8_t>(req.model_id.size()));
  AppendBytes(&payload, req.model_id.data(), req.model_id.size());
  AppendU16(&payload, static_cast<uint16_t>(img.width()));
  AppendU16(&payload, static_cast<uint16_t>(img.height()));
  AppendU8(&payload, static_cast<uint8_t>(img.channels()));
  AppendBytes(&payload, img.data(), static_cast<size_t>(img.size()) * 4);
  return payload;
}

Status DecodeDetectRequest(std::span<const uint8_t> payload,
                           DetectRequest* req) {
  PayloadReader r(payload);
  uint8_t priority, model_len, channels;
  uint16_t width, height;
  THALI_RETURN_IF_ERROR(r.ReadU8(&priority));
  if (priority > 1) {
    return Status::InvalidArgument(
        StrFormat("bad priority byte %u", priority));
  }
  req->priority =
      priority == 1 ? serve::Priority::kBatch : serve::Priority::kInteractive;
  THALI_RETURN_IF_ERROR(r.ReadU32(&req->deadline_ms));
  THALI_RETURN_IF_ERROR(r.ReadU8(&model_len));
  req->model_id.resize(model_len);
  THALI_RETURN_IF_ERROR(r.ReadBytes(req->model_id.data(), model_len));
  THALI_RETURN_IF_ERROR(r.ReadU16(&width));
  THALI_RETURN_IF_ERROR(r.ReadU16(&height));
  THALI_RETURN_IF_ERROR(r.ReadU8(&channels));
  if (width == 0 || height == 0 || channels == 0 || channels > 4) {
    return Status::InvalidArgument(
        StrFormat("bad image geometry %ux%ux%u", width, height, channels));
  }
  const size_t pixel_bytes =
      static_cast<size_t>(width) * height * channels * 4;
  if (r.remaining() != pixel_bytes) {
    return Status::Corruption(
        StrFormat("pixel payload is %zu bytes, geometry needs %zu",
                  r.remaining(), pixel_bytes));
  }
  req->image = Image(width, height, channels);
  return r.ReadBytes(req->image.data(), pixel_bytes);
}

namespace {

void AppendStatusBlock(std::vector<uint8_t>* payload, const Status& status) {
  AppendU8(payload, static_cast<uint8_t>(status.code()));
  const std::string& msg = status.message();
  const uint16_t len =
      static_cast<uint16_t>(std::min<size_t>(msg.size(), 0xffff));
  AppendU16(payload, len);
  AppendBytes(payload, msg.data(), len);
}

Status ReadStatusBlock(PayloadReader* r, Status* status) {
  uint8_t code;
  uint16_t len;
  THALI_RETURN_IF_ERROR(r->ReadU8(&code));
  THALI_RETURN_IF_ERROR(r->ReadU16(&len));
  std::string msg(len, '\0');
  THALI_RETURN_IF_ERROR(r->ReadBytes(msg.data(), len));
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption(StrFormat("bad status code %u on wire", code));
  }
  *status = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeDetectResponse(
    const Status& status, std::span<const Detection> detections) {
  std::vector<uint8_t> payload;
  AppendStatusBlock(&payload, status);
  if (status.ok()) {
    AppendU32(&payload, static_cast<uint32_t>(detections.size()));
    for (const Detection& d : detections) {
      AppendU32(&payload, static_cast<uint32_t>(d.class_id));
      AppendF32(&payload, d.confidence);
      AppendF32(&payload, d.box.x);
      AppendF32(&payload, d.box.y);
      AppendF32(&payload, d.box.w);
      AppendF32(&payload, d.box.h);
    }
  }
  return EncodeFrame(Op::kDetect, payload);
}

Status DecodeDetectResponse(std::span<const uint8_t> payload, Status* status,
                            std::vector<Detection>* detections) {
  detections->clear();
  PayloadReader r(payload);
  THALI_RETURN_IF_ERROR(ReadStatusBlock(&r, status));
  if (!status->ok()) return Status::OK();
  uint32_t count;
  THALI_RETURN_IF_ERROR(r.ReadU32(&count));
  if (static_cast<size_t>(count) * 24 != r.remaining()) {
    return Status::Corruption("detection count disagrees with payload size");
  }
  detections->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Detection d;
    uint32_t class_id;
    THALI_RETURN_IF_ERROR(r.ReadU32(&class_id));
    d.class_id = static_cast<int>(class_id);
    THALI_RETURN_IF_ERROR(r.ReadF32(&d.confidence));
    THALI_RETURN_IF_ERROR(r.ReadF32(&d.box.x));
    THALI_RETURN_IF_ERROR(r.ReadF32(&d.box.y));
    THALI_RETURN_IF_ERROR(r.ReadF32(&d.box.w));
    THALI_RETURN_IF_ERROR(r.ReadF32(&d.box.h));
    detections->push_back(d);
  }
  return Status::OK();
}

// ------------------------------------------------------- ping / stats --

std::vector<uint8_t> EncodePingResponse(std::span<const uint8_t> echo) {
  std::vector<uint8_t> payload;
  AppendStatusBlock(&payload, Status::OK());
  AppendBytes(&payload, echo.data(), echo.size());
  return EncodeFrame(Op::kPing, payload);
}

std::vector<uint8_t> EncodeStatsResponse(const Status& status,
                                         const std::string& stats_json) {
  std::vector<uint8_t> payload;
  AppendStatusBlock(&payload, status);
  if (status.ok()) {
    AppendU32(&payload, static_cast<uint32_t>(stats_json.size()));
    AppendBytes(&payload, stats_json.data(), stats_json.size());
  }
  return EncodeFrame(Op::kStats, payload);
}

Status DecodeStatsResponse(std::span<const uint8_t> payload, Status* status,
                           std::string* stats_json) {
  stats_json->clear();
  PayloadReader r(payload);
  THALI_RETURN_IF_ERROR(ReadStatusBlock(&r, status));
  if (!status->ok()) return Status::OK();
  uint32_t len;
  THALI_RETURN_IF_ERROR(r.ReadU32(&len));
  if (len != r.remaining()) {
    return Status::Corruption("stats length disagrees with payload size");
  }
  stats_json->resize(len);
  return r.ReadBytes(stats_json->data(), len);
}

std::vector<uint8_t> EncodeErrorResponse(Op op, const Status& status) {
  // Status block only, echoing the request op — every response decoder
  // reads the status block first, so this shape answers any op.
  std::vector<uint8_t> payload;
  AppendStatusBlock(&payload, status);
  return EncodeFrame(op, payload);
}

}  // namespace net
}  // namespace thali
