#ifndef THALI_DATA_FOOD_CLASSES_H_
#define THALI_DATA_FOOD_CLASSES_H_

#include <string>
#include <vector>

#include "image/image.h"

namespace thali {

// How the renderer draws a dish. Each shape family has its own geometry
// and its own kind of intra-class variation (the paper's Fig. 4 point:
// e.g. a chapati appears full-open, half-folded or quarter-folded).
enum class DishShape {
  kFlatDisc,     // breads: chapati, aloo paratha, poori, naan (foldable)
  kMound,        // rice dishes: plain rice, biryani, khichdi, poha
  kBowlCurry,    // gravies served in a bowl: palak paneer, dal, sambhar...
  kChunks,       // grilled pieces: chicken tikka, paneer
  kBallsInBowl,  // syrupy sweets: rasgulla, gulab jamun
  kCrepe,        // dosa/uttapam: large thin disc or rolled cylinder
  kSteamedCakes, // idli / vada: 2-3 pale discs or rings
};

// Visual signature of a food class: everything the procedural renderer
// needs to synthesize instances with realistic intra-class variation.
// Deliberately-similar signatures (aloo paratha vs chapati) reproduce the
// paper's confusable pairs.
struct FoodSignature {
  std::string name;          // snake_case id ("aloo_paratha")
  std::string display_name;  // "Aloo Paratha"
  std::string hashtag;       // "#alooparatha" (Instagram simulation)
  DishShape shape = DishShape::kMound;
  Color base;                // dominant color
  Color accent;              // speckle/garnish color
  Color accent2;             // secondary garnish
  float speckle_density = 0.0f;  // 0..1, scales speckle count
  float color_jitter = 0.06f;    // per-instance hue/value variation
  float size_lo = 0.5f;          // dish diameter as fraction of image
  float size_hi = 0.9f;
  bool foldable = false;         // flat discs that can be folded
  bool in_bowl = false;          // always served in a bowl
  float kcal_per_serving = 200;  // for the calorie-estimation example
  // Instagram popularity (simulated posts count) driving class selection
  // in the Fig. 3 pipeline.
  long long popularity = 100000;
};

// The ten classes of IndianFood10, in the paper's Table I order:
// Aloo Paratha, Biryani, Chapati, Chicken Tikka, Khichdi, Omelette,
// Palak Paneer, Plain Rice, Poha, Rasgulla.
const std::vector<FoodSignature>& IndianFood10();

// The twenty classes of IndianFood20 (paper Table IV).
const std::vector<FoodSignature>& IndianFood20();

// Display names in class-id order (convenience for tables/plots).
std::vector<std::string> ClassDisplayNames(
    const std::vector<FoodSignature>& classes);

// Finds a class id by snake_case name; -1 when absent.
int FindClassByName(const std::vector<FoodSignature>& classes,
                    const std::string& name);

// The generic-object classes used to *pretrain* the backbone (the
// synthetic stand-in for MS-COCO): simple colored shapes that share no
// signature with the food classes.
const std::vector<FoodSignature>& PretrainObjects();

}  // namespace thali

#endif  // THALI_DATA_FOOD_CLASSES_H_
