#ifndef THALI_DATA_ANNOTATION_H_
#define THALI_DATA_ANNOTATION_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "nn/truth.h"

namespace thali {

// YOLO annotation text format — the format makesense.ai exported for the
// paper's dataset: one line per object,
//   <class_id> <cx> <cy> <w> <h>
// with coordinates normalized to [0,1] of the image.

// Serializes truths to annotation text.
std::string TruthsToYoloText(const std::vector<TruthBox>& truths);

// Parses annotation text; validates ranges (coordinates in [0,1],
// non-negative class).
StatusOr<std::vector<TruthBox>> YoloTextToTruths(const std::string& text);

// Writes/reads one image's annotation file.
Status WriteYoloAnnotation(const std::vector<TruthBox>& truths,
                           const std::string& path);
StatusOr<std::vector<TruthBox>> ReadYoloAnnotation(const std::string& path);

// Darknet dataset descriptor files:
//   <name>.names — one class name per line
//   <name>.data  — classes/train/valid/names key-value file
Status WriteNamesFile(const std::vector<std::string>& names,
                      const std::string& path);
StatusOr<std::vector<std::string>> ReadNamesFile(const std::string& path);

struct DataFileSpec {
  int classes = 0;
  std::string train_list;  // path to train.txt (one image path per line)
  std::string valid_list;
  std::string names_file;
};
Status WriteDataFile(const DataFileSpec& spec, const std::string& path);
StatusOr<DataFileSpec> ReadDataFile(const std::string& path);

}  // namespace thali

#endif  // THALI_DATA_ANNOTATION_H_
