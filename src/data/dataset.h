#ifndef THALI_DATA_DATASET_H_
#define THALI_DATA_DATASET_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "data/renderer.h"

namespace thali {

// Parameters of a generated dataset. The defaults mirror the published
// IndianFood10 statistics at a CPU-friendly scale:
//   * 7.3% of images are multi-dish platters (842 / 11,547)
//   * platters average 2.33 dishes (67% two-dish, 33% three-dish)
//   * 80/20 train/validation split
struct DatasetSpec {
  int num_images = 1000;
  int width = 96;
  int height = 96;
  float multi_dish_fraction = 0.073f;
  float three_dish_fraction = 0.33f;  // of platters; remainder are 2-dish
  float train_fraction = 0.8f;
  uint64_t seed = 20220131;  // deterministic generation
};

// Aggregate statistics (the numbers the paper reports in §IV-B).
struct DatasetStats {
  int num_images = 0;
  int num_platters = 0;
  int num_annotations = 0;
  float avg_dishes_per_platter = 0.0f;
  std::vector<int> per_class_boxes;
};

// An in-memory detection dataset: images plus YOLO truths, pre-split into
// train and validation indices. Generation is deterministic in the spec
// seed.
class FoodDataset {
 public:
  struct Item {
    Image image;
    std::vector<TruthBox> truths;
    bool is_platter = false;
  };

  // Renders `spec.num_images` scenes over `classes`, balanced across
  // classes for the single-dish majority.
  static FoodDataset Generate(const std::vector<FoodSignature>& classes,
                              const DatasetSpec& spec);

  int size() const { return static_cast<int>(items_.size()); }
  const Item& item(int i) const { return items_.at(static_cast<size_t>(i)); }
  const std::vector<int>& train_indices() const { return train_; }
  const std::vector<int>& val_indices() const { return val_; }
  int num_classes() const { return num_classes_; }
  const DatasetSpec& spec() const { return spec_; }

  DatasetStats ComputeStats() const;

  // Writes the dataset in Darknet on-disk layout:
  //   dir/images/000000.ppm, dir/labels/000000.txt,
  //   dir/train.txt, dir/valid.txt, dir/obj.names, dir/obj.data
  Status WriteTo(const std::string& dir,
                 const std::vector<std::string>& class_names) const;

  // Reads a dataset previously written by WriteTo.
  static StatusOr<FoodDataset> LoadFrom(const std::string& dir);

 private:
  std::vector<Item> items_;
  std::vector<int> train_;
  std::vector<int> val_;
  int num_classes_ = 0;
  DatasetSpec spec_;
};

}  // namespace thali

#endif  // THALI_DATA_DATASET_H_
