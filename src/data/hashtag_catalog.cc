#include "data/hashtag_catalog.h"

#include <algorithm>

#include "base/logging.h"
#include "base/string_util.h"

namespace thali {

namespace {

// >100 Indian dishes. Popularity counts are synthetic but ranked so the
// paper's selected classes rise to the top when sorted.
struct Seed {
  const char* dish;
  long long posts;
};

constexpr Seed kSeeds[] = {
    {"biryani", 5200000},   {"dosa", 2900000},
    {"omelette", 2500000},  {"paneer", 2100000},
    {"chicken_tikka", 1900000}, {"idli", 1800000},
    {"indian_bread", 1700000},  {"plain_rice", 1600000},
    {"dal", 1500000},       {"gulab_jamun", 1400000},
    {"poha", 1300000},      {"chole", 1200000},
    {"palak_paneer", 1100000},  {"sambhar", 980000},
    {"rasgulla", 950000},   {"aloo_paratha", 905000},
    {"poori", 890000},      {"chapati", 780000},
    {"dal_makhni", 760000}, {"vada", 720000},
    {"rajma", 680000},      {"khichdi", 420000},
    {"uttapam", 380000},    {"papad", 310000},
    // The long tail the authors filtered out.
    {"butter_chicken", 295000}, {"naan", 288000},
    {"samosa", 280000},     {"pav_bhaji", 272000},
    {"vada_pav", 265000},   {"pani_puri", 258000},
    {"bhel_puri", 250000},  {"dahi_vada", 243000},
    {"kadhi", 236000},      {"baingan_bharta", 229000},
    {"bhindi_masala", 222000},  {"aloo_gobi", 215000},
    {"malai_kofta", 208000},    {"navratan_korma", 201000},
    {"shahi_paneer", 195000},   {"kadai_paneer", 189000},
    {"matar_paneer", 183000},   {"paneer_butter_masala", 177000},
    {"dum_aloo", 171000},   {"aloo_matar", 165000},
    {"gajar_halwa", 159000},    {"kheer", 154000},
    {"jalebi", 149000},     {"barfi", 144000},
    {"laddu", 139000},      {"soan_papdi", 134000},
    {"rasmalai", 129000},   {"kulfi", 124000},
    {"falooda", 119000},    {"lassi", 115000},
    {"masala_chai", 111000},    {"filter_coffee", 107000},
    {"upma", 103000},       {"sheera", 99000},
    {"pongal", 95000},      {"medu_vada", 91000},
    {"rava_dosa", 88000},   {"masala_dosa", 85000},
    {"mysore_pak", 82000},  {"bisi_bele_bath", 79000},
    {"lemon_rice", 76000},  {"curd_rice", 73000},
    {"tamarind_rice", 70000},   {"jeera_rice", 67000},
    {"veg_pulao", 64000},   {"kashmiri_pulao", 61000},
    {"haleem", 59000},      {"nihari", 57000},
    {"korma", 55000},       {"rogan_josh", 53000},
    {"vindaloo", 51000},    {"xacuti", 49000},
    {"fish_curry", 47000},  {"prawn_masala", 45000},
    {"chicken_65", 43000},  {"chicken_chettinad", 41000},
    {"tandoori_chicken", 39000}, {"seekh_kebab", 37000},
    {"shami_kebab", 35000}, {"galouti_kebab", 34000},
    {"hara_bhara_kebab", 33000}, {"dhokla", 32000},
    {"khandvi", 31000},     {"thepla", 30000},
    {"undhiyu", 29000},     {"fafda", 28000},
    {"khakhra", 27000},     {"handvo", 26000},
    {"misal_pav", 25000},   {"sabudana_khichdi", 24000},
    {"poha_jalebi", 23000}, {"dal_baati", 22000},
    {"gatte_ki_sabzi", 21000},  {"ker_sangri", 20000},
    {"laal_maas", 19000},   {"litti_chokha", 18000},
    {"sattu_paratha", 17000},   {"chana_ghugni", 16000},
    {"momos", 15000},       {"thukpa", 14000},
    {"sandesh", 13000},     {"mishti_doi", 12000},
    {"rasam", 11000},       {"avial", 10000},
    {"puttu", 9000},        {"appam", 8000},
};

std::string MakeHashtag(const std::string& dish) {
  std::string tag = "#";
  for (char c : dish) {
    if (c != '_') tag += c;
  }
  return tag;
}

}  // namespace

HashtagCatalog HashtagCatalog::BuildIndianFoodCatalog() {
  HashtagCatalog cat;
  for (const Seed& s : kSeeds) {
    cat.entries_.push_back({s.dish, MakeHashtag(s.dish), s.posts});
  }
  std::stable_sort(cat.entries_.begin(), cat.entries_.end(),
                   [](const HashtagEntry& a, const HashtagEntry& b) {
                     return a.posts > b.posts;
                   });
  return cat;
}

std::vector<HashtagEntry> HashtagCatalog::TopK(int k) const {
  THALI_CHECK_GE(k, 0);
  std::vector<HashtagEntry> out;
  for (int i = 0; i < k && i < size(); ++i) {
    out.push_back(entries_[static_cast<size_t>(i)]);
  }
  return out;
}

const HashtagEntry* HashtagCatalog::Find(const std::string& dish) const {
  for (const HashtagEntry& e : entries_) {
    if (e.dish == dish) return &e;
  }
  return nullptr;
}

std::vector<ScrapedPost> HashtagCatalog::Scrape(const std::string& hashtag,
                                                int count, Rng& rng) const {
  std::vector<ScrapedPost> posts;
  posts.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ScrapedPost p;
    p.hashtag = hashtag;
    const uint64_t id = rng.NextU64() & 0xffffffffffULL;
    p.url = StrFormat("https://instagram.example/p/%010llx/",
                      static_cast<unsigned long long>(id));
    p.image_seed = rng.NextU64();
    posts.push_back(std::move(p));
  }
  return posts;
}

}  // namespace thali
