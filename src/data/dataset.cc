#include "data/dataset.h"

#include <algorithm>

#include "base/file_util.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "data/annotation.h"
#include "image/image_io.h"

namespace thali {

FoodDataset FoodDataset::Generate(const std::vector<FoodSignature>& classes,
                                  const DatasetSpec& spec) {
  THALI_CHECK_GT(spec.num_images, 0);
  Rng rng(spec.seed);
  PlatterRenderer::Options ropts;
  ropts.width = spec.width;
  ropts.height = spec.height;
  PlatterRenderer renderer(classes, ropts);

  FoodDataset ds;
  ds.spec_ = spec;
  ds.num_classes_ = static_cast<int>(classes.size());
  ds.items_.reserve(static_cast<size_t>(spec.num_images));

  const int num_platters =
      static_cast<int>(spec.num_images * spec.multi_dish_fraction + 0.5f);

  // Each image renders from its own Rng stream, forked sequentially from
  // the master seed, so the images can render in parallel while the
  // dataset stays a pure function of the seed at any parallelism level.
  std::vector<Rng> image_rngs;
  image_rngs.reserve(static_cast<size_t>(spec.num_images));
  for (int i = 0; i < spec.num_images; ++i) image_rngs.push_back(rng.Fork());

  ds.items_.resize(static_cast<size_t>(spec.num_images));
  ParallelFor(0, spec.num_images, 1, [&](int64_t i0, int64_t i1, int) {
    for (int64_t i = i0; i < i1; ++i) {
      Rng& r = image_rngs[static_cast<size_t>(i)];
      Item& item = ds.items_[static_cast<size_t>(i)];
      if (i < num_platters) {
        const int dishes = r.NextBool(spec.three_dish_fraction) ? 3 : 2;
        RenderedScene s = renderer.RenderRandomPlatter(dishes, r);
        item.image = std::move(s.image);
        item.truths = std::move(s.truths);
        item.is_platter = true;
      } else {
        // Round-robin classes for a balanced single-dish majority.
        const int cls =
            static_cast<int>(i - num_platters) % ds.num_classes_;
        RenderedScene s = renderer.RenderSingleDish(cls, r);
        item.image = std::move(s.image);
        item.truths = std::move(s.truths);
      }
    }
  });

  // Shuffled 80/20 split, deterministic in the seed.
  std::vector<int> order(static_cast<size_t>(spec.num_images));
  for (int i = 0; i < spec.num_images; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);
  const int n_train = static_cast<int>(spec.num_images * spec.train_fraction);
  ds.train_.assign(order.begin(), order.begin() + n_train);
  ds.val_.assign(order.begin() + n_train, order.end());
  return ds;
}

DatasetStats FoodDataset::ComputeStats() const {
  DatasetStats st;
  st.num_images = size();
  st.per_class_boxes.assign(static_cast<size_t>(num_classes_), 0);
  int platter_dishes = 0;
  for (const Item& it : items_) {
    st.num_annotations += static_cast<int>(it.truths.size());
    if (it.is_platter) {
      ++st.num_platters;
      platter_dishes += static_cast<int>(it.truths.size());
    }
    for (const TruthBox& t : it.truths) {
      if (t.class_id >= 0 && t.class_id < num_classes_) {
        ++st.per_class_boxes[static_cast<size_t>(t.class_id)];
      }
    }
  }
  st.avg_dishes_per_platter =
      st.num_platters > 0 ? static_cast<float>(platter_dishes) /
                                static_cast<float>(st.num_platters)
                          : 0.0f;
  return st;
}

Status FoodDataset::WriteTo(const std::string& dir,
                            const std::vector<std::string>& class_names) const {
  THALI_RETURN_IF_ERROR(MakeDirs(JoinPath(dir, "images")));
  THALI_RETURN_IF_ERROR(MakeDirs(JoinPath(dir, "labels")));

  std::vector<std::string> image_paths(items_.size());
  for (size_t i = 0; i < items_.size(); ++i) {
    const std::string stem = StrFormat("%06zu", i);
    image_paths[i] = JoinPath(dir, "images/" + stem + ".ppm");
    THALI_RETURN_IF_ERROR(WritePpm(items_[i].image, image_paths[i]));
    THALI_RETURN_IF_ERROR(WriteYoloAnnotation(
        items_[i].truths, JoinPath(dir, "labels/" + stem + ".txt")));
  }

  auto write_list = [&](const std::vector<int>& idx,
                        const std::string& path) -> Status {
    std::string out;
    for (int i : idx) {
      out += image_paths[static_cast<size_t>(i)];
      out += '\n';
    }
    return WriteStringToFile(path, out);
  };
  THALI_RETURN_IF_ERROR(write_list(train_, JoinPath(dir, "train.txt")));
  THALI_RETURN_IF_ERROR(write_list(val_, JoinPath(dir, "valid.txt")));
  THALI_RETURN_IF_ERROR(
      WriteNamesFile(class_names, JoinPath(dir, "obj.names")));
  DataFileSpec dspec;
  dspec.classes = num_classes_;
  dspec.train_list = JoinPath(dir, "train.txt");
  dspec.valid_list = JoinPath(dir, "valid.txt");
  dspec.names_file = JoinPath(dir, "obj.names");
  return WriteDataFile(dspec, JoinPath(dir, "obj.data"));
}

StatusOr<FoodDataset> FoodDataset::LoadFrom(const std::string& dir) {
  THALI_ASSIGN_OR_RETURN(DataFileSpec dspec,
                         ReadDataFile(JoinPath(dir, "obj.data")));
  FoodDataset ds;
  ds.num_classes_ = dspec.classes;

  THALI_ASSIGN_OR_RETURN(std::vector<std::string> train_paths,
                         ReadLines(dspec.train_list));
  THALI_ASSIGN_OR_RETURN(std::vector<std::string> val_paths,
                         ReadLines(dspec.valid_list));

  auto load_split = [&](const std::vector<std::string>& paths,
                        std::vector<int>& indices) -> Status {
    for (const std::string& img_path : paths) {
      Item item;
      THALI_ASSIGN_OR_RETURN(item.image, ReadPpm(img_path));
      // images/NNN.ppm -> labels/NNN.txt
      std::string label_path = img_path;
      const size_t pos = label_path.rfind("images/");
      if (pos == std::string::npos) {
        return Status::Corruption("unexpected image path: " + img_path);
      }
      label_path.replace(pos, 7, "labels/");
      label_path.replace(label_path.size() - 4, 4, ".txt");
      THALI_ASSIGN_OR_RETURN(item.truths, ReadYoloAnnotation(label_path));
      item.is_platter = item.truths.size() > 1;
      indices.push_back(static_cast<int>(ds.items_.size()));
      ds.items_.push_back(std::move(item));
    }
    return Status::OK();
  };
  THALI_RETURN_IF_ERROR(load_split(train_paths, ds.train_));
  THALI_RETURN_IF_ERROR(load_split(val_paths, ds.val_));
  if (!ds.items_.empty()) {
    ds.spec_.width = ds.items_[0].image.width();
    ds.spec_.height = ds.items_[0].image.height();
    ds.spec_.num_images = static_cast<int>(ds.items_.size());
  }
  return ds;
}

}  // namespace thali
