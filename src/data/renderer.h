#ifndef THALI_DATA_RENDERER_H_
#define THALI_DATA_RENDERER_H_

#include <vector>

#include "base/rng.h"
#include "data/food_classes.h"
#include "image/image.h"
#include "nn/truth.h"

namespace thali {

// A rendered image with its ground-truth dish boxes (normalized [0,1]).
struct RenderedScene {
  Image image;
  std::vector<TruthBox> truths;
  bool is_platter = false;  // multi-dish (thali) image
};

// Procedural Indian-platter renderer: the synthetic stand-in for the
// paper's Instagram-scraped photographs. Every visual property is sampled
// per instance from the class signature (size, orientation, fold state,
// garnish, lighting, background), giving the high intra-class variation
// and non-distinct boundaries that motivate the paper.
class PlatterRenderer {
 public:
  struct Options {
    int width = 96;
    int height = 96;
    // Probability that a single-dish image shows the dish on a plate.
    float plate_probability = 0.6f;
    // Background/lighting realism knobs.
    float noise_stddev = 0.02f;
  };

  PlatterRenderer(const std::vector<FoodSignature>& classes,
                  const Options& options);

  // One image of a single dish of `class_id` (the dominant dataset mode:
  // ~93% of the paper's images are single-dish).
  RenderedScene RenderSingleDish(int class_id, Rng& rng) const;

  // A thali: `class_ids.size()` dishes on one shared platter, with
  // adjacent (non-distinct) boundaries.
  RenderedScene RenderPlatter(const std::vector<int>& class_ids,
                              Rng& rng) const;

  // Platter with `num_dishes` distinct random classes.
  RenderedScene RenderRandomPlatter(int num_dishes, Rng& rng) const;

  const std::vector<FoodSignature>& classes() const { return classes_; }
  const Options& options() const { return opts_; }

 private:
  // Draws one dish centered at (cx, cy) with nominal radius r (pixels);
  // returns the tight pixel-space bounding box of what was drawn.
  Box DrawDish(Image& img, const FoodSignature& sig, float cx, float cy,
               float r, Rng& rng) const;

  void DrawBackground(Image& img, Rng& rng) const;
  void FinishScene(Image& img, Rng& rng) const;

  std::vector<FoodSignature> classes_;
  Options opts_;
};

}  // namespace thali

#endif  // THALI_DATA_RENDERER_H_
