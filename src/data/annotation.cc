#include "data/annotation.h"

#include "base/file_util.h"
#include "base/string_util.h"

namespace thali {

std::string TruthsToYoloText(const std::vector<TruthBox>& truths) {
  std::string out;
  for (const TruthBox& t : truths) {
    out += StrFormat("%d %.6f %.6f %.6f %.6f\n", t.class_id, t.box.x, t.box.y,
                     t.box.w, t.box.h);
  }
  return out;
}

StatusOr<std::vector<TruthBox>> YoloTextToTruths(const std::string& text) {
  std::vector<TruthBox> out;
  int line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 5) {
      return Status::Corruption(
          StrFormat("annotation line %d: want 5 fields, got %zu", line_no,
                    parts.size()));
    }
    TruthBox t;
    THALI_ASSIGN_OR_RETURN(t.class_id, ParseInt(parts[0]));
    THALI_ASSIGN_OR_RETURN(t.box.x, ParseFloat(parts[1]));
    THALI_ASSIGN_OR_RETURN(t.box.y, ParseFloat(parts[2]));
    THALI_ASSIGN_OR_RETURN(t.box.w, ParseFloat(parts[3]));
    THALI_ASSIGN_OR_RETURN(t.box.h, ParseFloat(parts[4]));
    if (t.class_id < 0) {
      return Status::Corruption(
          StrFormat("annotation line %d: negative class", line_no));
    }
    auto in01 = [](float v) { return v >= 0.0f && v <= 1.0f; };
    if (!in01(t.box.x) || !in01(t.box.y) || !in01(t.box.w) || !in01(t.box.h)) {
      return Status::Corruption(
          StrFormat("annotation line %d: coordinate out of [0,1]", line_no));
    }
    out.push_back(t);
  }
  return out;
}

Status WriteYoloAnnotation(const std::vector<TruthBox>& truths,
                           const std::string& path) {
  return WriteStringToFile(path, TruthsToYoloText(truths));
}

StatusOr<std::vector<TruthBox>> ReadYoloAnnotation(const std::string& path) {
  THALI_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return YoloTextToTruths(text);
}

Status WriteNamesFile(const std::vector<std::string>& names,
                      const std::string& path) {
  std::string out;
  for (const std::string& n : names) {
    out += n;
    out += '\n';
  }
  return WriteStringToFile(path, out);
}

StatusOr<std::vector<std::string>> ReadNamesFile(const std::string& path) {
  return ReadLines(path);
}

Status WriteDataFile(const DataFileSpec& spec, const std::string& path) {
  std::string out;
  out += StrFormat("classes=%d\n", spec.classes);
  out += "train=" + spec.train_list + "\n";
  out += "valid=" + spec.valid_list + "\n";
  out += "names=" + spec.names_file + "\n";
  return WriteStringToFile(path, out);
}

StatusOr<DataFileSpec> ReadDataFile(const std::string& path) {
  THALI_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  DataFileSpec spec;
  for (const std::string& line : lines) {
    if (StripWhitespace(line).empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("bad .data line: " + line);
    }
    const std::string key(StripWhitespace(line.substr(0, eq)));
    const std::string value(StripWhitespace(line.substr(eq + 1)));
    if (key == "classes") {
      THALI_ASSIGN_OR_RETURN(spec.classes, ParseInt(value));
    } else if (key == "train") {
      spec.train_list = value;
    } else if (key == "valid") {
      spec.valid_list = value;
    } else if (key == "names") {
      spec.names_file = value;
    }
  }
  return spec;
}

}  // namespace thali
