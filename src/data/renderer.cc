#include "data/renderer.h"

#include <algorithm>
#include <cmath>

#include "image/draw.h"

namespace thali {

namespace {

constexpr float kTau = 6.28318530718f;

// Per-instance color variation: shifts each channel by the class's
// color_jitter and a shared brightness factor.
Color JitterColor(const Color& c, float jitter, Rng& rng, float brightness) {
  auto j = [&](float v) {
    return std::clamp(v * brightness + rng.NextFloat(-jitter, jitter), 0.0f,
                      1.0f);
  };
  return Color{j(c.r), j(c.g), j(c.b)};
}

Color Darken(const Color& c, float f) {
  return Color{c.r * f, c.g * f, c.b * f};
}

// Tight bbox of an ellipse (rotation conservative: uses max radius).
Box EllipseBox(float cx, float cy, float rx, float ry, float angle) {
  const float ca = std::fabs(std::cos(angle));
  const float sa = std::fabs(std::sin(angle));
  const float ex = rx * ca + ry * sa;
  const float ey = rx * sa + ry * ca;
  return BoxFromCorners(cx - ex, cy - ey, cx + ex, cy + ey);
}

Box UnionBox(const Box& a, const Box& b) {
  if (a.w <= 0 || a.h <= 0) return b;
  if (b.w <= 0 || b.h <= 0) return a;
  return BoxFromCorners(std::min(a.Left(), b.Left()),
                        std::min(a.Top(), b.Top()),
                        std::max(a.Right(), b.Right()),
                        std::max(a.Bottom(), b.Bottom()));
}

// Bbox of a wedge (folded bread) by sampling its arc.
Box WedgeBox(float cx, float cy, float rx, float ry, float rot, float a0,
             float a1) {
  float min_x = cx, max_x = cx, min_y = cy, max_y = cy;
  const float cr = std::cos(rot);
  const float sr = std::sin(rot);
  for (int i = 0; i <= 32; ++i) {
    const float t = a0 + (a1 - a0) * i / 32.0f;
    const float u = rx * std::cos(t);
    const float v = ry * std::sin(t);
    const float px = cx + u * cr - v * sr;
    const float py = cy + u * sr + v * cr;
    min_x = std::min(min_x, px);
    max_x = std::max(max_x, px);
    min_y = std::min(min_y, py);
    max_y = std::max(max_y, py);
  }
  return BoxFromCorners(min_x, min_y, max_x, max_y);
}

}  // namespace

PlatterRenderer::PlatterRenderer(const std::vector<FoodSignature>& classes,
                                 const Options& options)
    : classes_(classes), opts_(options) {
  THALI_CHECK(!classes_.empty());
}

void PlatterRenderer::DrawBackground(Image& img, Rng& rng) const {
  // Table surfaces seen in food photos: wood, dark slate, colored cloth,
  // pale marble.
  static const Color kTables[] = {
      {0.45f, 0.30f, 0.18f},  // wood
      {0.25f, 0.24f, 0.26f},  // slate
      {0.55f, 0.16f, 0.16f},  // red cloth
      {0.18f, 0.28f, 0.42f},  // blue cloth
      {0.82f, 0.80f, 0.76f},  // marble
      {0.35f, 0.42f, 0.28f},  // green cloth
  };
  const Color base = kTables[rng.NextU64Below(6)];
  const float b = rng.NextFloat(0.8f, 1.15f);
  img.FillColor(Color{std::clamp(base.r * b, 0.0f, 1.0f),
                      std::clamp(base.g * b, 0.0f, 1.0f),
                      std::clamp(base.b * b, 0.0f, 1.0f)});
  // Texture: sparse darker streaks.
  const int streaks = rng.NextInt(4, 10);
  for (int i = 0; i < streaks; ++i) {
    const float y = rng.NextFloat(0, static_cast<float>(img.height()));
    DrawLine(img, 0, y, static_cast<float>(img.width()),
             y + rng.NextFloat(-6, 6), Darken(base, rng.NextFloat(0.7f, 0.9f)));
  }
}

void PlatterRenderer::FinishScene(Image& img, Rng& rng) const {
  ApplyVignette(img, rng.NextFloat(0.3f, 0.7f), rng.NextFloat(0.3f, 0.7f),
                rng.NextFloat(0.7f, 0.95f));
  AddGaussianNoise(img, opts_.noise_stddev, rng);
}

Box PlatterRenderer::DrawDish(Image& img, const FoodSignature& sig, float cx,
                              float cy, float r, Rng& rng) const {
  const float brightness = rng.NextFloat(0.85f, 1.12f);
  const Color base = JitterColor(sig.base, sig.color_jitter, rng, brightness);
  const Color accent =
      JitterColor(sig.accent, sig.color_jitter, rng, brightness);
  const Color accent2 =
      JitterColor(sig.accent2, sig.color_jitter, rng, brightness);
  const float rot = rng.NextFloat(0.0f, kTau);
  const int speckles =
      static_cast<int>(sig.speckle_density * r * rng.NextFloat(0.8f, 1.6f));

  switch (sig.shape) {
    case DishShape::kFlatDisc: {
      const float ry = r * rng.NextFloat(0.82f, 1.0f);
      // Fold state: full / half / quarter (Fig. 4 orientations).
      int fold = 0;
      if (sig.foldable) fold = rng.NextInt(0, 2);
      Box bbox;
      if (fold == 0) {
        DrawEllipse(img, cx, cy, r, ry, rot, base, 1.5f);
        // Browning ring + char marks.
        DrawRing(img, cx, cy, r * 0.97f, ry * 0.97f, rot, 0.86f,
                 Darken(base, 0.85f));
        bbox = EllipseBox(cx, cy, r, ry, rot);
      } else {
        const float span = fold == 1 ? kTau / 2 : kTau / 4;
        DrawWedge(img, cx, cy, r, ry, rot, 0.0f, span, base, 1.5f);
        // Fold seam highlight.
        DrawWedge(img, cx, cy, r * 0.98f, ry * 0.98f, rot, 0.0f, span * 0.1f,
                  Darken(base, 0.9f));
        bbox = WedgeBox(cx, cy, r, ry, rot, 0.0f, span);
      }
      SpeckleEllipse(img, cx, cy, r * 0.8f, ry * 0.8f, rot, accent,
                     std::max(2, speckles), r * 0.06f, rng);
      if (rng.NextBool(0.4f)) {
        SpeckleEllipse(img, cx, cy, r * 0.6f, ry * 0.6f, rot, accent2,
                       std::max(1, speckles / 3), r * 0.04f, rng);
      }
      return bbox;
    }

    case DishShape::kMound: {
      const float ry = r * rng.NextFloat(0.7f, 0.95f);
      // Rough mound: main ellipse plus 2-3 offset lobes.
      DrawEllipse(img, cx, cy, r, ry, rot, base, 2.0f);
      const int lobes = rng.NextInt(2, 4);
      for (int i = 0; i < lobes; ++i) {
        const float lx = cx + rng.NextFloat(-0.3f, 0.3f) * r;
        const float ly = cy + rng.NextFloat(-0.3f, 0.3f) * ry;
        DrawEllipse(img, lx, ly, r * rng.NextFloat(0.35f, 0.55f),
                    ry * rng.NextFloat(0.3f, 0.5f), rng.NextFloat(0, kTau),
                    JitterColor(base, 0.04f, rng, 1.04f), 2.0f);
      }
      SpeckleEllipse(img, cx, cy, r * 0.85f, ry * 0.85f, rot, accent,
                     std::max(3, speckles), r * 0.05f, rng);
      SpeckleEllipse(img, cx, cy, r * 0.7f, ry * 0.7f, rot, accent2,
                     std::max(2, speckles / 2), r * 0.04f, rng);
      return EllipseBox(cx, cy, r * 1.05f, ry * 1.05f, rot);
    }

    case DishShape::kBowlCurry: {
      // Bowl rim, then curry fill, then toppings.
      const Color bowl = rng.NextBool(0.5f) ? Color{0.75f, 0.75f, 0.78f}
                                            : Color{0.30f, 0.20f, 0.14f};
      DrawEllipse(img, cx, cy, r, r * 0.92f, rot, bowl, 1.5f);
      DrawEllipse(img, cx, cy, r * 0.82f, r * 0.75f, rot, base, 1.0f);
      // Gravy swirl.
      DrawRing(img, cx, cy, r * 0.6f, r * 0.55f, rot, 0.7f,
               Darken(base, 0.85f));
      SpeckleEllipse(img, cx, cy, r * 0.6f, r * 0.55f, rot, accent,
                     std::max(3, speckles), r * 0.09f, rng);
      if (rng.NextBool(0.6f)) {
        SpeckleEllipse(img, cx, cy, r * 0.5f, r * 0.45f, rot, accent2,
                       std::max(1, speckles / 3), r * 0.05f, rng);
      }
      return EllipseBox(cx, cy, r, r * 0.92f, rot);
    }

    case DishShape::kChunks: {
      // Cluster of grilled pieces; union bbox.
      const int n = rng.NextInt(3, 6);
      Box bbox;
      for (int i = 0; i < n; ++i) {
        const float a = kTau * i / n + rng.NextFloat(-0.4f, 0.4f);
        const float d = rng.NextFloat(0.15f, 0.55f) * r;
        const float px = cx + d * std::cos(a);
        const float py = cy + d * std::sin(a);
        const float cr = r * rng.NextFloat(0.22f, 0.34f);
        const float cry = cr * rng.NextFloat(0.7f, 1.0f);
        const float crot = rng.NextFloat(0, kTau);
        DrawEllipse(img, px, py, cr, cry, crot,
                    JitterColor(base, 0.06f, rng, rng.NextFloat(0.85f, 1.1f)),
                    1.0f);
        // Char edge.
        DrawRing(img, px, py, cr, cry, crot, 0.75f, accent, 0.8f);
        bbox = UnionBox(bbox, EllipseBox(px, py, cr, cry, crot));
      }
      // Garnish (onion/capsicum bits).
      SpeckleEllipse(img, cx, cy, r * 0.6f, r * 0.6f, 0, accent2,
                     std::max(2, speckles / 2), r * 0.05f, rng);
      return bbox;
    }

    case DishShape::kBallsInBowl: {
      const Color bowl = rng.NextBool(0.5f) ? Color{0.82f, 0.82f, 0.86f}
                                            : Color{0.55f, 0.40f, 0.55f};
      DrawEllipse(img, cx, cy, r, r * 0.9f, rot, bowl, 1.5f);
      // Syrup.
      DrawEllipse(img, cx, cy, r * 0.82f, r * 0.72f, rot,
                  Darken(accent, 0.95f), 1.0f);
      const int n = rng.NextInt(2, 4);
      for (int i = 0; i < n; ++i) {
        const float a = kTau * i / n + rng.NextFloat(-0.3f, 0.3f);
        const float d = rng.NextFloat(0.15f, 0.4f) * r;
        const float px = cx + d * std::cos(a);
        const float py = cy + d * std::sin(a) * 0.8f;
        const float br = r * rng.NextFloat(0.22f, 0.3f);
        DrawEllipse(img, px, py, br, br * 0.95f, 0, base, 1.0f);
        // Highlight.
        DrawEllipse(img, px - br * 0.25f, py - br * 0.25f, br * 0.3f,
                    br * 0.25f, 0, accent2, 0.8f);
      }
      return EllipseBox(cx, cy, r, r * 0.9f, rot);
    }

    case DishShape::kCrepe: {
      // Variant: open disc (uttapam-like) or rolled cylinder (dosa roll).
      if (rng.NextBool(0.5f)) {
        const float ry = r * rng.NextFloat(0.8f, 0.95f);
        DrawEllipse(img, cx, cy, r, ry, rot, base, 1.5f);
        DrawRing(img, cx, cy, r * 0.98f, ry * 0.98f, rot, 0.88f,
                 Darken(base, 0.8f));
        SpeckleEllipse(img, cx, cy, r * 0.75f, ry * 0.75f, rot, accent,
                       std::max(3, speckles), r * 0.08f, rng);
        SpeckleEllipse(img, cx, cy, r * 0.6f, ry * 0.6f, rot, accent2,
                       std::max(2, speckles / 2), r * 0.06f, rng);
        return EllipseBox(cx, cy, r, ry, rot);
      }
      const float ry = r * rng.NextFloat(0.28f, 0.4f);
      DrawEllipse(img, cx, cy, r, ry, rot, base, 1.5f);
      DrawRing(img, cx, cy, r * 0.97f, ry * 0.95f, rot, 0.7f,
               Darken(base, 0.88f));
      SpeckleEllipse(img, cx, cy, r * 0.8f, ry * 0.7f, rot, accent,
                     std::max(2, speckles / 2), r * 0.04f, rng);
      return EllipseBox(cx, cy, r, ry, rot);
    }

    case DishShape::kSteamedCakes: {
      // 2-3 pale cakes (idli) or rings (vada).
      const bool ring = rng.NextBool(0.45f);
      const int n = rng.NextInt(2, 3);
      Box bbox;
      for (int i = 0; i < n; ++i) {
        const float a = kTau * i / n + rng.NextFloat(-0.3f, 0.3f);
        const float d = rng.NextFloat(0.3f, 0.5f) * r;
        const float px = cx + d * std::cos(a);
        const float py = cy + d * std::sin(a) * 0.85f;
        const float cr = r * rng.NextFloat(0.35f, 0.45f);
        if (ring) {
          DrawRing(img, px, py, cr, cr * 0.9f, 0, 0.45f, base, 1.0f);
        } else {
          DrawEllipse(img, px, py, cr, cr * 0.85f, 0, base, 1.2f);
          DrawRing(img, px, py, cr * 0.95f, cr * 0.8f, 0, 0.8f, accent, 0.8f);
        }
        bbox = UnionBox(bbox, EllipseBox(px, py, cr, cr * 0.9f, 0));
      }
      SpeckleEllipse(img, cx, cy, r * 0.5f, r * 0.4f, 0, accent2,
                     std::max(1, speckles / 2), r * 0.04f, rng);
      return bbox;
    }
  }
  return Box{};
}

RenderedScene PlatterRenderer::RenderSingleDish(int class_id, Rng& rng) const {
  THALI_CHECK_GE(class_id, 0);
  THALI_CHECK_LT(class_id, static_cast<int>(classes_.size()));
  const FoodSignature& sig = classes_[static_cast<size_t>(class_id)];

  RenderedScene scene;
  scene.image = Image(opts_.width, opts_.height, 3);
  DrawBackground(scene.image, rng);

  const float w = static_cast<float>(opts_.width);
  const float h = static_cast<float>(opts_.height);
  const float frac = rng.NextFloat(sig.size_lo, sig.size_hi);
  const float r = 0.5f * frac * std::min(w, h);
  const float cx = rng.NextFloat(r * 0.9f, w - r * 0.9f);
  const float cy = rng.NextFloat(r * 0.9f, h - r * 0.9f);

  // A plate under the dish (unless the class is always bowl-served, whose
  // bowl is its own vessel).
  if (!sig.in_bowl && rng.NextBool(opts_.plate_probability)) {
    const Color plate = rng.NextBool(0.6f) ? Color{0.92f, 0.92f, 0.90f}
                                           : Color{0.70f, 0.71f, 0.74f};
    DrawEllipse(scene.image, cx, cy, r * 1.25f, r * 1.18f, 0, plate, 1.5f);
    DrawRing(scene.image, cx, cy, r * 1.25f, r * 1.18f, 0, 0.93f,
             Darken(plate, 0.85f));
  }

  Box bbox = DrawDish(scene.image, sig, cx, cy, r, rng);
  FinishScene(scene.image, rng);

  TruthBox t;
  // Normalize and clip to the image.
  const float left = std::clamp(bbox.Left(), 0.0f, w);
  const float right = std::clamp(bbox.Right(), 0.0f, w);
  const float top = std::clamp(bbox.Top(), 0.0f, h);
  const float bottom = std::clamp(bbox.Bottom(), 0.0f, h);
  t.box = BoxFromCorners(left / w, top / h, right / w, bottom / h);
  t.class_id = class_id;
  scene.truths.push_back(t);
  scene.is_platter = false;
  return scene;
}

RenderedScene PlatterRenderer::RenderPlatter(const std::vector<int>& class_ids,
                                             Rng& rng) const {
  THALI_CHECK(!class_ids.empty());
  RenderedScene scene;
  scene.image = Image(opts_.width, opts_.height, 3);
  scene.is_platter = true;
  DrawBackground(scene.image, rng);

  const float w = static_cast<float>(opts_.width);
  const float h = static_cast<float>(opts_.height);

  // The shared thali: a large steel platter.
  const Color steel{0.72f, 0.73f, 0.76f};
  DrawEllipse(scene.image, w / 2, h / 2, w * 0.48f, h * 0.46f, 0, steel, 2.0f);
  DrawRing(scene.image, w / 2, h / 2, w * 0.48f, h * 0.46f, 0, 0.94f,
           Darken(steel, 0.8f));

  // Place dishes around the platter center with adjacent (sometimes
  // touching) positions — the "non-distinct boundaries" regime.
  const int n = static_cast<int>(class_ids.size());
  const float dish_r = std::min(w, h) * (n <= 2 ? 0.21f : 0.17f) *
                       rng.NextFloat(0.9f, 1.1f);
  const float ring_r = std::min(w, h) * (n <= 2 ? 0.21f : 0.26f);
  const float phase = rng.NextFloat(0.0f, kTau);

  for (int i = 0; i < n; ++i) {
    const float a = phase + kTau * i / n;
    const float cx = w / 2 + ring_r * std::cos(a) + rng.NextFloat(-2, 2);
    const float cy = h / 2 + ring_r * std::sin(a) * 0.9f + rng.NextFloat(-2, 2);
    const float r = dish_r * rng.NextFloat(0.85f, 1.15f);
    const FoodSignature& sig =
        classes_[static_cast<size_t>(class_ids[static_cast<size_t>(i)])];
    Box bbox = DrawDish(scene.image, sig, cx, cy, r, rng);

    TruthBox t;
    const float left = std::clamp(bbox.Left(), 0.0f, w);
    const float right = std::clamp(bbox.Right(), 0.0f, w);
    const float top = std::clamp(bbox.Top(), 0.0f, h);
    const float bottom = std::clamp(bbox.Bottom(), 0.0f, h);
    t.box = BoxFromCorners(left / w, top / h, right / w, bottom / h);
    t.class_id = class_ids[static_cast<size_t>(i)];
    scene.truths.push_back(t);
  }
  FinishScene(scene.image, rng);
  return scene;
}

RenderedScene PlatterRenderer::RenderRandomPlatter(int num_dishes,
                                                   Rng& rng) const {
  THALI_CHECK_GT(num_dishes, 0);
  num_dishes = std::min<int>(num_dishes, static_cast<int>(classes_.size()));
  std::vector<int> ids(classes_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  rng.Shuffle(ids);
  ids.resize(static_cast<size_t>(num_dishes));
  return RenderPlatter(ids, rng);
}

}  // namespace thali
