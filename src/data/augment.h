#ifndef THALI_DATA_AUGMENT_H_
#define THALI_DATA_AUGMENT_H_

#include <array>
#include <vector>

#include "base/rng.h"
#include "image/image.h"
#include "nn/truth.h"

namespace thali {

// Darknet-style training-time augmentation. All functions keep the truth
// boxes consistent with the transformed pixels; boxes reduced below
// `min_box_size` (normalized) by cropping are dropped.

struct AugmentOptions {
  bool flip = true;            // random horizontal mirror
  float jitter = 0.2f;         // random crop/scale fraction
  float hue = 0.1f;            // max hue shift (fraction of the wheel)
  float saturation = 1.5f;     // max saturation scale (sampled in
                               // [1/s, s], Darknet convention)
  float exposure = 1.5f;       // max value scale
  bool mosaic = false;         // 4-image mosaic (YOLOv4)
  float min_box_size = 0.01f;  // drop boxes smaller than this after crop
};

// One labelled training sample.
struct Sample {
  Image image;
  std::vector<TruthBox> truths;
};

// Applies flip + crop-jitter + HSV distortion to a single sample.
Sample AugmentSample(const Sample& in, const AugmentOptions& opts, Rng& rng);

// YOLOv4 mosaic: stitches 4 samples around a random center point into one
// canvas of the same size, rescaling boxes into their quadrants.
Sample MosaicCombine(const std::array<Sample, 4>& parts,
                     const AugmentOptions& opts, Rng& rng);

// Crops the normalized-coordinates box list to the visible window
// [x0,y0,x1,y1] (normalized, of the source image) and re-normalizes into
// the window frame. Exposed for tests.
std::vector<TruthBox> CropTruths(const std::vector<TruthBox>& truths,
                                 float x0, float y0, float x1, float y1,
                                 float min_box_size);

}  // namespace thali

#endif  // THALI_DATA_AUGMENT_H_
