#include "data/food_classes.h"

namespace thali {

namespace {

FoodSignature Make(const std::string& name, const std::string& display,
                   DishShape shape, Color base, Color accent, Color accent2,
                   float speckle, float size_lo, float size_hi, bool foldable,
                   bool in_bowl, float kcal, long long popularity) {
  FoodSignature s;
  s.name = name;
  s.display_name = display;
  s.hashtag = "#" + name;
  // Hashtags drop the underscore, Instagram-style.
  for (size_t i = 0; i < s.hashtag.size();) {
    if (s.hashtag[i] == '_') {
      s.hashtag.erase(i, 1);
    } else {
      ++i;
    }
  }
  s.shape = shape;
  s.base = base;
  s.accent = accent;
  s.accent2 = accent2;
  s.speckle_density = speckle;
  s.size_lo = size_lo;
  s.size_hi = size_hi;
  s.foldable = foldable;
  s.in_bowl = in_bowl;
  s.kcal_per_serving = kcal;
  s.popularity = popularity;
  return s;
}

std::vector<FoodSignature> BuildIndianFood10() {
  std::vector<FoodSignature> v;
  // The confusable bread pair: both are brown flat discs; the paratha is
  // darker with stuffing speckles and char marks, the chapati is plainer
  // and foldable. Their APs are the paper's two lowest (78.3 / 79.4).
  v.push_back(Make("aloo_paratha", "Aloo Paratha", DishShape::kFlatDisc,
                   {0.72f, 0.54f, 0.30f}, {0.45f, 0.30f, 0.14f},
                   {0.85f, 0.72f, 0.45f}, 0.5f, 0.45f, 0.85f,
                   /*foldable=*/true, false, 290, 905000));
  v.push_back(Make("biryani", "Biryani", DishShape::kMound,
                   {0.88f, 0.62f, 0.28f}, {0.55f, 0.25f, 0.10f},
                   {0.95f, 0.90f, 0.70f}, 0.85f, 0.5f, 0.9f, false, false,
                   480, 5200000));
  v.push_back(Make("chapati", "Chapati", DishShape::kFlatDisc,
                   {0.80f, 0.62f, 0.38f}, {0.62f, 0.45f, 0.24f},
                   {0.88f, 0.74f, 0.50f}, 0.18f, 0.45f, 0.85f,
                   /*foldable=*/true, false, 104, 780000));
  v.push_back(Make("chicken_tikka", "Chicken Tikka", DishShape::kChunks,
                   {0.68f, 0.18f, 0.08f}, {0.30f, 0.10f, 0.05f},
                   {0.20f, 0.55f, 0.20f}, 0.6f, 0.4f, 0.8f, false, false,
                   270, 1900000));
  v.push_back(Make("khichdi", "Khichdi", DishShape::kMound,
                   {0.86f, 0.68f, 0.24f}, {0.70f, 0.52f, 0.16f},
                   {0.30f, 0.60f, 0.25f}, 0.45f, 0.45f, 0.85f, false, true,
                   210, 420000));
  v.push_back(Make("omelette", "Omelette", DishShape::kFlatDisc,
                   {0.97f, 0.84f, 0.22f}, {0.90f, 0.20f, 0.12f},
                   {0.98f, 0.93f, 0.55f}, 0.35f, 0.4f, 0.8f,
                   /*foldable=*/true, false, 150, 2500000));
  v.push_back(Make("palak_paneer", "Palak Paneer", DishShape::kBowlCurry,
                   {0.22f, 0.42f, 0.16f}, {0.95f, 0.95f, 0.88f},
                   {0.90f, 0.85f, 0.60f}, 0.55f, 0.4f, 0.75f, false, true,
                   340, 1100000));
  v.push_back(Make("plain_rice", "Plain rice", DishShape::kMound,
                   {0.97f, 0.96f, 0.93f}, {0.90f, 0.89f, 0.84f},
                   {0.99f, 0.99f, 0.97f}, 0.15f, 0.45f, 0.85f, false, false,
                   205, 1600000));
  v.push_back(Make("poha", "Poha", DishShape::kMound,
                   {0.93f, 0.76f, 0.30f}, {0.20f, 0.60f, 0.18f},
                   {0.85f, 0.15f, 0.12f}, 0.9f, 0.45f, 0.8f, false, false,
                   180, 1300000));
  v.push_back(Make("rasgulla", "Rasgulla", DishShape::kBallsInBowl,
                   {0.97f, 0.96f, 0.92f}, {0.90f, 0.88f, 0.78f},
                   {0.98f, 0.97f, 0.95f}, 0.1f, 0.35f, 0.7f, false, true,
                   186, 950000));
  return v;
}

std::vector<FoodSignature> BuildIndianFood20() {
  // Table IV of the paper: the IndianFood10 staples regrouped (generic
  // "Indian Bread" and "Paneer") plus ten more dishes.
  std::vector<FoodSignature> v;
  v.push_back(Make("indian_bread", "Indian Bread", DishShape::kFlatDisc,
                   {0.78f, 0.60f, 0.36f}, {0.58f, 0.42f, 0.22f},
                   {0.88f, 0.74f, 0.50f}, 0.3f, 0.45f, 0.85f, true, false,
                   150, 1700000));
  v.push_back(Make("rasgulla", "Rasgulla", DishShape::kBallsInBowl,
                   {0.97f, 0.96f, 0.92f}, {0.90f, 0.88f, 0.78f},
                   {0.98f, 0.97f, 0.95f}, 0.1f, 0.35f, 0.7f, false, true,
                   186, 950000));
  v.push_back(Make("biryani", "Biryani", DishShape::kMound,
                   {0.88f, 0.62f, 0.28f}, {0.55f, 0.25f, 0.10f},
                   {0.95f, 0.90f, 0.70f}, 0.85f, 0.5f, 0.9f, false, false,
                   480, 5200000));
  v.push_back(Make("uttapam", "Uttapam", DishShape::kCrepe,
                   {0.93f, 0.80f, 0.55f}, {0.85f, 0.30f, 0.20f},
                   {0.30f, 0.55f, 0.22f}, 0.55f, 0.45f, 0.8f, false, false,
                   220, 380000));
  v.push_back(Make("paneer", "Paneer", DishShape::kChunks,
                   {0.95f, 0.60f, 0.25f}, {0.97f, 0.95f, 0.88f},
                   {0.30f, 0.12f, 0.06f}, 0.55f, 0.4f, 0.8f, false, false,
                   320, 2100000));
  v.push_back(Make("poha", "Poha", DishShape::kMound,
                   {0.96f, 0.85f, 0.50f}, {0.30f, 0.55f, 0.20f},
                   {0.80f, 0.20f, 0.15f}, 0.6f, 0.45f, 0.8f, false, false,
                   180, 1300000));
  v.push_back(Make("khichdi", "Khichdi", DishShape::kMound,
                   {0.86f, 0.68f, 0.24f}, {0.70f, 0.52f, 0.16f},
                   {0.30f, 0.60f, 0.25f}, 0.45f, 0.45f, 0.85f, false, true,
                   210, 420000));
  v.push_back(Make("omelette", "Omelette", DishShape::kFlatDisc,
                   {0.97f, 0.84f, 0.22f}, {0.90f, 0.20f, 0.12f},
                   {0.98f, 0.93f, 0.55f}, 0.35f, 0.4f, 0.8f, true, false,
                   150, 2500000));
  v.push_back(Make("plain_rice", "Plain Rice", DishShape::kMound,
                   {0.94f, 0.92f, 0.86f}, {0.85f, 0.82f, 0.74f},
                   {0.98f, 0.97f, 0.94f}, 0.35f, 0.45f, 0.85f, false, false,
                   205, 1600000));
  v.push_back(Make("dal_makhni", "Dal Makhni", DishShape::kBowlCurry,
                   {0.45f, 0.26f, 0.16f}, {0.92f, 0.88f, 0.80f},
                   {0.75f, 0.55f, 0.35f}, 0.3f, 0.4f, 0.75f, false, true,
                   330, 760000));
  v.push_back(Make("dosa", "Dosa", DishShape::kCrepe,
                   {0.90f, 0.72f, 0.42f}, {0.70f, 0.48f, 0.22f},
                   {0.96f, 0.90f, 0.70f}, 0.25f, 0.5f, 0.92f, false, false,
                   170, 2900000));
  v.push_back(Make("rajma", "Rajma", DishShape::kBowlCurry,
                   {0.55f, 0.24f, 0.16f}, {0.40f, 0.14f, 0.10f},
                   {0.90f, 0.85f, 0.75f}, 0.5f, 0.4f, 0.75f, false, true,
                   270, 680000));
  v.push_back(Make("poori", "Poori", DishShape::kFlatDisc,
                   {0.88f, 0.66f, 0.30f}, {0.70f, 0.48f, 0.18f},
                   {0.94f, 0.80f, 0.50f}, 0.15f, 0.3f, 0.6f, false, false,
                   140, 890000));
  v.push_back(Make("chole", "Chole", DishShape::kBowlCurry,
                   {0.70f, 0.45f, 0.20f}, {0.50f, 0.28f, 0.12f},
                   {0.92f, 0.88f, 0.80f}, 0.65f, 0.4f, 0.75f, false, true,
                   290, 1200000));
  v.push_back(Make("dal", "Dal", DishShape::kBowlCurry,
                   {0.93f, 0.75f, 0.30f}, {0.80f, 0.60f, 0.20f},
                   {0.30f, 0.55f, 0.22f}, 0.25f, 0.4f, 0.75f, false, true,
                   200, 1500000));
  v.push_back(Make("sambhar", "Sambhar", DishShape::kBowlCurry,
                   {0.82f, 0.50f, 0.22f}, {0.90f, 0.30f, 0.15f},
                   {0.35f, 0.60f, 0.25f}, 0.45f, 0.4f, 0.75f, false, true,
                   140, 980000));
  v.push_back(Make("papad", "Papad", DishShape::kFlatDisc,
                   {0.92f, 0.82f, 0.58f}, {0.75f, 0.62f, 0.38f},
                   {0.96f, 0.90f, 0.72f}, 0.4f, 0.4f, 0.8f, false, false,
                   60, 310000));
  v.push_back(Make("gulab_jamun", "Gulab Jamun", DishShape::kBallsInBowl,
                   {0.48f, 0.22f, 0.10f}, {0.65f, 0.35f, 0.16f},
                   {0.90f, 0.80f, 0.60f}, 0.1f, 0.3f, 0.65f, false, true,
                   300, 1400000));
  v.push_back(Make("idli", "Idli", DishShape::kSteamedCakes,
                   {0.96f, 0.95f, 0.90f}, {0.88f, 0.86f, 0.78f},
                   {0.98f, 0.97f, 0.94f}, 0.1f, 0.4f, 0.75f, false, false,
                   70, 1800000));
  v.push_back(Make("vada", "Vada", DishShape::kSteamedCakes,
                   {0.80f, 0.58f, 0.28f}, {0.60f, 0.40f, 0.16f},
                   {0.90f, 0.75f, 0.45f}, 0.3f, 0.35f, 0.7f, false, false,
                   180, 720000));
  return v;
}

std::vector<FoodSignature> BuildPretrainObjects() {
  // Deliberately non-food: saturated primary-colored geometric objects on
  // the same kinds of backgrounds, so the backbone learns generic
  // edges/shapes/color statistics without seeing the target signatures.
  std::vector<FoodSignature> v;
  v.push_back(Make("red_block", "Red Block", DishShape::kChunks,
                   {0.85f, 0.10f, 0.10f}, {0.55f, 0.05f, 0.05f},
                   {0.95f, 0.40f, 0.40f}, 0.4f, 0.3f, 0.8f, false, false, 0,
                   0));
  v.push_back(Make("blue_disc", "Blue Disc", DishShape::kFlatDisc,
                   {0.15f, 0.25f, 0.85f}, {0.08f, 0.12f, 0.55f},
                   {0.45f, 0.55f, 0.95f}, 0.2f, 0.35f, 0.85f, true, false, 0,
                   0));
  v.push_back(Make("green_mound", "Green Mound", DishShape::kMound,
                   {0.15f, 0.75f, 0.20f}, {0.05f, 0.45f, 0.10f},
                   {0.55f, 0.95f, 0.55f}, 0.5f, 0.4f, 0.85f, false, false, 0,
                   0));
  v.push_back(Make("violet_bowl", "Violet Bowl", DishShape::kBowlCurry,
                   {0.55f, 0.15f, 0.75f}, {0.85f, 0.70f, 0.95f},
                   {0.35f, 0.05f, 0.50f}, 0.3f, 0.4f, 0.8f, false, true, 0,
                   0));
  return v;
}

}  // namespace

const std::vector<FoodSignature>& IndianFood10() {
  static const auto& classes = *new std::vector<FoodSignature>(
      BuildIndianFood10());
  return classes;
}

const std::vector<FoodSignature>& IndianFood20() {
  static const auto& classes = *new std::vector<FoodSignature>(
      BuildIndianFood20());
  return classes;
}

const std::vector<FoodSignature>& PretrainObjects() {
  static const auto& classes = *new std::vector<FoodSignature>(
      BuildPretrainObjects());
  return classes;
}

std::vector<std::string> ClassDisplayNames(
    const std::vector<FoodSignature>& classes) {
  std::vector<std::string> names;
  names.reserve(classes.size());
  for (const auto& c : classes) names.push_back(c.display_name);
  return names;
}

int FindClassByName(const std::vector<FoodSignature>& classes,
                    const std::string& name) {
  for (size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace thali
