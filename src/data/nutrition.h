#ifndef THALI_DATA_NUTRITION_H_
#define THALI_DATA_NUTRITION_H_

#include <string>
#include <vector>

#include "data/food_classes.h"
#include "eval/detection.h"

namespace thali {

// Calorie estimation from detections — the application the paper's
// conclusion motivates ("implications for calorie estimation in the food
// images ... larger impact on public health"). The estimator maps each
// detected dish to a serving size from the area of its bounding box
// relative to a nominal single-serving footprint, then multiplies by the
// class's calories per serving.

// One dish of an analyzed meal.
struct MealItem {
  int class_id = -1;
  std::string dish;        // display name
  float confidence = 0.0f;
  float servings = 0.0f;   // estimated from box area
  float kcal = 0.0f;
};

struct MealEstimate {
  std::vector<MealItem> items;
  float total_kcal = 0.0f;
};

class NutritionEstimator {
 public:
  struct Options {
    // Normalized box area corresponding to one serving (a dish covering
    // ~35% of the frame linear => ~12% area).
    float serving_area = 0.12f;
    // Serving clamp range: a sliver is still ~1/4 serving, a platter-
    // filling biryani at most 2.5 servings.
    float min_servings = 0.25f;
    float max_servings = 2.5f;
  };

  NutritionEstimator(const std::vector<FoodSignature>& classes,
                     const Options& options);
  explicit NutritionEstimator(const std::vector<FoodSignature>& classes)
      : NutritionEstimator(classes, Options()) {}

  // Converts a detection list (normalized boxes) into a meal estimate.
  // Unknown class ids are skipped.
  MealEstimate Estimate(const std::vector<Detection>& detections) const;

  // Serving count for one normalized box area.
  float ServingsForArea(float area) const;

  const Options& options() const { return opts_; }

 private:
  std::vector<FoodSignature> classes_;
  Options opts_;
};

// Renders a meal estimate as an aligned text receipt.
std::string RenderMealReceipt(const MealEstimate& meal);

}  // namespace thali

#endif  // THALI_DATA_NUTRITION_H_
