#ifndef THALI_DATA_HASHTAG_CATALOG_H_
#define THALI_DATA_HASHTAG_CATALOG_H_

#include <string>
#include <vector>

#include "base/rng.h"

namespace thali {

// Simulation of the paper's data-preparation stage (§IV-A / Fig. 3): the
// authors ranked >100 Indian dishes by Instagram hashtag post counts and
// scraped the most popular ones with Selenium. Here the "platform" is a
// deterministic catalog with popularity counts; "scraping" is sampling
// post records. This keeps the class-selection logic of the pipeline
// executable without network access or proprietary data.

struct HashtagEntry {
  std::string dish;     // snake_case dish name
  std::string hashtag;  // "#paneertikka"
  long long posts;      // simulated post count
};

// One simulated scraped post (what Selenium + Requests produced).
struct ScrapedPost {
  std::string hashtag;
  std::string url;       // synthetic post URL
  uint64_t image_seed;   // feeds the renderer in place of downloaded pixels
};

class HashtagCatalog {
 public:
  // Builds the catalog of 100+ Indian dishes with fixed popularity counts
  // (deterministic; ordering matches descending popularity).
  static HashtagCatalog BuildIndianFoodCatalog();

  int size() const { return static_cast<int>(entries_.size()); }
  const std::vector<HashtagEntry>& entries() const { return entries_; }

  // The `k` most popular dishes — the paper's class-selection rule.
  std::vector<HashtagEntry> TopK(int k) const;

  // Looks up an entry by dish name; nullptr when absent.
  const HashtagEntry* Find(const std::string& dish) const;

  // Simulates scraping `count` post URLs for `hashtag` (Fig. 3's
  // "Scrape Instagram post URLs" + "Download images" stages).
  std::vector<ScrapedPost> Scrape(const std::string& hashtag, int count,
                                  Rng& rng) const;

 private:
  std::vector<HashtagEntry> entries_;
};

}  // namespace thali

#endif  // THALI_DATA_HASHTAG_CATALOG_H_
