#include "data/augment.h"

#include <algorithm>
#include <cmath>

namespace thali {

std::vector<TruthBox> CropTruths(const std::vector<TruthBox>& truths,
                                 float x0, float y0, float x1, float y1,
                                 float min_box_size) {
  std::vector<TruthBox> out;
  const float ww = x1 - x0;
  const float wh = y1 - y0;
  if (ww <= 0 || wh <= 0) return out;
  for (const TruthBox& t : truths) {
    const float left = std::max(t.box.Left(), x0);
    const float right = std::min(t.box.Right(), x1);
    const float top = std::max(t.box.Top(), y0);
    const float bottom = std::min(t.box.Bottom(), y1);
    if (right - left < min_box_size * ww || bottom - top < min_box_size * wh) {
      continue;
    }
    TruthBox n = t;
    n.box = BoxFromCorners((left - x0) / ww, (top - y0) / wh,
                           (right - x0) / ww, (bottom - y0) / wh);
    out.push_back(n);
  }
  return out;
}

Sample AugmentSample(const Sample& in, const AugmentOptions& opts, Rng& rng) {
  Sample out;
  const int w = in.image.width();
  const int h = in.image.height();

  // Crop-jitter: sample a window of [1-j, 1] of the image, then resize
  // back to the original resolution.
  const float j = std::clamp(opts.jitter, 0.0f, 0.45f);
  const float crop_w = 1.0f - rng.NextFloat(0.0f, j);
  const float crop_h = 1.0f - rng.NextFloat(0.0f, j);
  const float x0 = rng.NextFloat(0.0f, 1.0f - crop_w);
  const float y0 = rng.NextFloat(0.0f, 1.0f - crop_h);
  const float x1 = x0 + crop_w;
  const float y1 = y0 + crop_h;

  Image cropped = Crop(in.image, static_cast<int>(x0 * w),
                       static_cast<int>(y0 * h),
                       std::max(1, static_cast<int>(crop_w * w)),
                       std::max(1, static_cast<int>(crop_h * h)));
  out.image = Resize(cropped, w, h);
  out.truths = CropTruths(in.truths, x0, y0, x1, y1, opts.min_box_size);

  if (opts.flip && rng.NextBool(0.5f)) {
    FlipHorizontal(out.image);
    for (TruthBox& t : out.truths) t.box.x = 1.0f - t.box.x;
  }

  // HSV distortion with Darknet's sampling: scale factors in [1/s, s].
  auto rand_scale = [&](float s) {
    if (s <= 1.0f) return 1.0f;
    const float f = rng.NextFloat(1.0f, s);
    return rng.NextBool(0.5f) ? f : 1.0f / f;
  };
  const float dhue = rng.NextFloat(-opts.hue, opts.hue);
  DistortImageHsv(out.image, dhue, rand_scale(opts.saturation),
                  rand_scale(opts.exposure));
  return out;
}

Sample MosaicCombine(const std::array<Sample, 4>& parts,
                     const AugmentOptions& opts, Rng& rng) {
  const int w = parts[0].image.width();
  const int h = parts[0].image.height();
  Sample out;
  out.image = Image(w, h, 3);

  // Mosaic center in [0.3, 0.7] of the canvas.
  const int cx = static_cast<int>(rng.NextFloat(0.3f, 0.7f) * w);
  const int cy = static_cast<int>(rng.NextFloat(0.3f, 0.7f) * h);

  // Quadrant q gets the matching corner crop of parts[q], resized to the
  // quadrant: q0 top-left, q1 top-right, q2 bottom-left, q3 bottom-right.
  struct Quad {
    int x, y, qw, qh;
  };
  const Quad quads[4] = {
      {0, 0, cx, cy},
      {cx, 0, w - cx, cy},
      {0, cy, cx, h - cy},
      {cx, cy, w - cx, h - cy},
  };

  for (int q = 0; q < 4; ++q) {
    const Quad& k = quads[q];
    if (k.qw <= 0 || k.qh <= 0) continue;
    // Take a same-aspect window from the source so boxes stay sensible:
    // crop a (qw/w, qh/h) fraction anchored to the matching corner.
    const float fx = static_cast<float>(k.qw) / w;
    const float fy = static_cast<float>(k.qh) / h;
    const float sx0 = (q % 2 == 0) ? 1.0f - fx : 0.0f;  // left quads take
    const float sy0 = (q < 2) ? 1.0f - fy : 0.0f;       // their far corner
    const float sx1 = sx0 + fx;
    const float sy1 = sy0 + fy;

    const Sample& src = parts[static_cast<size_t>(q)];
    Image piece = Crop(src.image, static_cast<int>(sx0 * w),
                       static_cast<int>(sy0 * h), k.qw, k.qh);
    Paste(piece, k.x, k.y, out.image);

    for (const TruthBox& t :
         CropTruths(src.truths, sx0, sy0, sx1, sy1, opts.min_box_size)) {
      TruthBox n = t;
      // Window frame -> canvas frame.
      n.box.x = (k.x + t.box.x * k.qw) / w;
      n.box.y = (k.y + t.box.y * k.qh) / h;
      n.box.w = t.box.w * k.qw / w;
      n.box.h = t.box.h * k.qh / h;
      out.truths.push_back(n);
    }
  }
  return out;
}

}  // namespace thali
