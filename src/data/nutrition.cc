#include "data/nutrition.h"

#include <algorithm>

#include "base/logging.h"
#include "base/string_util.h"

namespace thali {

NutritionEstimator::NutritionEstimator(
    const std::vector<FoodSignature>& classes, const Options& options)
    : classes_(classes), opts_(options) {
  THALI_CHECK(!classes_.empty());
  THALI_CHECK_GT(opts_.serving_area, 0.0f);
  THALI_CHECK_LE(opts_.min_servings, opts_.max_servings);
}

float NutritionEstimator::ServingsForArea(float area) const {
  return std::clamp(area / opts_.serving_area, opts_.min_servings,
                    opts_.max_servings);
}

MealEstimate NutritionEstimator::Estimate(
    const std::vector<Detection>& detections) const {
  MealEstimate meal;
  for (const Detection& d : detections) {
    if (d.class_id < 0 || d.class_id >= static_cast<int>(classes_.size())) {
      continue;
    }
    const FoodSignature& sig = classes_[static_cast<size_t>(d.class_id)];
    MealItem item;
    item.class_id = d.class_id;
    item.dish = sig.display_name;
    item.confidence = d.confidence;
    item.servings = ServingsForArea(d.box.Area());
    item.kcal = item.servings * sig.kcal_per_serving;
    meal.total_kcal += item.kcal;
    meal.items.push_back(std::move(item));
  }
  return meal;
}

std::string RenderMealReceipt(const MealEstimate& meal) {
  std::string out;
  out += StrFormat("%-16s %5s %9s %8s\n", "dish", "conf", "servings", "kcal");
  for (const MealItem& item : meal.items) {
    out += StrFormat("%-16s %5.2f %9.2f %8.0f\n", item.dish.c_str(),
                     item.confidence, item.servings, item.kcal);
  }
  out += StrFormat("%-16s %5s %9s %8.0f\n", "TOTAL", "", "", meal.total_kcal);
  return out;
}

}  // namespace thali
