#include "serve/batcher.h"

#include <utility>

#include "base/logging.h"

namespace thali {
namespace serve {

namespace {

double ToMs(ServeClock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

Batcher::Batcher(RequestQueue* queue, Options options, ServerMetrics* metrics)
    : queue_(queue), options_(options), metrics_(metrics) {
  THALI_CHECK(queue_ != nullptr);
  THALI_CHECK(metrics_ != nullptr);
  THALI_CHECK_GE(options_.max_batch_size, 1);
}

bool Batcher::ExpireIfLate(RequestPtr* req, ServeClock::time_point now) {
  if (now < (*req)->deadline) return false;
  metrics_->timed_out.fetch_add(1, std::memory_order_relaxed);
  metrics_->ForClass((*req)->priority)
      .timed_out.fetch_add(1, std::memory_order_relaxed);
  metrics_->e2e_ms.Record(ToMs(now - (*req)->submit_time));
  (*req)->promise.set_value(
      Status::DeadlineExceeded("deadline expired while queued"));
  req->reset();
  return true;
}

bool Batcher::NextBatch(std::vector<RequestPtr>* batch) {
  batch->clear();

  // Block for the first live request; expired ones complete on the spot.
  RequestPtr first;
  for (;;) {
    if (!queue_->Pop(&first)) return false;  // closed and drained
    if (!ExpireIfLate(&first, ServeClock::now())) break;
  }

  const ServeClock::time_point formed = ServeClock::now();
  const ServeClock::time_point linger_end = formed + options_.max_linger;
  metrics_->queue_wait_ms.Record(ToMs(formed - first->submit_time));
  batch->push_back(std::move(first));

  while (static_cast<int>(batch->size()) < options_.max_batch_size) {
    const ServeClock::time_point now = ServeClock::now();
    if (now >= linger_end) break;
    RequestPtr next;
    if (!queue_->PopWait(&next, linger_end - now)) break;  // timeout or drained
    if (ExpireIfLate(&next, ServeClock::now())) continue;
    metrics_->queue_wait_ms.Record(
        ToMs(ServeClock::now() - next->submit_time));
    batch->push_back(std::move(next));
  }

  metrics_->batches.fetch_add(1, std::memory_order_relaxed);
  metrics_->batched_images.fetch_add(static_cast<int64_t>(batch->size()),
                                     std::memory_order_relaxed);
  return true;
}

}  // namespace serve
}  // namespace thali
