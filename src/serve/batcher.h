#ifndef THALI_SERVE_BATCHER_H_
#define THALI_SERVE_BATCHER_H_

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "base/statusor.h"
#include "eval/detection.h"
#include "image/image.h"
#include "serve/lane_queue.h"
#include "serve/metrics.h"
#include "serve/queue.h"

namespace thali {
namespace serve {

using ServeClock = std::chrono::steady_clock;

// One in-flight detection request. The promise is fulfilled exactly once,
// with either the detections for `image` or an error status
// (kDeadlineExceeded when the deadline passed while the request waited in
// the queue).
struct Request {
  Image image;
  ServeClock::time_point submit_time;
  // time_point::max() means no deadline.
  ServeClock::time_point deadline = ServeClock::time_point::max();
  Priority priority = Priority::kInteractive;
  std::promise<StatusOr<std::vector<Detection>>> promise;
};

using RequestPtr = std::unique_ptr<Request>;
// Two bounded lanes (interactive / batch); plain Submit lands on the
// interactive lane, so single-class callers see BoundedQueue semantics.
using RequestQueue = LaneQueue<RequestPtr>;

// Dynamic micro-batcher: pulls requests off a shared queue and groups them
// into batches of at most `max_batch_size`, waiting up to `max_linger`
// after the first request for stragglers — whichever limit trips first
// closes the batch. Requests whose deadline already passed are completed
// with kDeadlineExceeded at pop time and never occupy a batch slot, so an
// expired request costs no network time.
//
// Stateless between batches: several workers may run NextBatch on the same
// queue concurrently, each forming its own batches (the queue is the only
// shared state).
class Batcher {
 public:
  struct Options {
    int max_batch_size = 8;
    std::chrono::microseconds max_linger{2000};
  };

  // `queue` and `metrics` must outlive the batcher. Records queue-wait
  // latency and batch-size metrics as batches form; counts expired
  // requests under `timed_out`.
  Batcher(RequestQueue* queue, Options options, ServerMetrics* metrics);

  // Blocks until it can return a non-empty batch (true) or the queue is
  // closed and fully drained (false). On a closed queue the linger wait is
  // skipped: whatever is left drains in max_batch_size groups immediately.
  bool NextBatch(std::vector<RequestPtr>* batch);

  const Options& options() const { return options_; }

 private:
  // If `req`'s deadline has passed, completes it with kDeadlineExceeded
  // (recording metrics) and returns true.
  bool ExpireIfLate(RequestPtr* req, ServeClock::time_point now);

  RequestQueue* queue_;
  Options options_;
  ServerMetrics* metrics_;
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_BATCHER_H_
