#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "base/table_printer.h"

namespace thali {
namespace serve {

namespace {
constexpr double kFirstUpperMs = 0.01;  // 10µs
constexpr double kRatio = 1.5;
}  // namespace

double LatencyHistogram::BucketUpperMs(int i) {
  return kFirstUpperMs * std::pow(kRatio, i);
}

void LatencyHistogram::Record(double ms) {
  ms = std::max(0.0, ms);
  int bucket = 0;
  double upper = kFirstUpperMs;
  while (bucket < kNumBuckets && ms > upper) {
    upper *= kRatio;
    ++bucket;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<int64_t>(ms * 1e3),
                    std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e3 /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMs(double p) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(n);
  int64_t cumulative = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    const int64_t in_bucket =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate inside the bucket; the overflow bucket has no upper
      // bound, so report its lower edge.
      const double lower = i == 0 ? 0.0 : BucketUpperMs(i - 1);
      if (i == kNumBuckets) return lower;
      const double fraction =
          std::clamp((target - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lower + (BucketUpperMs(i) - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return BucketUpperMs(kNumBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

double ServerMetrics::MeanBatchSize() const {
  const int64_t b = batches.load(std::memory_order_relaxed);
  if (b == 0) return 0.0;
  return static_cast<double>(batched_images.load(std::memory_order_relaxed)) /
         static_cast<double>(b);
}

HistogramSnapshot SnapshotHistogram(const LatencyHistogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.mean_ms = h.MeanMs();
  s.p50_ms = h.PercentileMs(50);
  s.p95_ms = h.PercentileMs(95);
  s.p99_ms = h.PercentileMs(99);
  return s;
}

namespace {

ClassSnapshot SnapshotClass(const ServerMetrics::PerClass& c) {
  ClassSnapshot s;
  s.submitted = c.submitted.load(std::memory_order_relaxed);
  s.completed = c.completed.load(std::memory_order_relaxed);
  s.rejected = c.rejected.load(std::memory_order_relaxed);
  s.timed_out = c.timed_out.load(std::memory_order_relaxed);
  s.shed = c.shed.load(std::memory_order_relaxed);
  s.completed_e2e = SnapshotHistogram(c.completed_e2e_ms);
  return s;
}

std::string HistJson(const char* name, const HistogramSnapshot& h) {
  return StrFormat(
      "\"%s\": {\"count\": %lld, \"mean_ms\": %.3f, \"p50_ms\": %.3f, "
      "\"p95_ms\": %.3f, \"p99_ms\": %.3f}",
      name, static_cast<long long>(h.count), h.mean_ms, h.p50_ms, h.p95_ms,
      h.p99_ms);
}

std::string ClassJson(const char* name, const ClassSnapshot& c) {
  return StrFormat(
      "\"%s\": {\"submitted\": %lld, \"completed\": %lld, \"rejected\": "
      "%lld, \"timed_out\": %lld, \"shed\": %lld, %s}",
      name, static_cast<long long>(c.submitted),
      static_cast<long long>(c.completed), static_cast<long long>(c.rejected),
      static_cast<long long>(c.timed_out), static_cast<long long>(c.shed),
      HistJson("completed_e2e", c.completed_e2e).c_str());
}

}  // namespace

MetricsSnapshot ServerMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.timed_out = timed_out.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline.load(std::memory_order_relaxed);
  s.shed_pressure = shed_pressure.load(std::memory_order_relaxed);
  s.weight_reloads = weight_reloads.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.batched_images = batched_images.load(std::memory_order_relaxed);
  s.mean_batch = MeanBatchSize();
  s.queue_wait = SnapshotHistogram(queue_wait_ms);
  s.e2e = SnapshotHistogram(e2e_ms);
  s.preprocess = SnapshotHistogram(preprocess_ms);
  s.forward = SnapshotHistogram(forward_ms);
  s.postprocess = SnapshotHistogram(postprocess_ms);
  s.interactive = SnapshotClass(ForClass(Priority::kInteractive));
  s.batch = SnapshotClass(ForClass(Priority::kBatch));
  return s;
}

std::string MetricsSnapshot::ToJson() const {
  std::string json = "{";
  json += StrFormat(
      "\"submitted\": %lld, \"completed\": %lld, \"rejected\": %lld, "
      "\"timed_out\": %lld, \"shed_deadline\": %lld, \"shed_pressure\": "
      "%lld, \"weight_reloads\": %lld, \"batches\": %lld, "
      "\"batched_images\": %lld, \"mean_batch\": %.2f, ",
      static_cast<long long>(submitted), static_cast<long long>(completed),
      static_cast<long long>(rejected), static_cast<long long>(timed_out),
      static_cast<long long>(shed_deadline),
      static_cast<long long>(shed_pressure),
      static_cast<long long>(weight_reloads), static_cast<long long>(batches),
      static_cast<long long>(batched_images), mean_batch);
  json += HistJson("queue_wait", queue_wait) + ", ";
  json += HistJson("e2e", e2e) + ", ";
  json += HistJson("preprocess", preprocess) + ", ";
  json += HistJson("forward", forward) + ", ";
  json += HistJson("postprocess", postprocess) + ", ";
  json += ClassJson("interactive", interactive) + ", ";
  json += ClassJson("batch", batch);
  json += "}";
  return json;
}

std::string ServerMetrics::ToString() const {
  const MetricsSnapshot s = Snapshot();
  TablePrinter counters("Serving counters");
  counters.SetHeader({"submitted", "completed", "rejected", "timed out",
                      "batches", "avg batch"});
  counters.AddRow({StrFormat("%lld", static_cast<long long>(s.submitted)),
                   StrFormat("%lld", static_cast<long long>(s.completed)),
                   StrFormat("%lld", static_cast<long long>(s.rejected)),
                   StrFormat("%lld", static_cast<long long>(s.timed_out)),
                   StrFormat("%lld", static_cast<long long>(s.batches)),
                   StrFormat("%.2f", s.mean_batch)});

  TablePrinter latency("Serving latency (ms)");
  latency.SetHeader({"stage", "count", "mean", "p50", "p95", "p99"});
  const struct {
    const char* name;
    const HistogramSnapshot* h;
  } stages[] = {{"queue wait", &s.queue_wait},
                {"preprocess", &s.preprocess},
                {"forward", &s.forward},
                {"postprocess", &s.postprocess},
                {"end to end", &s.e2e}};
  for (const auto& st : stages) {
    latency.AddRow({st.name,
                    StrFormat("%lld", static_cast<long long>(st.h->count)),
                    StrFormat("%.3f", st.h->mean_ms),
                    StrFormat("%.3f", st.h->p50_ms),
                    StrFormat("%.3f", st.h->p95_ms),
                    StrFormat("%.3f", st.h->p99_ms)});
  }
  return counters.ToString() + latency.ToString();
}

}  // namespace serve
}  // namespace thali
