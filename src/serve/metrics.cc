#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "base/table_printer.h"

namespace thali {
namespace serve {

namespace {
constexpr double kFirstUpperMs = 0.01;  // 10µs
constexpr double kRatio = 1.5;
}  // namespace

double LatencyHistogram::BucketUpperMs(int i) {
  return kFirstUpperMs * std::pow(kRatio, i);
}

void LatencyHistogram::Record(double ms) {
  ms = std::max(0.0, ms);
  int bucket = 0;
  double upper = kFirstUpperMs;
  while (bucket < kNumBuckets && ms > upper) {
    upper *= kRatio;
    ++bucket;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<int64_t>(ms * 1e3),
                    std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e3 /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMs(double p) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(n);
  int64_t cumulative = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    const int64_t in_bucket =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate inside the bucket; the overflow bucket has no upper
      // bound, so report its lower edge.
      const double lower = i == 0 ? 0.0 : BucketUpperMs(i - 1);
      if (i == kNumBuckets) return lower;
      const double fraction =
          std::clamp((target - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lower + (BucketUpperMs(i) - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return BucketUpperMs(kNumBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

double ServerMetrics::MeanBatchSize() const {
  const int64_t b = batches.load(std::memory_order_relaxed);
  if (b == 0) return 0.0;
  return static_cast<double>(batched_images.load(std::memory_order_relaxed)) /
         static_cast<double>(b);
}

std::string ServerMetrics::ToString() const {
  TablePrinter counters("Serving counters");
  counters.SetHeader({"submitted", "completed", "rejected", "timed out",
                      "batches", "avg batch"});
  counters.AddRow(
      {StrFormat("%lld", static_cast<long long>(
                             submitted.load(std::memory_order_relaxed))),
       StrFormat("%lld", static_cast<long long>(
                             completed.load(std::memory_order_relaxed))),
       StrFormat("%lld", static_cast<long long>(
                             rejected.load(std::memory_order_relaxed))),
       StrFormat("%lld", static_cast<long long>(
                             timed_out.load(std::memory_order_relaxed))),
       StrFormat("%lld",
                 static_cast<long long>(batches.load(std::memory_order_relaxed))),
       StrFormat("%.2f", MeanBatchSize())});

  TablePrinter latency("Serving latency (ms)");
  latency.SetHeader({"stage", "count", "mean", "p50", "p95", "p99"});
  const struct {
    const char* name;
    const LatencyHistogram* h;
  } stages[] = {{"queue wait", &queue_wait_ms}, {"end to end", &e2e_ms}};
  for (const auto& s : stages) {
    latency.AddRow({s.name, StrFormat("%lld", static_cast<long long>(s.h->count())),
                    StrFormat("%.3f", s.h->MeanMs()),
                    StrFormat("%.3f", s.h->PercentileMs(50)),
                    StrFormat("%.3f", s.h->PercentileMs(95)),
                    StrFormat("%.3f", s.h->PercentileMs(99))});
  }
  return counters.ToString() + latency.ToString();
}

}  // namespace serve
}  // namespace thali
