#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "darknet/weights_io.h"

namespace thali {
namespace serve {

namespace {

double ToMs(ServeClock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Create(
    const Options& options, const DetectorFactory& factory) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.batch_queue_capacity < -1 ||
      options.batch_queue_capacity == 0) {
    return Status::InvalidArgument(
        "batch_queue_capacity must be >= 1 (or -1 to mirror "
        "queue_capacity)");
  }
  if (options.max_batch_size < 1) {
    return Status::InvalidArgument("max_batch_size must be >= 1");
  }
  const double ss = options.admission.shed_start;
  if (ss < 0.0 || ss >= 1.0) {
    return Status::InvalidArgument("admission.shed_start must be in [0, 1)");
  }
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    StatusOr<Detector> det = factory();
    if (!det.ok()) return det.status();
    detectors.push_back(
        std::make_unique<Detector>(std::move(det).value()));
  }
  return std::unique_ptr<Server>(
      new Server(options, std::move(detectors)));
}

Server::Server(const Options& options,
               std::vector<std::unique_ptr<Detector>> detectors)
    : options_(options),
      queue_(static_cast<size_t>(options.queue_capacity),
             static_cast<size_t>(options.batch_queue_capacity > 0
                                     ? options.batch_queue_capacity
                                     : options.queue_capacity)),
      detectors_(std::move(detectors)) {
  workers_.reserve(detectors_.size());
  for (auto& det : detectors_) {
    workers_.emplace_back([this, d = det.get()] { WorkerLoop(d); });
  }
}

Server::~Server() { Shutdown(); }

StatusOr<std::future<Server::Result>> Server::Submit(Image image) {
  SubmitOptions submit;
  if (options_.default_deadline.count() > 0) {
    submit.deadline = ServeClock::now() + options_.default_deadline;
  }
  return Submit(std::move(image), submit);
}

StatusOr<std::future<Server::Result>> Server::Submit(
    Image image, std::chrono::milliseconds deadline) {
  return Submit(std::move(image),
                SubmitOptions{ServeClock::now() + deadline,
                              Priority::kInteractive});
}

StatusOr<std::future<Server::Result>> Server::Submit(
    Image image, ServeClock::time_point deadline) {
  return Submit(std::move(image),
                SubmitOptions{deadline, Priority::kInteractive});
}

double Server::EstimateQueueWaitMs(Priority lane) const {
  const LatencyHistogram& qw = metrics_.queue_wait_ms;
  if (qw.count() < options_.admission.min_wait_samples) return 0.0;
  // A new interactive request waits behind the interactive lane only
  // (strict priority); a batch request waits behind everything.
  const size_t ahead = lane == Priority::kInteractive
                           ? queue_.Depth(Priority::kInteractive)
                           : queue_.Depth();
  // Recent p95 queue wait is what the last requests paid to cross a
  // queue about `Capacity()` deep at the worst; scaling by the current
  // depth fraction lets the estimate fall back toward zero as the
  // backlog drains (the histogram itself never decays).
  return qw.PercentileMs(95) * static_cast<double>(ahead + 1) /
         static_cast<double>(queue_.Capacity());
}

Status Server::Admit(Priority priority, ServeClock::time_point deadline,
                     ServeClock::time_point now) const {
  const AdmissionOptions& ao = options_.admission;
  if (!ao.enabled) return Status::OK();

  if (priority == Priority::kBatch) {
    // Depth-proportional batch shedding: past shed_start the batch
    // lane's effective capacity shrinks linearly with combined pressure,
    // hitting zero at full queues — batch work is always shed before any
    // interactive request is.
    const size_t idep = queue_.Depth(Priority::kInteractive);
    const size_t bdep = queue_.Depth(Priority::kBatch);
    const double pressure = static_cast<double>(idep + bdep) /
                            static_cast<double>(queue_.Capacity());
    if (pressure > ao.shed_start) {
      const double bcap =
          static_cast<double>(queue_.Capacity(Priority::kBatch));
      const double allowed =
          bcap * std::max(0.0, 1.0 - (pressure - ao.shed_start) /
                                         (1.0 - ao.shed_start));
      if (static_cast<double>(bdep) >= allowed) {
        metrics_.shed_pressure.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(StrFormat(
            "batch work shed: queue pressure %.2f, batch depth %zu >= "
            "allowed %.1f",
            pressure, bdep, allowed));
      }
    }
  }

  if (deadline != ServeClock::time_point::max()) {
    const double budget_ms = ToMs(deadline - now);
    const double est_ms = EstimateQueueWaitMs(priority);
    if (est_ms > budget_ms) {
      metrics_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          StrFormat("rejected at admission: estimated queue wait %.1fms "
                    "exceeds deadline budget %.1fms",
                    est_ms, budget_ms));
    }
  }
  return Status::OK();
}

StatusOr<std::future<Server::Result>> Server::Submit(
    Image image, const SubmitOptions& submit) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::PerClass& cls = metrics_.ForClass(submit.priority);
  cls.submitted.fetch_add(1, std::memory_order_relaxed);

  const ServeClock::time_point now = ServeClock::now();
  Status admitted = Admit(submit.priority, submit.deadline, now);
  if (!admitted.ok()) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    cls.rejected.fetch_add(1, std::memory_order_relaxed);
    cls.shed.fetch_add(1, std::memory_order_relaxed);
    return admitted;
  }

  auto req = std::make_unique<Request>();
  req->image = std::move(image);
  req->submit_time = now;
  req->deadline = submit.deadline;
  req->priority = submit.priority;
  std::future<Result> future = req->promise.get_future();
  Status pushed = queue_.TryPush(std::move(req), submit.priority);
  if (!pushed.ok()) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    cls.rejected.fetch_add(1, std::memory_order_relaxed);
    return pushed;
  }
  return future;
}

Status Server::ReloadWeights(const std::string& weights_path) {
  if (!PathExists(weights_path)) {
    return Status::NotFound("weights file not found: " + weights_path);
  }
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    staged_weights_path_ = weights_path;
    // Bumped under the lock so a worker that sees the new generation is
    // guaranteed to read a path at least as new.
    weights_gen_.fetch_add(1, std::memory_order_release);
  }
  return Status::OK();
}

void Server::MaybeReloadWeights(Detector* detector, int64_t* local_gen) {
  // Seqlock-style fast path: one relaxed-ish atomic read per batch; the
  // staging mutex is touched only when a reload is actually pending.
  if (weights_gen_.load(std::memory_order_acquire) == *local_gen) return;
  std::string path;
  int64_t gen;
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    path = staged_weights_path_;
    gen = weights_gen_.load(std::memory_order_acquire);
  }
  StatusOr<int> loaded = LoadWeights(detector->network(), path);
  if (!loaded.ok()) {
    THALI_LOG(Warning) << "hot reload of " << path
                       << " failed; worker keeps old weights: "
                       << loaded.status().ToString();
  } else {
    metrics_.weight_reloads.fetch_add(1, std::memory_order_relaxed);
  }
  // Either way this generation is handled — a failed load must not retry
  // on every batch.
  *local_gen = gen;
}

void Server::WorkerLoop(Detector* detector) {
  Batcher batcher(&queue_,
                  Batcher::Options{options_.max_batch_size,
                                   options_.max_linger},
                  &metrics_);
  int64_t weights_gen = weights_gen_.load(std::memory_order_acquire);
  std::vector<RequestPtr> batch;
  std::vector<Image> images;
  while (batcher.NextBatch(&batch)) {
    // Weight swaps land only at batch boundaries: the batch that is
    // about to run sees one consistent weight version end to end.
    MaybeReloadWeights(detector, &weights_gen);
    images.clear();
    images.reserve(batch.size());
    for (RequestPtr& r : batch) images.push_back(std::move(r->image));

    std::vector<std::vector<Detection>> results =
        detector->DetectBatch(images);
    THALI_CHECK_EQ(results.size(), batch.size());

    const Detector::StageTimes& stages = detector->last_stage_times();
    metrics_.preprocess_ms.Record(stages.preprocess_ms);
    metrics_.forward_ms.Record(stages.forward_ms);
    metrics_.postprocess_ms.Record(stages.postprocess_ms);

    const ServeClock::time_point done = ServeClock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      const double e2e = ToMs(done - batch[i]->submit_time);
      metrics_.e2e_ms.Record(e2e);
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::PerClass& cls = metrics_.ForClass(batch[i]->priority);
      cls.completed.fetch_add(1, std::memory_order_relaxed);
      cls.completed_e2e_ms.Record(e2e);
      batch[i]->promise.set_value(std::move(results[i]));
    }
  }
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  for (std::thread& w : workers_) w.join();
}

}  // namespace serve
}  // namespace thali
