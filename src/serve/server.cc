#include "serve/server.h"

#include <utility>

#include "base/logging.h"

namespace thali {
namespace serve {

namespace {

double ToMs(ServeClock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Create(
    const Options& options, const DetectorFactory& factory) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.max_batch_size < 1) {
    return Status::InvalidArgument("max_batch_size must be >= 1");
  }
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    StatusOr<Detector> det = factory();
    if (!det.ok()) return det.status();
    detectors.push_back(
        std::make_unique<Detector>(std::move(det).value()));
  }
  return std::unique_ptr<Server>(
      new Server(options, std::move(detectors)));
}

Server::Server(const Options& options,
               std::vector<std::unique_ptr<Detector>> detectors)
    : options_(options),
      queue_(static_cast<size_t>(options.queue_capacity)),
      detectors_(std::move(detectors)) {
  workers_.reserve(detectors_.size());
  for (auto& det : detectors_) {
    workers_.emplace_back([this, d = det.get()] { WorkerLoop(d); });
  }
}

Server::~Server() { Shutdown(); }

StatusOr<std::future<Server::Result>> Server::Submit(Image image) {
  if (options_.default_deadline.count() > 0) {
    return Submit(std::move(image),
                  ServeClock::now() + options_.default_deadline);
  }
  return Submit(std::move(image), ServeClock::time_point::max());
}

StatusOr<std::future<Server::Result>> Server::Submit(
    Image image, std::chrono::milliseconds deadline) {
  return Submit(std::move(image), ServeClock::now() + deadline);
}

StatusOr<std::future<Server::Result>> Server::Submit(
    Image image, ServeClock::time_point deadline) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  auto req = std::make_unique<Request>();
  req->image = std::move(image);
  req->submit_time = ServeClock::now();
  req->deadline = deadline;
  std::future<Result> future = req->promise.get_future();
  Status pushed = queue_.TryPush(std::move(req));
  if (!pushed.ok()) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    return pushed;
  }
  return future;
}

void Server::WorkerLoop(Detector* detector) {
  Batcher batcher(&queue_,
                  Batcher::Options{options_.max_batch_size,
                                   options_.max_linger},
                  &metrics_);
  std::vector<RequestPtr> batch;
  std::vector<Image> images;
  while (batcher.NextBatch(&batch)) {
    images.clear();
    images.reserve(batch.size());
    for (RequestPtr& r : batch) images.push_back(std::move(r->image));

    std::vector<std::vector<Detection>> results =
        detector->DetectBatch(images);
    THALI_CHECK_EQ(results.size(), batch.size());

    const ServeClock::time_point done = ServeClock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      metrics_.e2e_ms.Record(ToMs(done - batch[i]->submit_time));
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      batch[i]->promise.set_value(std::move(results[i]));
    }
  }
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  for (std::thread& w : workers_) w.join();
}

}  // namespace serve
}  // namespace thali
