#ifndef THALI_SERVE_METRICS_H_
#define THALI_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/lane_queue.h"

namespace thali {
namespace serve {

// Fixed-bucket latency histogram: 48 geometric buckets from 10µs with
// ratio 1.5 (upper bound of the last bucket ≈ 2 minutes) plus an overflow
// bucket. Record is wait-free (one relaxed fetch_add per bucket counter),
// so the serving hot path never contends on a histogram lock; percentile
// reads are approximate to within one bucket's width (linear interpolation
// inside the winning bucket) and may run concurrently with writers.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  LatencyHistogram() = default;

  // Upper bound of bucket `i` in milliseconds: 0.01 * 1.5^i.
  static double BucketUpperMs(int i);

  // Records one latency sample. Thread-safe; negative values clamp to 0.
  void Record(double ms);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double MeanMs() const;

  // Approximate percentile, p in [0, 100]. Returns 0 with no samples.
  double PercentileMs(double p) const;

  // Forgets every recorded sample.
  void Reset();

 private:
  // buckets_[kNumBuckets] is the overflow bucket.
  std::array<std::atomic<int64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

// Point-in-time export of one histogram: count / mean / p50 / p95 / p99.
// Plain values — consumers (the STATS op, the admission policy, the
// benches) read these without parsing rendered tables.
struct HistogramSnapshot {
  int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// Per-priority-class counters. shed counts admission-policy rejections
// (a subset of rejected); completed_e2e holds latency for requests that
// actually ran — the "accepted p99" the overload bench reports.
struct ClassSnapshot {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t shed = 0;
  HistogramSnapshot completed_e2e;
};

// Struct export of ServerMetrics (see below). Snapshot() assembles it
// from the live atomics; values are mutually consistent only after a
// drain (mid-flight snapshots may catch a request between counters,
// exactly like reading the atomics directly).
struct MetricsSnapshot {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t shed_deadline = 0;  // admission: estimated wait > deadline
  int64_t shed_pressure = 0;  // admission: batch shed on queue pressure
  int64_t weight_reloads = 0;  // per-worker reloads applied
  int64_t batches = 0;
  int64_t batched_images = 0;
  double mean_batch = 0.0;
  HistogramSnapshot queue_wait;
  HistogramSnapshot e2e;
  // Per-executed-batch stage breakdown from the worker's detector
  // (Detector::last_stage_times): letterbox+staging, network forward,
  // head decode + NMS + box remapping.
  HistogramSnapshot preprocess;
  HistogramSnapshot forward;
  HistogramSnapshot postprocess;
  ClassSnapshot interactive;
  ClassSnapshot batch;

  // Renders the snapshot as a flat JSON object (the STATS op payload).
  std::string ToJson() const;
};

// Counters and latency distributions for one Server instance. Every
// submitted request ends in exactly one of {completed, rejected,
// timed_out}, so after a drain the three sum to `submitted` — the
// invariant the serve tests pin. Admission-policy rejections (shed_*)
// are a refinement of `rejected`, never a fourth leg.
struct ServerMetrics {
  // Wait-free per-class counter block (indexed by Priority).
  struct PerClass {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> timed_out{0};
    std::atomic<int64_t> shed{0};
    LatencyHistogram completed_e2e_ms;
  };

  std::atomic<int64_t> submitted{0};   // Submit calls (accepted or not)
  std::atomic<int64_t> completed{0};   // ran the network, future has results
  std::atomic<int64_t> rejected{0};    // bounced (backpressure or shed)
  std::atomic<int64_t> timed_out{0};   // deadline expired while queued
  std::atomic<int64_t> shed_deadline{0};  // ⊂ rejected
  std::atomic<int64_t> shed_pressure{0};  // ⊂ rejected
  std::atomic<int64_t> weight_reloads{0};
  std::atomic<int64_t> batches{0};     // DetectBatch calls issued
  std::atomic<int64_t> batched_images{0};  // total images across batches

  LatencyHistogram queue_wait_ms;  // submit -> picked into a batch
  LatencyHistogram e2e_ms;         // submit -> future completed
  // One sample per executed batch, recorded by the worker from the
  // detector's stage breakdown (so forward + pre/post sum to the
  // in-detector portion of e2e).
  LatencyHistogram preprocess_ms;   // letterbox + input staging
  LatencyHistogram forward_ms;      // network forward
  LatencyHistogram postprocess_ms;  // decode + NMS + box remapping

  std::array<PerClass, 2> per_class;  // indexed by Priority

  PerClass& ForClass(Priority p) {
    return per_class[static_cast<size_t>(p)];
  }
  const PerClass& ForClass(Priority p) const {
    return per_class[static_cast<size_t>(p)];
  }

  double MeanBatchSize() const;

  // Struct export for programmatic consumers (STATS op, admission
  // policy, benches).
  MetricsSnapshot Snapshot() const;

  // Renders the counter table and the latency table (count / mean / p50 /
  // p95 / p99 per histogram) via base/table_printer.
  std::string ToString() const;
};

// Snapshots one histogram (count / mean / p50 / p95 / p99).
HistogramSnapshot SnapshotHistogram(const LatencyHistogram& h);

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_METRICS_H_
