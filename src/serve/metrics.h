#ifndef THALI_SERVE_METRICS_H_
#define THALI_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace thali {
namespace serve {

// Fixed-bucket latency histogram: 48 geometric buckets from 10µs with
// ratio 1.5 (upper bound of the last bucket ≈ 2 minutes) plus an overflow
// bucket. Record is wait-free (one relaxed fetch_add per bucket counter),
// so the serving hot path never contends on a histogram lock; percentile
// reads are approximate to within one bucket's width (linear interpolation
// inside the winning bucket) and may run concurrently with writers.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  LatencyHistogram() = default;

  // Upper bound of bucket `i` in milliseconds: 0.01 * 1.5^i.
  static double BucketUpperMs(int i);

  // Records one latency sample. Thread-safe; negative values clamp to 0.
  void Record(double ms);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double MeanMs() const;

  // Approximate percentile, p in [0, 100]. Returns 0 with no samples.
  double PercentileMs(double p) const;

  // Forgets every recorded sample.
  void Reset();

 private:
  // buckets_[kNumBuckets] is the overflow bucket.
  std::array<std::atomic<int64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

// Counters and latency distributions for one Server instance. Every
// submitted request ends in exactly one of {completed, rejected,
// timed_out}, so after a drain the three sum to `submitted` — the
// invariant the serve tests pin.
struct ServerMetrics {
  std::atomic<int64_t> submitted{0};   // Submit calls (accepted or not)
  std::atomic<int64_t> completed{0};   // ran the network, future has results
  std::atomic<int64_t> rejected{0};    // bounced by queue backpressure
  std::atomic<int64_t> timed_out{0};   // deadline expired while queued
  std::atomic<int64_t> batches{0};     // DetectBatch calls issued
  std::atomic<int64_t> batched_images{0};  // total images across batches

  LatencyHistogram queue_wait_ms;  // submit -> picked into a batch
  LatencyHistogram e2e_ms;         // submit -> future completed

  double MeanBatchSize() const;

  // Renders the counter table and the latency table (count / mean / p50 /
  // p95 / p99 per histogram) via base/table_printer.
  std::string ToString() const;
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_METRICS_H_
