#ifndef THALI_SERVE_QUEUE_H_
#define THALI_SERVE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "base/status.h"

namespace thali {
namespace serve {

// A bounded multi-producer/multi-consumer FIFO with explicit backpressure:
// producers never block — TryPush returns kResourceExhausted when the
// queue is at capacity, so admission control is a visible Status at the
// call site instead of an unbounded wait. Consumers block (optionally with
// a timeout) until an item arrives or the queue is closed.
//
// Close() is the shutdown edge: it rejects further pushes but lets
// consumers drain everything already queued — Pop keeps returning items
// until the queue is empty and only then reports closure. All methods are
// thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `item` if there is room. Returns kResourceExhausted when the
  // queue is full and kFailedPrecondition after Close; `item` is dropped
  // on failure (the caller holds the only other handle to its payload).
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Status::FailedPrecondition("queue closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue full");
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return Status::OK();
  }

  // Blocks until an item is available (sets *out, returns true) or the
  // queue is closed and drained (returns false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  // As Pop, but gives up after `timeout` (returns false). A zero timeout
  // makes this a non-blocking poll.
  bool PopWait(T* out, std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  // Rejects further pushes and wakes every blocked consumer. Items already
  // queued remain poppable (drain-on-shutdown); idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // Instantaneous queue depth — what the admission-control policies key
  // on (src/serve/server.cc, src/net). Same value as size(); the name
  // matches LaneQueue::Depth so policy code reads uniformly. The result
  // is a snapshot: it may be stale by the time the caller acts on it,
  // which shedding tolerates (policies are heuristics, not invariants).
  size_t Depth() const { return size(); }

  size_t capacity() const { return capacity_; }

 private:
  bool PopLocked(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_QUEUE_H_
