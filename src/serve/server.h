#ifndef THALI_SERVE_SERVER_H_
#define THALI_SERVE_SERVER_H_

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "base/statusor.h"
#include "core/detector.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"

namespace thali {
namespace serve {

// In-process inference server: turns concurrent single-image Submit calls
// into dynamic micro-batches executed by a pool of Detector workers.
//
//   caller ──Submit──▶ bounded queue ──Batcher──▶ worker × Detector
//                        (backpressure)  (linger/size)   (DetectBatch)
//
// Each worker owns a private Detector (the Detector thread-safety contract
// admits one caller per instance), so workers batch and run independently;
// the queue is the only cross-thread hand-off. Submit never blocks: a full
// queue is an immediate kResourceExhausted, and requests carry optional
// deadlines that expire while queued without costing network time.
// Shutdown (also run by the destructor) closes the queue, drains every
// queued request — running or expiring it — and joins the workers, so
// every accepted future completes exactly once.
class Server {
 public:
  struct Options {
    int num_workers = 1;
    int queue_capacity = 64;
    int max_batch_size = 8;
    // How long a worker holds an underfull batch open for stragglers.
    std::chrono::microseconds max_linger{2000};
    // Applied by Submit(image); zero means requests never expire.
    std::chrono::milliseconds default_deadline{0};
  };

  using Result = StatusOr<std::vector<Detection>>;
  // Called once per worker so every worker gets a private Detector.
  using DetectorFactory = std::function<StatusOr<Detector>()>;

  // Builds num_workers detectors via `factory` and starts the workers.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Options& options, const DetectorFactory& factory);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues one detection request and returns its future. Fails fast with
  // kResourceExhausted (queue full — the backpressure signal to shed or
  // retry) or kFailedPrecondition (server shut down); on failure no future
  // exists and the request is dropped. The per-Options default deadline
  // applies; the overloads pin an explicit one.
  StatusOr<std::future<Result>> Submit(Image image);
  StatusOr<std::future<Result>> Submit(Image image,
                                       std::chrono::milliseconds deadline);
  StatusOr<std::future<Result>> Submit(Image image,
                                       ServeClock::time_point deadline);

  // Stops admission, drains the queue (every pending request completes
  // with a result or kDeadlineExceeded) and joins the workers. Idempotent.
  void Shutdown();

  const ServerMetrics& metrics() const { return metrics_; }
  const Options& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  Server(const Options& options,
         std::vector<std::unique_ptr<Detector>> detectors);

  void WorkerLoop(Detector* detector);

  Options options_;
  ServerMetrics metrics_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_SERVER_H_
