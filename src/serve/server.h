#ifndef THALI_SERVE_SERVER_H_
#define THALI_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/statusor.h"
#include "core/detector.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"

namespace thali {
namespace serve {

// In-process inference server: turns concurrent single-image Submit calls
// into dynamic micro-batches executed by a pool of Detector workers.
//
//   caller ──Submit──▶ bounded queue ──Batcher──▶ worker × Detector
//                        (backpressure)  (linger/size)   (DetectBatch)
//
// Each worker owns a private Detector (the Detector thread-safety contract
// admits one caller per instance), so workers batch and run independently;
// the queue is the only cross-thread hand-off. Submit never blocks: a full
// queue is an immediate kResourceExhausted, and requests carry optional
// deadlines that expire while queued without costing network time.
// Shutdown (also run by the destructor) closes the queue, drains every
// queued request — running or expiring it — and joins the workers, so
// every accepted future completes exactly once.
//
// Requests carry a priority class (interactive / batch) mapped to two
// independently-bounded queue lanes; workers drain interactive first (see
// LaneQueue). With Options::admission enabled, Submit additionally applies
// load shedding before the push: batch-class work is shed in proportion to
// combined queue depth, and any request whose deadline budget is already
// smaller than the estimated queue wait (derived from the live queue-wait
// histogram) is rejected at admission instead of expiring later.
class Server {
 public:
  // Admission-control policy knobs (all applied by Submit; the queues
  // themselves enforce only per-lane capacity).
  struct AdmissionOptions {
    bool enabled = false;
    // Combined-depth fraction where batch-class shedding begins. From
    // there the batch lane's effective capacity shrinks linearly,
    // reaching zero when both lanes are full — depth-proportional
    // shedding of batch work strictly before interactive work.
    double shed_start = 0.25;
    // Deadline-aware early rejection fires only once the queue-wait
    // histogram has this many samples (cold-start guard).
    int64_t min_wait_samples = 32;
  };

  struct Options {
    int num_workers = 1;
    int queue_capacity = 64;
    // Capacity of the batch-priority lane; -1 mirrors queue_capacity.
    int batch_queue_capacity = -1;
    int max_batch_size = 8;
    // How long a worker holds an underfull batch open for stragglers.
    std::chrono::microseconds max_linger{2000};
    // Applied by Submit(image); zero means requests never expire.
    std::chrono::milliseconds default_deadline{0};
    AdmissionOptions admission;
  };

  // Per-request submit parameters for the full-control overload.
  struct SubmitOptions {
    // time_point::max() means no deadline.
    ServeClock::time_point deadline = ServeClock::time_point::max();
    Priority priority = Priority::kInteractive;
  };

  using Result = StatusOr<std::vector<Detection>>;
  // Called once per worker so every worker gets a private Detector.
  using DetectorFactory = std::function<StatusOr<Detector>()>;

  // Builds num_workers detectors via `factory` and starts the workers.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Options& options, const DetectorFactory& factory);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues one detection request and returns its future. Fails fast with
  // kResourceExhausted (queue full — the backpressure signal to shed or
  // retry) or kFailedPrecondition (server shut down); on failure no future
  // exists and the request is dropped. The per-Options default deadline
  // applies; the overloads pin an explicit one.
  StatusOr<std::future<Result>> Submit(Image image);
  StatusOr<std::future<Result>> Submit(Image image,
                                       std::chrono::milliseconds deadline);
  StatusOr<std::future<Result>> Submit(Image image,
                                       ServeClock::time_point deadline);
  // Full-control overload: deadline + priority class. Admission control
  // (when enabled) runs here; a shed request returns kResourceExhausted
  // (pressure shed) or kDeadlineExceeded (estimated wait exceeds the
  // deadline budget) without ever occupying a queue slot.
  StatusOr<std::future<Result>> Submit(Image image,
                                       const SubmitOptions& submit);

  // Stages a new weights file and bumps the weights generation: each
  // worker notices between batches and reloads its private Detector
  // before forming the next one, so in-flight batches always finish on
  // the weights they started with and no request is ever dropped by a
  // reload. Generation hand-off is seqlock-flavored: workers spin-check
  // the atomic generation (no lock on the hot path) and take the staging
  // mutex only when stale. Returns kNotFound if `path` does not exist;
  // a worker whose reload fails keeps serving its old weights.
  Status ReloadWeights(const std::string& weights_path);

  // Generation of the most recently staged weights (0 = initial build).
  int64_t weights_generation() const {
    return weights_gen_.load(std::memory_order_acquire);
  }

  // Stops admission, drains the queue (every pending request completes
  // with a result or kDeadlineExceeded) and joins the workers. Idempotent.
  void Shutdown();

  const ServerMetrics& metrics() const { return metrics_; }
  const Options& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Live lane depths/capacities — the inputs the network front-end's
  // admission decisions and the STATS op report.
  size_t LaneDepth(Priority lane) const { return queue_.Depth(lane); }
  size_t LaneCapacity(Priority lane) const { return queue_.Capacity(lane); }

  // Estimated queue wait for a request entering `lane` now, in ms, from
  // the live queue-wait histogram: recent p95 wait scaled by how deep the
  // queue currently is relative to total capacity (so the estimate decays
  // as the backlog drains even though histograms never forget). Returns 0
  // until the histogram has admission.min_wait_samples samples.
  double EstimateQueueWaitMs(Priority lane) const;

 private:
  Server(const Options& options,
         std::vector<std::unique_ptr<Detector>> detectors);

  void WorkerLoop(Detector* detector);
  // Admission-policy gate for one request; OK means "push it".
  Status Admit(Priority priority, ServeClock::time_point deadline,
               ServeClock::time_point now) const;
  // Reloads `detector` if `local_gen` is behind the staged generation.
  void MaybeReloadWeights(Detector* detector, int64_t* local_gen);

  Options options_;
  mutable ServerMetrics metrics_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;

  // Hot-reload staging: generation checked lock-free by workers; the
  // path itself is guarded by staged_mu_.
  std::atomic<int64_t> weights_gen_{0};
  std::mutex staged_mu_;
  std::string staged_weights_path_;  // guarded by staged_mu_
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_SERVER_H_
