#ifndef THALI_SERVE_ROUTER_H_
#define THALI_SERVE_ROUTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "serve/server.h"

namespace thali {
namespace serve {

// Multi-model router: a registry of named serve::Server instances (one
// per model, each with its own worker pool, queues and metrics) plus a
// routing rule for requests that do not pin a model:
//
//   * a default model (the first registered, unless overridden), and
//   * an optional percentage A/B split diverting a fixed fraction of
//     default-routed traffic to a second model (canary / baseline
//     comparison — e.g. yolov4-thali vs the SSD baseline).
//
// The split is counter-based, not random: request k of every 100 goes to
// B iff k < percent_to_b, so traffic shares are exact and deterministic
// (reproducible load tests). Explicit model ids bypass the split.
//
// Hot weight reload delegates to Server::ReloadWeights — the versioned
// blob swap is per-model, workers pick it up between batches, in-flight
// requests finish on the weights they started with.
//
// Thread-safety: AddModel/SetDefault/SetAbSplit are registration-time
// calls guarded by a mutex; Route is safe concurrently with them.
// Servers live until the router is destroyed, so a routed Server* stays
// valid for the caller's submit.
class ModelRouter {
 public:
  ModelRouter() = default;
  ~ModelRouter() { ShutdownAll(); }

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  // Builds and registers a named model server. The first model added
  // becomes the default route. kInvalidArgument on a duplicate name.
  Status AddModel(const std::string& name, const Server::Options& options,
                  const Server::DetectorFactory& factory);

  // Makes `name` the default route. kNotFound if unregistered.
  Status SetDefaultModel(const std::string& name);

  // Diverts `percent_to_b` of every 100 default-routed requests to model
  // `b_name` (0 clears the split). kNotFound if unregistered,
  // kInvalidArgument outside [0, 100].
  Status SetAbSplit(const std::string& b_name, int percent_to_b);

  // Resolves a request's model id: "" routes via default + A/B split; a
  // name routes to that model (kNotFound if absent).
  StatusOr<Server*> Route(const std::string& model_id);

  // Direct lookup without advancing the A/B counter; nullptr if absent.
  Server* Find(const std::string& name);

  // Stages new weights for `name` (see Server::ReloadWeights).
  Status ReloadWeights(const std::string& name,
                       const std::string& weights_path);

  std::vector<std::string> ModelNames() const;
  std::string DefaultModelName() const;

  // Aggregated stats for the STATS op: one JSON object keyed by model
  // name, each value a ServerMetrics snapshot plus live lane depths.
  std::string StatsJson() const;

  // Shuts down every registered server (idempotent; also run by the
  // destructor).
  void ShutdownAll();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Server> server;
  };

  Entry* FindLocked(const std::string& name);
  const Entry* FindLocked(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<Entry> models_;        // guarded by mu_ (pointers stable:
                                     // Server objects are heap-owned)
  std::string default_model_;        // guarded by mu_
  std::string ab_model_;             // guarded by mu_; "" = no split
  int ab_percent_ = 0;               // guarded by mu_
  std::atomic<uint64_t> ab_counter_{0};
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_ROUTER_H_
