#include "serve/router.h"

#include <utility>

#include "base/string_util.h"

namespace thali {
namespace serve {

ModelRouter::Entry* ModelRouter::FindLocked(const std::string& name) {
  for (Entry& e : models_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const ModelRouter::Entry* ModelRouter::FindLocked(
    const std::string& name) const {
  for (const Entry& e : models_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Status ModelRouter::AddModel(const std::string& name,
                             const Server::Options& options,
                             const Server::DetectorFactory& factory) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (FindLocked(name) != nullptr) {
      return Status::InvalidArgument("duplicate model name: " + name);
    }
  }
  // Build outside the lock: detector construction is seconds of work and
  // Route must stay responsive while a canary spins up.
  StatusOr<std::unique_ptr<Server>> server = Server::Create(options, factory);
  if (!server.ok()) return server.status();

  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(name) != nullptr) {
    return Status::InvalidArgument("duplicate model name: " + name);
  }
  models_.push_back(Entry{name, std::move(server).value()});
  if (default_model_.empty()) default_model_ = name;
  return Status::OK();
}

Status ModelRouter::SetDefaultModel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(name) == nullptr) {
    return Status::NotFound("unknown model: " + name);
  }
  default_model_ = name;
  return Status::OK();
}

Status ModelRouter::SetAbSplit(const std::string& b_name, int percent_to_b) {
  if (percent_to_b < 0 || percent_to_b > 100) {
    return Status::InvalidArgument("percent_to_b must be in [0, 100]");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (percent_to_b == 0) {
    ab_model_.clear();
    ab_percent_ = 0;
    return Status::OK();
  }
  if (FindLocked(b_name) == nullptr) {
    return Status::NotFound("unknown model: " + b_name);
  }
  ab_model_ = b_name;
  ab_percent_ = percent_to_b;
  return Status::OK();
}

StatusOr<Server*> ModelRouter::Route(const std::string& model_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.empty()) return Status::FailedPrecondition("no models");
  if (!model_id.empty()) {
    Entry* e = FindLocked(model_id);
    if (e == nullptr) return Status::NotFound("unknown model: " + model_id);
    return e->server.get();
  }
  std::string name = default_model_;
  if (ab_percent_ > 0) {
    const uint64_t k =
        ab_counter_.fetch_add(1, std::memory_order_relaxed) % 100;
    if (k < static_cast<uint64_t>(ab_percent_)) name = ab_model_;
  }
  Entry* e = FindLocked(name);
  if (e == nullptr) return Status::NotFound("unknown model: " + name);
  return e->server.get();
}

Server* ModelRouter::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLocked(name);
  return e == nullptr ? nullptr : e->server.get();
}

Status ModelRouter::ReloadWeights(const std::string& name,
                                  const std::string& weights_path) {
  Server* server = Find(name);
  if (server == nullptr) return Status::NotFound("unknown model: " + name);
  return server->ReloadWeights(weights_path);
}

std::vector<std::string> ModelRouter::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const Entry& e : models_) names.push_back(e.name);
  return names;
}

std::string ModelRouter::DefaultModelName() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_model_;
}

std::string ModelRouter::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{";
  json += StrFormat("\"default_model\": \"%s\", ", default_model_.c_str());
  json += StrFormat("\"ab_model\": \"%s\", \"ab_percent\": %d, ",
                    ab_model_.c_str(), ab_percent_);
  json += "\"models\": {";
  for (size_t i = 0; i < models_.size(); ++i) {
    const Entry& e = models_[i];
    json += StrFormat(
        "\"%s\": {\"weights_generation\": %lld, "
        "\"interactive_depth\": %zu, \"batch_depth\": %zu, \"metrics\": %s}",
        e.name.c_str(),
        static_cast<long long>(e.server->weights_generation()),
        e.server->LaneDepth(Priority::kInteractive),
        e.server->LaneDepth(Priority::kBatch),
        e.server->metrics().Snapshot().ToJson().c_str());
    if (i + 1 < models_.size()) json += ", ";
  }
  json += "}}";
  return json;
}

void ModelRouter::ShutdownAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : models_) e.server->Shutdown();
}

}  // namespace serve
}  // namespace thali
