#ifndef THALI_SERVE_LANE_QUEUE_H_
#define THALI_SERVE_LANE_QUEUE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "base/status.h"

namespace thali {
namespace serve {

// Request priority classes. Interactive requests (a user waiting on a
// platter photo) are served before batch requests (offline re-scoring,
// crawlers); the admission layer sheds batch work first under pressure.
enum class Priority { kInteractive = 0, kBatch = 1 };

inline const char* PriorityName(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

// A two-lane bounded MPMC queue: one independently-bounded FIFO lane per
// priority class, drained through a single consumer interface. Producers
// never block (TryPush returns kResourceExhausted when the target lane is
// full); consumers block until either lane has an item or the queue is
// closed, exactly like BoundedQueue.
//
// Pop order is strict priority — interactive first — with a bounded
// anti-starvation concession: every kBatchPreferEvery-th pop services the
// batch lane first if it is non-empty, so batch work keeps trickling
// through even under a saturating interactive stream. (Shedding, not
// fairness, is the main batch-lane control under overload — see
// Server::Options::admission.)
//
// Close() keeps BoundedQueue's drain-on-shutdown contract: pushes are
// rejected, consumers drain both lanes, then Pop reports closure.
template <typename T>
class LaneQueue {
 public:
  static constexpr int kNumLanes = 2;
  // Every 4th pop lets the batch lane go first (anti-starvation).
  static constexpr int kBatchPreferEvery = 4;

  LaneQueue(size_t interactive_capacity, size_t batch_capacity)
      : caps_{interactive_capacity, batch_capacity} {}
  // Single-capacity convenience: each lane gets `capacity` slots.
  explicit LaneQueue(size_t capacity) : LaneQueue(capacity, capacity) {}

  LaneQueue(const LaneQueue&) = delete;
  LaneQueue& operator=(const LaneQueue&) = delete;

  // Enqueues `item` on `lane` if that lane has room. kResourceExhausted
  // when the lane is full, kFailedPrecondition after Close.
  Status TryPush(T item, Priority lane = Priority::kInteractive) {
    const size_t li = static_cast<size_t>(lane);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Status::FailedPrecondition("queue closed");
      if (lanes_[li].size() >= caps_[li]) {
        return Status::ResourceExhausted("lane full");
      }
      lanes_[li].push_back(std::move(item));
    }
    cv_.notify_one();
    return Status::OK();
  }

  // Blocks until an item is available in either lane (sets *out, returns
  // true) or the queue is closed and both lanes drained (returns false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !EmptyLocked(); });
    return PopLocked(out);
  }

  // As Pop, but gives up after `timeout` (returns false). A zero timeout
  // makes this a non-blocking poll.
  bool PopWait(T* out, std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [this] { return closed_ || !EmptyLocked(); });
    return PopLocked(out);
  }

  // Rejects further pushes and wakes every blocked consumer; queued items
  // in both lanes remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Instantaneous depth of one lane / both lanes (snapshot semantics, as
  // BoundedQueue::Depth).
  size_t Depth(Priority lane) const {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_[static_cast<size_t>(lane)].size();
  }
  size_t Depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_[0].size() + lanes_[1].size();
  }

  size_t Capacity(Priority lane) const {
    return caps_[static_cast<size_t>(lane)];
  }
  size_t Capacity() const { return caps_[0] + caps_[1]; }

 private:
  bool EmptyLocked() const { return lanes_[0].empty() && lanes_[1].empty(); }

  bool PopLocked(T* out) {
    if (EmptyLocked()) return false;
    size_t li = 0;  // interactive unless empty or anti-starvation trips
    const bool prefer_batch =
        ++pops_ % kBatchPreferEvery == 0 && !lanes_[1].empty();
    if (prefer_batch || lanes_[0].empty()) li = 1;
    *out = std::move(lanes_[li].front());
    lanes_[li].pop_front();
    return true;
  }

  const std::array<size_t, kNumLanes> caps_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<T>, kNumLanes> lanes_;
  bool closed_ = false;
  uint64_t pops_ = 0;  // guarded by mu_
};

}  // namespace serve
}  // namespace thali

#endif  // THALI_SERVE_LANE_QUEUE_H_
