#include "image/image.h"

#include <algorithm>
#include <cmath>

#include "base/fastpre.h"
#include "image/image_prepost.h"

namespace thali {

void Image::BlendPixel(int y, int x, const Color& color, float alpha) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  if (alpha <= 0.0f) return;
  alpha = std::min(alpha, 1.0f);
  Color old = GetPixel(y, x);
  SetPixel(y, x,
           Color{alpha * color.r + (1 - alpha) * old.r,
                 alpha * color.g + (1 - alpha) * old.g,
                 alpha * color.b + (1 - alpha) * old.b});
}

void Image::FillColor(const Color& color) {
  THALI_CHECK_GE(channels_, 3);
  const size_t plane = static_cast<size_t>(width_) * height_;
  std::fill(data_.begin(), data_.begin() + plane, color.r);
  std::fill(data_.begin() + plane, data_.begin() + 2 * plane, color.g);
  std::fill(data_.begin() + 2 * plane, data_.begin() + 3 * plane, color.b);
}

void Image::Clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

Image Resize(const Image& src, int new_width, int new_height) {
  THALI_CHECK(!src.empty());
  Image dst(new_width, new_height, src.channels());
  if (FastPreEnabled()) {
    // Table-driven kernel family (image_prepost.h). The scalar family is
    // bitwise identical to the reference loop below; the AVX2 family is
    // covered by the documented tolerance.
    ResizeIntoPlanes(src, new_width, new_height, dst.data());
    return dst;
  }
  const float sx =
      new_width > 1 ? static_cast<float>(src.width() - 1) / (new_width - 1)
                    : 0.0f;
  const float sy =
      new_height > 1 ? static_cast<float>(src.height() - 1) / (new_height - 1)
                     : 0.0f;
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < new_height; ++y) {
      const float fy = y * sy;
      const int y0 = static_cast<int>(fy);
      const int y1 = std::min(y0 + 1, src.height() - 1);
      const float wy = fy - y0;
      for (int x = 0; x < new_width; ++x) {
        const float fx = x * sx;
        const int x0 = static_cast<int>(fx);
        const int x1 = std::min(x0 + 1, src.width() - 1);
        const float wx = fx - x0;
        const float v = (1 - wy) * ((1 - wx) * src.at(c, y0, x0) +
                                    wx * src.at(c, y0, x1)) +
                        wy * ((1 - wx) * src.at(c, y1, x0) +
                              wx * src.at(c, y1, x1));
        dst.set(c, y, x, v);
      }
    }
  }
  return dst;
}

Letterbox LetterboxImage(const Image& src, int target_w, int target_h) {
  Letterbox out;
  out.image = Image(target_w, target_h, src.channels());
  if (FastPreEnabled()) {
    // No intermediate resized Image, no full-canvas pre-fill: the row
    // kernels write the interior straight into the canvas and only the
    // pad bands are grey-filled.
    const LetterboxGeometry g =
        LetterboxIntoPlanes(src, target_w, target_h, out.image.data());
    out.scale = g.scale;
    out.pad_x = g.pad_x;
    out.pad_y = g.pad_y;
    return out;
  }
  const float scale =
      std::min(static_cast<float>(target_w) / src.width(),
               static_cast<float>(target_h) / src.height());
  const int new_w = std::max(1, static_cast<int>(src.width() * scale));
  const int new_h = std::max(1, static_cast<int>(src.height() * scale));
  Image resized = Resize(src, new_w, new_h);

  out.pad_x = (target_w - new_w) / 2;
  out.pad_y = (target_h - new_h) / 2;
  out.scale = scale;
  // Grey-fill only the pad bands; Paste overwrites the interior rectangle
  // exactly, so pre-filling the whole canvas was wasted work.
  const int64_t plane = static_cast<int64_t>(target_w) * target_h;
  for (int c = 0; c < src.channels(); ++c) {
    float* p = out.image.data() + c * plane;
    std::fill(p, p + static_cast<int64_t>(out.pad_y) * target_w, 0.5f);
    float* bottom = p + static_cast<int64_t>(out.pad_y + new_h) * target_w;
    std::fill(bottom, p + plane, 0.5f);
    for (int y = 0; y < new_h; ++y) {
      float* row = p + static_cast<int64_t>(out.pad_y + y) * target_w;
      std::fill(row, row + out.pad_x, 0.5f);
      std::fill(row + out.pad_x + new_w, row + target_w, 0.5f);
    }
  }
  Paste(resized, out.pad_x, out.pad_y, out.image);
  return out;
}

void RgbToHsv(float r, float g, float b, float* h, float* s, float* v) {
  const float mx = std::max({r, g, b});
  const float mn = std::min({r, g, b});
  const float d = mx - mn;
  *v = mx;
  *s = mx > 0 ? d / mx : 0.0f;
  if (d <= 1e-12f) {
    *h = 0.0f;
    return;
  }
  float hh;
  if (mx == r) {
    hh = (g - b) / d;
    if (hh < 0) hh += 6.0f;
  } else if (mx == g) {
    hh = (b - r) / d + 2.0f;
  } else {
    hh = (r - g) / d + 4.0f;
  }
  *h = hh / 6.0f;
}

void HsvToRgb(float h, float s, float v, float* r, float* g, float* b) {
  h = h - std::floor(h);  // wrap into [0,1)
  const float hh = h * 6.0f;
  const int i = static_cast<int>(hh) % 6;
  const float f = hh - std::floor(hh);
  const float p = v * (1 - s);
  const float q = v * (1 - s * f);
  const float t = v * (1 - s * (1 - f));
  switch (i) {
    case 0: *r = v; *g = t; *b = p; break;
    case 1: *r = q; *g = v; *b = p; break;
    case 2: *r = p; *g = v; *b = t; break;
    case 3: *r = p; *g = q; *b = v; break;
    case 4: *r = t; *g = p; *b = v; break;
    default: *r = v; *g = p; *b = q; break;
  }
}

void DistortImageHsv(Image& img, float hue_shift, float sat_scale,
                     float val_scale) {
  THALI_CHECK_GE(img.channels(), 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Color c = img.GetPixel(y, x);
      float h, s, v;
      RgbToHsv(c.r, c.g, c.b, &h, &s, &v);
      h += hue_shift;
      s = std::clamp(s * sat_scale, 0.0f, 1.0f);
      v = std::clamp(v * val_scale, 0.0f, 1.0f);
      HsvToRgb(h, s, v, &c.r, &c.g, &c.b);
      img.SetPixel(y, x, c);
    }
  }
}

void FlipHorizontal(Image& img) {
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width() / 2; ++x) {
        const int mx = img.width() - 1 - x;
        const float a = img.at(c, y, x);
        img.set(c, y, x, img.at(c, y, mx));
        img.set(c, y, mx, a);
      }
    }
  }
}

void Paste(const Image& src, int x, int y, Image& dst) {
  THALI_CHECK_EQ(src.channels(), dst.channels());
  const int x0 = std::max(0, -x);
  const int y0 = std::max(0, -y);
  const int x1 = std::min(src.width(), dst.width() - x);
  const int y1 = std::min(src.height(), dst.height() - y);
  for (int c = 0; c < src.channels(); ++c) {
    for (int sy = y0; sy < y1; ++sy) {
      for (int sx = x0; sx < x1; ++sx) {
        dst.set(c, sy + y, sx + x, src.at(c, sy, sx));
      }
    }
  }
}

Image Crop(const Image& src, int x, int y, int w, int h) {
  Image out(w, h, src.channels());
  for (int c = 0; c < src.channels(); ++c) {
    for (int oy = 0; oy < h; ++oy) {
      for (int ox = 0; ox < w; ++ox) {
        out.set(c, oy, ox, src.GetClipped(c, y + oy, x + ox));
      }
    }
  }
  return out;
}

}  // namespace thali
