#include "image/image_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "base/file_util.h"
#include "base/string_util.h"

namespace thali {

namespace {
uint8_t FloatToByte(float v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}
}  // namespace

Status WritePpm(const Image& img, const std::string& path) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.channels() < 3) return Status::InvalidArgument("PPM needs RGB");
  std::string out;
  out.reserve(32 + static_cast<size_t>(img.width()) * img.height() * 3);
  out += StrFormat("P6\n%d %d\n255\n", img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.push_back(static_cast<char>(FloatToByte(img.at(0, y, x))));
      out.push_back(static_cast<char>(FloatToByte(img.at(1, y, x))));
      out.push_back(static_cast<char>(FloatToByte(img.at(2, y, x))));
    }
  }
  return WriteStringToFile(path, out);
}

StatusOr<Image> ReadPpm(const std::string& path) {
  THALI_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(path));
  // Header: "P6" ws width ws height ws maxval single-ws, then binary data.
  size_t pos = 0;
  auto next_token = [&]() -> StatusOr<std::string> {
    while (pos < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[pos]))) {
      ++pos;
    }
    if (pos < raw.size() && raw[pos] == '#') {  // comment line
      while (pos < raw.size() && raw[pos] != '\n') ++pos;
      while (pos < raw.size() &&
             std::isspace(static_cast<unsigned char>(raw[pos]))) {
        ++pos;
      }
    }
    size_t start = pos;
    while (pos < raw.size() &&
           !std::isspace(static_cast<unsigned char>(raw[pos]))) {
      ++pos;
    }
    if (start == pos) return Status::Corruption("truncated PPM header");
    return raw.substr(start, pos - start);
  };

  THALI_ASSIGN_OR_RETURN(std::string magic, next_token());
  if (magic != "P6") return Status::Corruption("not a P6 PPM: " + path);
  THALI_ASSIGN_OR_RETURN(std::string ws, next_token());
  THALI_ASSIGN_OR_RETURN(std::string hs, next_token());
  THALI_ASSIGN_OR_RETURN(std::string ms, next_token());
  THALI_ASSIGN_OR_RETURN(int w, ParseInt(ws));
  THALI_ASSIGN_OR_RETURN(int h, ParseInt(hs));
  THALI_ASSIGN_OR_RETURN(int maxval, ParseInt(ms));
  if (w <= 0 || h <= 0 || maxval != 255) {
    return Status::Corruption("unsupported PPM geometry");
  }
  ++pos;  // single whitespace after maxval
  const size_t need = static_cast<size_t>(w) * h * 3;
  if (raw.size() - pos < need) return Status::Corruption("truncated PPM data");

  Image img(w, h, 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        img.set(c, y, x,
                static_cast<uint8_t>(raw[pos++]) / 255.0f);
      }
    }
  }
  return img;
}

Status WriteBmp(const Image& img, const std::string& path) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.channels() < 3) return Status::InvalidArgument("BMP needs RGB");
  const int w = img.width();
  const int h = img.height();
  const int row_bytes = (w * 3 + 3) & ~3;
  const uint32_t data_size = static_cast<uint32_t>(row_bytes) * h;
  const uint32_t file_size = 54 + data_size;

  std::string out(54 + data_size, '\0');
  auto put16 = [&](size_t off, uint16_t v) {
    out[off] = static_cast<char>(v & 0xff);
    out[off + 1] = static_cast<char>(v >> 8);
  };
  auto put32 = [&](size_t off, uint32_t v) {
    for (int i = 0; i < 4; ++i) out[off + i] = static_cast<char>(v >> (8 * i));
  };
  out[0] = 'B';
  out[1] = 'M';
  put32(2, file_size);
  put32(10, 54);
  put32(14, 40);
  put32(18, static_cast<uint32_t>(w));
  put32(22, static_cast<uint32_t>(h));
  put16(26, 1);
  put16(28, 24);
  put32(34, data_size);
  put32(38, 2835);
  put32(42, 2835);

  size_t off = 54;
  for (int y = h - 1; y >= 0; --y) {  // BMP stores bottom-up
    size_t row_start = off;
    for (int x = 0; x < w; ++x) {
      out[off++] = static_cast<char>(FloatToByte(img.at(2, y, x)));
      out[off++] = static_cast<char>(FloatToByte(img.at(1, y, x)));
      out[off++] = static_cast<char>(FloatToByte(img.at(0, y, x)));
    }
    off = row_start + row_bytes;  // zero padding already present
  }
  return WriteStringToFile(path, out);
}

std::string AsciiArt(const Image& img, int cols) {
  static const char kRamp[] = " .:-=+*#%@";
  cols = std::max(4, std::min(cols, img.width()));
  const int rows = std::max(
      2, static_cast<int>(cols * (static_cast<float>(img.height()) /
                                  img.width()) *
                          0.5f));  // terminal cells are ~2x tall
  std::ostringstream os;
  for (int ry = 0; ry < rows; ++ry) {
    for (int rx = 0; rx < cols; ++rx) {
      const int x0 = rx * img.width() / cols;
      const int x1 = std::max(x0 + 1, (rx + 1) * img.width() / cols);
      const int y0 = ry * img.height() / rows;
      const int y1 = std::max(y0 + 1, (ry + 1) * img.height() / rows);
      float lum = 0.0f;
      int n = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          const Color c = img.GetPixel(y, x);
          lum += 0.299f * c.r + 0.587f * c.g + 0.114f * c.b;
          ++n;
        }
      }
      lum /= std::max(1, n);
      const int idx = std::clamp(static_cast<int>(lum * 9.99f), 0, 9);
      os << kRamp[idx];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace thali
