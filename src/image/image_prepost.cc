#include "image/image_prepost.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "base/cpu_features.h"
#include "base/logging.h"
#include "image/image_prepost_impl.h"
#include "tensor/gemm_int8.h"

namespace thali {

namespace {

using prepost_detail::ResizeKernel;

// Dispatch override for tests: 0 = auto, 1 = scalar, 2 = avx2.
std::atomic<int> g_resize_override{0};

// The seed Resize expression with the per-column indices/weights read
// from tables instead of recomputed. The table entries hold the exact
// floats the seed loop computes (same fx = x*sx derivation), and the
// whole build runs -ffp-contract=off, so this is bitwise identical to
// image.cc's reference loop.
void ResizeRowScalar(const float* r0, const float* r1, float wy,
                     const int32_t* ix0, const int32_t* ix1, const float* wx,
                     int nw, float* dst) {
  for (int x = 0; x < nw; ++x) {
    const float w = wx[x];
    const float v =
        (1 - wy) * ((1 - w) * r0[ix0[x]] + w * r0[ix1[x]]) +
        wy * ((1 - w) * r1[ix0[x]] + w * r1[ix1[x]]);
    dst[x] = v;
  }
}

const ResizeKernel kScalarResizeKernel = {
    /*name=*/"scalar-resize",
    /*row=*/&ResizeRowScalar,
};

const ResizeKernel* DetectResizeKernel() {
  const ResizeKernel* avx2 = prepost_detail::Avx2ResizeKernel();
  if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return avx2;
  return &kScalarResizeKernel;
}

const ResizeKernel& SelectResizeKernel() {
  switch (g_resize_override.load(std::memory_order_acquire)) {
    case 1:
      return kScalarResizeKernel;
    case 2: {
      const ResizeKernel* avx2 = prepost_detail::Avx2ResizeKernel();
      if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return *avx2;
      break;
    }
    default:
      break;
  }
  static const ResizeKernel* const detected = DetectResizeKernel();
  return *detected;
}

// Per-axis bilinear taps: for destination coordinate i, the two source
// indices and the interpolation weight — the exact values the seed loop
// derives per pixel (fx = i*s; i0 = (int)fx; i1 = min(i0+1, src_n-1);
// w = fx - i0), computed once per geometry instead of per element.
struct AxisTable {
  std::vector<int32_t> i0, i1;
  std::vector<float> w;
};

void BuildAxisTable(int src_n, int dst_n, AxisTable* t) {
  const float s =
      dst_n > 1 ? static_cast<float>(src_n - 1) / (dst_n - 1) : 0.0f;
  t->i0.resize(static_cast<size_t>(dst_n));
  t->i1.resize(static_cast<size_t>(dst_n));
  t->w.resize(static_cast<size_t>(dst_n));
  for (int i = 0; i < dst_n; ++i) {
    const float f = i * s;
    const int j = static_cast<int>(f);
    t->i0[static_cast<size_t>(i)] = j;
    t->i1[static_cast<size_t>(i)] = std::min(j + 1, src_n - 1);
    t->w[static_cast<size_t>(i)] = f - j;
  }
}

// Runs the row kernel for every (channel, row) of a resize of `src` to
// (new_w, new_h). `dest(c, y)` returns the float row the kernel writes
// (a staging row, or a scratch row the `post` hook consumes);
// `post(c, y, row)` runs after the kernel finishes that row (the
// quantized variant requantizes there; the plain variants pass a no-op).
template <typename DestRow, typename PostRow>
void ForEachResizedRow(const Image& src, int new_w, int new_h,
                       const DestRow& dest, const PostRow& post) {
  AxisTable xt, yt;
  BuildAxisTable(src.width(), new_w, &xt);
  BuildAxisTable(src.height(), new_h, &yt);
  const ResizeKernel& kernel = SelectResizeKernel();
  const int sw = src.width();
  const int sh = src.height();
  const float* base = src.data();
  const int64_t splane = static_cast<int64_t>(sw) * sh;
  for (int c = 0; c < src.channels(); ++c) {
    const float* plane = base + c * splane;
    for (int y = 0; y < new_h; ++y) {
      const float* r0 = plane + static_cast<int64_t>(yt.i0[y]) * sw;
      const float* r1 = plane + static_cast<int64_t>(yt.i1[y]) * sw;
      float* dst_row = dest(c, y);
      kernel.row(r0, r1, yt.w[y], xt.i0.data(), xt.i1.data(), xt.w.data(),
                 new_w, dst_row);
      post(c, y, dst_row);
    }
  }
}

void NoPost(int, int, const float*) {}

constexpr float kPadGrey = 0.5f;

}  // namespace

LetterboxGeometry ComputeLetterboxGeometry(int src_w, int src_h, int target_w,
                                           int target_h) {
  LetterboxGeometry g;
  g.scale = std::min(static_cast<float>(target_w) / src_w,
                     static_cast<float>(target_h) / src_h);
  g.new_w = std::max(1, static_cast<int>(src_w * g.scale));
  g.new_h = std::max(1, static_cast<int>(src_h * g.scale));
  g.pad_x = (target_w - g.new_w) / 2;
  g.pad_y = (target_h - g.new_h) / 2;
  return g;
}

void ResizeIntoPlanes(const Image& src, int new_w, int new_h, float* dst) {
  THALI_CHECK(!src.empty());
  const int64_t dplane = static_cast<int64_t>(new_w) * new_h;
  ForEachResizedRow(
      src, new_w, new_h,
      [&](int c, int y) {
        return dst + c * dplane + static_cast<int64_t>(y) * new_w;
      },
      NoPost);
}

LetterboxGeometry LetterboxIntoPlanes(const Image& src, int target_w,
                                      int target_h, float* dst) {
  THALI_CHECK(!src.empty());
  const LetterboxGeometry g =
      ComputeLetterboxGeometry(src.width(), src.height(), target_w, target_h);
  const int64_t dplane = static_cast<int64_t>(target_w) * target_h;
  // Pad bands first (only the bands — the resized interior is written
  // exactly once by the row kernel, never pre-filled).
  for (int c = 0; c < src.channels(); ++c) {
    float* plane = dst + c * dplane;
    std::fill(plane, plane + static_cast<int64_t>(g.pad_y) * target_w,
              kPadGrey);
    float* bottom = plane + static_cast<int64_t>(g.pad_y + g.new_h) * target_w;
    std::fill(bottom, plane + dplane, kPadGrey);
    for (int y = 0; y < g.new_h; ++y) {
      float* row = plane + static_cast<int64_t>(g.pad_y + y) * target_w;
      std::fill(row, row + g.pad_x, kPadGrey);
      std::fill(row + g.pad_x + g.new_w, row + target_w, kPadGrey);
    }
  }
  ForEachResizedRow(
      src, g.new_w, g.new_h,
      [&](int c, int y) {
        return dst + c * dplane +
               static_cast<int64_t>(g.pad_y + y) * target_w + g.pad_x;
      },
      NoPost);
  return g;
}

LetterboxGeometry LetterboxIntoQuantizedPlanes(const Image& src, int target_w,
                                               int target_h, float inv_scale,
                                               int32_t zp, uint8_t* dst) {
  THALI_CHECK(!src.empty());
  const LetterboxGeometry g =
      ComputeLetterboxGeometry(src.width(), src.height(), target_w, target_h);
  const int64_t dplane = static_cast<int64_t>(target_w) * target_h;
  // The pad byte is the quantized grey, through the one shared quantizer
  // so it matches what quantizing an fp32 pad band would produce.
  uint8_t pad_byte = 0;
  Int8QuantizeActivations(&kPadGrey, 1, inv_scale, zp, &pad_byte);
  for (int c = 0; c < src.channels(); ++c) {
    uint8_t* plane = dst + c * dplane;
    std::memset(plane, pad_byte,
                static_cast<size_t>(g.pad_y) * static_cast<size_t>(target_w));
    uint8_t* bottom =
        plane + static_cast<int64_t>(g.pad_y + g.new_h) * target_w;
    std::memset(bottom, pad_byte, static_cast<size_t>(plane + dplane - bottom));
    for (int y = 0; y < g.new_h; ++y) {
      uint8_t* row = plane + static_cast<int64_t>(g.pad_y + y) * target_w;
      std::memset(row, pad_byte, static_cast<size_t>(g.pad_x));
      std::memset(row + g.pad_x + g.new_w, pad_byte,
                  static_cast<size_t>(target_w - g.pad_x - g.new_w));
    }
  }
  // Resize one row at a time into a scratch row, then quantize it into
  // place — the fp32 letterbox output never materializes as a whole.
  std::vector<float> row_scratch(static_cast<size_t>(g.new_w));
  ForEachResizedRow(
      src, g.new_w, g.new_h, [&](int, int) { return row_scratch.data(); },
      [&](int c, int y, const float* row) {
        uint8_t* out = dst + c * dplane +
                       static_cast<int64_t>(g.pad_y + y) * target_w + g.pad_x;
        Int8QuantizeActivations(row, g.new_w, inv_scale, zp, out);
      });
  return g;
}

const char* ResizeKernelName() { return SelectResizeKernel().name; }

namespace internal {

void SetResizeKernelForTesting(const char* name) {
  int value = 0;
  if (name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) value = 1;
    if (std::strcmp(name, "avx2") == 0) value = 2;
  }
  g_resize_override.store(value, std::memory_order_release);
}

}  // namespace internal

}  // namespace thali
