#ifndef THALI_IMAGE_IMAGE_PREPOST_H_
#define THALI_IMAGE_IMAGE_PREPOST_H_

#include <cstdint>

#include "image/image.h"

namespace thali {

// Pre-processing fast path: table-driven bilinear letterbox writing
// straight into a consumer-owned CHW buffer (the detector's staging
// tensor), plus a fused letterbox+quantize variant for int8 plans whose
// first conv consumes u8 network input.
//
// Runtime dispatch mirrors the PR-3 kernel families (tensor/act_kernels):
// one portable scalar family plus an AVX2 gather+FMA family in its own
// -mavx2 TU, selected once per process from CpuInfo(). The scalar family
// evaluates the seed expression of image.cc's Resize operation for
// operation — same index/weight derivation, same 4-tap sum order — so
// its output is bitwise identical to the reference (the parity tests pin
// this). The AVX2 family reassociates the taps into lerp FMAs and is
// covered by a small per-element tolerance instead.

// Geometry of a letterbox: the same arithmetic as image.cc's
// LetterboxImage, exposed so callers can remap boxes without holding the
// resized Image.
struct LetterboxGeometry {
  float scale = 1.0f;  // src pixels -> canvas pixels
  int new_w = 1;       // resized region size inside the canvas
  int new_h = 1;
  int pad_x = 0;       // left padding in canvas pixels
  int pad_y = 0;       // top padding in canvas pixels
};

LetterboxGeometry ComputeLetterboxGeometry(int src_w, int src_h, int target_w,
                                           int target_h);

// Bilinear-resizes every channel plane of `src` into `dst`, which must
// hold src.channels() * new_h * new_w floats (CHW). No allocation beyond
// the per-call weight/index tables.
void ResizeIntoPlanes(const Image& src, int new_w, int new_h, float* dst);

// Letterboxes `src` into `dst`, which must hold
// src.channels() * target_h * target_w floats (CHW): aspect-preserving
// resize centered on a 0.5-grey canvas, touching pad bands exactly once
// (never the full canvas). Returns the geometry for box remapping.
LetterboxGeometry LetterboxIntoPlanes(const Image& src, int target_w,
                                      int target_h, float* dst);

// Fused letterbox + quantize: as LetterboxIntoPlanes, but every element
// is emitted in the 7-bit unsigned domain of tensor/gemm_int8.h,
// u = clamp(rne(v * inv_scale) + zp, 0, 127), via the shared
// Int8QuantizeActivations so the bytes are exactly what quantizing the
// fp32 letterbox output would have produced (per kernel family). `dst`
// holds src.channels() * target_h * target_w bytes.
LetterboxGeometry LetterboxIntoQuantizedPlanes(const Image& src, int target_w,
                                               int target_h, float inv_scale,
                                               int32_t zp, uint8_t* dst);

// Name of the dispatched resize kernel family (for logs/reports).
const char* ResizeKernelName();

namespace internal {
// Force dispatch to "scalar" or "avx2" (ignored when unavailable);
// nullptr restores automatic detection.
void SetResizeKernelForTesting(const char* name);
}  // namespace internal

}  // namespace thali

#endif  // THALI_IMAGE_IMAGE_PREPOST_H_
