#ifndef THALI_IMAGE_IMAGE_IO_H_
#define THALI_IMAGE_IMAGE_IO_H_

#include <string>

#include "base/statusor.h"
#include "image/image.h"

namespace thali {

// Binary PPM (P6) encode/decode — the dataset-on-disk format. PPM needs no
// compression dependency and every viewer opens it.
Status WritePpm(const Image& img, const std::string& path);
StatusOr<Image> ReadPpm(const std::string& path);

// 24-bit uncompressed BMP writer for example outputs (more tools open BMP
// than PPM on non-Unix systems).
Status WriteBmp(const Image& img, const std::string& path);

// Coarse ASCII-art rendering of the image's luminance, `cols` characters
// wide; used by example binaries so a terminal-only user still "sees" the
// platters and detections.
std::string AsciiArt(const Image& img, int cols = 64);

}  // namespace thali

#endif  // THALI_IMAGE_IMAGE_IO_H_
