#ifndef THALI_IMAGE_IMAGE_PREPOST_IMPL_H_
#define THALI_IMAGE_IMAGE_PREPOST_IMPL_H_

#include <cstdint>

// Kernel-family plumbing shared by image_prepost.cc and the AVX2 TU.

namespace thali {
namespace prepost_detail {

// One bilinear output row over precomputed column taps:
//
//   dst[x] = (1-wy) * ((1-wx[x]) * r0[ix0[x]] + wx[x] * r0[ix1[x]])
//          +    wy  * ((1-wx[x]) * r1[ix0[x]] + wx[x] * r1[ix1[x]])
//
// The scalar family spells the sum exactly like that (the seed Resize
// expression); the AVX2 family computes the algebraically equal lerp
// form fma(wy, bot-top, top) with gathered taps.
using ResizeRowFn = void (*)(const float* r0, const float* r1, float wy,
                             const int32_t* ix0, const int32_t* ix1,
                             const float* wx, int nw, float* dst);

struct ResizeKernel {
  const char* name;
  ResizeRowFn row;
};

// nullptr when this build has no AVX2 TU (non-x86 targets).
const ResizeKernel* Avx2ResizeKernel();

}  // namespace prepost_detail
}  // namespace thali

#endif  // THALI_IMAGE_IMAGE_PREPOST_IMPL_H_
