// AVX2+FMA bilinear row kernel (built with per-file -mavx2 -mfma,
// reached only through the runtime dispatch in image_prepost.cc).
//
// Eight output pixels per iteration: the four taps arrive via
// _mm256_i32gather_ps on the precomputed column index tables, then two
// horizontal lerps and one vertical lerp as FMAs:
//
//   top = fma(wx, b - a, a)      bot = fma(wx, d - c, c)
//   v   = fma(wy, bot - top, top)
//
// This reassociates the seed's 4-tap sum, so the family is NOT bitwise
// identical to the scalar reference — outputs agree to a few ulps (the
// lerp forms are algebraically equal), covered by the documented
// letterbox tolerance in tests/prepost_test.cc. The scalar remainder
// loop below uses the same lerp form so a row is internally consistent.

#include "image/image_prepost_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace thali {
namespace prepost_detail {

namespace {

void ResizeRowAvx2(const float* r0, const float* r1, float wy,
                   const int32_t* ix0, const int32_t* ix1, const float* wx,
                   int nw, float* dst) {
  const __m256 vwy = _mm256_set1_ps(wy);
  int x = 0;
  for (; x + 8 <= nw; x += 8) {
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ix0 + x));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ix1 + x));
    const __m256 w = _mm256_loadu_ps(wx + x);
    const __m256 a = _mm256_i32gather_ps(r0, i0, 4);
    const __m256 b = _mm256_i32gather_ps(r0, i1, 4);
    const __m256 c = _mm256_i32gather_ps(r1, i0, 4);
    const __m256 d = _mm256_i32gather_ps(r1, i1, 4);
    const __m256 top = _mm256_fmadd_ps(w, _mm256_sub_ps(b, a), a);
    const __m256 bot = _mm256_fmadd_ps(w, _mm256_sub_ps(d, c), c);
    const __m256 v = _mm256_fmadd_ps(vwy, _mm256_sub_ps(bot, top), top);
    _mm256_storeu_ps(dst + x, v);
  }
  for (; x < nw; ++x) {
    const float w = wx[x];
    const float a = r0[ix0[x]];
    const float b = r0[ix1[x]];
    const float c = r1[ix0[x]];
    const float d = r1[ix1[x]];
    const float top = __builtin_fmaf(w, b - a, a);
    const float bot = __builtin_fmaf(w, d - c, c);
    dst[x] = __builtin_fmaf(wy, bot - top, top);
  }
}

const ResizeKernel kAvx2ResizeKernel = {
    /*name=*/"avx2-resize",
    /*row=*/&ResizeRowAvx2,
};

}  // namespace

const ResizeKernel* Avx2ResizeKernel() { return &kAvx2ResizeKernel; }

}  // namespace prepost_detail
}  // namespace thali

#else  // !defined(__AVX2__)

namespace thali {
namespace prepost_detail {

const ResizeKernel* Avx2ResizeKernel() { return nullptr; }

}  // namespace prepost_detail
}  // namespace thali

#endif  // defined(__AVX2__)
