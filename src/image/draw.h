#ifndef THALI_IMAGE_DRAW_H_
#define THALI_IMAGE_DRAW_H_

#include "base/rng.h"
#include "image/image.h"

namespace thali {

// 2-d drawing primitives used by the synthetic platter renderer and by the
// example apps when visualizing detections. All coordinates are in pixels;
// shapes are clipped to the image.

// Filled axis-aligned rectangle [x0,x1] x [y0,y1].
void DrawFilledRect(Image& img, int x0, int y0, int x1, int y1,
                    const Color& color);

// One-pixel-wide rectangle outline (used for bounding boxes).
void DrawRect(Image& img, int x0, int y0, int x1, int y1, const Color& color);

// Filled ellipse centered at (cx, cy) with radii (rx, ry), rotated by
// `angle` radians, soft-blended edge of `feather` pixels.
void DrawEllipse(Image& img, float cx, float cy, float rx, float ry,
                 float angle, const Color& color, float feather = 1.0f);

// Elliptical ring (annulus) between inner radius fraction `inner` (0..1)
// and the full radii; used for plate rims and folded-bread arcs.
void DrawRing(Image& img, float cx, float cy, float rx, float ry, float angle,
              float inner, const Color& color, float feather = 1.0f);

// Half/quarter disc wedge: keeps the portion of the ellipse whose polar
// angle lies within [a0, a1] (radians, in the rotated frame). Renders
// folded chapatis.
void DrawWedge(Image& img, float cx, float cy, float rx, float ry, float angle,
               float a0, float a1, const Color& color, float feather = 1.0f);

// Scatters `count` small blobs of `color` within the ellipse; models
// garnish, stuffing specks and grain texture.
void SpeckleEllipse(Image& img, float cx, float cy, float rx, float ry,
                    float angle, const Color& color, int count,
                    float blob_radius, Rng& rng);

// Adds zero-mean Gaussian pixel noise with the given stddev.
void AddGaussianNoise(Image& img, float stddev, Rng& rng);

// Multiplies the whole image by a smooth radial lighting falloff centered
// at (cx, cy) normalized coordinates: 1 at center to `edge` at corners.
void ApplyVignette(Image& img, float cx, float cy, float edge);

// Draws a line (Bresenham-ish float stepping).
void DrawLine(Image& img, float x0, float y0, float x1, float y1,
              const Color& color);

}  // namespace thali

#endif  // THALI_IMAGE_DRAW_H_
