#ifndef THALI_IMAGE_IMAGE_H_
#define THALI_IMAGE_IMAGE_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace thali {

// RGB color with float channels in [0,1].
struct Color {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
};

// Planar CHW float image, channels in [0,1] by convention (values outside
// the range are clamped only at encode time). CHW matches the network input
// layout so an Image feeds a Tensor without a transpose.
class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels = 3)
      : width_(width),
        height_(height),
        channels_(channels),
        data_(static_cast<size_t>(width) * height * channels, 0.0f) {
    THALI_CHECK_GT(width, 0);
    THALI_CHECK_GT(height, 0);
    THALI_CHECK_GT(channels, 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float at(int c, int y, int x) const {
    return data_[Index(c, y, x)];
  }
  void set(int c, int y, int x, float v) { data_[Index(c, y, x)] = v; }

  // Pixel accessors that ignore out-of-bounds coordinates (no-op write,
  // zero read). The renderer leans on these at dish borders.
  float GetClipped(int c, int y, int x) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) return 0.0f;
    return at(c, y, x);
  }
  void SetPixel(int y, int x, const Color& color) {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
    THALI_CHECK_GE(channels_, 3);
    data_[Index(0, y, x)] = color.r;
    data_[Index(1, y, x)] = color.g;
    data_[Index(2, y, x)] = color.b;
  }
  Color GetPixel(int y, int x) const {
    THALI_CHECK_GE(channels_, 3);
    return Color{GetClipped(0, y, x), GetClipped(1, y, x),
                 GetClipped(2, y, x)};
  }

  // Alpha-blends `color` over the pixel: out = a*color + (1-a)*old.
  void BlendPixel(int y, int x, const Color& color, float alpha);

  // Fills the whole image with `color`.
  void FillColor(const Color& color);

  void Clamp01();

 private:
  size_t Index(int c, int y, int x) const {
    return (static_cast<size_t>(c) * height_ + y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

// Bilinear resize to (new_width, new_height).
Image Resize(const Image& src, int new_width, int new_height);

// Darknet-style letterbox: resizes preserving aspect ratio onto a
// (target x target) canvas filled with 0.5 grey, returning the embedded
// image plus the scale/offset needed to map boxes back.
struct Letterbox {
  Image image;
  float scale = 1.0f;  // src pixels -> canvas pixels
  int pad_x = 0;       // left padding in canvas pixels
  int pad_y = 0;       // top padding in canvas pixels
};
Letterbox LetterboxImage(const Image& src, int target_w, int target_h);

// RGB<->HSV conversions on single pixels; h in [0,1) (wrapping), s,v in
// [0,1].
void RgbToHsv(float r, float g, float b, float* h, float* s, float* v);
void HsvToRgb(float h, float s, float v, float* r, float* g, float* b);

// Applies multiplicative HSV jitter to the whole image (the Darknet
// saturation/exposure/hue augmentation).
void DistortImageHsv(Image& img, float hue_shift, float sat_scale,
                     float val_scale);

// Horizontal mirror in place.
void FlipHorizontal(Image& img);

// Copies `src` into `dst` with its top-left corner at (x, y); clipped.
void Paste(const Image& src, int x, int y, Image& dst);

// Crops the rectangle [x, x+w) x [y, y+h) (clipped to bounds, zero fill
// outside).
Image Crop(const Image& src, int x, int y, int w, int h);

}  // namespace thali

#endif  // THALI_IMAGE_IMAGE_H_
