#include "image/draw.h"

#include <algorithm>
#include <cmath>

namespace thali {

namespace {

// Signed "radial" coordinate of (x,y) in the rotated ellipse frame:
// <1 inside, 1 on the boundary.
inline float EllipseRho(float x, float y, float cx, float cy, float rx,
                        float ry, float cos_a, float sin_a) {
  const float dx = x - cx;
  const float dy = y - cy;
  const float u = dx * cos_a + dy * sin_a;
  const float v = -dx * sin_a + dy * cos_a;
  const float nu = u / rx;
  const float nv = v / ry;
  return std::sqrt(nu * nu + nv * nv);
}

inline float PolarAngle(float x, float y, float cx, float cy, float cos_a,
                        float sin_a) {
  const float dx = x - cx;
  const float dy = y - cy;
  const float u = dx * cos_a + dy * sin_a;
  const float v = -dx * sin_a + dy * cos_a;
  return std::atan2(v, u);
}

struct EllipseBounds {
  int x0, y0, x1, y1;
};

EllipseBounds BoundsFor(const Image& img, float cx, float cy, float rx,
                        float ry) {
  const float r = std::max(rx, ry) + 2.0f;
  EllipseBounds b;
  b.x0 = std::max(0, static_cast<int>(std::floor(cx - r)));
  b.y0 = std::max(0, static_cast<int>(std::floor(cy - r)));
  b.x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(cx + r)));
  b.y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(cy + r)));
  return b;
}

}  // namespace

void DrawFilledRect(Image& img, int x0, int y0, int x1, int y1,
                    const Color& color) {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(img.width() - 1, x1);
  y1 = std::min(img.height() - 1, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) img.SetPixel(y, x, color);
  }
}

void DrawRect(Image& img, int x0, int y0, int x1, int y1, const Color& color) {
  for (int x = x0; x <= x1; ++x) {
    img.SetPixel(y0, x, color);
    img.SetPixel(y1, x, color);
  }
  for (int y = y0; y <= y1; ++y) {
    img.SetPixel(y, x0, color);
    img.SetPixel(y, x1, color);
  }
}

void DrawEllipse(Image& img, float cx, float cy, float rx, float ry,
                 float angle, const Color& color, float feather) {
  if (rx <= 0 || ry <= 0) return;
  const float ca = std::cos(angle);
  const float sa = std::sin(angle);
  const EllipseBounds b = BoundsFor(img, cx, cy, rx, ry);
  const float fr = feather / std::min(rx, ry);  // feather in rho units
  for (int y = b.y0; y <= b.y1; ++y) {
    for (int x = b.x0; x <= b.x1; ++x) {
      const float rho = EllipseRho(x + 0.5f, y + 0.5f, cx, cy, rx, ry, ca, sa);
      if (rho <= 1.0f - fr) {
        img.SetPixel(y, x, color);
      } else if (rho < 1.0f + fr && fr > 0) {
        img.BlendPixel(y, x, color, (1.0f + fr - rho) / (2.0f * fr));
      }
    }
  }
}

void DrawRing(Image& img, float cx, float cy, float rx, float ry, float angle,
              float inner, const Color& color, float feather) {
  if (rx <= 0 || ry <= 0) return;
  const float ca = std::cos(angle);
  const float sa = std::sin(angle);
  const EllipseBounds b = BoundsFor(img, cx, cy, rx, ry);
  const float fr = feather / std::min(rx, ry);
  for (int y = b.y0; y <= b.y1; ++y) {
    for (int x = b.x0; x <= b.x1; ++x) {
      const float rho = EllipseRho(x + 0.5f, y + 0.5f, cx, cy, rx, ry, ca, sa);
      if (rho >= inner && rho <= 1.0f - fr) {
        img.SetPixel(y, x, color);
      } else if (rho > 1.0f - fr && rho < 1.0f + fr && fr > 0) {
        img.BlendPixel(y, x, color, (1.0f + fr - rho) / (2.0f * fr));
      }
    }
  }
}

void DrawWedge(Image& img, float cx, float cy, float rx, float ry, float angle,
               float a0, float a1, const Color& color, float feather) {
  if (rx <= 0 || ry <= 0) return;
  const float ca = std::cos(angle);
  const float sa = std::sin(angle);
  const EllipseBounds b = BoundsFor(img, cx, cy, rx, ry);
  const float fr = feather / std::min(rx, ry);
  for (int y = b.y0; y <= b.y1; ++y) {
    for (int x = b.x0; x <= b.x1; ++x) {
      const float px = x + 0.5f;
      const float py = y + 0.5f;
      const float rho = EllipseRho(px, py, cx, cy, rx, ry, ca, sa);
      if (rho > 1.0f + fr) continue;
      float theta = PolarAngle(px, py, cx, cy, ca, sa);
      // Normalize into [a0, a0+2pi) to test membership in [a0, a1].
      while (theta < a0) theta += 6.28318530718f;
      if (theta > a1) continue;
      if (rho <= 1.0f - fr) {
        img.SetPixel(y, x, color);
      } else if (fr > 0) {
        img.BlendPixel(y, x, color, (1.0f + fr - rho) / (2.0f * fr));
      }
    }
  }
}

void SpeckleEllipse(Image& img, float cx, float cy, float rx, float ry,
                    float angle, const Color& color, int count,
                    float blob_radius, Rng& rng) {
  for (int i = 0; i < count; ++i) {
    // Rejection-sample a point inside the unit disc, map into the ellipse.
    float u, v;
    do {
      u = rng.NextFloat(-1.0f, 1.0f);
      v = rng.NextFloat(-1.0f, 1.0f);
    } while (u * u + v * v > 0.8f);  // keep speckles off the very edge
    const float ca = std::cos(angle);
    const float sa = std::sin(angle);
    const float px = cx + u * rx * ca - v * ry * sa;
    const float py = cy + u * rx * sa + v * ry * ca;
    const float r = blob_radius * rng.NextFloat(0.6f, 1.4f);
    DrawEllipse(img, px, py, r, r, 0.0f, color, 0.5f);
  }
}

void AddGaussianNoise(Image& img, float stddev, Rng& rng) {
  float* p = img.data();
  for (int64_t i = 0; i < img.size(); ++i) {
    p[i] = std::clamp(p[i] + rng.NextGaussian(0.0f, stddev), 0.0f, 1.0f);
  }
}

void ApplyVignette(Image& img, float cx, float cy, float edge) {
  const float px = cx * img.width();
  const float py = cy * img.height();
  const float max_d = std::hypot(static_cast<float>(img.width()),
                                 static_cast<float>(img.height()));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const float d = std::hypot(x - px, y - py) / max_d;
      const float gain = 1.0f + (edge - 1.0f) * d;
      for (int c = 0; c < img.channels(); ++c) {
        img.set(c, y, x, std::clamp(img.at(c, y, x) * gain, 0.0f, 1.0f));
      }
    }
  }
}

void DrawLine(Image& img, float x0, float y0, float x1, float y1,
              const Color& color) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const int steps =
      std::max(1, static_cast<int>(std::max(std::fabs(dx), std::fabs(dy))));
  for (int i = 0; i <= steps; ++i) {
    const float t = static_cast<float>(i) / steps;
    img.SetPixel(static_cast<int>(y0 + t * dy), static_cast<int>(x0 + t * dx),
                 color);
  }
}

}  // namespace thali
