#ifndef THALI_CORE_PIPELINE_H_
#define THALI_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/trainer.h"
#include "data/hashtag_catalog.h"

namespace thali {

// End-to-end realization of the paper's Fig. 3 flow chart:
//   hashtag popularity analysis -> class selection -> scrape/download
//   (simulated by the renderer) -> annotation (YOLO txt) -> 80/20 split
//   -> transfer-learning fine-tune -> evaluation.
class Pipeline {
 public:
  struct Options {
    int num_classes = 10;       // top-k hashtags to keep
    DatasetSpec dataset;        // generation parameters
    int pretrain_iterations = 120;  // simulated "COCO" pretraining
    int finetune_iterations = 0;    // 0 = the cfg's max_batches
    std::string work_dir = "thali_cache";  // checkpoints + dataset dumps
    bool write_dataset_to_disk = false;    // also materialize Darknet layout
    uint64_t seed = 2022;
    int log_every = 100;
  };

  struct StageLog {
    std::string stage;
    std::string detail;
  };

  struct Report {
    std::vector<StageLog> stages;
    std::vector<HashtagEntry> selected_classes;
    DatasetStats dataset_stats;
    EvalResult eval;
    std::string weights_path;  // final fine-tuned checkpoint
    std::string cfg_text;      // the network that was trained
  };

  explicit Pipeline(const Options& options) : opts_(options) {}

  // Runs every stage; on success the report carries the final metrics and
  // the checkpoint path.
  StatusOr<Report> Run();

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

// Pretrains the yolov4-thali backbone on the synthetic generic-object
// detection task and writes a backbone-cutoff weights file (this
// project's yolov4.conv.137). Returns the checkpoint path.
StatusOr<std::string> PretrainBackbone(const std::string& work_dir,
                                       int iterations, int input_size,
                                       uint64_t seed, int log_every = 0);

}  // namespace thali

#endif  // THALI_CORE_PIPELINE_H_
