#include "core/detector.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "base/fastpre.h"
#include "base/thread_pool.h"
#include "darknet/weights_io.h"
#include "image/image_prepost.h"
#include "nn/conv_layer.h"
#include "tensor/gemm_int8.h"

namespace thali {

StatusOr<Detector> Detector::FromCfg(const std::string& cfg_text,
                                     uint64_t seed) {
  Rng rng(seed);
  THALI_ASSIGN_OR_RETURN(BuiltNetwork built,
                         BuildNetworkFromCfg(cfg_text, /*batch_override=*/1,
                                             rng, ExecMode::kInference));
  std::vector<DetectionHead*> heads(built.yolo_layers.begin(),
                                    built.yolo_layers.end());
  return Detector(std::move(built.net), std::move(heads));
}

StatusOr<Detector> Detector::FromFiles(const std::string& cfg_text,
                                       const std::string& weights_path,
                                       uint64_t seed) {
  THALI_ASSIGN_OR_RETURN(Detector det, FromCfg(cfg_text, seed));
  THALI_ASSIGN_OR_RETURN(int loaded,
                         LoadWeights(det.network(), weights_path));
  if (loaded == 0) return Status::Corruption("no layers loaded");
  return det;
}

Detector::Detector(std::unique_ptr<Network> net,
                   std::vector<DetectionHead*> heads, Options options)
    : net_(std::move(net)), heads_(std::move(heads)), opts_(options) {
  THALI_CHECK(net_ != nullptr);
  THALI_CHECK(!heads_.empty()) << "network has no detection heads";
  // The detector never reads head outputs directly — detections come
  // from GetDetections — so it opts into the raw-output head decode
  // (logit-space objectness pre-filter; see nn/yolo_layer.h).
  net_->set_defer_head_activation(true);
}

std::vector<Detection> CollectDetections(
    const std::vector<DetectionHead*>& heads, int b, float conf_threshold,
    float nms_threshold, int net_w, int net_h) {
  std::vector<Detection> all;
  for (DetectionHead* head : heads) {
    std::vector<Detection> dets =
        head->GetDetections(b, conf_threshold, net_w, net_h);
    all.insert(all.end(), dets.begin(), dets.end());
  }
  return Nms(std::move(all), nms_threshold);
}

std::vector<Detection> Detector::Detect(const Image& image) {
  return Detect(image, opts_.conf_threshold, opts_.nms_threshold);
}

std::vector<Detection> Detector::Detect(const Image& image,
                                        float conf_threshold,
                                        float nms_threshold) {
  std::vector<std::vector<Detection>> per_image =
      DetectBatch(std::span<const Image>(&image, 1), conf_threshold,
                  nms_threshold);
  return std::move(per_image.front());
}

std::vector<std::vector<Detection>> Detector::DetectBatch(
    std::span<const Image> images) {
  return DetectBatch(images, opts_.conf_threshold, opts_.nms_threshold);
}

namespace {

// Flips the Detector reentrancy flag for one detection call, trapping
// concurrent entry from a second thread.
class ReentrancyGuard {
 public:
  explicit ReentrancyGuard(std::atomic<bool>& flag) : flag_(flag) {
    THALI_CHECK(!flag_.exchange(true, std::memory_order_acquire))
        << "Detector entered concurrently: Detect/DetectBatch mutate the "
           "network, so each Detector admits one caller at a time (use one "
           "Detector per thread; see core/detector.h)";
  }
  ~ReentrancyGuard() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

Detector::SlotMapping Detector::LoadImageIntoSlot(const Image& image,
                                                  int64_t b, bool fused_quant) {
  const int nw = net_->input_width();
  const int nh = net_->input_height();
  const int64_t plane = static_cast<int64_t>(3) * nh * nw;
  THALI_CHECK_EQ(image.channels(), 3);
  SlotMapping m;
  m.direct = image.width() == nw && image.height() == nh;
  if (fused_quant) {
    // Quantized input chain: emit the slot's u8 bytes directly in the
    // plan's input domain. Same-size images go through the shared
    // quantizer alone; others through the fused letterbox-quantize.
    uint8_t* qdst = net_->quant_input() + b * plane;
    const float inv_scale = 1.0f / net_->exec_plan().input_qscale;
    const int32_t zp = net_->exec_plan().input_qzp;
    if (m.direct) {
      Int8QuantizeActivations(image.data(), plane, inv_scale, zp, qdst);
    } else {
      const LetterboxGeometry g =
          LetterboxIntoQuantizedPlanes(image, nw, nh, inv_scale, zp, qdst);
      m.scale = g.scale;
      m.pad_x = g.pad_x;
      m.pad_y = g.pad_y;
    }
    return m;
  }
  float* dst = input_staging_.data() + b * plane;
  if (m.direct) {
    std::copy(image.data(), image.data() + plane, dst);
  } else if (FastPreEnabled()) {
    // Table-driven letterbox straight into the staging slot — no
    // intermediate Image allocation.
    const LetterboxGeometry g = LetterboxIntoPlanes(image, nw, nh, dst);
    m.scale = g.scale;
    m.pad_x = g.pad_x;
    m.pad_y = g.pad_y;
  } else {
    const Letterbox lb = LetterboxImage(image, nw, nh);
    m.scale = lb.scale;
    m.pad_x = lb.pad_x;
    m.pad_y = lb.pad_y;
    THALI_CHECK_EQ(lb.image.size(), plane);
    std::copy(lb.image.data(), lb.image.data() + plane, dst);
  }
  return m;
}

std::vector<std::vector<Detection>> Detector::DetectBatch(
    std::span<const Image> images, float conf_threshold,
    float nms_threshold) {
  ReentrancyGuard guard(in_detect_);
  const int n = static_cast<int>(images.size());
  if (n == 0) return {};
  const int nw = net_->input_width();
  const int nh = net_->input_height();

  // Re-plan buffers when the request size differs from the current batch.
  if (net_->batch() != n) THALI_CHECK_OK(net_->SetBatch(n));

  const auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  const auto t0 = std::chrono::steady_clock::now();

  // Letterbox + load each image into its batch slot. Slots are disjoint
  // and letterboxing is a pure per-item function, so items parallelize
  // without changing any result.
  std::vector<SlotMapping> mappings(static_cast<size_t>(n));
  if (!(input_staging_.shape() == net_->input_shape())) {
    input_staging_.Resize(net_->input_shape());
  }
  const bool fused_quant = net_->exec_plan().input_u8 && FastPreEnabled();
  ParallelFor(0, n, 1, [&](int64_t b0, int64_t b1, int) {
    for (int64_t b = b0; b < b1; ++b) {
      mappings[static_cast<size_t>(b)] =
          LoadImageIntoSlot(images[static_cast<size_t>(b)], b, fused_quant);
    }
  });
  if (fused_quant) net_->set_input_prequantized(true);

  const auto t1 = std::chrono::steady_clock::now();
  net_->Forward(input_staging_, /*train=*/false);
  const auto t2 = std::chrono::steady_clock::now();

  std::vector<std::vector<Detection>> results(static_cast<size_t>(n));
  for (int b = 0; b < n; ++b) {
    std::vector<Detection> dets =
        CollectDetections(heads_, b, conf_threshold, nms_threshold, nw, nh);
    const SlotMapping& m = mappings[static_cast<size_t>(b)];
    if (!m.direct) {
      // Map boxes from network frame back into image-normalized frame.
      const Image& image = images[static_cast<size_t>(b)];
      for (Detection& d : dets) {
        const float px = d.box.x * nw - m.pad_x;
        const float py = d.box.y * nh - m.pad_y;
        d.box.x = px / m.scale / image.width();
        d.box.y = py / m.scale / image.height();
        d.box.w = d.box.w * nw / m.scale / image.width();
        d.box.h = d.box.h * nh / m.scale / image.height();
      }
    }
    results[static_cast<size_t>(b)] = std::move(dets);
  }
  const auto t3 = std::chrono::steady_clock::now();
  stage_times_ = {ms(t1 - t0), ms(t2 - t1), ms(t3 - t2)};
  return results;
}

void Detector::FuseBatchNorm() {
  for (int i = 0; i < net_->num_layers(); ++i) {
    if (std::string_view(net_->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net_->layer(i)).FoldBatchNorm();
    }
  }
}

void Detector::ForwardImage(const Image& image) {
  if (net_->batch() != 1) THALI_CHECK_OK(net_->SetBatch(1));
  if (!(input_staging_.shape() == net_->input_shape())) {
    input_staging_.Resize(net_->input_shape());
  }
  // Calibration forwards observe fp32 activations: the input chain is
  // down while ranges are being collected (CalibrateInt8 replans after
  // resetting them), so the fused-quantize route never applies here.
  const bool fused_quant = net_->exec_plan().input_u8 && FastPreEnabled();
  LoadImageIntoSlot(image, 0, fused_quant);
  if (fused_quant) net_->set_input_prequantized(true);
  net_->Forward(input_staging_, /*train=*/false);
}

Detector::Int8CalibrationOptions Detector::CalibrationOptionsFromEnv() {
  Int8CalibrationOptions options;
  const char* mode = std::getenv("THALI_INT8_CALIB");
  if (mode != nullptr && std::string_view(mode) == "percentile") {
    options.mode = Int8CalibrationOptions::Mode::kPercentile;
  }
  const char* pct = std::getenv("THALI_INT8_PERCENTILE");
  if (pct != nullptr && pct[0] != '\0') {
    const double v = std::atof(pct);
    if (v > 0.0 && v <= 100.0) options.percentile = v;
  }
  return options;
}

int Detector::CalibrateInt8(const FoodDataset& dataset,
                            std::span<const int> indices,
                            const Int8CalibrationOptions& options) {
  ReentrancyGuard guard(in_detect_);
  // The quantized path runs on folded weights; fold first so the
  // observed ranges describe the network int8 actually executes.
  // (FoldBatchNorm is a per-layer no-op once folded.)
  for (int i = 0; i < net_->num_layers(); ++i) {
    if (std::string_view(net_->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net_->layer(i)).FoldBatchNorm();
    }
  }
  std::vector<ConvLayer*> eligible;
  for (int i = 0; i < net_->num_layers(); ++i) {
    Layer& l = net_->layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    if (l.plan().conv_algo != ConvAlgo::kQuantInt8 &&
        l.plan().conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
      continue;
    }
    eligible.push_back(static_cast<ConvLayer*>(&l));
  }
  if (eligible.empty() || indices.empty()) return 0;
  for (ConvLayer* conv : eligible) conv->ResetCalibration();
  // Dropping the ranges invalidates any quantize-once chains a previous
  // calibration installed; re-plan before the fp32 calibration forwards.
  THALI_CHECK_OK(net_->ReplanInference());

  const int limit = std::min(static_cast<int>(indices.size()),
                             std::max(1, options.max_images));
  const auto run_pass = [&](CalibPhase phase) {
    net_->set_calib_phase(phase);
    for (int i = 0; i < limit; ++i) {
      ForwardImage(dataset.item(indices[static_cast<size_t>(i)]).image);
    }
    net_->set_calib_phase(CalibPhase::kOff);
  };
  run_pass(CalibPhase::kRange);
  const bool percentile =
      options.mode == Int8CalibrationOptions::Mode::kPercentile;
  if (percentile) run_pass(CalibPhase::kHist);

  int armed = 0;
  for (ConvLayer* conv : eligible) {
    conv->FinalizeCalibration(percentile ? options.percentile : 100.0);
    if (conv->has_activation_range()) ++armed;
  }
  // The freshly installed ranges make quantize-once chains legal;
  // recompile the plan so the next Forward runs them.
  THALI_CHECK_OK(net_->ReplanInference());
  return armed;
}

}  // namespace thali
