#include "core/detector.h"

#include <algorithm>

#include "darknet/weights_io.h"
#include "nn/conv_layer.h"

namespace thali {

StatusOr<Detector> Detector::FromCfg(const std::string& cfg_text,
                                     uint64_t seed) {
  Rng rng(seed);
  THALI_ASSIGN_OR_RETURN(BuiltNetwork built,
                         BuildNetworkFromCfg(cfg_text, /*batch_override=*/1,
                                             rng));
  std::vector<DetectionHead*> heads(built.yolo_layers.begin(),
                                    built.yolo_layers.end());
  return Detector(std::move(built.net), std::move(heads));
}

StatusOr<Detector> Detector::FromFiles(const std::string& cfg_text,
                                       const std::string& weights_path,
                                       uint64_t seed) {
  THALI_ASSIGN_OR_RETURN(Detector det, FromCfg(cfg_text, seed));
  THALI_ASSIGN_OR_RETURN(int loaded,
                         LoadWeights(det.network(), weights_path));
  if (loaded == 0) return Status::Corruption("no layers loaded");
  return det;
}

Detector::Detector(std::unique_ptr<Network> net,
                   std::vector<DetectionHead*> heads, Options options)
    : net_(std::move(net)), heads_(std::move(heads)), opts_(options) {
  THALI_CHECK(net_ != nullptr);
  THALI_CHECK(!heads_.empty()) << "network has no detection heads";
  THALI_CHECK_EQ(net_->batch(), 1) << "Detector requires a batch-1 network";
}

std::vector<Detection> CollectDetections(
    const std::vector<DetectionHead*>& heads, int b, float conf_threshold,
    float nms_threshold, int net_w, int net_h) {
  std::vector<Detection> all;
  for (DetectionHead* head : heads) {
    std::vector<Detection> dets =
        head->GetDetections(b, conf_threshold, net_w, net_h);
    all.insert(all.end(), dets.begin(), dets.end());
  }
  return Nms(std::move(all), nms_threshold);
}

std::vector<Detection> Detector::Detect(const Image& image) const {
  return Detect(image, opts_.conf_threshold, opts_.nms_threshold);
}

std::vector<Detection> Detector::Detect(const Image& image,
                                        float conf_threshold,
                                        float nms_threshold) const {
  const int nw = net_->input_width();
  const int nh = net_->input_height();

  // Letterbox when the image geometry differs from the network.
  const bool direct = image.width() == nw && image.height() == nh;
  float scale = 1.0f;
  int pad_x = 0, pad_y = 0;
  const Image* net_input = &image;
  Letterbox lb;
  if (!direct) {
    lb = LetterboxImage(image, nw, nh);
    scale = lb.scale;
    pad_x = lb.pad_x;
    pad_y = lb.pad_y;
    net_input = &lb.image;
  }

  Tensor input(Shape({1, 3, nh, nw}));
  std::copy(net_input->data(), net_input->data() + net_input->size(),
            input.data());
  net_->Forward(input, /*train=*/false);

  std::vector<Detection> dets = CollectDetections(
      heads_, 0, conf_threshold, nms_threshold, nw, nh);

  if (!direct) {
    // Map boxes from network frame back into image-normalized frame.
    for (Detection& d : dets) {
      const float px = d.box.x * nw - pad_x;
      const float py = d.box.y * nh - pad_y;
      d.box.x = px / scale / image.width();
      d.box.y = py / scale / image.height();
      d.box.w = d.box.w * nw / scale / image.width();
      d.box.h = d.box.h * nh / scale / image.height();
    }
  }
  return dets;
}

void Detector::FuseBatchNorm() {
  for (int i = 0; i < net_->num_layers(); ++i) {
    if (std::string_view(net_->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net_->layer(i)).FoldBatchNorm();
    }
  }
}

}  // namespace thali
