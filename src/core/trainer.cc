#include "core/trainer.h"

#include <algorithm>
#include <array>

#include "base/logging.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "darknet/weights_io.h"

namespace thali {

namespace {

// Copies a CHW image into batch slot `b` of `input`.
void LoadInputSlot(const Image& img, int b, Tensor& input) {
  const int64_t plane = input.shape().dim(1) * input.shape().dim(2) *
                        input.shape().dim(3);
  THALI_CHECK_EQ(img.size(), plane);
  std::copy(img.data(), img.data() + img.size(), input.data() + b * plane);
}

Sample ItemToSample(const FoodDataset::Item& item) {
  return Sample{item.image, item.truths};
}

}  // namespace

std::vector<ImageEval> CollectImageEvals(
    Network& net, const std::vector<DetectionHead*>& heads,
    const FoodDataset& dataset, const std::vector<int>& indices,
    float conf_threshold, float nms_threshold) {
  const int batch = net.batch();
  const int nw = net.input_width();
  const int nh = net.input_height();
  Tensor input(net.input_shape());

  std::vector<ImageEval> evals;
  evals.reserve(indices.size());
  for (size_t start = 0; start < indices.size();
       start += static_cast<size_t>(batch)) {
    const int n = std::min<int>(batch,
                                static_cast<int>(indices.size() - start));
    if (n != net.batch()) {
      // Dynamic batch: shrink to the tail remainder instead of padding
      // dead slots (every loaded slot is decoded, so results match the
      // padded path exactly).
      THALI_CHECK_OK(net.SetBatch(n));
      input = Tensor(net.input_shape());
    }
    for (int b = 0; b < n; ++b) {
      LoadInputSlot(dataset.item(indices[start + static_cast<size_t>(b)]).image,
                    b, input);
    }
    net.Forward(input, /*train=*/false);
    for (int b = 0; b < n; ++b) {
      const int idx = indices[start + static_cast<size_t>(b)];
      ImageEval ev;
      ev.image_id = idx;
      ev.detections =
          CollectDetections(heads, b, conf_threshold, nms_threshold, nw, nh);
      for (const TruthBox& t : dataset.item(idx).truths) {
        ev.truths.push_back({t.box, t.class_id});
      }
      evals.push_back(std::move(ev));
    }
  }
  // Leave the network at its configured batch for subsequent training.
  if (net.batch() != batch) THALI_CHECK_OK(net.SetBatch(batch));
  return evals;
}

EvalResult EvaluateDetections(Network& net,
                              const std::vector<DetectionHead*>& heads,
                              const FoodDataset& dataset,
                              const std::vector<int>& indices,
                              int num_classes, const EvalOptions& eval_opts) {
  std::vector<ImageEval> evals =
      CollectImageEvals(net, heads, dataset, indices,
                        eval_opts.conf_threshold, eval_opts.nms_threshold);
  return Evaluate(evals, num_classes, eval_opts.iou_threshold,
                  eval_opts.f1_conf_threshold);
}

HeadLossStats RunTrainingLoop(Network& net,
                              const std::vector<DetectionHead*>& heads,
                              const FoodDataset& dataset,
                              const std::vector<int>& train_indices,
                              SgdOptimizer& optimizer,
                              const TrainLoopOptions& options,
                              int checkpoint_every,
                              const CheckpointFn& checkpoint,
                              HeadLossStats* live_stats) {
  THALI_CHECK(!train_indices.empty());
  THALI_CHECK(!heads.empty());
  Rng rng(options.seed);
  const int batch = net.batch();
  const int nw = net.input_width();
  const int nh = net.input_height();
  Tensor input(net.input_shape());
  HeadLossStats last;

  auto draw_sample = [&](Rng& r) -> Sample {
    const int idx = train_indices[static_cast<size_t>(
        r.NextU64Below(train_indices.size()))];
    return ItemToSample(dataset.item(idx));
  };

  // Per-item Rng streams are forked sequentially from the loop Rng each
  // iteration, so batch items can augment in parallel while the sampled
  // batch stays a pure function of the seed at any parallelism level.
  std::vector<Rng> item_rngs(static_cast<size_t>(batch));

  for (int iter = 1; iter <= options.iterations; ++iter) {
    TruthBatch truths(static_cast<size_t>(batch));
    for (int b = 0; b < batch; ++b) {
      item_rngs[static_cast<size_t>(b)] = rng.Fork();
    }
    ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1, int) {
      for (int64_t b = b0; b < b1; ++b) {
        Rng& r = item_rngs[static_cast<size_t>(b)];
        Sample s;
        if (options.augment.mosaic && r.NextBool(options.mosaic_probability)) {
          std::array<Sample, 4> parts = {draw_sample(r), draw_sample(r),
                                         draw_sample(r), draw_sample(r)};
          s = MosaicCombine(parts, options.augment, r);
          // HSV/flip also applied on top, as Darknet does.
          AugmentOptions post = options.augment;
          post.jitter = 0.0f;
          s = AugmentSample(s, post, r);
        } else {
          s = AugmentSample(draw_sample(r), options.augment, r);
        }
        LoadInputSlot(s.image, static_cast<int>(b), input);
        truths[static_cast<size_t>(b)] = std::move(s.truths);
      }
    });

    net.Forward(input, /*train=*/true);
    net.ZeroDeltas();
    HeadLossStats stats;
    for (DetectionHead* head : heads) {
      stats += head->ComputeLoss(truths, nw, nh);
    }
    net.Backward(input);
    optimizer.Step(net, iter, 1.0f / batch);
    last = stats;
    if (live_stats != nullptr) *live_stats = stats;

    if (options.log_every > 0 && iter % options.log_every == 0) {
      THALI_LOG(Info) << StrFormat(
          "iter %4d  loss=%.3f (box=%.3f obj=%.3f cls=%.3f)  avg_iou=%.3f  "
          "lr=%.5f",
          iter, stats.total, stats.box, stats.obj, stats.cls, stats.avg_iou,
          optimizer.options().lr.LearningRateAt(iter));
    }
    if (checkpoint_every > 0 && checkpoint && iter % checkpoint_every == 0) {
      checkpoint(iter);
    }
  }
  return last;
}

TransferTrainer::TransferTrainer(Options options, BuiltNetwork built)
    : opts_(std::move(options)), built_(std::move(built)) {
  for (YoloLayer* y : built_.yolo_layers) heads_.push_back(y);
  SgdOptimizer::Options so;
  so.momentum = built_.options.momentum;
  so.weight_decay = built_.options.decay;
  so.lr.base_lr = built_.options.learning_rate;
  so.lr.burn_in = built_.options.burn_in;
  so.lr.steps = built_.options.steps;
  so.lr.scales = built_.options.scales;
  optimizer_ = std::make_unique<SgdOptimizer>(so);
}

StatusOr<TransferTrainer> TransferTrainer::Create(const Options& options) {
  Rng rng(options.seed);
  THALI_ASSIGN_OR_RETURN(
      BuiltNetwork built,
      BuildNetworkFromCfg(options.cfg_text, /*batch_override=*/0, rng));
  if (built.yolo_layers.empty()) {
    return Status::InvalidArgument("cfg has no [yolo] heads");
  }

  TransferTrainer trainer(options, std::move(built));
  if (!options.pretrained_weights.empty()) {
    THALI_ASSIGN_OR_RETURN(
        int loaded, LoadWeights(trainer.network(), options.pretrained_weights,
                                options.transfer_cutoff));
    THALI_LOG(Info) << "transfer: loaded " << loaded
                    << " conv layers from " << options.pretrained_weights;
  }
  if (options.freeze_cutoff > 0) {
    trainer.network().FreezeUpTo(options.freeze_cutoff);
  }
  return trainer;
}

Status TransferTrainer::Train(const FoodDataset& dataset, int iterations,
                              int checkpoint_every,
                              const CheckpointFn& checkpoint) {
  if (dataset.train_indices().empty()) {
    return Status::InvalidArgument("dataset has no training split");
  }
  TrainLoopOptions lo;
  lo.iterations = iterations > 0 ? iterations : built_.options.max_batches;
  lo.augment.flip = built_.options.flip;
  lo.augment.jitter = built_.options.jitter;
  lo.augment.hue = built_.options.hue;
  lo.augment.saturation = built_.options.saturation;
  lo.augment.exposure = built_.options.exposure;
  lo.augment.mosaic = built_.options.mosaic;
  lo.seed = opts_.seed + 1;
  lo.log_every = opts_.log_every;

  last_loss_ = RunTrainingLoop(network(), heads_, dataset,
                               dataset.train_indices(), *optimizer_, lo,
                               checkpoint_every, checkpoint, &last_loss_);
  trained_iterations_ += lo.iterations;
  return Status::OK();
}

EvalResult TransferTrainer::Evaluate(const FoodDataset& dataset,
                                     const std::vector<int>& indices,
                                     const EvalOptions& eval_opts) {
  return EvaluateDetections(network(), heads_, dataset, indices,
                            dataset.num_classes(), eval_opts);
}

Status TransferTrainer::SaveWeightsTo(const std::string& path) const {
  return SaveWeights(*built_.net, path,
                     static_cast<uint64_t>(trained_iterations_) *
                         static_cast<uint64_t>(built_.net->batch()));
}

StatusOr<Detector> TransferTrainer::MakeDetector(
    const std::string& scratch_path) const {
  THALI_RETURN_IF_ERROR(SaveWeightsTo(scratch_path));
  return Detector::FromFiles(opts_.cfg_text, scratch_path, opts_.seed);
}

}  // namespace thali
