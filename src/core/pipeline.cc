#include "core/pipeline.h"

#include "base/file_util.h"
#include "base/string_util.h"
#include "darknet/model_zoo.h"
#include "darknet/weights_io.h"
#include "data/food_classes.h"

namespace thali {

StatusOr<std::string> PretrainBackbone(const std::string& work_dir,
                                       int iterations, int input_size,
                                       uint64_t seed, int log_every) {
  THALI_RETURN_IF_ERROR(MakeDirs(work_dir));
  const std::string path = JoinPath(work_dir, "thali_backbone.weights");

  const std::vector<FoodSignature>& objects = PretrainObjects();
  DatasetSpec spec;
  spec.num_images = 240;
  spec.width = input_size;
  spec.height = input_size;
  spec.seed = seed;
  FoodDataset pretrain_ds = FoodDataset::Generate(objects, spec);

  TransferTrainer::Options topts;
  topts.cfg_text =
      PretrainCfg(static_cast<int>(objects.size()), input_size, input_size,
                  /*batch=*/4, /*max_batches=*/iterations);
  topts.seed = seed + 1;
  topts.log_every = log_every;
  THALI_ASSIGN_OR_RETURN(TransferTrainer trainer,
                         TransferTrainer::Create(topts));
  THALI_RETURN_IF_ERROR(trainer.Train(pretrain_ds, iterations));

  // Save only the class-independent span: the transfer artifact.
  THALI_RETURN_IF_ERROR(SaveWeights(trainer.network(), path,
                                    static_cast<uint64_t>(iterations),
                                    kYoloThaliBackboneCutoff));
  return path;
}

StatusOr<Pipeline::Report> Pipeline::Run() {
  Report report;
  auto log_stage = [&](const std::string& stage, const std::string& detail) {
    report.stages.push_back({stage, detail});
    THALI_LOG(Info) << "[pipeline] " << stage << ": " << detail;
  };

  THALI_RETURN_IF_ERROR(MakeDirs(opts_.work_dir));
  Rng rng(opts_.seed);

  // Stage 1: hashtag popularity analysis (Instagram simulation).
  HashtagCatalog catalog = HashtagCatalog::BuildIndianFoodCatalog();
  report.selected_classes = catalog.TopK(opts_.num_classes);
  log_stage("hashtag analysis",
            StrFormat("ranked %d dishes, selected top %d", catalog.size(),
                      opts_.num_classes));

  // Stage 2: scrape post URLs for the selected hashtags.
  int scraped = 0;
  for (const HashtagEntry& e : report.selected_classes) {
    const int posts =
        opts_.dataset.num_images / std::max(1, opts_.num_classes);
    scraped += static_cast<int>(catalog.Scrape(e.hashtag, posts, rng).size());
  }
  log_stage("scraping", StrFormat("collected %d post records", scraped));

  // Stage 3: "download" images + annotate (the synthetic renderer stands
  // in for downloaded photos; annotations are exact by construction,
  // mirroring the manual makesense.ai labels).
  const std::vector<FoodSignature>& classes =
      opts_.num_classes <= 10 ? IndianFood10() : IndianFood20();
  FoodDataset dataset = FoodDataset::Generate(classes, opts_.dataset);
  report.dataset_stats = dataset.ComputeStats();
  log_stage("dataset",
            StrFormat("%d images (%d platters), %d annotations",
                      report.dataset_stats.num_images,
                      report.dataset_stats.num_platters,
                      report.dataset_stats.num_annotations));
  if (opts_.write_dataset_to_disk) {
    THALI_RETURN_IF_ERROR(dataset.WriteTo(
        JoinPath(opts_.work_dir, "indianfood"), ClassDisplayNames(classes)));
    log_stage("annotation", "YOLO-format labels written to disk");
  }

  // Stage 4: backbone pretraining (the transfer-learning source task).
  THALI_ASSIGN_OR_RETURN(
      std::string backbone,
      PretrainBackbone(opts_.work_dir, opts_.pretrain_iterations,
                       opts_.dataset.width, opts_.seed + 7,
                       opts_.log_every));
  log_stage("pretraining", "backbone checkpoint at " + backbone);

  // Stage 5: fine-tune on the food dataset.
  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  yopts.width = opts_.dataset.width;
  yopts.height = opts_.dataset.height;
  if (opts_.finetune_iterations > 0) {
    yopts.max_batches = opts_.finetune_iterations;
  }
  report.cfg_text = YoloThaliCfg(yopts);

  TransferTrainer::Options topts;
  topts.cfg_text = report.cfg_text;
  topts.pretrained_weights = backbone;
  topts.transfer_cutoff = kYoloThaliBackboneCutoff;
  topts.seed = opts_.seed + 13;
  topts.log_every = opts_.log_every;
  THALI_ASSIGN_OR_RETURN(TransferTrainer trainer,
                         TransferTrainer::Create(topts));
  THALI_RETURN_IF_ERROR(trainer.Train(dataset, opts_.finetune_iterations));
  log_stage("fine-tuning",
            StrFormat("%d iterations, final loss %.3f",
                      trainer.trained_iterations(),
                      trainer.last_loss().total));

  // Stage 6: evaluate on the held-out 20%.
  report.eval = trainer.Evaluate(dataset, dataset.val_indices());
  log_stage("evaluation",
            StrFormat("mAP@0.5=%.2f%%  F1=%.2f", report.eval.map * 100,
                      report.eval.f1));

  report.weights_path = JoinPath(opts_.work_dir, "thali_final.weights");
  THALI_RETURN_IF_ERROR(trainer.SaveWeightsTo(report.weights_path));

  // Stage 7: package for inference. Rebuild the network in inference
  // mode (no deltas, arena-planned activations) from the saved weights
  // and report the activation-memory savings of the plan.
  THALI_ASSIGN_OR_RETURN(
      Detector detector,
      Detector::FromFiles(report.cfg_text, report.weights_path,
                          opts_.seed + 17));
  const ArenaPlan& plan = detector.network().arena_plan();
  log_stage("inference packaging",
            StrFormat("arena %s: %.2f MiB activations (plan peak %lld vs "
                      "%lld floats summed)",
                      plan.enabled ? "on" : "off",
                      static_cast<double>(detector.network().ActivationBytes())
                          / (1024.0 * 1024.0),
                      static_cast<long long>(plan.arena_floats),
                      static_cast<long long>(plan.sum_output_floats)));
  return report;
}

}  // namespace thali
