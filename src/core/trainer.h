#ifndef THALI_CORE_TRAINER_H_
#define THALI_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/detector.h"
#include "darknet/cfg.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "nn/optimizer.h"

namespace thali {

// Evaluates a (already trained or in-training) detection network over the
// given dataset items: forwards in batches, decodes + NMS, and computes
// Padilla metrics at `iou_threshold`. Works for the YOLO network and the
// SSD baseline alike.
struct EvalOptions {
  float conf_threshold = 0.005f;  // low: AP integrates the full PR curve
  float nms_threshold = 0.45f;
  float iou_threshold = 0.5f;
  float f1_conf_threshold = 0.25f;  // confidence for the P/R/F1 summary
};
EvalResult EvaluateDetections(Network& net,
                              const std::vector<DetectionHead*>& heads,
                              const FoodDataset& dataset,
                              const std::vector<int>& indices,
                              int num_classes, const EvalOptions& eval_opts);

// Builds the per-image ImageEval records (detections + truths) without
// aggregating, for confusion matrices and qualitative dumps.
std::vector<ImageEval> CollectImageEvals(
    Network& net, const std::vector<DetectionHead*>& heads,
    const FoodDataset& dataset, const std::vector<int>& indices,
    float conf_threshold, float nms_threshold);

// One SGD training run over a network with detection heads. Exposed
// separately from TransferTrainer so the baseline detector trains through
// the identical loop.
struct TrainLoopOptions {
  int iterations = 400;
  AugmentOptions augment;
  float mosaic_probability = 0.5f;  // of batch items, when augment.mosaic
  uint64_t seed = 11;
  int log_every = 50;  // 0 disables progress logging
};

// Called after the optimizer step at the given (1-based) iteration.
using CheckpointFn = std::function<void(int iteration)>;

// Runs the loop; returns the loss stats of the final iteration. When
// `live_stats` is given it is refreshed after every iteration, so
// checkpoint callbacks observe current values.
HeadLossStats RunTrainingLoop(Network& net,
                              const std::vector<DetectionHead*>& heads,
                              const FoodDataset& dataset,
                              const std::vector<int>& train_indices,
                              SgdOptimizer& optimizer,
                              const TrainLoopOptions& options,
                              int checkpoint_every = 0,
                              const CheckpointFn& checkpoint = nullptr,
                              HeadLossStats* live_stats = nullptr);

// The paper's method: fine-tune a YOLOv4-family network, optionally from
// pretrained backbone weights (transfer learning), on an Indian-food
// dataset.
class TransferTrainer {
 public:
  struct Options {
    std::string cfg_text;  // network + hyperparameters (Darknet cfg)
    // Path to pretrained weights (this project's yolov4.conv.137
    // equivalent); empty trains from scratch.
    std::string pretrained_weights;
    // How many layers of the checkpoint to load (kYoloThaliBackboneCutoff
    // for the standard recipe; -1 = all present).
    int transfer_cutoff = -1;
    // Freeze the first N layers during fine-tuning (0 = train all).
    int freeze_cutoff = 0;
    uint64_t seed = 11;
    int log_every = 50;
  };

  static StatusOr<TransferTrainer> Create(const Options& options);

  TransferTrainer(TransferTrainer&&) = default;
  TransferTrainer& operator=(TransferTrainer&&) = default;

  // Trains for the cfg's max_batches (or `iterations` if > 0), invoking
  // `checkpoint` every `checkpoint_every` iterations.
  Status Train(const FoodDataset& dataset, int iterations = 0,
               int checkpoint_every = 0,
               const CheckpointFn& checkpoint = nullptr);

  // Metrics over dataset items (typically dataset.val_indices()).
  EvalResult Evaluate(const FoodDataset& dataset,
                      const std::vector<int>& indices,
                      const EvalOptions& eval_opts = {});

  // Serializes the current weights (Darknet format).
  Status SaveWeightsTo(const std::string& path) const;

  // Builds a batch-1 Detector carrying the current weights, via a
  // round-trip through the Darknet weights format at `scratch_path`.
  StatusOr<Detector> MakeDetector(const std::string& scratch_path) const;

  Network& network() { return *built_.net; }
  const NetOptions& net_options() const { return built_.options; }
  const std::vector<DetectionHead*>& heads() const { return heads_; }
  const HeadLossStats& last_loss() const { return last_loss_; }
  int trained_iterations() const { return trained_iterations_; }

 private:
  TransferTrainer(Options options, BuiltNetwork built);

  Options opts_;
  BuiltNetwork built_;
  std::vector<DetectionHead*> heads_;
  std::unique_ptr<SgdOptimizer> optimizer_;
  HeadLossStats last_loss_;
  int trained_iterations_ = 0;
};

}  // namespace thali

#endif  // THALI_CORE_TRAINER_H_
