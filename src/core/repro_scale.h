#ifndef THALI_CORE_REPRO_SCALE_H_
#define THALI_CORE_REPRO_SCALE_H_

namespace thali {

// Every deliberate scale-down between the published experiment and this
// CPU reproduction, in one place. The paper trained full YOLOv4 (608^2
// input, 64M parameters) for 20,000 iterations on Colab GPUs over 11,547
// images; a single CPU core gets the same *pipeline* with these factors.
// Users with more hardware can raise them toward 1:1.
struct ReproScale {
  // Paper iteration count divided by this gives ours (20000 -> 4000).
  int iteration_divisor = 5;
  // Dataset size: 11,547 -> ~1,000 synthetic images.
  int dataset_images = 1000;
  // Network input: 608 -> 96 (divisible by 32).
  int input_size = 96;
  // Training batch (paper: 64 with subdivisions; ours fits in one pass).
  int batch = 4;

  // Maps a paper iteration number (e.g. Table II's 7000..20000) to the
  // scaled schedule.
  int ScaledIteration(int paper_iteration) const {
    return paper_iteration / iteration_divisor;
  }
};

}  // namespace thali

#endif  // THALI_CORE_REPRO_SCALE_H_
