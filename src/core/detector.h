#ifndef THALI_CORE_DETECTOR_H_
#define THALI_CORE_DETECTOR_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "darknet/cfg.h"
#include "data/dataset.h"
#include "eval/detection.h"
#include "image/image.h"
#include "nn/detection_head.h"
#include "nn/network.h"
#include "tensor/tensor.h"

namespace thali {

// The public inference API: owns a network plus its detection heads and
// turns Images into lists of Detections (boxes normalized to [0,1] of
// the *input image*, so callers never see network coordinates).
//
// Networks built through FromCfg/FromFiles run in ExecMode::kInference:
// no delta tensors, activations arena-planned (see nn/exec_plan.h).
// Batch size adapts dynamically — Detect runs at batch 1, DetectBatch
// re-plans buffers to the request size via Network::SetBatch.
//
// Thread-safety contract: a Detector serializes callers. Detect and
// DetectBatch mutate the network (batch re-planning, activation buffers),
// so at most one detection call may be in flight per Detector at a time —
// concurrent entry is a checked error. Code that wants parallel inference
// gives each thread its own Detector instance (serve/server.cc does
// exactly this: one Detector per worker).
class Detector {
 public:
  struct Options {
    float conf_threshold = 0.25f;
    float nms_threshold = 0.45f;
  };

  // Builds from cfg text with random weights (callers then LoadFromFile
  // or are handed a trained network by the trainer).
  static StatusOr<Detector> FromCfg(const std::string& cfg_text,
                                    uint64_t seed = 7);

  // Builds from cfg text and a .weights checkpoint.
  static StatusOr<Detector> FromFiles(const std::string& cfg_text,
                                      const std::string& weights_path,
                                      uint64_t seed = 7);

  // Takes ownership of an existing network (e.g. a freshly trained one).
  // `heads` must point into `net`. The network may be in either exec
  // mode and at any batch size; detection adjusts the batch as needed.
  Detector(std::unique_ptr<Network> net, std::vector<DetectionHead*> heads,
           Options options);
  Detector(std::unique_ptr<Network> net, std::vector<DetectionHead*> heads)
      : Detector(std::move(net), std::move(heads), Options()) {}

  // Moving a Detector with a detection call in flight is a caller bug;
  // the moved-to instance starts with an idle reentrancy guard.
  Detector(Detector&& other) noexcept
      : net_(std::move(other.net_)),
        heads_(std::move(other.heads_)),
        opts_(other.opts_),
        input_staging_(std::move(other.input_staging_)),
        stage_times_(other.stage_times_) {}
  Detector& operator=(Detector&& other) noexcept {
    net_ = std::move(other.net_);
    heads_ = std::move(other.heads_);
    opts_ = other.opts_;
    input_staging_ = std::move(other.input_staging_);
    stage_times_ = other.stage_times_;
    return *this;
  }

  // Wall-clock stage breakdown of the most recent Detect/DetectBatch:
  // preprocess (letterbox + staging), forward (network), postprocess
  // (head decode + NMS + box remapping). For serving metrics and the
  // pre/post bench; covered by the single-caller contract above.
  struct StageTimes {
    double preprocess_ms = 0.0;
    double forward_ms = 0.0;
    double postprocess_ms = 0.0;
  };
  const StageTimes& last_stage_times() const { return stage_times_; }

  // Runs detection on one image. Images whose size differs from the
  // network input are letterboxed; returned boxes are mapped back to the
  // original image frame and NMS-filtered, sorted by confidence.
  // Non-const: re-plans network buffers (see the thread-safety contract
  // above).
  std::vector<Detection> Detect(const Image& image);

  // As Detect, with explicit thresholds.
  std::vector<Detection> Detect(const Image& image, float conf_threshold,
                                float nms_threshold);

  // Runs detection on N images in one forward pass. Per-image results
  // are bitwise identical to N separate Detect calls (batch items never
  // interact in inference: rolling batch-norm statistics, per-item
  // convolutions). The network's batch dimension is re-planned to
  // images.size() on demand and stays there until the next call.
  std::vector<std::vector<Detection>> DetectBatch(
      std::span<const Image> images);
  std::vector<std::vector<Detection>> DetectBatch(
      std::span<const Image> images, float conf_threshold,
      float nms_threshold);

  Network& network() { return *net_; }
  const Options& options() const { return opts_; }
  void set_options(const Options& o) { opts_ = o; }

  // Folds batch norms for faster inference (irreversible; do not train
  // afterwards). Composes with the inference-mode arena plan: folding
  // touches only weights/biases, never activation buffers.
  void FuseBatchNorm();

  // How Detector::CalibrateInt8 derives activation ranges.
  struct Int8CalibrationOptions {
    enum class Mode { kMinMax, kPercentile };
    Mode mode = Mode::kMinMax;
    // kPercentile: each tail of the input histogram is trimmed to
    // (100 - percentile)/2 percent of the observed values.
    double percentile = 99.9;
    // Images forwarded per calibration pass (the percentile mode runs
    // two passes: range, then histogram).
    int max_images = 32;
  };

  // Arms the THALI_INT8 conv path: folds batch norms (the quantized
  // path runs on folded weights), then runs fp32 forward passes over
  // `indices` into `dataset` with the network's calibration phase set,
  // and installs each eligible conv's activation range. A no-op network
  // without kQuantInt8 plan entries (int8 off) returns 0. Returns the
  // number of conv layers armed for int8. Persist the result with
  // darknet/calibration_io.h to skip this pass on later loads.
  int CalibrateInt8(const FoodDataset& dataset, std::span<const int> indices,
                    const Int8CalibrationOptions& options);
  int CalibrateInt8(const FoodDataset& dataset, std::span<const int> indices) {
    return CalibrateInt8(dataset, indices, Int8CalibrationOptions());
  }

  // Builds calibration options from the environment:
  // THALI_INT8_CALIB = minmax (default) | percentile, and
  // THALI_INT8_PERCENTILE = the percentile (default 99.9).
  static Int8CalibrationOptions CalibrationOptionsFromEnv();

 private:
  // Geometry of one letterboxed batch slot, for mapping boxes back into
  // the source image frame.
  struct SlotMapping {
    bool direct = true;
    float scale = 1.0f;
    int pad_x = 0;
    int pad_y = 0;
  };

  // Letterboxes `image` into batch slot `b`: the one shared load path
  // for Detect/DetectBatch/calibration forwards. With `fused_quant` the
  // slot is staged directly as u8 bytes in the plan's input domain
  // (image/image_prepost.h fused letterbox-quantize) and the fp32
  // staging slot is left untouched — a chained layer 0 never reads it.
  // Otherwise the fast path writes the letterboxed planes straight into
  // the staging tensor, and THALI_NO_FASTPRE=1 restores the seed
  // Image-intermediate route bit for bit.
  SlotMapping LoadImageIntoSlot(const Image& image, int64_t b,
                                bool fused_quant);

  // Letterboxes one image into the staging tensor and runs a batch-1
  // forward pass (calibration passes).
  void ForwardImage(const Image& image);
  std::unique_ptr<Network> net_;
  std::vector<DetectionHead*> heads_;
  Options opts_;
  // Reentrancy guard enforcing the single-caller contract: set for the
  // duration of a DetectBatch, checked on entry.
  std::atomic<bool> in_detect_{false};
  // Persistent staging buffer the batch is letterboxed/copied into before
  // the forward pass. Kept across calls so steady-state serving does not
  // allocate (and fault in) a multi-hundred-KB input tensor per request
  // batch; every slot is overwritten before use.
  Tensor input_staging_;
  StageTimes stage_times_;
};

// Shared by the trainer, benches and Detector: runs the already-forwarded
// heads for batch item `b`, NMS-merges across heads. Boxes stay in
// network-input normalized coordinates.
std::vector<Detection> CollectDetections(
    const std::vector<DetectionHead*>& heads, int b, float conf_threshold,
    float nms_threshold, int net_w, int net_h);

}  // namespace thali

#endif  // THALI_CORE_DETECTOR_H_
