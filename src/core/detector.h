#ifndef THALI_CORE_DETECTOR_H_
#define THALI_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "darknet/cfg.h"
#include "eval/detection.h"
#include "image/image.h"
#include "nn/detection_head.h"
#include "nn/network.h"

namespace thali {

// The public inference API: owns a network plus its detection heads and
// turns an Image into a list of Detections (boxes normalized to [0,1] of
// the *input image*, so callers never see network coordinates).
class Detector {
 public:
  struct Options {
    float conf_threshold = 0.25f;
    float nms_threshold = 0.45f;
  };

  // Builds from cfg text with random weights (callers then LoadFromFile
  // or are handed a trained network by the trainer).
  static StatusOr<Detector> FromCfg(const std::string& cfg_text,
                                    uint64_t seed = 7);

  // Builds from cfg text and a .weights checkpoint.
  static StatusOr<Detector> FromFiles(const std::string& cfg_text,
                                      const std::string& weights_path,
                                      uint64_t seed = 7);

  // Takes ownership of an existing network (e.g. a freshly trained one).
  // `heads` must point into `net`.
  Detector(std::unique_ptr<Network> net, std::vector<DetectionHead*> heads,
           Options options);
  Detector(std::unique_ptr<Network> net, std::vector<DetectionHead*> heads)
      : Detector(std::move(net), std::move(heads), Options()) {}

  Detector(Detector&&) = default;
  Detector& operator=(Detector&&) = default;

  // Runs detection on one image. Images whose size differs from the
  // network input are letterboxed; returned boxes are mapped back to the
  // original image frame and NMS-filtered, sorted by confidence.
  std::vector<Detection> Detect(const Image& image) const;

  // As Detect, with explicit thresholds.
  std::vector<Detection> Detect(const Image& image, float conf_threshold,
                                float nms_threshold) const;

  Network& network() { return *net_; }
  const Options& options() const { return opts_; }
  void set_options(const Options& o) { opts_ = o; }

  // Folds batch norms for faster inference (irreversible; do not train
  // afterwards).
  void FuseBatchNorm();

 private:
  std::unique_ptr<Network> net_;
  std::vector<DetectionHead*> heads_;
  Options opts_;
};

// Shared by the trainer, benches and Detector: runs the already-forwarded
// heads for batch item `b`, NMS-merges across heads. Boxes stay in
// network-input normalized coordinates.
std::vector<Detection> CollectDetections(
    const std::vector<DetectionHead*>& heads, int b, float conf_threshold,
    float nms_threshold, int net_w, int net_h);

}  // namespace thali

#endif  // THALI_CORE_DETECTOR_H_
