#ifndef THALI_TENSOR_IM2COL_H_
#define THALI_TENSOR_IM2COL_H_

#include <cstdint>

namespace thali {

// Unrolls one image (CHW) into a column matrix of shape
// (channels*ksize*ksize) x (out_h*out_w), so a convolution becomes a GEMM
// with the (out_channels) x (channels*ksize*ksize) weight matrix.
// `pad` is symmetric zero padding; out-of-image taps read as 0.
void Im2Col(const float* im, int64_t channels, int64_t height, int64_t width,
            int64_t ksize, int64_t stride, int64_t pad, float* col);

// Im2Col with an explicit stride between consecutive channel planes
// (H*W for a dense CHW image; batch*H*W for one item of a CNHW blocked
// activation). Emits the exact same column matrix as Im2Col.
void Im2ColStrided(const float* im, int64_t chan_stride, int64_t channels,
                   int64_t height, int64_t width, int64_t ksize,
                   int64_t stride, int64_t pad, float* col);

// Im2ColStrided over quantized u8 planes. Out-of-image taps read as
// `pad_value` — the activation zero point, which quantizes the real
// x = 0 exactly (see tensor/gemm_int8.h).
void Im2ColStridedU8(const uint8_t* im, int64_t chan_stride, int64_t channels,
                     int64_t height, int64_t width, int64_t ksize,
                     int64_t stride, int64_t pad, uint8_t pad_value,
                     uint8_t* col);

// Inverse scatter-add of Im2Col used on the backward pass: accumulates the
// column-matrix gradient back into the (pre-zeroed) image gradient buffer.
void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t ksize, int64_t stride, int64_t pad, float* im);

// Output spatial size of a convolution/pool with the given geometry.
inline int64_t ConvOutSize(int64_t in, int64_t ksize, int64_t stride,
                           int64_t pad) {
  return (in + 2 * pad - ksize) / stride + 1;
}

}  // namespace thali

#endif  // THALI_TENSOR_IM2COL_H_
