#include "tensor/qtensor.h"

namespace thali {

const char* DTypeName(DType t) {
  switch (t) {
    case DType::kF32:
      return "f32";
    case DType::kI8:
      return "i8";
    case DType::kU8:
      return "u8";
    case DType::kI32:
      return "i32";
  }
  return "?";
}

}  // namespace thali
