#ifndef THALI_TENSOR_GEMM_PACK_H_
#define THALI_TENSOR_GEMM_PACK_H_

#include <cstdint>

namespace thali {

// Panel packing for the blocked GEMM driver (gemm.cc).
//
// A panels (column-major tiles): rows are grouped into tiles of kGemmMR;
// tile t of a pack covering kb k-steps lives at offset t*kGemmMR*kb, and
// element (p, r) of a tile at panel[p*kGemmMR + r]. Rows past the end of
// the matrix are zero-padded so the microkernel can always run a full
// MR-row tile; alpha is folded into the packed values with the same
// single rounded multiply the reference kernels use (`alpha * a[i][p]`).
//
// B panels (row-major strips): columns are grouped into strips of
// kGemmNR; strip u lives at offset u*kb*kGemmNR, and element (p, j) at
// panel[p*kGemmNR + j], zero-padded past the last column. Strips start
// 64-byte aligned (kGemmNR floats = 64 bytes per row), which the AVX2
// microkernel exploits with aligned loads.

// Number of MR-row tiles needed for m rows.
int64_t GemmPackedRowTiles(int64_t m);

// Floats required to pre-pack a full m x k op(A): ceil(m/MR)*MR * k.
int64_t GemmPackedWeightFloats(int64_t m, int64_t k);

// Pack op(A) rows [i0, i0+mb) x k-range [p0, p0+kb) into `dst`
// (GemmPackedRowTiles(mb)*MR*kb floats). op(A)(i,p) is a[i*lda+p], or
// a[p*lda+i] when trans_a.
void GemmPackA(bool trans_a, const float* a, int64_t lda, int64_t i0,
               int64_t mb, int64_t p0, int64_t kb, float alpha, float* dst);

// Pack op(B) k-range [p0, p0+kb) x cols [j0, j0+nb) into `dst`
// (kb * ceil(nb/NR)*NR floats). op(B)(p,j) is b[p*ldb+j], or b[j*ldb+p]
// when trans_b.
void GemmPackB(bool trans_b, const float* b, int64_t ldb, int64_t p0,
               int64_t kb, int64_t j0, int64_t nb, float* dst);

// Pre-pack all of op(A) (m x k), blocked by kGemmKC exactly as the
// driver consumes it: the block for k-range [p0, p0+kcb) starts at
// dst + p0 * (GemmPackedRowTiles(m) * kGemmMR), with the tile layout
// above inside each block. `dst` must hold GemmPackedWeightFloats(m, k)
// floats and should be 64-byte aligned.
void GemmPackMatrixA(bool trans_a, const float* a, int64_t lda, int64_t m,
                     int64_t k, float alpha, float* dst);

// Per-thread 64-byte-aligned scratch for on-the-fly packing, grown
// lazily and reused across calls. thread_local rather than tid-indexed:
// a Gemm nested under an outer ParallelFor runs inline on the *outer*
// worker threads, where every strand reports tid 0 — indexing by tid
// would alias buffers across true OS threads, while thread_local cannot.
float* GemmPackScratchA(int64_t floats);
float* GemmPackScratchB(int64_t floats);

}  // namespace thali

#endif  // THALI_TENSOR_GEMM_PACK_H_
