#include "tensor/winograd.h"

#include <algorithm>

#include "base/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/gemm_pack.h"

namespace thali {

namespace {

// Transform work below this many elements per chunk stays inline.
constexpr int64_t kWinoGrainElems = int64_t{1} << 12;

// B^T (4x4) butterfly applied to a length-4 vector:
//   y0 = x0 - x2,  y1 = x1 + x2,  y2 = x2 - x1,  y3 = x1 - x3.
// A^T (2x4):
//   y0 = x0 + x1 + x2,  y1 = x1 - x2 - x3.
// G (4x3):
//   y0 = x0,  y1 = (x0+x1+x2)/2,  y2 = (x0-x1+x2)/2,  y3 = x2.

inline int64_t TilesAlong(int64_t extent) { return (extent + 1) / 2; }

}  // namespace

int64_t WinogradWeightFloats(int64_t filters, int64_t channels) {
  return 16 * filters * channels;
}

int64_t WinogradPackedWeightFloats(int64_t filters, int64_t channels) {
  return 16 * GemmPackedWeightFloats(filters, channels);
}

void WinogradTransformWeights(const float* w, int64_t filters,
                              int64_t channels, float* u) {
  const int64_t fc = filters * channels;
  for (int64_t f = 0; f < filters; ++f) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* g = w + (f * channels + c) * 9;
      // tmp = G * g  (4x3), columns first.
      float tmp[4][3];
      for (int j = 0; j < 3; ++j) {
        const float g0 = g[j], g1 = g[3 + j], g2 = g[6 + j];
        tmp[0][j] = g0;
        tmp[1][j] = 0.5f * (g0 + g1 + g2);
        tmp[2][j] = 0.5f * (g0 - g1 + g2);
        tmp[3][j] = g2;
      }
      // U = tmp * G^T (4x4), rows.
      for (int i = 0; i < 4; ++i) {
        const float t0 = tmp[i][0], t1 = tmp[i][1], t2 = tmp[i][2];
        const float r0 = t0;
        const float r1 = 0.5f * (t0 + t1 + t2);
        const float r2 = 0.5f * (t0 - t1 + t2);
        const float r3 = t2;
        u[(i * 4 + 0) * fc + f * channels + c] = r0;
        u[(i * 4 + 1) * fc + f * channels + c] = r1;
        u[(i * 4 + 2) * fc + f * channels + c] = r2;
        u[(i * 4 + 3) * fc + f * channels + c] = r3;
      }
    }
  }
}

void WinogradPackWeights(const float* u, int64_t filters, int64_t channels,
                         float* packed) {
  const int64_t stride = GemmPackedWeightFloats(filters, channels);
  for (int k = 0; k < 16; ++k) {
    GemmPackWeights(u + k * filters * channels, filters, channels,
                    packed + k * stride);
  }
}

int64_t WinogradWorkspaceFloats(int64_t channels, int64_t filters,
                                int64_t height, int64_t width) {
  const int64_t tiles = TilesAlong(height) * TilesAlong(width);
  return 16 * (channels + filters) * tiles;
}

void WinogradForward(const float* in, int64_t in_chan_stride, int64_t channels,
                     int64_t height, int64_t width, const float* u,
                     const float* u_packed, int64_t filters, float* out,
                     int64_t out_chan_stride, float* ws) {
  const int64_t th = TilesAlong(height);
  const int64_t tw = TilesAlong(width);
  const int64_t tiles = th * tw;
  float* v = ws;                          // 16 x C x tiles
  float* m = ws + 16 * channels * tiles;  // 16 x F x tiles

  // 1. Input transform. Channels are independent; each channel's tiles
  // run in a fixed sequential order inside its chunk.
  const int64_t c_grain =
      std::max<int64_t>(1, kWinoGrainElems / std::max<int64_t>(1, tiles));
  ParallelFor(0, channels, c_grain, [&](int64_t c0, int64_t c1, int) {
    float d[4][4];
    for (int64_t c = c0; c < c1; ++c) {
      const float* plane = in + c * in_chan_stride;
      float* vc = v + c * tiles;
      for (int64_t ty = 0; ty < th; ++ty) {
        const int64_t y0 = 2 * ty - 1;  // pad = 1
        const bool y_interior = y0 >= 0 && y0 + 3 < height;
        for (int64_t tx = 0; tx < tw; ++tx) {
          const int64_t x0 = 2 * tx - 1;
          if (y_interior && x0 >= 0 && x0 + 3 < width) {
            const float* p = plane + y0 * width + x0;
            for (int r = 0; r < 4; ++r, p += width) {
              d[r][0] = p[0];
              d[r][1] = p[1];
              d[r][2] = p[2];
              d[r][3] = p[3];
            }
          } else {
            for (int r = 0; r < 4; ++r) {
              const int64_t y = y0 + r;
              for (int s = 0; s < 4; ++s) {
                const int64_t x = x0 + s;
                d[r][s] = (y >= 0 && y < height && x >= 0 && x < width)
                              ? plane[y * width + x]
                              : 0.0f;
              }
            }
          }
          // B^T d (columns), then (B^T d) B (rows).
          float t[4][4];
          for (int j = 0; j < 4; ++j) {
            t[0][j] = d[0][j] - d[2][j];
            t[1][j] = d[1][j] + d[2][j];
            t[2][j] = d[2][j] - d[1][j];
            t[3][j] = d[1][j] - d[3][j];
          }
          const int64_t tile = ty * tw + tx;
          float* vdst = vc + tile;
          const int64_t kstride = channels * tiles;
          for (int i = 0; i < 4; ++i) {
            const float w0 = t[i][0] - t[i][2];
            const float w1 = t[i][1] + t[i][2];
            const float w2 = t[i][2] - t[i][1];
            const float w3 = t[i][1] - t[i][3];
            vdst[(i * 4 + 0) * kstride] = w0;
            vdst[(i * 4 + 1) * kstride] = w1;
            vdst[(i * 4 + 2) * kstride] = w2;
            vdst[(i * 4 + 3) * kstride] = w3;
          }
        }
      }
    }
  });

  // 2. Sixteen independent GEMMs M_k = U_k * V_k. Parallelism comes
  // from the k loop (each GEMM runs inline inside its chunk; nested
  // ParallelFor never re-parallelizes), which keeps per-GEMM dispatch
  // overhead off the critical path for yolo-sized problems. Per-element
  // results are chunking-independent by the GEMM determinism contract.
  const int64_t packed_stride = GemmPackedWeightFloats(filters, channels);
  ParallelFor(0, 16, 1, [&](int64_t k0, int64_t k1, int) {
    for (int64_t k = k0; k < k1; ++k) {
      const float* vk = v + k * channels * tiles;
      float* mk = m + k * filters * tiles;
      if (u_packed != nullptr) {
        GemmPrepacked(filters, tiles, channels, u_packed + k * packed_stride,
                      /*tb=*/false, vk, tiles, 0.0f, mk, tiles);
      } else {
        Gemm(false, false, filters, tiles, channels, 1.0f,
             u + k * filters * channels, channels, vk, tiles, 0.0f, mk, tiles);
      }
    }
  });

  // 3. Output transform. Filters are independent.
  const int64_t f_grain =
      std::max<int64_t>(1, kWinoGrainElems / std::max<int64_t>(1, tiles));
  ParallelFor(0, filters, f_grain, [&](int64_t f0, int64_t f1, int) {
    for (int64_t f = f0; f < f1; ++f) {
      const float* mf = m + f * tiles;
      const int64_t kstride = filters * tiles;
      float* plane = out + f * out_chan_stride;
      for (int64_t ty = 0; ty < th; ++ty) {
        const int64_t oy = 2 * ty;
        for (int64_t tx = 0; tx < tw; ++tx) {
          const int64_t tile = ty * tw + tx;
          const float* msrc = mf + tile;
          float mm[16];
          for (int k = 0; k < 16; ++k) mm[k] = msrc[k * kstride];
          // A^T M (columns: 2x4), then (A^T M) A (rows: 2x2).
          float a[2][4];
          for (int j = 0; j < 4; ++j) {
            a[0][j] = mm[0 * 4 + j] + mm[1 * 4 + j] + mm[2 * 4 + j];
            a[1][j] = mm[1 * 4 + j] - mm[2 * 4 + j] - mm[3 * 4 + j];
          }
          const int64_t ox = 2 * tx;
          const bool x1_in = ox + 1 < width;
          for (int r = 0; r < 2; ++r) {
            const int64_t y = oy + r;
            if (y >= height) break;
            float* orow = plane + y * width;
            orow[ox] = a[r][0] + a[r][1] + a[r][2];
            if (x1_in) orow[ox + 1] = a[r][1] - a[r][2] - a[r][3];
          }
        }
      }
    }
  });
}

}  // namespace thali
