#include "tensor/act_kernels.h"

#include <atomic>
#include <cstring>

#include "base/cpu_features.h"
#include "tensor/act_kernels_impl.h"

namespace thali {

namespace {

using act_detail::ActKernel;

// Dispatch override for tests: 0 = auto, 1 = scalar, 2 = avx2.
std::atomic<int> g_act_override{0};

const ActKernel kScalarActKernel = {
    /*name=*/"scalar-act",
    /*leaky=*/&act_detail::LeakyScalar,
    /*relu=*/&act_detail::ReluScalar,
    /*mish=*/&act_detail::MishScalar,
    /*collect=*/&act_detail::CollectAtLeastScalar,
};

const ActKernel* DetectActKernel() {
  const ActKernel* avx2 = Avx2ActKernel();
  if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return avx2;
  return &kScalarActKernel;
}

const ActKernel& SelectActKernel() {
  switch (g_act_override.load(std::memory_order_acquire)) {
    case 1:
      return kScalarActKernel;
    case 2: {
      const ActKernel* avx2 = Avx2ActKernel();
      if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return *avx2;
      break;
    }
    default:
      break;
  }
  static const ActKernel* const detected = DetectActKernel();
  return *detected;
}

}  // namespace

void FastLeakyInPlace(float* x, int64_t n) { SelectActKernel().leaky(x, n); }
void FastReluInPlace(float* x, int64_t n) { SelectActKernel().relu(x, n); }
void FastMishInPlace(float* x, int64_t n) { SelectActKernel().mish(x, n); }

int64_t CollectAtLeast(const float* x, int64_t n, float threshold,
                       int32_t* out) {
  return SelectActKernel().collect(x, n, threshold, out);
}

const char* ActKernelName() { return SelectActKernel().name; }

namespace internal {

float FastExpScalar(float x) { return act_detail::FastExp(x); }

void SetActKernelForTesting(const char* name) {
  int value = 0;
  if (name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) value = 1;
    if (std::strcmp(name, "avx2") == 0) value = 2;
  }
  g_act_override.store(value, std::memory_order_release);
}

}  // namespace internal

}  // namespace thali
