#include "tensor/im2col.h"

namespace thali {

void Im2Col(const float* im, int64_t channels, int64_t height, int64_t width,
            int64_t ksize, int64_t stride, int64_t pad, float* col) {
  Im2ColStrided(im, height * width, channels, height, width, ksize, stride,
                pad, col);
}

void Im2ColStrided(const float* im, int64_t chan_stride, int64_t channels,
                   int64_t height, int64_t width, int64_t ksize,
                   int64_t stride, int64_t pad, float* col) {
  const int64_t out_h = ConvOutSize(height, ksize, stride, pad);
  const int64_t out_w = ConvOutSize(width, ksize, stride, pad);
  const int64_t cols = out_h * out_w;

  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const float* imc = im + c * chan_stride;
    for (int64_t kh = 0; kh < ksize; ++kh) {
      for (int64_t kw = 0; kw < ksize; ++kw, ++row) {
        float* out = col + row * cols;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int64_t ow = 0; ow < out_w; ++ow) *out++ = 0.0f;
            continue;
          }
          const float* imrow = imc + ih * width;
          int64_t iw = -pad + kw;
          for (int64_t ow = 0; ow < out_w; ++ow, iw += stride) {
            *out++ = (iw >= 0 && iw < width) ? imrow[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Im2ColStridedU8(const uint8_t* im, int64_t chan_stride, int64_t channels,
                     int64_t height, int64_t width, int64_t ksize,
                     int64_t stride, int64_t pad, uint8_t pad_value,
                     uint8_t* col) {
  const int64_t out_h = ConvOutSize(height, ksize, stride, pad);
  const int64_t out_w = ConvOutSize(width, ksize, stride, pad);
  const int64_t cols = out_h * out_w;

  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const uint8_t* imc = im + c * chan_stride;
    for (int64_t kh = 0; kh < ksize; ++kh) {
      for (int64_t kw = 0; kw < ksize; ++kw, ++row) {
        uint8_t* out = col + row * cols;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            for (int64_t ow = 0; ow < out_w; ++ow) *out++ = pad_value;
            continue;
          }
          const uint8_t* imrow = imc + ih * width;
          int64_t iw = -pad + kw;
          for (int64_t ow = 0; ow < out_w; ++ow, iw += stride) {
            *out++ = (iw >= 0 && iw < width) ? imrow[iw] : pad_value;
          }
        }
      }
    }
  }
}

void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t ksize, int64_t stride, int64_t pad, float* im) {
  const int64_t out_h = ConvOutSize(height, ksize, stride, pad);
  const int64_t out_w = ConvOutSize(width, ksize, stride, pad);
  const int64_t cols = out_h * out_w;

  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    float* imc = im + c * height * width;
    for (int64_t kh = 0; kh < ksize; ++kh) {
      for (int64_t kw = 0; kw < ksize; ++kw, ++row) {
        const float* in = col + row * cols;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) {
            in += out_w;
            continue;
          }
          float* imrow = imc + ih * width;
          int64_t iw = -pad + kw;
          for (int64_t ow = 0; ow < out_w; ++ow, iw += stride) {
            if (iw >= 0 && iw < width) imrow[iw] += *in;
            ++in;
          }
        }
      }
    }
  }
}

}  // namespace thali
