#ifndef THALI_TENSOR_GEMM_INT8_H_
#define THALI_TENSOR_GEMM_INT8_H_

#include <cstdint>

#include "tensor/gemm.h"

namespace thali {

// Per-channel symmetric int8 GEMM for inference convolutions.
//
// The quantization scheme (see DESIGN.md "Quantization"):
//
//   weights     w[f][p] ~= s_w[f] * qw[f][p],   qw in [-127, 127]
//   activations x[p][j] ~= s_in * (u[p][j] - zp), u in [0, 127]
//
// Activations are quantized to SEVEN-bit unsigned [0, 127] (not the full
// u8 range) so the AVX2 kernel's vpmaddubsw pair sums are bounded by
// 127*127*2 = 32258 < 32767 — the i16 intermediate can never saturate,
// which makes the integer accumulation EXACT. Both kernel families
// (scalar, AVX2) therefore produce bit-identical i32 accumulators, and a
// single shared requantization epilogue turns them into identical fp32:
//
//   acc[f][j] = sum_p qw[f][p] * u[p][j]                    (exact i32)
//   c[f][j]   = (acc[f][j] - zp * colsum[f]) * (s_in * s_w[f]) + bias[f]
//   c[f][j]   = activation(c[f][j])                         (leaky/relu)
//
// where colsum[f] = sum_p qw[f][p] folds the activation zero point out
// of the integer domain. k is padded to kp = RoundUp(k, 4) with ZERO
// weight bytes, so padded taps contribute exactly 0 regardless of the
// activation byte they pair with; conv border padding quantizes the real
// x = 0 as u = zp, which the colsum compensation also cancels exactly.

// Padded depth shared by the weight rows and the packed activations.
inline int64_t Int8PackedK(int64_t k) { return (k + 3) / 4 * 4; }

// Bytes of a quantized weight blob: m rows of kp bytes.
inline int64_t Int8PackedWeightBytes(int64_t m, int64_t k) {
  return m * Int8PackedK(k);
}

// Quantizes the row-major m x k weight matrix: per-row symmetric scale
// s_w[f] = maxabs(row f)/127, round-to-nearest-even, k padded to kp with
// zeros. Also emits colsum[f] over the quantized row.
void Int8QuantizeWeights(const float* w, int64_t m, int64_t k, int8_t* qw,
                         float* scale, int32_t* colsum);

// Quantizes `count` floats to 7-bit unsigned: clamp(rne(x/s) + zp, 0, 127).
// Shared by every caller (conv input quantization, tests, benches) so all
// paths agree bit for bit.
void Int8QuantizeActivations(const float* x, int64_t count, float inv_scale,
                             int32_t zp, uint8_t* u);

// Derives (scale, zp) from a calibrated activation range. The range is
// widened to include 0 so conv zero padding stays exactly representable.
void Int8RangeToScaleZp(float range_min, float range_max, float* scale,
                        int32_t* zp);

// Bytes of a packed activation panel for a k x n column matrix: kp * n.
inline int64_t Int8PackedActBytes(int64_t k, int64_t n) {
  return Int8PackedK(k) * n;
}

// Packs the quantized k x n column matrix `qcol` (row-major, row stride
// n) into the kernel panel layout: columns grouped in strips of 8, each
// strip interleaved in k-quads (byte (p, j) of strip u at
// strip_base + (p/4)*32 + (j%8)*4 + p%4, strip_base = packed + u*kp*8),
// so one 32-byte load feeds 8 columns x 4 k-steps of vpmaddubsw. The
// n % 8 tail columns follow flat (k-contiguous, kp bytes each) for the
// k-vectorized tail-dot kernel. Padding rows p >= k are zero.
void Int8PackActCols(const uint8_t* qcol, int64_t k, int64_t n,
                     uint8_t* packed);

// Int8PackActCols over a row-strided source: row p starts at
// qcol + p * row_stride (row_stride >= n). Lets the direct-1x1 path
// pack straight from quantized channel planes whose plane stride is not
// the GEMM width (a CNHW block consumed per batch item). With
// row_stride == n this is exactly Int8PackActCols.
void Int8PackActColsStrided(const uint8_t* qcol, int64_t row_stride,
                            int64_t k, int64_t n, uint8_t* packed);

// One int8 kernel family: accumulates rows [m0, m1) of the i32 product
// into acc (row-major, row stride ldacc) from a quantized weight blob
// (rows of kp bytes) and a packed activation panel. Accumulation is
// exact integer arithmetic, so every family produces identical bits.
struct Int8GemmKernel {
  const char* name;  // "avx2-ubsw-6x8" / "scalar-int8"
  void (*accumulate)(int64_t m0, int64_t m1, int64_t n, int64_t kp,
                     const int8_t* qw, const uint8_t* packed, int32_t* acc,
                     int64_t ldacc);
};

const Int8GemmKernel& ScalarInt8GemmKernel();
// nullptr when this build has no AVX2 TU (non-x86 targets).
const Int8GemmKernel* Avx2Int8GemmKernel();
// Runtime dispatch: AVX2 when the CPU supports it, scalar otherwise.
const Int8GemmKernel& SelectInt8GemmKernel();

// Requantization parameters of one int8 GEMM (the epilogue inputs).
//
// With out_u8 == nullptr the epilogue dequantizes into fp32 C (the
// original PR-7 behaviour). With out_u8 set, the epilogue instead
// REQUANTIZES the activated value into the consumer's 7-bit unsigned
// domain (quantize-once chaining between adjacent int8 layers):
//
//   u[f][j] = clamp(rne(act(c[f][j]) * out_inv_scale) + out_zp, 0, 127)
//
// — the exact Int8QuantizeActivations formula, so a chained edge holds
// the same bytes an fp32 write followed by the consumer's own quantize
// would have produced. fp32 C is not written on that path (pass
// c = nullptr). kMish routes through the FastMish family
// (act_kernels_impl.h / simd_exp_avx2.h), which is bit-identical
// between the scalar and AVX2 epilogues like every other op here.
struct Int8Epilogue {
  float in_scale = 1.0f;           // s_in
  int32_t in_zp = 0;               // activation zero point
  const float* wscale = nullptr;   // s_w[m]
  const int32_t* wcolsum = nullptr;  // colsum[m]
  const float* bias = nullptr;     // per-row bias, may be null
  GemmActivation activation = GemmActivation::kNone;  // incl. kMish
  uint8_t* out_u8 = nullptr;       // u8 destination (row stride ldc)
  float out_inv_scale = 1.0f;      // 1 / s_out of the consumer domain
  int32_t out_zp = 0;              // consumer-domain zero point
};

// C[f][j] = act((acc - zp*colsum[f]) * s_in*s_w[f] + bias[f]) over rows
// [m0, m1). Both kernel families requantize through this one entry
// point. Internally it dispatches between a scalar reference and an
// AVX2 lane-parallel version; every op is elementwise IEEE arithmetic
// (cvt, mul, add, compare — no FMA contraction in either TU), so the
// two produce bit-identical floats and the dispatch cannot break the
// family-identity guarantee. Small-k conv shapes are epilogue-bound
// (outputs scale with m*n while MACs scale with m*n*k), which is why
// this is vectorized at all.
void Int8ApplyEpilogue(const Int8Epilogue& e, int64_t m0, int64_t m1,
                       int64_t n, const int32_t* acc, int64_t ldacc, float* c,
                       int64_t ldc);

// One requantization epilogue implementation (same contract as
// Int8ApplyEpilogue minus the dispatch).
using Int8EpilogueFn = void (*)(const Int8Epilogue& e, int64_t m0, int64_t m1,
                                int64_t n, const int32_t* acc, int64_t ldacc,
                                float* c, int64_t ldc);

// nullptr when this build has no AVX2 TU (non-x86 targets).
Int8EpilogueFn Avx2Int8EpilogueOrNull();

// Full quantized GEMM: dispatches the kernel family, row-parallel with
// the shared thread pool (integer accumulation + disjoint rows keep the
// result bitwise identical at every thread count), then requantizes into
// fp32 C (row stride ldc) — or, when e.out_u8 is set, into the u8
// consumer domain (c may then be nullptr; ldc still strides out_u8).
// `acc` must hold m * n int32 of scratch.
void Int8GemmPrepacked(int64_t m, int64_t n, int64_t k, const int8_t* qw,
                       const uint8_t* packed, const Int8Epilogue& e, float* c,
                       int64_t ldc, int32_t* acc);

// Workspace bytes one batch item of an int8 conv forward needs: the
// quantized input planes, the u8 im2col panel, the packed activation
// panel and the i32 accumulator tile, each 64-byte aligned.
int64_t Int8ConvWorkspaceBytes(int64_t m, int64_t n, int64_t k,
                               int64_t in_planes);

// Workspace bytes of one int8 direct-1x1 GEMM over n columns: the
// quantized input planes (skipped at runtime when the input arrives
// already chained in u8), the packed activation panel, and the i32
// accumulator tile — no im2col panel, the channel planes ARE the
// column matrix.
int64_t Int8Direct1x1WorkspaceBytes(int64_t m, int64_t n, int64_t k);

namespace internal {
// Force dispatch to "scalar" or "avx2" (ignored when unavailable), or
// nullptr to restore automatic detection.
void SetInt8GemmKernelForTesting(const char* name);
// Same, for the requantization epilogue inside Int8ApplyEpilogue.
void SetInt8EpilogueForTesting(const char* name);
}  // namespace internal

}  // namespace thali

#endif  // THALI_TENSOR_GEMM_INT8_H_
