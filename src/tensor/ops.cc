#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace thali {

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  THALI_CHECK_EQ(x.size(), y.size());
  const float* xp = x.data();
  float* yp = y.data();
  const int64_t n = x.size();
  for (int64_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void Scale(float alpha, Tensor& x) {
  float* xp = x.data();
  const int64_t n = x.size();
  for (int64_t i = 0; i < n; ++i) xp[i] *= alpha;
}

float Sum(const Tensor& x) {
  double s = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) s += x.data()[i];
  return static_cast<float>(s);
}

float Mean(const Tensor& x) {
  return x.size() == 0 ? 0.0f : Sum(x) / static_cast<float>(x.size());
}

float MinValue(const Tensor& x) {
  THALI_CHECK_GT(x.size(), 0);
  return *std::min_element(x.data(), x.data() + x.size());
}

float MaxValue(const Tensor& x) {
  THALI_CHECK_GT(x.size(), 0);
  return *std::max_element(x.data(), x.data() + x.size());
}

float L2Norm(const Tensor& x) {
  double s = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(x.data()[i]) * x.data()[i];
  }
  return static_cast<float>(std::sqrt(s));
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  THALI_CHECK_EQ(a.size(), b.size());
  float m = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

void Softmax(const float* x, int64_t n, float* y) {
  if (n == 0) return;
  float mx = x[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  double denom = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    y[i] = std::exp(x[i] - mx);
    denom += y[i];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (int64_t i = 0; i < n; ++i) y[i] *= inv;
}

}  // namespace thali
