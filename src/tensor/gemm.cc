#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "base/logging.h"
#include "base/thread_pool.h"
#include "tensor/act_kernels.h"
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_pack.h"

namespace thali {

namespace {

// Work below this many multiply-adds per chunk runs as one chunk; the
// ParallelFor grain is derived from it so tiny GEMMs stay inline.
constexpr int64_t kGrainFlops = 1 << 15;

// Row tiles per MC cache block.
constexpr int64_t kTilesPerMc = kGemmMC / kGemmMR;
static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

// Packed-path override: -1 = follow THALI_NO_PACK, 0 = off, 1 = on.
std::atomic<int> g_packing_override{-1};

void BetaPass(int64_t m0, int64_t m1, int64_t n, float beta, float* c,
              int64_t ldc) {
  if (beta == 1.0f) return;
  for (int64_t i = m0; i < m1; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else {
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
}

// Bias then activation over a rectangle of C, replicating the conv
// layer's separate passes op for op (see src/nn/activation.cc): two
// sweeps, bias first, exact leaky/ReLU formulas.
void ApplyEpilogue(const GemmEpilogue& e, int64_t i0, int64_t i1, int64_t j0,
                   int64_t j1, float* c, int64_t ldc) {
  if (e.bias != nullptr) {
    for (int64_t i = i0; i < i1; ++i) {
      float* ci = c + i * ldc;
      const float bi = e.bias[i];
      for (int64_t j = j0; j < j1; ++j) ci[j] += bi;
    }
  }
  switch (e.activation) {
    case GemmActivation::kNone:
      break;
    case GemmActivation::kLeaky:
      for (int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t j = j0; j < j1; ++j) {
          ci[j] = ci[j] > 0 ? ci[j] : 0.1f * ci[j];
        }
      }
      break;
    case GemmActivation::kRelu:
      for (int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t j = j0; j < j1; ++j) ci[j] = ci[j] > 0 ? ci[j] : 0.0f;
      }
      break;
    case GemmActivation::kMish:
      // Fast-family mish per row segment; per-element and independent of
      // the (i, j) split, so thread decomposition stays bitwise-neutral.
      for (int64_t i = i0; i < i1; ++i) {
        FastMishInPlace(c + i * ldc + j0, j1 - j0);
      }
      break;
  }
}

// Packed-path worker: computes C row tiles [t0, t1) end to end (beta
// scale, all k blocks in ascending order, optional epilogue). Threads
// own disjoint row-tile ranges of C and there is no cross-thread
// reduction, so any parallel split is bitwise identical to sequential.
//
// Loop nest (BLIS order jc -> pc -> ic -> jr -> ir): one packed B block
// (KC x NC at most, 512 KB) is built per (jc, pc) and swept by all the
// strand's row tiles; A is consumed from the caller's pre-packed blob
// when given, otherwise packed MC rows at a time into scratch. The pack
// buffers are thread_local (see gemm_pack.h for why tid indexing would
// be wrong here).
void PackedRows(const GemmKernel& kernel, int64_t t0, int64_t t1, bool ta,
                bool tb, int64_t m, int64_t n, int64_t k, float alpha,
                const float* a, int64_t lda, const float* prepacked_a,
                const float* b, int64_t ldb, float beta, float* c, int64_t ldc,
                const GemmEpilogue* epilogue) {
  const int64_t i_lo = t0 * kGemmMR;
  const int64_t i_hi = std::min(m, t1 * kGemmMR);
  if (i_lo >= i_hi) return;
  BetaPass(i_lo, i_hi, n, beta, c, ldc);

  const bool accumulate = k > 0 && alpha != 0.0f;
  const int64_t padded_m = GemmPackedRowTiles(m) * kGemmMR;

  // Stream-B: skip GemmPackB and read op(B) rows in place when the
  // problem is too thin or too short to amortize the pack traffic —
  // either a single NR strip of columns (the yolo-head n = 9 .. 33
  // GEMMs) or at most two row tiles of A sweeping each packed strip
  // once (the first-layer m = 8 im2col GEMM, where packing B costs more
  // than the whole accumulation). Masked B loads make dead columns
  // exactly zero, matching the packed strip's padding, so this path is
  // bitwise identical to the packed one. The predicate depends only on
  // the problem shape, never on the thread split.
  const bool stream_b =
      !tb && kernel.tile_bs != nullptr &&
      (n <= kGemmNR || GemmPackedRowTiles(m) <= 2 ||
       (k <= 32 && GemmPackedRowTiles(m) <= 4));

  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    const int64_t strips = (nc + kGemmNR - 1) / kGemmNR;
    if (accumulate) {
      for (int64_t pc = 0; pc < k; pc += kGemmKC) {
        const int64_t kcb = std::min(kGemmKC, k - pc);
        const float* bpack = nullptr;
        if (!stream_b) {
          float* scratch = GemmPackScratchB(kcb * strips * kGemmNR);
          GemmPackB(tb, b, ldb, pc, kcb, jc, nc, scratch);
          bpack = scratch;
        }
        for (int64_t ta0 = t0; ta0 < t1; ta0 += kTilesPerMc) {
          const int64_t ta1 = std::min(t1, ta0 + kTilesPerMc);
          const float* apack;
          int64_t a_tile_base;  // tile index whose panel sits at apack
          if (prepacked_a != nullptr) {
            apack = prepacked_a + pc * padded_m + ta0 * kGemmMR * kcb;
            a_tile_base = ta0;
          } else {
            const int64_t i0 = ta0 * kGemmMR;
            const int64_t mb = std::min(i_hi, ta1 * kGemmMR) - i0;
            float* scratch = GemmPackScratchA((ta1 - ta0) * kGemmMR * kcb);
            GemmPackA(ta, a, lda, i0, mb, pc, kcb, alpha, scratch);
            apack = scratch;
            a_tile_base = ta0;
          }
          for (int64_t u = 0; u < strips; ++u) {
            const int nr =
                static_cast<int>(std::min<int64_t>(kGemmNR, nc - u * kGemmNR));
            const float* bstrip = stream_b
                                      ? b + pc * ldb + jc + u * kGemmNR
                                      : bpack + u * kcb * kGemmNR;
            for (int64_t t = ta0; t < ta1; ++t) {
              const int mr =
                  static_cast<int>(std::min<int64_t>(kGemmMR, i_hi - t * kGemmMR));
              const float* atile = apack + (t - a_tile_base) * kGemmMR * kcb;
              float* ctile = c + t * kGemmMR * ldc + jc + u * kGemmNR;
              if (stream_b) {
                if (mr == kGemmMR && nr == kGemmNR) {
                  kernel.tile_bs(kcb, atile, bstrip, ldb, ctile, ldc);
                } else {
                  kernel.edge_bs(kcb, atile, bstrip, ldb, ctile, ldc, mr, nr);
                }
              } else if (mr == kGemmMR && nr == kGemmNR) {
                kernel.tile(kcb, atile, bstrip, ctile, ldc);
              } else {
                kernel.edge(kcb, atile, bstrip, ctile, ldc, mr, nr);
              }
            }
          }
        }
      }
    }
    if (epilogue != nullptr) {
      ApplyEpilogue(*epilogue, i_lo, i_hi, jc, jc + nc, c, ldc);
    }
  }
}

void PackedGemm(const GemmKernel& kernel, bool ta, bool tb, int64_t m,
                int64_t n, int64_t k, float alpha, const float* a, int64_t lda,
                const float* prepacked_a, const float* b, int64_t ldb,
                float beta, float* c, int64_t ldc,
                const GemmEpilogue* epilogue) {
  const int64_t tiles = GemmPackedRowTiles(m);
  const int64_t total_flops = m * n * std::max<int64_t>(k, 1);
  if (total_flops <= kGrainFlops) {
    // Small problem: skip the thread-pool machinery entirely. Identical
    // arithmetic to the parallel split by the determinism contract.
    PackedRows(kernel, 0, tiles, ta, tb, m, n, k, alpha, a, lda, prepacked_a,
               b, ldb, beta, c, ldc, epilogue);
    return;
  }
  const int64_t tile_flops =
      std::max<int64_t>(1, kGemmMR * n * std::max<int64_t>(k, 1));
  const int64_t grain = std::max<int64_t>(1, kGrainFlops / tile_flops);
  ParallelFor(0, tiles, grain, [&](int64_t w0, int64_t w1, int) {
    PackedRows(kernel, w0, w1, ta, tb, m, n, k, alpha, a, lda, prepacked_a, b,
               ldb, beta, c, ldc, epilogue);
  });
}

// The pre-packing escape hatch: unpacked reference kernels under the
// seed's row-parallel decomposition. Same per-element chains as the
// packed driver (same kernel family), so bitwise-identical output.
void ReferenceGemm(const GemmKernel& kernel, bool ta, bool tb, int64_t m,
                   int64_t n, int64_t k, float alpha, const float* a,
                   int64_t lda, const float* b, int64_t ldb, float beta,
                   float* c, int64_t ldc) {
  const int64_t row_flops = std::max<int64_t>(1, n * std::max<int64_t>(1, k));
  const int64_t grain = std::max<int64_t>(1, kGrainFlops / row_flops);
  ParallelFor(0, m, grain, [&](int64_t m0, int64_t m1, int) {
    BetaPass(m0, m1, n, beta, c, ldc);
    if (k == 0 || alpha == 0.0f) return;
    if (!ta && !tb) {
      kernel.ref_nn(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (ta && !tb) {
      kernel.ref_tn(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (!ta && tb) {
      kernel.ref_nt(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
      kernel.ref_tt(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
  });
}

}  // namespace

void Gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc) {
  THALI_CHECK_GE(m, 0);
  THALI_CHECK_GE(n, 0);
  THALI_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  // Degenerate: no accumulation and beta leaves C untouched.
  if ((k == 0 || alpha == 0.0f) && beta == 1.0f) return;

  const GemmKernel& kernel = SelectGemmKernel();
  if (!GemmPackingEnabled()) {
    ReferenceGemm(kernel, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
    return;
  }
  PackedGemm(kernel, ta, tb, m, n, k, alpha, a, lda, /*prepacked_a=*/nullptr,
             b, ldb, beta, c, ldc, /*epilogue=*/nullptr);
}

void MatMulAccumulate(int64_t m, int64_t n, int64_t k, const float* a,
                      const float* b, float* c) {
  Gemm(false, false, m, n, k, 1.0f, a, k, b, n, 1.0f, c, n);
}

void GemmPackWeights(const float* a, int64_t m, int64_t k, float* packed) {
  GemmPackMatrixA(/*trans_a=*/false, a, /*lda=*/k, m, k, /*alpha=*/1.0f,
                  packed);
}

void GemmPrepacked(int64_t m, int64_t n, int64_t k, const float* packed_a,
                   bool tb, const float* b, int64_t ldb, float beta, float* c,
                   int64_t ldc, const GemmEpilogue* epilogue) {
  THALI_CHECK(GemmPackingEnabled());
  THALI_CHECK_GT(m, 0);
  THALI_CHECK_GT(n, 0);
  THALI_CHECK_GT(k, 0);
  PackedGemm(SelectGemmKernel(), /*ta=*/false, tb, m, n, k, /*alpha=*/1.0f,
             /*a=*/nullptr, /*lda=*/0, packed_a, b, ldb, beta, c, ldc,
             epilogue);
}

bool GemmPackingEnabled() {
  const int override_value = g_packing_override.load(std::memory_order_acquire);
  if (override_value >= 0) return override_value != 0;
  static const bool env_disabled =
      internal::NoPackEnvValueDisables(std::getenv("THALI_NO_PACK"));
  return !env_disabled;
}

const char* GemmKernelName() { return SelectGemmKernel().name; }

namespace internal {

void GemmReference(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
                   float alpha, const float* a, int64_t lda, const float* b,
                   int64_t ldb, float beta, float* c, int64_t ldc) {
  if (m == 0 || n == 0) return;
  const GemmKernel& kernel = SelectGemmKernel();
  BetaPass(0, m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0f) return;
  if (!ta && !tb) {
    kernel.ref_nn(0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (ta && !tb) {
    kernel.ref_tn(0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (!ta && tb) {
    kernel.ref_nt(0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    kernel.ref_tt(0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

void SetGemmPackingForTesting(int enabled) {
  g_packing_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                           std::memory_order_release);
}

bool NoPackEnvValueDisables(const char* value) {
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

}  // namespace internal

}  // namespace thali
