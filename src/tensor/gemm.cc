#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "base/logging.h"
#include "base/thread_pool.h"

namespace thali {

namespace {

// Row blocks of C below this many multiply-adds run as one chunk; the
// ParallelFor grain is derived from it so tiny GEMMs stay inline.
constexpr int64_t kGrainFlops = 1 << 15;

// Register-blocked kernel for C += A*B on row-major packed panels,
// restricted to output rows [m0, m1). The j-loop body is written so GCC
// auto-vectorizes over columns. Every kernel below touches only rows
// [m0, m1) of C and keeps the per-row accumulation order independent of
// the row partition, so a row-split parallel run is bitwise identical to
// the sequential one.
void GemmNnAccum(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockM = 64;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t mb = m0; mb < m1; mb += kBlockM) {
      const int64_t mb1 = std::min(m1, mb + kBlockM);
      for (int64_t i = mb; i < mb1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float aip = alpha * a[i * lda + p];
          const float* bp = b + p * ldb;
          for (int64_t j = 0; j < n; ++j) {
            ci[j] += aip * bp[j];
          }
        }
      }
    }
  }
}

void GemmTnAccum(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  // A is stored KxM; A^T(i,p) = a[p*lda + i]. Per row i the updates still
  // arrive in ascending p order, so row-splitting preserves bit-identity.
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * lda;
    const float* bp = b + p * ldb;
    for (int64_t i = m0; i < m1; ++i) {
      const float aip = alpha * ap[i];
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void GemmNtAccum(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  // B is stored NxK; B^T(p,j) = b[j*ldb + p]. Dot-product form.
  for (int64_t i = m0; i < m1; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float sum = 0.0f;
      for (int64_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
      ci[j] += alpha * sum;
    }
  }
}

void GemmTtAccum(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  for (int64_t i = m0; i < m1; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int64_t p = 0; p < k; ++p) sum += a[p * lda + i] * b[j * ldb + p];
      ci[j] += alpha * sum;
    }
  }
}

}  // namespace

void Gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc) {
  THALI_CHECK_GE(m, 0);
  THALI_CHECK_GE(n, 0);
  THALI_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;

  // Threads own disjoint row blocks of C: beta-scaling and accumulation
  // both happen inside the block, so no reduction across threads exists
  // and the result is deterministic at any parallelism level.
  const int64_t row_flops = std::max<int64_t>(1, n * std::max<int64_t>(1, k));
  const int64_t grain = std::max<int64_t>(1, kGrainFlops / row_flops);
  ParallelFor(0, m, grain, [&](int64_t m0, int64_t m1, int) {
    if (beta != 1.0f) {
      for (int64_t i = m0; i < m1; ++i) {
        float* ci = c + i * ldc;
        if (beta == 0.0f) {
          std::fill(ci, ci + n, 0.0f);
        } else {
          for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
        }
      }
    }
    if (k == 0 || alpha == 0.0f) return;

    if (!ta && !tb) {
      GemmNnAccum(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (ta && !tb) {
      GemmTnAccum(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (!ta && tb) {
      GemmNtAccum(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
      GemmTtAccum(m0, m1, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
  });
}

void MatMulAccumulate(int64_t m, int64_t n, int64_t k, const float* a,
                      const float* b, float* c) {
  Gemm(false, false, m, n, k, 1.0f, a, k, b, n, 1.0f, c, n);
}

}  // namespace thali
