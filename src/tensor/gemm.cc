#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "base/logging.h"

namespace thali {

namespace {

// Register-blocked kernel for C += A*B on row-major packed panels.
// The j-loop body is written so GCC auto-vectorizes over columns.
void GemmNnAccum(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockM = 64;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t m0 = 0; m0 < m; m0 += kBlockM) {
      const int64_t m1 = std::min(m, m0 + kBlockM);
      for (int64_t i = m0; i < m1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float aip = alpha * a[i * lda + p];
          const float* bp = b + p * ldb;
          for (int64_t j = 0; j < n; ++j) {
            ci[j] += aip * bp[j];
          }
        }
      }
    }
  }
}

void GemmTnAccum(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  // A is stored KxM; A^T(i,p) = a[p*lda + i].
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * lda;
    const float* bp = b + p * ldb;
    for (int64_t i = 0; i < m; ++i) {
      const float aip = alpha * ap[i];
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void GemmNtAccum(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  // B is stored NxK; B^T(p,j) = b[j*ldb + p]. Dot-product form.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float sum = 0.0f;
      for (int64_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
      ci[j] += alpha * sum;
    }
  }
}

void GemmTtAccum(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t ldb, float* c,
                 int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int64_t p = 0; p < k; ++p) sum += a[p * lda + i] * b[j * ldb + p];
      ci[j] += alpha * sum;
    }
  }
}

}  // namespace

void Gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc) {
  THALI_CHECK_GE(m, 0);
  THALI_CHECK_GE(n, 0);
  THALI_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;

  if (beta != 1.0f) {
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(ci, ci + n, 0.0f);
      } else {
        for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
      }
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  if (!ta && !tb) {
    GemmNnAccum(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (ta && !tb) {
    GemmTnAccum(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (!ta && tb) {
    GemmNtAccum(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    GemmTtAccum(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

void MatMulAccumulate(int64_t m, int64_t n, int64_t k, const float* a,
                      const float* b, float* c) {
  Gemm(false, false, m, n, k, 1.0f, a, k, b, n, 1.0f, c, n);
}

}  // namespace thali
