#ifndef THALI_TENSOR_SIMD_EXP_AVX2_H_
#define THALI_TENSOR_SIMD_EXP_AVX2_H_

// 8-lane FastExp / FastMish bodies shared by the AVX2 TUs
// (act_kernels_avx2.cc and gemm_int8_avx2.cc, both built with per-file
// -mavx2 -mfma). Each vector op mirrors the scalar formulas in
// act_kernels_impl.h operation for operation — same op order, same
// rounding mode, multiply+add (never fmadd) — so a lane's result is
// bitwise identical to act_detail::FastExp / FastMish. Keeping one
// definition here is what lets the int8 mish requantize epilogue and
// the standalone activation pass agree bit for bit.

#if defined(__AVX2__)

#include <immintrin.h>

#include "tensor/act_kernels_impl.h"

namespace thali {
namespace simd_detail {

inline __m256 FastExpVec(__m256 x) {
  const __m256 hi = _mm256_set1_ps(act_detail::kExpHi);
  const __m256 lo = _mm256_set1_ps(act_detail::kExpLo);
  x = _mm256_min_ps(x, hi);
  x = _mm256_max_ps(x, lo);
  __m256 fx =
      _mm256_round_ps(_mm256_mul_ps(x, _mm256_set1_ps(act_detail::kLog2e)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(act_detail::kExpC1)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(act_detail::kExpC2)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(act_detail::kExpP0);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP1));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP2));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP3));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP4));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP5));
  y = _mm256_add_ps(_mm256_mul_ps(y, z), x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

// mish(x) = x * E(E+2)/(E(E+2)+2) with E = FastExpVec(x). Saturated
// lanes (x >= 20) return x exactly, matching both the scalar fast path
// and the libm reference's tanh==1 branch. The blended-away num may be
// inf (exp overflow after the clamp); its NaN quotient never escapes
// the dead lane.
inline __m256 FastMishVec(__m256 v) {
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 sat = _mm256_set1_ps(20.0f);
  const __m256 e = FastExpVec(v);
  const __m256 num = _mm256_mul_ps(e, _mm256_add_ps(e, two));
  const __m256 m =
      _mm256_mul_ps(v, _mm256_div_ps(num, _mm256_add_ps(num, two)));
  const __m256 saturated = _mm256_cmp_ps(v, sat, _CMP_GE_OQ);
  return _mm256_blendv_ps(m, v, saturated);
}

}  // namespace simd_detail
}  // namespace thali

#endif  // __AVX2__

#endif  // THALI_TENSOR_SIMD_EXP_AVX2_H_
