#ifndef THALI_TENSOR_ACT_KERNELS_H_
#define THALI_TENSOR_ACT_KERNELS_H_

#include <cstdint>

namespace thali {

// Vectorized elementwise activation kernels for the fused inference
// path (the execution-plan compiler, src/nn/exec_plan.h). Runtime
// dispatch mirrors the GEMM kernel families: one portable scalar family
// plus an AVX2 family in its own -mavx2 translation unit, selected once
// per process from CpuInfo().
//
// Determinism: unlike the GEMM families, the scalar and AVX2 paths here
// compute *identical* per-element results — every operation (polynomial
// step order, rounding, min/max clamps, division) is spelled out the
// same way in both, so an element's value never depends on whether it
// ran in a vector lane or in the scalar remainder loop. This keeps
// fused-network outputs bitwise stable across thread counts (chunk
// boundaries move elements between lanes and remainders) and across
// hosts with and without AVX2.
//
// Numerical contract vs src/nn/activation.cc (the libm reference used
// by training and by THALI_NO_FUSE inference):
//  - Leaky / ReLU: bitwise identical (same compare-and-scale formulas).
//  - Mish: x * tanh(softplus(x)) is evaluated through the algebraic
//    identity mish(x) = x * E(E+2) / (E(E+2)+2) with E = exp(x), using
//    a degree-5 polynomial exp (Cephes coefficients, relative error
//    ~2e-7). For x >= 20 the result is exactly x, matching the
//    reference's saturated branch bit for bit. Measured error against
//    the libm reference is below 3e-7 * max(1, |x|) per element; the
//    fused-inference conformance tests budget 1e-4 + 1e-3 * |ref|
//    network-wide (Winograd convs dominate that bound, not this).
void FastLeakyInPlace(float* x, int64_t n);
void FastReluInPlace(float* x, int64_t n);
void FastMishInPlace(float* x, int64_t n);

// Writes the indices i in [0, n) with !(x[i] < threshold) to `out`
// (which must hold n int32s) and returns how many were written. This is
// the exact negation of the YOLO decode's `if (obj < thresh) continue`
// skip test (NaNs are collected, matching the reference), so filtering
// raw logits against a conservative threshold before decoding cannot
// change the decoded set. Comparisons are exact; the scalar and AVX2
// families return identical results.
int64_t CollectAtLeast(const float* x, int64_t n, float threshold,
                       int32_t* out);

// Name of the dispatched activation kernel family (for logs/reports).
const char* ActKernelName();

namespace internal {
// Scalar fast-exp core shared by both families and by the tests that
// pin its accuracy. Clamps to [-87.33654, 88.72283].
float FastExpScalar(float x);
// Force dispatch to "scalar" or "avx2" (ignored when unavailable);
// nullptr restores automatic detection.
void SetActKernelForTesting(const char* name);
}  // namespace internal

}  // namespace thali

#endif  // THALI_TENSOR_ACT_KERNELS_H_
