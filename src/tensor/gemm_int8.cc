#include "tensor/gemm_int8.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string_view>

#include "base/cpu_features.h"
#include "base/logging.h"
#include "base/thread_pool.h"
#include "tensor/act_kernels_impl.h"

namespace thali {

namespace {

// Multiply-accumulate count below which the GEMM stays inline (mirrors
// the fp32 driver's kGrainFlops; int8 work is cheaper per MAC, so the
// grain is larger).
constexpr int64_t kInt8GrainMacs = 1 << 16;

std::atomic<const Int8GemmKernel*> g_int8_kernel_override{nullptr};

// Round to nearest, ties to even — identical to SSE cvtps2dq in the
// default rounding mode, so a vectorized quantizer would agree bit for
// bit with this scalar one.
inline int32_t RoundNearestEven(float v) {
  return static_cast<int32_t>(std::lrintf(v));
}

// Scalar reference family. Walks the exact packed panel layout the AVX2
// kernel consumes; plain i32 sums, so (with the saturation-free 7-bit
// activation bound) the two families agree bit for bit.
void AccumulateScalar(int64_t m0, int64_t m1, int64_t n, int64_t kp,
                      const int8_t* qw, const uint8_t* packed, int32_t* acc,
                      int64_t ldacc) {
  const int64_t nfull = n / 8;
  const int64_t ntail = n - nfull * 8;
  const uint8_t* tails = packed + nfull * kp * 8;
  for (int64_t i = m0; i < m1; ++i) {
    const int8_t* w = qw + i * kp;
    int32_t* ai = acc + i * ldacc;
    for (int64_t u = 0; u < nfull; ++u) {
      const uint8_t* strip = packed + u * kp * 8;
      for (int64_t l = 0; l < 8; ++l) {
        int32_t sum = 0;
        for (int64_t p = 0; p < kp; ++p) {
          sum += static_cast<int32_t>(w[p]) *
                 static_cast<int32_t>(strip[(p >> 2) * 32 + l * 4 + (p & 3)]);
        }
        ai[u * 8 + l] = sum;
      }
    }
    for (int64_t t = 0; t < ntail; ++t) {
      const uint8_t* col = tails + t * kp;
      int32_t sum = 0;
      for (int64_t p = 0; p < kp; ++p) {
        sum += static_cast<int32_t>(w[p]) * static_cast<int32_t>(col[p]);
      }
      ai[nfull * 8 + t] = sum;
    }
  }
}

const Int8GemmKernel kScalarInt8Kernel = {"scalar-int8", AccumulateScalar};

}  // namespace

const Int8GemmKernel& ScalarInt8GemmKernel() { return kScalarInt8Kernel; }

const Int8GemmKernel& SelectInt8GemmKernel() {
  const Int8GemmKernel* forced =
      g_int8_kernel_override.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const Int8GemmKernel* chosen = [] {
    const Int8GemmKernel* avx2 = Avx2Int8GemmKernel();
    if (avx2 != nullptr && CpuInfo().avx2) return avx2;
    return &kScalarInt8Kernel;
  }();
  return *chosen;
}

void Int8QuantizeWeights(const float* w, int64_t m, int64_t k, int8_t* qw,
                         float* scale, int32_t* colsum) {
  const int64_t kp = Int8PackedK(k);
  for (int64_t f = 0; f < m; ++f) {
    const float* row = w + f * k;
    float maxabs = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      maxabs = std::max(maxabs, std::fabs(row[p]));
    }
    const float s = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    const float inv = 1.0f / s;
    int8_t* q = qw + f * kp;
    int32_t sum = 0;
    for (int64_t p = 0; p < k; ++p) {
      const int32_t v =
          std::clamp(RoundNearestEven(row[p] * inv), -127, 127);
      q[p] = static_cast<int8_t>(v);
      sum += v;
    }
    for (int64_t p = k; p < kp; ++p) q[p] = 0;
    scale[f] = s;
    colsum[f] = sum;
  }
}

void Int8RangeToScaleZp(float range_min, float range_max, float* scale,
                        int32_t* zp) {
  // Widen to include 0 so conv zero padding quantizes exactly to zp.
  const float lo = std::min(range_min, 0.0f);
  const float hi = std::max(range_max, 0.0f);
  const float s = std::max((hi - lo) / 127.0f, 1e-8f);
  *scale = s;
  *zp = std::clamp(RoundNearestEven(-lo / s), 0, 127);
}

void Int8QuantizeActivations(const float* x, int64_t count, float inv_scale,
                             int32_t zp, uint8_t* u) {
  for (int64_t i = 0; i < count; ++i) {
    const int32_t v = RoundNearestEven(x[i] * inv_scale) + zp;
    u[i] = static_cast<uint8_t>(std::clamp(v, 0, 127));
  }
}

void Int8PackActColsStrided(const uint8_t* qcol, int64_t row_stride,
                            int64_t k, int64_t n, uint8_t* packed) {
  const int64_t kp = Int8PackedK(k);
  const int64_t nfull = n / 8;
  const int64_t ntail = n - nfull * 8;
  for (int64_t u = 0; u < nfull; ++u) {
    uint8_t* strip = packed + u * kp * 8;
    const uint8_t* src = qcol + u * 8;
    for (int64_t p = 0; p < k; ++p) {
      uint8_t* quad = strip + (p >> 2) * 32 + (p & 3);
      const uint8_t* row = src + p * row_stride;
      for (int64_t l = 0; l < 8; ++l) quad[l * 4] = row[l];
    }
    for (int64_t p = k; p < kp; ++p) {
      uint8_t* quad = strip + (p >> 2) * 32 + (p & 3);
      for (int64_t l = 0; l < 8; ++l) quad[l * 4] = 0;
    }
  }
  uint8_t* tails = packed + nfull * kp * 8;
  for (int64_t t = 0; t < ntail; ++t) {
    uint8_t* col = tails + t * kp;
    const int64_t j = nfull * 8 + t;
    for (int64_t p = 0; p < k; ++p) col[p] = qcol[p * row_stride + j];
    for (int64_t p = k; p < kp; ++p) col[p] = 0;
  }
}

void Int8PackActCols(const uint8_t* qcol, int64_t k, int64_t n,
                     uint8_t* packed) {
  Int8PackActColsStrided(qcol, n, k, n, packed);
}

namespace {

// Scalar reference epilogue. The AVX2 version in gemm_int8_avx2.cc
// repeats this exact elementwise float sequence with 8-lane ops (no
// FMA; mish through the shared FastMish family), so the two are
// bit-identical — asserted by the epilogue conformance test.
void EpilogueScalar(const Int8Epilogue& e, int64_t m0, int64_t m1, int64_t n,
                    const int32_t* acc, int64_t ldacc, float* c, int64_t ldc) {
  const bool u8_out = e.out_u8 != nullptr;
  for (int64_t i = m0; i < m1; ++i) {
    const int32_t* ai = acc + i * ldacc;
    const float s = e.in_scale * e.wscale[i];
    const int32_t comp = e.in_zp * e.wcolsum[i];
    const float bias = e.bias != nullptr ? e.bias[i] : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float v = static_cast<float>(ai[j] - comp) * s + bias;
      switch (e.activation) {
        case GemmActivation::kLeaky:
          v = v > 0 ? v : 0.1f * v;
          break;
        case GemmActivation::kRelu:
          v = v > 0 ? v : 0.0f;
          break;
        case GemmActivation::kMish:
          v = act_detail::FastMish(v);
          break;
        default:
          break;  // kNone
      }
      if (u8_out) {
        // Requantize into the consumer domain — the exact
        // Int8QuantizeActivations formula, element for element.
        const int32_t q = RoundNearestEven(v * e.out_inv_scale) + e.out_zp;
        e.out_u8[i * ldc + j] = static_cast<uint8_t>(std::clamp(q, 0, 127));
      } else {
        c[i * ldc + j] = v;
      }
    }
  }
}

std::atomic<Int8EpilogueFn> g_int8_epilogue_override{nullptr};

}  // namespace

void Int8ApplyEpilogue(const Int8Epilogue& e, int64_t m0, int64_t m1,
                       int64_t n, const int32_t* acc, int64_t ldacc, float* c,
                       int64_t ldc) {
  const Int8EpilogueFn forced =
      g_int8_epilogue_override.load(std::memory_order_acquire);
  if (forced != nullptr) {
    forced(e, m0, m1, n, acc, ldacc, c, ldc);
    return;
  }
  static const Int8EpilogueFn chosen = [] {
    const Int8EpilogueFn avx2 = Avx2Int8EpilogueOrNull();
    if (avx2 != nullptr && CpuInfo().avx2) return avx2;
    return static_cast<Int8EpilogueFn>(EpilogueScalar);
  }();
  chosen(e, m0, m1, n, acc, ldacc, c, ldc);
}

void Int8GemmPrepacked(int64_t m, int64_t n, int64_t k, const int8_t* qw,
                       const uint8_t* packed, const Int8Epilogue& e, float* c,
                       int64_t ldc, int32_t* acc) {
  THALI_CHECK_GT(m, 0);
  THALI_CHECK_GT(n, 0);
  THALI_CHECK_GT(k, 0);
  const Int8GemmKernel& kernel = SelectInt8GemmKernel();
  const int64_t kp = Int8PackedK(k);
  const int64_t row_macs = n * kp;
  if (m * row_macs <= kInt8GrainMacs) {
    kernel.accumulate(0, m, n, kp, qw, packed, acc, n);
    Int8ApplyEpilogue(e, 0, m, n, acc, n, c, ldc);
    return;
  }
  // Row blocks in multiples of 6 keep every chunk boundary on a register
  // tile boundary of the AVX2 kernel (which is irrelevant for bitwise
  // identity — integer sums — but keeps edge handling off interior rows).
  const int64_t grain =
      std::max<int64_t>(6, (kInt8GrainMacs / std::max<int64_t>(1, row_macs) +
                            5) /
                               6 * 6);
  ParallelFor(0, m, grain, [&](int64_t m0, int64_t m1, int) {
    kernel.accumulate(m0, m1, n, kp, qw, packed, acc, n);
    Int8ApplyEpilogue(e, m0, m1, n, acc, n, c, ldc);
  });
}

int64_t Int8ConvWorkspaceBytes(int64_t m, int64_t n, int64_t k,
                               int64_t in_planes) {
  auto align = [](int64_t v) { return (v + 63) / 64 * 64; };
  return align(in_planes) +                  // quantized input planes (u8)
         align(k * n) +                      // u8 im2col panel
         align(Int8PackedActBytes(k, n)) +   // packed activation panel
         align(m * n * 4) + 64;              // i32 accumulator tile
}

int64_t Int8Direct1x1WorkspaceBytes(int64_t m, int64_t n, int64_t k) {
  auto align = [](int64_t v) { return (v + 63) / 64 * 64; };
  return align(k * n) +                      // quantized input planes (u8)
         align(Int8PackedActBytes(k, n)) +   // packed activation panel
         align(m * n * 4) + 64;              // i32 accumulator tile
}

namespace internal {

void SetInt8GemmKernelForTesting(const char* name) {
  const Int8GemmKernel* k = nullptr;
  if (name != nullptr) {
    const std::string_view want(name);
    if (want == "scalar") {
      k = &kScalarInt8Kernel;
    } else if (want == "avx2") {
      k = Avx2Int8GemmKernel();  // stays null (auto) when unavailable
    }
  }
  g_int8_kernel_override.store(k, std::memory_order_release);
}

void SetInt8EpilogueForTesting(const char* name) {
  Int8EpilogueFn fn = nullptr;
  if (name != nullptr) {
    const std::string_view want(name);
    if (want == "scalar") {
      fn = EpilogueScalar;
    } else if (want == "avx2") {
      fn = Avx2Int8EpilogueOrNull();  // stays null (auto) when unavailable
    }
  }
  g_int8_epilogue_override.store(fn, std::memory_order_release);
}

}  // namespace internal

}  // namespace thali
