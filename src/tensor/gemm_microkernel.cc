#include "tensor/gemm_microkernel.h"

#include <atomic>
#include <cstring>

#include "base/cpu_features.h"
#include "tensor/gemm_tile_impl.h"

namespace thali {

namespace {

using gemm_detail::MulAddOp;

// Dispatch override for tests: 0 = auto, 1 = scalar, 2 = avx2.
std::atomic<int> g_kernel_override{0};

const GemmKernel kScalarKernel = {
    /*name=*/"scalar-6x16",
    /*fused=*/false,
    /*tile=*/&gemm_detail::TileGeneric<MulAddOp>,
    /*edge=*/&gemm_detail::EdgeGeneric<MulAddOp>,
    /*tile_bs=*/&gemm_detail::TileBsGeneric<MulAddOp>,
    /*edge_bs=*/&gemm_detail::EdgeBsGeneric<MulAddOp>,
    /*ref_nn=*/&gemm_detail::RefNn<MulAddOp>,
    /*ref_tn=*/&gemm_detail::RefTn<MulAddOp>,
    /*ref_nt=*/&gemm_detail::RefNt<MulAddOp>,
    /*ref_tt=*/&gemm_detail::RefTt<MulAddOp>,
};

const GemmKernel* DetectKernel() {
  const GemmKernel* avx2 = Avx2GemmKernel();
  if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return avx2;
  return &kScalarKernel;
}

}  // namespace

const GemmKernel& ScalarGemmKernel() { return kScalarKernel; }

const GemmKernel& SelectGemmKernel() {
  switch (g_kernel_override.load(std::memory_order_acquire)) {
    case 1:
      return kScalarKernel;
    case 2: {
      const GemmKernel* avx2 = Avx2GemmKernel();
      if (avx2 != nullptr && CpuInfo().avx2 && CpuInfo().fma) return *avx2;
      break;  // unavailable: fall through to auto detection
    }
    default:
      break;
  }
  static const GemmKernel* const detected = DetectKernel();
  return *detected;
}

namespace internal {

void SetGemmKernelForTesting(const char* name) {
  int value = 0;
  if (name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) value = 1;
    if (std::strcmp(name, "avx2") == 0) value = 2;
  }
  g_kernel_override.store(value, std::memory_order_release);
}

}  // namespace internal

}  // namespace thali
