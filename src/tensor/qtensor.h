#ifndef THALI_TENSOR_QTENSOR_H_
#define THALI_TENSOR_QTENSOR_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.h"
#include "tensor/shape.h"

namespace thali {

// Element type of a typed buffer. The fp32 training substrate stays on
// Tensor (tensor/tensor.h); DType exists for the inference-side buffers
// the quantized paths carry next to it.
enum class DType : uint8_t { kF32, kI8, kU8, kI32 };

inline int64_t DTypeBytes(DType t) {
  switch (t) {
    case DType::kF32:
    case DType::kI32:
      return 4;
    default:
      return 1;
  }
}

const char* DTypeName(DType t);

// Dtype-aware dense buffer with 64-byte-aligned owned storage. Unlike
// Tensor it never binds external memory and never participates in the
// activation arena: QTensors hold derived, layer-owned data (quantized
// weight panels, column sums) whose lifetime is the layer's own.
//
// Kept deliberately small: shape + raw aligned bytes + a typed view.
// Copy is a deep copy, preserving the value semantics of Tensor.
class DTypeBuffer {
 public:
  DTypeBuffer() = default;
  DTypeBuffer(DType dtype, Shape shape) { Resize(dtype, std::move(shape)); }

  DTypeBuffer(const DTypeBuffer& o) { CopyFrom(o); }
  DTypeBuffer& operator=(const DTypeBuffer& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  DTypeBuffer(DTypeBuffer&&) = default;
  DTypeBuffer& operator=(DTypeBuffer&&) = default;

  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  int64_t size() const { return storage_ ? shape_.num_elements() : 0; }
  bool empty() const { return size() == 0; }
  int64_t bytes() const { return size() * DTypeBytes(dtype_); }

  // Reallocates (discarding contents, zero-filled) when the byte size
  // changes; otherwise just retags dtype/shape.
  void Resize(DType dtype, Shape shape) {
    const int64_t need = shape.num_elements() * DTypeBytes(dtype);
    THALI_CHECK_GE(need, 0);
    if (need != capacity_) {
      storage_.reset(need > 0 ? new uint8_t[static_cast<size_t>(need) + 63]
                              : nullptr);
      capacity_ = need;
    }
    dtype_ = dtype;
    shape_ = std::move(shape);
    if (storage_) std::memset(aligned(), 0, static_cast<size_t>(need));
  }

  void Clear() {
    storage_.reset();
    capacity_ = 0;
    shape_ = Shape();
  }

  // Typed accessors; T must match the buffer's dtype width (checked).
  template <typename T>
  T* data() {
    THALI_CHECK_EQ(static_cast<int64_t>(sizeof(T)), DTypeBytes(dtype_));
    return reinterpret_cast<T*>(aligned());
  }
  template <typename T>
  const T* data() const {
    THALI_CHECK_EQ(static_cast<int64_t>(sizeof(T)), DTypeBytes(dtype_));
    return reinterpret_cast<const T*>(aligned());
  }

  uint8_t* raw() { return aligned(); }
  const uint8_t* raw() const { return aligned(); }

 private:
  uint8_t* aligned() const {
    if (!storage_) return nullptr;
    const uintptr_t p = reinterpret_cast<uintptr_t>(storage_.get());
    return reinterpret_cast<uint8_t*>((p + 63) & ~uintptr_t{63});
  }

  void CopyFrom(const DTypeBuffer& o) {
    if (!o.storage_) {
      // Unallocated source (default-constructed or Cleared): mirror its
      // tags without allocating. Resize would allocate here — a default
      // Shape is rank 0 and num_elements() == 1 — and then memcpy from
      // the source's null base.
      Clear();
      dtype_ = o.dtype_;
      shape_ = o.shape_;
      return;
    }
    Resize(o.dtype_, o.shape_);
    std::memcpy(aligned(), o.aligned(), static_cast<size_t>(capacity_));
  }

  DType dtype_ = DType::kF32;
  Shape shape_;
  std::unique_ptr<uint8_t[]> storage_;
  int64_t capacity_ = 0;  // bytes (excluding the alignment slack)
};

// A quantized tensor: int8 values plus the per-channel symmetric scales
// that map them back to floats (value[c][..] ~= scale[c] * q[c][..]).
// Channel = dim 0 (the conv filter axis). zero_point covers the
// asymmetric-unsigned activation case (one zp for the whole tensor; the
// weight quantizer leaves it 0).
struct QTensor {
  DTypeBuffer q;              // kI8 or kU8 values
  std::vector<float> scale;   // one per channel (dim 0), or size 1
  int32_t zero_point = 0;

  bool empty() const { return q.empty(); }
  void Clear() {
    q.Clear();
    scale.clear();
    zero_point = 0;
  }
};

}  // namespace thali

#endif  // THALI_TENSOR_QTENSOR_H_
