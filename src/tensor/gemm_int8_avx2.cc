// AVX2 int8 kernel family (vpmaddubsw / vpmaddwd). Like the fp32 AVX2
// family this is the only int8 TU compiled with -mavx2 (per-file
// COMPILE_OPTIONS in src/tensor/CMakeLists.txt); it is reached only
// through SelectInt8GemmKernel's runtime dispatch, so the binary still
// runs on baseline x86-64.
//
// Exactness: activations are 7-bit unsigned (<= 127), weights i8
// (|w| <= 127), so each vpmaddubsw pair sum is <= 32258 < 32767 — the
// i16 intermediates never saturate and the i32 accumulation is exact
// integer arithmetic, bit-identical to the scalar family.

#include "tensor/gemm_int8.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/simd_exp_avx2.h"

namespace thali {

namespace {

// One 8-column strip x MR_ rows: B quads (8 cols x 4 k-steps = one
// 32-byte load) against per-row 4-byte weight broadcasts. i32 lane l of
// the accumulator is column l of the strip; accumulators live in
// registers for the whole k loop (no C read-modify-write). Named
// variables, not an array — GCC spills __m256i arrays (see the fp32
// kernel's note).
template <int MR_>
void StripRows(int64_t kp, const int8_t* qw, int64_t ldw,
               const uint8_t* strip, int32_t* acc, int64_t ldacc) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i a0 = _mm256_setzero_si256();
  __m256i a1 = a0, a2 = a0, a3 = a0, a4 = a0, a5 = a0;
  for (int64_t p = 0; p < kp; p += 4) {
    const __m256i bq = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(strip + (p >> 2) * 32));
    const int8_t* w = qw + p;
    __m256i wb, prod;
    wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w));
    prod = _mm256_maddubs_epi16(bq, wb);
    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(prod, ones));
    if constexpr (MR_ > 1) {
      wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w + ldw));
      prod = _mm256_maddubs_epi16(bq, wb);
      a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(prod, ones));
    }
    if constexpr (MR_ > 2) {
      wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w + 2 * ldw));
      prod = _mm256_maddubs_epi16(bq, wb);
      a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(prod, ones));
    }
    if constexpr (MR_ > 3) {
      wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w + 3 * ldw));
      prod = _mm256_maddubs_epi16(bq, wb);
      a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(prod, ones));
    }
    if constexpr (MR_ > 4) {
      wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w + 4 * ldw));
      prod = _mm256_maddubs_epi16(bq, wb);
      a4 = _mm256_add_epi32(a4, _mm256_madd_epi16(prod, ones));
    }
    if constexpr (MR_ > 5) {
      wb = _mm256_set1_epi32(*reinterpret_cast<const int32_t*>(w + 5 * ldw));
      prod = _mm256_maddubs_epi16(bq, wb);
      a5 = _mm256_add_epi32(a5, _mm256_madd_epi16(prod, ones));
    }
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), a0);
  if constexpr (MR_ > 1) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + ldacc), a1);
  }
  if constexpr (MR_ > 2) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * ldacc), a2);
  }
  if constexpr (MR_ > 3) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * ldacc), a3);
  }
  if constexpr (MR_ > 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4 * ldacc), a4);
  }
  if constexpr (MR_ > 5) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 5 * ldacc), a5);
  }
}

// Exact horizontal sum of 8 i32 lanes.
inline int32_t HSum(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  return _mm_cvtsi128_si32(s);
}

// Tail column (flat, k-contiguous): one k-vectorized dot per row. 32
// bytes per step cover 32 k-taps; the sub-32 remainder runs scalar —
// still exact integers, so family identity is unaffected.
void TailDot(int64_t m0, int64_t m1, const int8_t* qw, int64_t kp,
             const uint8_t* col, int32_t* acc, int64_t ldacc) {
  const __m256i ones = _mm256_set1_epi16(1);
  const int64_t kv = kp / 32 * 32;
  for (int64_t i = m0; i < m1; ++i) {
    const int8_t* w = qw + i * kp;
    __m256i sum = _mm256_setzero_si256();
    for (int64_t p = 0; p < kv; p += 32) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col + p));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
      sum = _mm256_add_epi32(
          sum, _mm256_madd_epi16(_mm256_maddubs_epi16(a, b), ones));
    }
    int32_t s = HSum(sum);
    for (int64_t p = kv; p < kp; ++p) {
      s += static_cast<int32_t>(w[p]) * static_cast<int32_t>(col[p]);
    }
    acc[i * ldacc] = s;
  }
}

void AccumulateAvx2(int64_t m0, int64_t m1, int64_t n, int64_t kp,
                    const int8_t* qw, const uint8_t* packed, int32_t* acc,
                    int64_t ldacc) {
  const int64_t nfull = n / 8;
  const int64_t ntail = n - nfull * 8;
  // Strips are visited in L1-sized blocks with every row group inside
  // the block, so when m > 6 the later row groups re-read the block
  // from L1 instead of re-streaming the whole panel from L2 (the m % 6
  // tail pass of a wide-n shape like 8 x 2304 x 27 is otherwise
  // memory-bound). Integer accumulation is exact, so traversal order
  // cannot change the result bits.
  const int64_t strip_bytes = kp * 8;
  const int64_t block = std::max<int64_t>(1, (16 << 10) / strip_bytes);
  for (int64_t u0 = 0; u0 < nfull; u0 += block) {
    const int64_t u1 = u0 + block < nfull ? u0 + block : nfull;
    for (int64_t i = m0; i < m1;) {
      const int mr = static_cast<int>(m1 - i < 6 ? m1 - i : 6);
      const int8_t* w = qw + i * kp;
      for (int64_t u = u0; u < u1; ++u) {
        const uint8_t* strip = packed + u * kp * 8;
        int32_t* a = acc + i * ldacc + u * 8;
        switch (mr) {
          case 1: StripRows<1>(kp, w, kp, strip, a, ldacc); break;
          case 2: StripRows<2>(kp, w, kp, strip, a, ldacc); break;
          case 3: StripRows<3>(kp, w, kp, strip, a, ldacc); break;
          case 4: StripRows<4>(kp, w, kp, strip, a, ldacc); break;
          case 5: StripRows<5>(kp, w, kp, strip, a, ldacc); break;
          default: StripRows<6>(kp, w, kp, strip, a, ldacc); break;
        }
      }
      i += mr;
    }
  }
  const uint8_t* tails = packed + nfull * kp * 8;
  for (int64_t t = 0; t < ntail; ++t) {
    TailDot(m0, m1, qw, kp, tails + t * kp, acc + nfull * 8 + t, ldacc);
  }
}

const Int8GemmKernel kAvx2Int8Kernel = {"avx2-ubsw-6x8", AccumulateAvx2};

// 8-lane requantization epilogue. Repeats EpilogueScalar's elementwise
// float sequence with vector ops: cvtepi32 (round-to-nearest-even, same
// as static_cast), separate mul and add (this TU is built with -mfma,
// so the scalar expression form could be FMA-contracted — intrinsics
// pin the two-rounding sequence), ordered > 0 compare + blend for
// leaky/relu, the shared FastMishVec (simd_exp_avx2.h) for mish. Every
// lane is independent IEEE arithmetic, so the result is bit-identical
// to the scalar reference. The n % 8 tail uses masked load/store
// through the SAME vector ops rather than scalar code, again to keep
// FMA contraction out.
//
// With U8Out the activated lanes are requantized into the consumer
// domain — cvtps_epi32 is round-to-nearest-even like the scalar
// lrintf, so the chained bytes also match the scalar family — and
// packed 8 x i32 -> 8 x u8 (saturating packs are safe after the
// explicit [0, 127] clamp).
template <GemmActivation Act, bool U8Out>
void EpilogueRowsAvx2(const Int8Epilogue& e, int64_t m0, int64_t m1,
                      int64_t n, const int32_t* acc, int64_t ldacc, float* c,
                      int64_t ldc) {
  const __m256 leak = _mm256_set1_ps(0.1f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vqs = _mm256_set1_ps(e.out_inv_scale);
  const __m256i vqzp = _mm256_set1_epi32(e.out_zp);
  const __m256i vqlo = _mm256_setzero_si256();
  const __m256i vqhi = _mm256_set1_epi32(127);
  const int64_t nv = n / 8 * 8;
  const int64_t ntail = n - nv;
  alignas(32) int32_t mask_bits[8];
  for (int64_t l = 0; l < 8; ++l) mask_bits[l] = l < ntail ? -1 : 0;
  const __m256i tail_mask =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_bits));
  for (int64_t i = m0; i < m1; ++i) {
    const int32_t* ai = acc + i * ldacc;
    float* ci = U8Out ? nullptr : c + i * ldc;
    uint8_t* ui = U8Out ? e.out_u8 + i * ldc : nullptr;
    const __m256 vs = _mm256_set1_ps(e.in_scale * e.wscale[i]);
    const __m256 vb =
        _mm256_set1_ps(e.bias != nullptr ? e.bias[i] : 0.0f);
    const __m256i vcomp = _mm256_set1_epi32(e.in_zp * e.wcolsum[i]);
    const auto requant = [&](__m256i a) {
      __m256 v = _mm256_cvtepi32_ps(_mm256_sub_epi32(a, vcomp));
      v = _mm256_add_ps(_mm256_mul_ps(v, vs), vb);
      if constexpr (Act == GemmActivation::kLeaky) {
        const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        v = _mm256_blendv_ps(_mm256_mul_ps(v, leak), v, gt);
      } else if constexpr (Act == GemmActivation::kRelu) {
        const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        v = _mm256_blendv_ps(zero, v, gt);
      } else if constexpr (Act == GemmActivation::kMish) {
        v = simd_detail::FastMishVec(v);
      }
      return v;
    };
    const auto quantize = [&](__m256 v) {
      __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, vqs));
      q = _mm256_add_epi32(q, vqzp);
      q = _mm256_min_epi32(_mm256_max_epi32(q, vqlo), vqhi);
      const __m128i w16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                          _mm256_extracti128_si256(q, 1));
      return _mm_packus_epi16(w16, w16);
    };
    for (int64_t j = 0; j < nv; j += 8) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ai + j));
      if constexpr (U8Out) {
        _mm_storel_epi64(reinterpret_cast<__m128i*>(ui + j),
                         quantize(requant(a)));
      } else {
        _mm256_storeu_ps(ci + j, requant(a));
      }
    }
    if (ntail > 0) {
      const __m256i a = _mm256_maskload_epi32(ai + nv, tail_mask);
      if constexpr (U8Out) {
        alignas(16) uint8_t buf[16];
        _mm_store_si128(reinterpret_cast<__m128i*>(buf),
                        quantize(requant(a)));
        std::memcpy(ui + nv, buf, static_cast<size_t>(ntail));
      } else {
        _mm256_maskstore_ps(ci + nv, tail_mask, requant(a));
      }
    }
  }
}

template <GemmActivation Act>
void EpilogueActAvx2(const Int8Epilogue& e, int64_t m0, int64_t m1,
                     int64_t n, const int32_t* acc, int64_t ldacc, float* c,
                     int64_t ldc) {
  if (e.out_u8 != nullptr) {
    EpilogueRowsAvx2<Act, true>(e, m0, m1, n, acc, ldacc, c, ldc);
  } else {
    EpilogueRowsAvx2<Act, false>(e, m0, m1, n, acc, ldacc, c, ldc);
  }
}

void EpilogueAvx2(const Int8Epilogue& e, int64_t m0, int64_t m1, int64_t n,
                  const int32_t* acc, int64_t ldacc, float* c, int64_t ldc) {
  switch (e.activation) {
    case GemmActivation::kLeaky:
      EpilogueActAvx2<GemmActivation::kLeaky>(e, m0, m1, n, acc, ldacc, c,
                                              ldc);
      break;
    case GemmActivation::kRelu:
      EpilogueActAvx2<GemmActivation::kRelu>(e, m0, m1, n, acc, ldacc, c,
                                             ldc);
      break;
    case GemmActivation::kMish:
      EpilogueActAvx2<GemmActivation::kMish>(e, m0, m1, n, acc, ldacc, c,
                                             ldc);
      break;
    default:
      EpilogueActAvx2<GemmActivation::kNone>(e, m0, m1, n, acc, ldacc, c,
                                             ldc);
      break;
  }
}

}  // namespace

const Int8GemmKernel* Avx2Int8GemmKernel() { return &kAvx2Int8Kernel; }

Int8EpilogueFn Avx2Int8EpilogueOrNull() { return EpilogueAvx2; }

}  // namespace thali

#else  // !__AVX2__: non-x86 target or compiler without AVX2 support.

namespace thali {
const Int8GemmKernel* Avx2Int8GemmKernel() { return nullptr; }
Int8EpilogueFn Avx2Int8EpilogueOrNull() { return nullptr; }
}  // namespace thali

#endif
