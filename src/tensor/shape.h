#ifndef THALI_TENSOR_SHAPE_H_
#define THALI_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/logging.h"

namespace thali {

// Dimension list of a dense row-major tensor. Rank up to 4 is used in
// practice (NCHW activations); arbitrary rank is supported.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  int rank() const { return static_cast<int>(dims_.size()); }

  int64_t dim(int i) const {
    THALI_CHECK_GE(i, 0);
    THALI_CHECK_LT(i, rank());
    return dims_[i];
  }

  int64_t operator[](int i) const { return dim(i); }

  // Product of all dimensions; 1 for rank-0.
  int64_t num_elements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // "[2, 3, 4]"
  std::string ToString() const;

 private:
  void Validate() const {
    for (int64_t d : dims_) THALI_CHECK_GE(d, 0) << "negative dim";
  }

  std::vector<int64_t> dims_;
};

}  // namespace thali

#endif  // THALI_TENSOR_SHAPE_H_
