// AVX2+FMA kernel family. This translation unit is the only one in the
// library compiled with -mavx2 -mfma (per-file COMPILE_OPTIONS in
// src/tensor/CMakeLists.txt); everything it exports is reached through
// runtime dispatch (SelectGemmKernel) guarded by CpuInfo(), so the
// binary still runs on baseline x86-64 hosts.

#include "tensor/gemm_microkernel.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "tensor/gemm_tile_impl.h"

namespace thali {

namespace {

using gemm_detail::FmaOp;

// mr x 16 register tile (mr <= 6): two ymm accumulators per C row, one
// ascending-k stream of rank-1 updates. Each C element sees exactly the
// canonical fused chain — vector lanes are independent elements, so the
// SIMD width never mixes accumulation orders. Templating over the row
// count keeps ragged row-edges (m % 6 != 0) on vector code at full NR.
//
// The accumulators are individually named variables, NOT a __m256 array:
// GCC register-allocates named __m256 locals but keeps an array's backing
// store live, spilling every accumulator to the stack each k-step (12
// extra stores per iteration, enough to turn an FMA-bound loop into a
// store-port-bound one).
template <int MR_>
void TileAvx2(int64_t kc, const float* a, const float* b, float* c,
              int64_t ldc) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  c00 = _mm256_loadu_ps(c);
  c01 = _mm256_loadu_ps(c + 8);
  if constexpr (MR_ > 1) {
    c10 = _mm256_loadu_ps(c + ldc);
    c11 = _mm256_loadu_ps(c + ldc + 8);
  }
  if constexpr (MR_ > 2) {
    c20 = _mm256_loadu_ps(c + 2 * ldc);
    c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  }
  if constexpr (MR_ > 3) {
    c30 = _mm256_loadu_ps(c + 3 * ldc);
    c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  }
  if constexpr (MR_ > 4) {
    c40 = _mm256_loadu_ps(c + 4 * ldc);
    c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  }
  if constexpr (MR_ > 5) {
    c50 = _mm256_loadu_ps(c + 5 * ldc);
    c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  }
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    // Packed B panels are 64-byte aligned with NR*sizeof(float) = 64-byte
    // rows, so aligned loads are safe for every p.
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    c01 = _mm256_fmadd_ps(ar, b1, c01);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
      c11 = _mm256_fmadd_ps(ar, b1, c11);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
      c21 = _mm256_fmadd_ps(ar, b1, c21);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
      c31 = _mm256_fmadd_ps(ar, b1, c31);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
      c41 = _mm256_fmadd_ps(ar, b1, c41);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
      c51 = _mm256_fmadd_ps(ar, b1, c51);
    }
    ap += kGemmMR;
    bp += kGemmNR;
  }
  _mm256_storeu_ps(c, c00);
  _mm256_storeu_ps(c + 8, c01);
  if constexpr (MR_ > 1) {
    _mm256_storeu_ps(c + ldc, c10);
    _mm256_storeu_ps(c + ldc + 8, c11);
  }
  if constexpr (MR_ > 2) {
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  }
  if constexpr (MR_ > 3) {
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  }
  if constexpr (MR_ > 4) {
    _mm256_storeu_ps(c + 4 * ldc, c40);
    _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  }
  if constexpr (MR_ > 5) {
    _mm256_storeu_ps(c + 5 * ldc, c50);
    _mm256_storeu_ps(c + 5 * ldc + 8, c51);
  }
}

// Ragged column edge (nr < 16), still full vector width: the packed B
// strip is zero-padded to NR, so the FMA stream can run all 16 lanes —
// dead lanes accumulate garbage*0 and are masked away at the C
// load/store (maskload also keeps the loads in bounds). Live lanes see
// the exact full-tile chain.
template <int MR_>
void TileAvx2Masked(int64_t kc, const float* a, const float* b, float* c,
                    int64_t ldc, __m256i mask0, __m256i mask1) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  c00 = _mm256_maskload_ps(c, mask0);
  c01 = _mm256_maskload_ps(c + 8, mask1);
  if constexpr (MR_ > 1) {
    c10 = _mm256_maskload_ps(c + ldc, mask0);
    c11 = _mm256_maskload_ps(c + ldc + 8, mask1);
  }
  if constexpr (MR_ > 2) {
    c20 = _mm256_maskload_ps(c + 2 * ldc, mask0);
    c21 = _mm256_maskload_ps(c + 2 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 3) {
    c30 = _mm256_maskload_ps(c + 3 * ldc, mask0);
    c31 = _mm256_maskload_ps(c + 3 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 4) {
    c40 = _mm256_maskload_ps(c + 4 * ldc, mask0);
    c41 = _mm256_maskload_ps(c + 4 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 5) {
    c50 = _mm256_maskload_ps(c + 5 * ldc, mask0);
    c51 = _mm256_maskload_ps(c + 5 * ldc + 8, mask1);
  }
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    c01 = _mm256_fmadd_ps(ar, b1, c01);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
      c11 = _mm256_fmadd_ps(ar, b1, c11);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
      c21 = _mm256_fmadd_ps(ar, b1, c21);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
      c31 = _mm256_fmadd_ps(ar, b1, c31);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
      c41 = _mm256_fmadd_ps(ar, b1, c41);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
      c51 = _mm256_fmadd_ps(ar, b1, c51);
    }
    ap += kGemmMR;
    bp += kGemmNR;
  }
  _mm256_maskstore_ps(c, mask0, c00);
  _mm256_maskstore_ps(c + 8, mask1, c01);
  if constexpr (MR_ > 1) {
    _mm256_maskstore_ps(c + ldc, mask0, c10);
    _mm256_maskstore_ps(c + ldc + 8, mask1, c11);
  }
  if constexpr (MR_ > 2) {
    _mm256_maskstore_ps(c + 2 * ldc, mask0, c20);
    _mm256_maskstore_ps(c + 2 * ldc + 8, mask1, c21);
  }
  if constexpr (MR_ > 3) {
    _mm256_maskstore_ps(c + 3 * ldc, mask0, c30);
    _mm256_maskstore_ps(c + 3 * ldc + 8, mask1, c31);
  }
  if constexpr (MR_ > 4) {
    _mm256_maskstore_ps(c + 4 * ldc, mask0, c40);
    _mm256_maskstore_ps(c + 4 * ldc + 8, mask1, c41);
  }
  if constexpr (MR_ > 5) {
    _mm256_maskstore_ps(c + 5 * ldc, mask0, c50);
    _mm256_maskstore_ps(c + 5 * ldc + 8, mask1, c51);
  }
}

// kMaskTable + (16 - nr) yields 16 lane masks whose first nr entries are
// live (all-ones).
alignas(32) constexpr int32_t kMaskTable[32] = {
    -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0};

// nr <= 8 ragged edge on packed panels: one accumulator register per C
// row and one B vector per k step — half the FMA/load work of the
// full-width masked tile. The yolo-head GEMMs (n = 9, 18, 33 after the
// first strip) spend most of their time here. The packed strip's lanes
// nr..7 are zero padding, so a plain aligned 8-lane load is safe and the
// dead lanes stay masked away at the C store; live lanes run the exact
// canonical chain.
template <int MR_>
void TileAvx2MaskedHalf(int64_t kc, const float* a, const float* b, float* c,
                        int64_t ldc, __m256i mask0) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c10, c20, c30, c40, c50;
  c00 = _mm256_maskload_ps(c, mask0);
  if constexpr (MR_ > 1) c10 = _mm256_maskload_ps(c + ldc, mask0);
  if constexpr (MR_ > 2) c20 = _mm256_maskload_ps(c + 2 * ldc, mask0);
  if constexpr (MR_ > 3) c30 = _mm256_maskload_ps(c + 3 * ldc, mask0);
  if constexpr (MR_ > 4) c40 = _mm256_maskload_ps(c + 4 * ldc, mask0);
  if constexpr (MR_ > 5) c50 = _mm256_maskload_ps(c + 5 * ldc, mask0);
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_load_ps(bp);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
    }
    ap += kGemmMR;
    bp += kGemmNR;
  }
  _mm256_maskstore_ps(c, mask0, c00);
  if constexpr (MR_ > 1) _mm256_maskstore_ps(c + ldc, mask0, c10);
  if constexpr (MR_ > 2) _mm256_maskstore_ps(c + 2 * ldc, mask0, c20);
  if constexpr (MR_ > 3) _mm256_maskstore_ps(c + 3 * ldc, mask0, c30);
  if constexpr (MR_ > 4) _mm256_maskstore_ps(c + 4 * ldc, mask0, c40);
  if constexpr (MR_ > 5) _mm256_maskstore_ps(c + 5 * ldc, mask0, c50);
}

// --- Stream-B tiles: op(B) read straight from the caller's row-major
// matrix at stride ldb (GemmPackB skipped by the driver for thin-N /
// short-M problems). Same FMA stream as the packed tiles; B loads are
// unaligned, and ragged columns use maskload so dead lanes are exactly
// zero — the same value the packed strip's padding would contribute.

template <int MR_>
void TileAvx2Bs(int64_t kc, const float* a, const float* b, int64_t ldb,
                float* c, int64_t ldc) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  c00 = _mm256_loadu_ps(c);
  c01 = _mm256_loadu_ps(c + 8);
  if constexpr (MR_ > 1) {
    c10 = _mm256_loadu_ps(c + ldc);
    c11 = _mm256_loadu_ps(c + ldc + 8);
  }
  if constexpr (MR_ > 2) {
    c20 = _mm256_loadu_ps(c + 2 * ldc);
    c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  }
  if constexpr (MR_ > 3) {
    c30 = _mm256_loadu_ps(c + 3 * ldc);
    c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  }
  if constexpr (MR_ > 4) {
    c40 = _mm256_loadu_ps(c + 4 * ldc);
    c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  }
  if constexpr (MR_ > 5) {
    c50 = _mm256_loadu_ps(c + 5 * ldc);
    c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  }
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    c01 = _mm256_fmadd_ps(ar, b1, c01);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
      c11 = _mm256_fmadd_ps(ar, b1, c11);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
      c21 = _mm256_fmadd_ps(ar, b1, c21);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
      c31 = _mm256_fmadd_ps(ar, b1, c31);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
      c41 = _mm256_fmadd_ps(ar, b1, c41);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
      c51 = _mm256_fmadd_ps(ar, b1, c51);
    }
    ap += kGemmMR;
    bp += ldb;
  }
  _mm256_storeu_ps(c, c00);
  _mm256_storeu_ps(c + 8, c01);
  if constexpr (MR_ > 1) {
    _mm256_storeu_ps(c + ldc, c10);
    _mm256_storeu_ps(c + ldc + 8, c11);
  }
  if constexpr (MR_ > 2) {
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  }
  if constexpr (MR_ > 3) {
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  }
  if constexpr (MR_ > 4) {
    _mm256_storeu_ps(c + 4 * ldc, c40);
    _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  }
  if constexpr (MR_ > 5) {
    _mm256_storeu_ps(c + 5 * ldc, c50);
    _mm256_storeu_ps(c + 5 * ldc + 8, c51);
  }
}

// Stream-B ragged edge, 8 < nr < 16: the low half is fully live (plain
// unaligned load, in bounds), the high half is mask-loaded so dead lanes
// are zero and out-of-bounds columns are never touched.
template <int MR_>
void TileAvx2BsMasked(int64_t kc, const float* a, const float* b, int64_t ldb,
                      float* c, int64_t ldc, __m256i mask1) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  c00 = _mm256_loadu_ps(c);
  c01 = _mm256_maskload_ps(c + 8, mask1);
  if constexpr (MR_ > 1) {
    c10 = _mm256_loadu_ps(c + ldc);
    c11 = _mm256_maskload_ps(c + ldc + 8, mask1);
  }
  if constexpr (MR_ > 2) {
    c20 = _mm256_loadu_ps(c + 2 * ldc);
    c21 = _mm256_maskload_ps(c + 2 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 3) {
    c30 = _mm256_loadu_ps(c + 3 * ldc);
    c31 = _mm256_maskload_ps(c + 3 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 4) {
    c40 = _mm256_loadu_ps(c + 4 * ldc);
    c41 = _mm256_maskload_ps(c + 4 * ldc + 8, mask1);
  }
  if constexpr (MR_ > 5) {
    c50 = _mm256_loadu_ps(c + 5 * ldc);
    c51 = _mm256_maskload_ps(c + 5 * ldc + 8, mask1);
  }
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_maskload_ps(bp + 8, mask1);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    c01 = _mm256_fmadd_ps(ar, b1, c01);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
      c11 = _mm256_fmadd_ps(ar, b1, c11);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
      c21 = _mm256_fmadd_ps(ar, b1, c21);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
      c31 = _mm256_fmadd_ps(ar, b1, c31);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
      c41 = _mm256_fmadd_ps(ar, b1, c41);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
      c51 = _mm256_fmadd_ps(ar, b1, c51);
    }
    ap += kGemmMR;
    bp += ldb;
  }
  _mm256_storeu_ps(c, c00);
  _mm256_maskstore_ps(c + 8, mask1, c01);
  if constexpr (MR_ > 1) {
    _mm256_storeu_ps(c + ldc, c10);
    _mm256_maskstore_ps(c + ldc + 8, mask1, c11);
  }
  if constexpr (MR_ > 2) {
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_maskstore_ps(c + 2 * ldc + 8, mask1, c21);
  }
  if constexpr (MR_ > 3) {
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_maskstore_ps(c + 3 * ldc + 8, mask1, c31);
  }
  if constexpr (MR_ > 4) {
    _mm256_storeu_ps(c + 4 * ldc, c40);
    _mm256_maskstore_ps(c + 4 * ldc + 8, mask1, c41);
  }
  if constexpr (MR_ > 5) {
    _mm256_storeu_ps(c + 5 * ldc, c50);
    _mm256_maskstore_ps(c + 5 * ldc + 8, mask1, c51);
  }
}

// Stream-B nr == 9 — the yolo-head 3x3-spatial edge. The generic
// 8 < nr < 16 tile above burns a second FMA per row on a register with
// one live lane; here the 9th column of all MR_ rows instead accumulates
// in a single register whose lane i is C[i][8] (the A panel already
// stores the MR_ row entries of each k step contiguously, so one masked
// load yields that column vector). Per k step: MR_ + 1 FMAs instead of
// 2*MR_. Lane i's chain is still the canonical k-ascending fused
// multiply-add seeded from C, so results stay bitwise identical to the
// reference; dead lanes MR_..7 are never stored.
template <int MR_>
void TileAvx2BsNine(int64_t kc, const float* a, const float* b, int64_t ldb,
                    float* c, int64_t ldc) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  const __m256i amask = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (16 - MR_)));
  __m256 c00, c10, c20, c30, c40, c50;
  c00 = _mm256_loadu_ps(c);
  if constexpr (MR_ > 1) c10 = _mm256_loadu_ps(c + ldc);
  if constexpr (MR_ > 2) c20 = _mm256_loadu_ps(c + 2 * ldc);
  if constexpr (MR_ > 3) c30 = _mm256_loadu_ps(c + 3 * ldc);
  if constexpr (MR_ > 4) c40 = _mm256_loadu_ps(c + 4 * ldc);
  if constexpr (MR_ > 5) c50 = _mm256_loadu_ps(c + 5 * ldc);
  alignas(32) float hi[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int i = 0; i < MR_; ++i) hi[i] = c[i * ldc + 8];
  __m256 chi = _mm256_load_ps(hi);
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 av = _mm256_maskload_ps(ap, amask);
    chi = _mm256_fmadd_ps(av, _mm256_broadcast_ss(bp + 8), chi);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
    }
    ap += kGemmMR;
    bp += ldb;
  }
  _mm256_storeu_ps(c, c00);
  if constexpr (MR_ > 1) _mm256_storeu_ps(c + ldc, c10);
  if constexpr (MR_ > 2) _mm256_storeu_ps(c + 2 * ldc, c20);
  if constexpr (MR_ > 3) _mm256_storeu_ps(c + 3 * ldc, c30);
  if constexpr (MR_ > 4) _mm256_storeu_ps(c + 4 * ldc, c40);
  if constexpr (MR_ > 5) _mm256_storeu_ps(c + 5 * ldc, c50);
  _mm256_store_ps(hi, chi);
  for (int i = 0; i < MR_; ++i) c[i * ldc + 8] = hi[i];
}

// Stream-B nr <= 8: single accumulator per row, mask-loaded B vector.
template <int MR_>
void TileAvx2BsHalf(int64_t kc, const float* a, const float* b, int64_t ldb,
                    float* c, int64_t ldc, __m256i mask0) {
  static_assert(MR_ >= 1 && MR_ <= kGemmMR, "row count exceeds panel stride");
  __m256 c00, c10, c20, c30, c40, c50;
  c00 = _mm256_maskload_ps(c, mask0);
  if constexpr (MR_ > 1) c10 = _mm256_maskload_ps(c + ldc, mask0);
  if constexpr (MR_ > 2) c20 = _mm256_maskload_ps(c + 2 * ldc, mask0);
  if constexpr (MR_ > 3) c30 = _mm256_maskload_ps(c + 3 * ldc, mask0);
  if constexpr (MR_ > 4) c40 = _mm256_maskload_ps(c + 4 * ldc, mask0);
  if constexpr (MR_ > 5) c50 = _mm256_maskload_ps(c + 5 * ldc, mask0);
  const float* ap = a;
  const float* bp = b;
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_maskload_ps(bp, mask0);
    __m256 ar = _mm256_broadcast_ss(ap);
    c00 = _mm256_fmadd_ps(ar, b0, c00);
    if constexpr (MR_ > 1) {
      ar = _mm256_broadcast_ss(ap + 1);
      c10 = _mm256_fmadd_ps(ar, b0, c10);
    }
    if constexpr (MR_ > 2) {
      ar = _mm256_broadcast_ss(ap + 2);
      c20 = _mm256_fmadd_ps(ar, b0, c20);
    }
    if constexpr (MR_ > 3) {
      ar = _mm256_broadcast_ss(ap + 3);
      c30 = _mm256_fmadd_ps(ar, b0, c30);
    }
    if constexpr (MR_ > 4) {
      ar = _mm256_broadcast_ss(ap + 4);
      c40 = _mm256_fmadd_ps(ar, b0, c40);
    }
    if constexpr (MR_ > 5) {
      ar = _mm256_broadcast_ss(ap + 5);
      c50 = _mm256_fmadd_ps(ar, b0, c50);
    }
    ap += kGemmMR;
    bp += ldb;
  }
  _mm256_maskstore_ps(c, mask0, c00);
  if constexpr (MR_ > 1) _mm256_maskstore_ps(c + ldc, mask0, c10);
  if constexpr (MR_ > 2) _mm256_maskstore_ps(c + 2 * ldc, mask0, c20);
  if constexpr (MR_ > 3) _mm256_maskstore_ps(c + 3 * ldc, mask0, c30);
  if constexpr (MR_ > 4) _mm256_maskstore_ps(c + 4 * ldc, mask0, c40);
  if constexpr (MR_ > 5) _mm256_maskstore_ps(c + 5 * ldc, mask0, c50);
}

void EdgeAvx2(int64_t kc, const float* a, const float* b, float* c,
              int64_t ldc, int mr, int nr) {
  if (nr == kGemmNR) {
    switch (mr) {
      case 1:
        return TileAvx2<1>(kc, a, b, c, ldc);
      case 2:
        return TileAvx2<2>(kc, a, b, c, ldc);
      case 3:
        return TileAvx2<3>(kc, a, b, c, ldc);
      case 4:
        return TileAvx2<4>(kc, a, b, c, ldc);
      case 5:
        return TileAvx2<5>(kc, a, b, c, ldc);
      case 6:
        return TileAvx2<6>(kc, a, b, c, ldc);
    }
  }
  const __m256i mask0 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (kGemmNR - nr)));
  if (nr <= 8) {
    switch (mr) {
      case 1:
        return TileAvx2MaskedHalf<1>(kc, a, b, c, ldc, mask0);
      case 2:
        return TileAvx2MaskedHalf<2>(kc, a, b, c, ldc, mask0);
      case 3:
        return TileAvx2MaskedHalf<3>(kc, a, b, c, ldc, mask0);
      case 4:
        return TileAvx2MaskedHalf<4>(kc, a, b, c, ldc, mask0);
      case 5:
        return TileAvx2MaskedHalf<5>(kc, a, b, c, ldc, mask0);
      case 6:
        return TileAvx2MaskedHalf<6>(kc, a, b, c, ldc, mask0);
    }
  }
  const __m256i mask1 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (kGemmNR - nr) + 8));
  switch (mr) {
    case 1:
      return TileAvx2Masked<1>(kc, a, b, c, ldc, mask0, mask1);
    case 2:
      return TileAvx2Masked<2>(kc, a, b, c, ldc, mask0, mask1);
    case 3:
      return TileAvx2Masked<3>(kc, a, b, c, ldc, mask0, mask1);
    case 4:
      return TileAvx2Masked<4>(kc, a, b, c, ldc, mask0, mask1);
    case 5:
      return TileAvx2Masked<5>(kc, a, b, c, ldc, mask0, mask1);
    case 6:
      return TileAvx2Masked<6>(kc, a, b, c, ldc, mask0, mask1);
  }
  // Unreachable for valid 1 <= mr <= 6; keep the scalar fused chain as a
  // defensive fallback (bitwise-identical to the vector lanes).
  gemm_detail::EdgeGeneric<FmaOp>(kc, a, b, c, ldc, mr, nr);
}

void EdgeBsAvx2(int64_t kc, const float* a, const float* b, int64_t ldb,
                float* c, int64_t ldc, int mr, int nr) {
  if (nr == kGemmNR) {
    switch (mr) {
      case 1:
        return TileAvx2Bs<1>(kc, a, b, ldb, c, ldc);
      case 2:
        return TileAvx2Bs<2>(kc, a, b, ldb, c, ldc);
      case 3:
        return TileAvx2Bs<3>(kc, a, b, ldb, c, ldc);
      case 4:
        return TileAvx2Bs<4>(kc, a, b, ldb, c, ldc);
      case 5:
        return TileAvx2Bs<5>(kc, a, b, ldb, c, ldc);
      case 6:
        return TileAvx2Bs<6>(kc, a, b, ldb, c, ldc);
    }
  }
  if (nr == 9) {
    switch (mr) {
      case 1:
        return TileAvx2BsNine<1>(kc, a, b, ldb, c, ldc);
      case 2:
        return TileAvx2BsNine<2>(kc, a, b, ldb, c, ldc);
      case 3:
        return TileAvx2BsNine<3>(kc, a, b, ldb, c, ldc);
      case 4:
        return TileAvx2BsNine<4>(kc, a, b, ldb, c, ldc);
      case 5:
        return TileAvx2BsNine<5>(kc, a, b, ldb, c, ldc);
      case 6:
        return TileAvx2BsNine<6>(kc, a, b, ldb, c, ldc);
    }
  }
  const __m256i mask0 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (kGemmNR - nr)));
  if (nr <= 8) {
    switch (mr) {
      case 1:
        return TileAvx2BsHalf<1>(kc, a, b, ldb, c, ldc, mask0);
      case 2:
        return TileAvx2BsHalf<2>(kc, a, b, ldb, c, ldc, mask0);
      case 3:
        return TileAvx2BsHalf<3>(kc, a, b, ldb, c, ldc, mask0);
      case 4:
        return TileAvx2BsHalf<4>(kc, a, b, ldb, c, ldc, mask0);
      case 5:
        return TileAvx2BsHalf<5>(kc, a, b, ldb, c, ldc, mask0);
      case 6:
        return TileAvx2BsHalf<6>(kc, a, b, ldb, c, ldc, mask0);
    }
  }
  const __m256i mask1 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (kGemmNR - nr) + 8));
  switch (mr) {
    case 1:
      return TileAvx2BsMasked<1>(kc, a, b, ldb, c, ldc, mask1);
    case 2:
      return TileAvx2BsMasked<2>(kc, a, b, ldb, c, ldc, mask1);
    case 3:
      return TileAvx2BsMasked<3>(kc, a, b, ldb, c, ldc, mask1);
    case 4:
      return TileAvx2BsMasked<4>(kc, a, b, ldb, c, ldc, mask1);
    case 5:
      return TileAvx2BsMasked<5>(kc, a, b, ldb, c, ldc, mask1);
    case 6:
      return TileAvx2BsMasked<6>(kc, a, b, ldb, c, ldc, mask1);
  }
  gemm_detail::EdgeBsGeneric<FmaOp>(kc, a, b, ldb, c, ldc, mr, nr);
}

const GemmKernel kAvx2Kernel = {
    /*name=*/"avx2-fma-6x16",
    /*fused=*/true,
    /*tile=*/&TileAvx2<kGemmMR>,
    /*edge=*/&EdgeAvx2,
    /*tile_bs=*/&TileAvx2Bs<kGemmMR>,
    /*edge_bs=*/&EdgeBsAvx2,
    /*ref_nn=*/&gemm_detail::RefNn<FmaOp>,
    /*ref_tn=*/&gemm_detail::RefTn<FmaOp>,
    /*ref_nt=*/&gemm_detail::RefNt<FmaOp>,
    /*ref_tt=*/&gemm_detail::RefTt<FmaOp>,
};

}  // namespace

const GemmKernel* Avx2GemmKernel() { return &kAvx2Kernel; }

}  // namespace thali

#else  // !(__AVX2__ && __FMA__): non-x86 target or compiler without the
       // per-file flags; the family simply does not exist in this build.

namespace thali {

const GemmKernel* Avx2GemmKernel() { return nullptr; }

}  // namespace thali

#endif
