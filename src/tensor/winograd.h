#ifndef THALI_TENSOR_WINOGRAD_H_
#define THALI_TENSOR_WINOGRAD_H_

#include <cstdint>

namespace thali {

// Winograd F(2x2, 3x3) convolution for the fused inference path: the
// execution-plan compiler (src/nn/exec_plan.h) routes stride-1 3x3
// pad-1 convs here, cutting the multiply count per output from 9 to 4
// (2.25x) and skipping im2col entirely.
//
// The transform pipeline for one batch item:
//   1. input transform   V[16][C][T] = B^T d B per 4x4 input patch
//      (tiles overlap by 2; T = ceil(H/2)*ceil(W/2) output tiles),
//   2. 16 independent GEMMs  M_k[F][T] = U_k[F][C] * V_k[C][T], run
//      through the packed GEMM driver (prepacked U panels when packing
//      is enabled, the reference path under THALI_NO_PACK),
//   3. output transform  Y = A^T M A per tile, scattered to the output
//      with edge clipping for odd spatial sizes.
//
// U = G w G^T is precomputed once per weight update (WinogradTransform-
// Weights) and optionally prepacked into GEMM A panels, mirroring the
// conv layer's GemmPackWeights flow.
//
// Accuracy: Winograd is NOT bitwise identical to direct convolution —
// the transforms re-associate the 3x3 dot products. F(2,3) with these
// small-magnitude transform matrices is mild: observed per-element
// error stays within ~1e-5 * ||w||*||d|| for yolo-scale tensors; the
// conformance tests budget 1e-4 + 1e-3 * |ref| end to end (documented
// in DESIGN.md). Outputs are still deterministic: every value is
// produced by a fixed scalar op sequence plus GEMMs covered by the
// packed-driver determinism contract, so results are reproducible
// across thread counts and batch slicings.

// Floats of the untransformed-weight product: 16 * F * C, laid out as
// 16 row-major F x C matrices (k-th matrix at u + k*F*C).
int64_t WinogradWeightFloats(int64_t filters, int64_t channels);

// Floats to prepack all 16 U_k into GEMM A panels.
int64_t WinogradPackedWeightFloats(int64_t filters, int64_t channels);

// U = G w G^T for every (f, c) 3x3 kernel of w (F, C, 3, 3) into the
// 16 x F x C layout above.
void WinogradTransformWeights(const float* w, int64_t filters,
                              int64_t channels, float* u);

// Packs the 16 U_k matrices (from WinogradTransformWeights) into GEMM A
// panels at stride GemmPackedWeightFloats(F, C) per k.
void WinogradPackWeights(const float* u, int64_t filters, int64_t channels,
                         float* packed);

// Scratch floats WinogradForward needs: 16*C*T + 16*F*T.
int64_t WinogradWorkspaceFloats(int64_t channels, int64_t filters,
                                int64_t height, int64_t width);

// One batch item: out = conv3x3_s1_p1(in, w) with channel strides
// `in_chan_stride` / `out_chan_stride` between consecutive channel
// planes (H*W for NCHW, batch*H*W for the CNHW blocked layout). Output
// spatial size equals input spatial size. `u_packed` may be null, in
// which case the plain Gemm entry point is used (THALI_NO_PACK). `ws`
// must hold WinogradWorkspaceFloats(C, F, H, W) floats. Bias and
// activation are the caller's separate passes.
void WinogradForward(const float* in, int64_t in_chan_stride, int64_t channels,
                     int64_t height, int64_t width, const float* u,
                     const float* u_packed, int64_t filters, float* out,
                     int64_t out_chan_stride, float* ws);

}  // namespace thali

#endif  // THALI_TENSOR_WINOGRAD_H_
