#ifndef THALI_TENSOR_GEMM_TILE_IMPL_H_
#define THALI_TENSOR_GEMM_TILE_IMPL_H_

// Shared implementation templates for the GEMM kernel families
// (gemm_microkernel.h). Included by exactly two translation units:
// gemm_microkernel.cc (instantiated with MulAddOp, baseline ISA) and
// gemm_microkernel_avx2.cc (instantiated with FmaOp, compiled with
// -mavx2 -mfma so the fma builtin inlines to a hardware instruction).
//
// Every function here realizes the canonical per-element accumulation
// chain documented in gemm_microkernel.h; nothing below may reorder,
// block, or partially pre-reduce the k dimension of a single C element.

#include <cstdint>

#include "tensor/gemm_microkernel.h"

namespace thali {
namespace gemm_detail {

// fl(acc + x*y) in two rounded steps. The build pins -ffp-contract=off,
// so the compiler cannot silently fuse this into an fma and break the
// scalar family's chain.
struct MulAddOp {
  static float Apply(float acc, float x, float y) { return acc + x * y; }
};

// One correctly rounded fused step. In the AVX2 TU (-mfma) this inlines
// to vfmadd and matches _mm256_fmadd_ps lane arithmetic bit-for-bit.
struct FmaOp {
  static float Apply(float acc, float x, float y) {
    return __builtin_fmaf(x, y, acc);
  }
};

// Full MR x NR tile on packed panels. The accumulator array is indexed
// with compile-time bounds so the compiler keeps it in registers and
// vectorizes the j loop.
template <typename Op>
void TileGeneric(int64_t kc, const float* a, const float* b, float* c,
                 int64_t ldc) {
  float acc[kGemmMR][kGemmNR];
  for (int r = 0; r < kGemmMR; ++r) {
    for (int j = 0; j < kGemmNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* ap = a + p * kGemmMR;
    const float* bp = b + p * kGemmNR;
    for (int r = 0; r < kGemmMR; ++r) {
      const float ar = ap[r];
      for (int j = 0; j < kGemmNR; ++j) {
        acc[r][j] = Op::Apply(acc[r][j], ar, bp[j]);
      }
    }
  }
  for (int r = 0; r < kGemmMR; ++r) {
    for (int j = 0; j < kGemmNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Partial tile: per-element dot chain over the packed panels, ascending
// p, touching only the mr x nr live corner (panel padding is never
// read into a live element).
template <typename Op>
void EdgeGeneric(int64_t kc, const float* a, const float* b, float* c,
                 int64_t ldc, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    for (int j = 0; j < nr; ++j) {
      float acc = c[r * ldc + j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = Op::Apply(acc, a[p * kGemmMR + r], b[p * kGemmNR + j]);
      }
      c[r * ldc + j] = acc;
    }
  }
}

// Stream-B full tile: like TileGeneric but B rows come straight from the
// caller's matrix at stride ldb (no packed strip). Same chain.
template <typename Op>
void TileBsGeneric(int64_t kc, const float* a, const float* b, int64_t ldb,
                   float* c, int64_t ldc) {
  float acc[kGemmMR][kGemmNR];
  for (int r = 0; r < kGemmMR; ++r) {
    for (int j = 0; j < kGemmNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* ap = a + p * kGemmMR;
    const float* bp = b + p * ldb;
    for (int r = 0; r < kGemmMR; ++r) {
      const float ar = ap[r];
      for (int j = 0; j < kGemmNR; ++j) {
        acc[r][j] = Op::Apply(acc[r][j], ar, bp[j]);
      }
    }
  }
  for (int r = 0; r < kGemmMR; ++r) {
    for (int j = 0; j < kGemmNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Stream-B partial tile; only live columns (j < nr) are ever read, which
// trivially satisfies the dead-columns-are-zero requirement.
template <typename Op>
void EdgeBsGeneric(int64_t kc, const float* a, const float* b, int64_t ldb,
                   float* c, int64_t ldc, int mr, int nr) {
  for (int r = 0; r < mr; ++r) {
    for (int j = 0; j < nr; ++j) {
      float acc = c[r * ldc + j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = Op::Apply(acc, a[p * kGemmMR + r], b[p * ldb + j]);
      }
      c[r * ldc + j] = acc;
    }
  }
}

// --- Unpacked reference kernels, rows [m0, m1) of C. Loop structures
// keep the seed kernels' cache blocking where it existed; the inner op
// is the family chain. Alpha is folded into the A element exactly as the
// packed path folds it at pack time (one rounded multiply).

template <typename Op>
void RefNn(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
           int64_t ldc) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockM = 64;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = k0 + kBlockK < k ? k0 + kBlockK : k;
    for (int64_t mb = m0; mb < m1; mb += kBlockM) {
      const int64_t mb1 = mb + kBlockM < m1 ? mb + kBlockM : m1;
      for (int64_t i = mb; i < mb1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float aip = alpha * a[i * lda + p];
          const float* bp = b + p * ldb;
          for (int64_t j = 0; j < n; ++j) ci[j] = Op::Apply(ci[j], aip, bp[j]);
        }
      }
    }
  }
}

template <typename Op>
void RefTn(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
           int64_t ldc) {
  // A is stored KxM; op(A)(i,p) = a[p*lda + i]. Ascending p per row.
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * lda;
    const float* bp = b + p * ldb;
    for (int64_t i = m0; i < m1; ++i) {
      const float aip = alpha * ap[i];
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] = Op::Apply(ci[j], aip, bp[j]);
    }
  }
}

template <typename Op>
void RefNt(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
           int64_t ldc) {
  // B is stored NxK; op(B)(p,j) = b[j*ldb + p]. Dot form keeps both
  // streams contiguous while the per-element chain stays ascending-p.
  for (int64_t i = m0; i < m1; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = ci[j];
      for (int64_t p = 0; p < k; ++p) {
        acc = Op::Apply(acc, alpha * ai[p], bj[p]);
      }
      ci[j] = acc;
    }
  }
}

template <typename Op>
void RefTt(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
           int64_t ldc) {
  for (int64_t i = m0; i < m1; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = ci[j];
      for (int64_t p = 0; p < k; ++p) {
        acc = Op::Apply(acc, alpha * a[p * lda + i], bj[p]);
      }
      ci[j] = acc;
    }
  }
}

}  // namespace gemm_detail
}  // namespace thali

#endif  // THALI_TENSOR_GEMM_TILE_IMPL_H_
