#ifndef THALI_TENSOR_OPS_H_
#define THALI_TENSOR_OPS_H_

#include <cmath>
#include <cstdint>

#include "tensor/tensor.h"

namespace thali {

// y += alpha * x (axpy). Shapes must match.
void Axpy(float alpha, const Tensor& x, Tensor& y);

// x *= alpha.
void Scale(float alpha, Tensor& x);

// Sum, mean, min, max over all elements.
float Sum(const Tensor& x);
float Mean(const Tensor& x);
float MinValue(const Tensor& x);
float MaxValue(const Tensor& x);

// L2 norm of all elements.
float L2Norm(const Tensor& x);

// Largest absolute elementwise difference between a and b (shapes must
// match). Used heavily by gradient-check and serialization tests.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

// Numerically stable softmax over the innermost `n` elements starting at
// `x`, written to `y` (may alias x).
void Softmax(const float* x, int64_t n, float* y);

// Logistic sigmoid (scalar helper used by the YOLO head).
inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace thali

#endif  // THALI_TENSOR_OPS_H_
