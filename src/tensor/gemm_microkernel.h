#ifndef THALI_TENSOR_GEMM_MICROKERNEL_H_
#define THALI_TENSOR_GEMM_MICROKERNEL_H_

#include <cstdint>

namespace thali {

// Register-tile and cache-block geometry of the packed GEMM (see
// gemm.cc for the driver and gemm_pack.h for the panel layouts).
//
// The microkernel computes an MR x NR tile of C. 6x16 fills the AVX2
// register file: 12 ymm accumulators + 2 B vectors + 1 broadcast leaves
// one spare. The cache blocks keep one A block (MC x KC ~ 120 KB) in L2
// and one packed B panel (KC x NR = 16 KB) hot in L1 while it is swept.
inline constexpr int kGemmMR = 6;
inline constexpr int kGemmNR = 16;
inline constexpr int64_t kGemmKC = 256;  // k cache block (panel depth)
inline constexpr int64_t kGemmMC = 120;  // m cache block (multiple of MR)
inline constexpr int64_t kGemmNC = 512;  // n cache block (multiple of NR)

// One family of GEMM kernels sharing a single per-element accumulation
// chain. The determinism contract of this repo requires every path that
// can compute the same C element (packed tile, packed edge, unpacked
// reference, any thread count) to perform the exact same sequence of
// IEEE operations on it:
//
//   c = beta * c                      (or 0 when beta == 0)
//   for p in 0..k-1 ascending:        (rank-1 updates, k-outer)
//     c = MulAdd(c, alpha * a[i][p], b[p][j])
//
// where MulAdd is either fused (one correctly rounded fma, used when the
// host CPU has FMA) or a separate multiply + add (portable fallback).
// The chain is a property of the *kernel family*, so the scalar family
// and the AVX2/FMA family each stay internally bit-consistent; a given
// host always dispatches to one family, making results reproducible
// across thread counts, tile shapes and pack-vs-reference paths.
struct GemmKernel {
  const char* name;  // e.g. "avx2-fma-6x16", "scalar-6x16"
  bool fused;        // accumulation chain uses fused multiply-add

  // Full MR x NR register tile on packed panels: loads C, applies kc
  // rank-1 updates in ascending-k order, stores C. `a` is a kc x MR
  // column panel (stride MR), `b` a kc x NR row panel (stride NR).
  void (*tile)(int64_t kc, const float* a, const float* b, float* c,
               int64_t ldc);

  // Partial tile (1 <= mr <= MR, 1 <= nr <= NR), same panel layout and
  // per-element chain; touches only the mr x nr live corner of C.
  void (*edge)(int64_t kc, const float* a, const float* b, float* c,
               int64_t ldc, int mr, int nr);

  // Stream-B variants: identical per-element chain to tile/edge, but op(B)
  // is read directly from the caller's row-major matrix (non-transposed,
  // row stride ldb) instead of a packed strip — the driver skips GemmPackB
  // for thin-N / short-M problems where the pack traffic costs more than
  // the strided loads. Columns j >= nr are treated as exactly zero
  // (masked loads), matching the packed strip's zero padding bit for bit,
  // so the two paths stay bitwise interchangeable.
  void (*tile_bs)(int64_t kc, const float* a, const float* b, int64_t ldb,
                  float* c, int64_t ldc);
  void (*edge_bs)(int64_t kc, const float* a, const float* b, int64_t ldb,
                  float* c, int64_t ldc, int mr, int nr);

  // Unpacked reference kernels (the THALI_NO_PACK escape hatch and the
  // conformance oracle), one per transpose combination. Accumulate
  // alpha * op(A) * op(B) into rows [m0, m1) of C with the same chain;
  // beta scaling is the caller's job.
  void (*ref_nn)(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc);
  void (*ref_tn)(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc);
  void (*ref_nt)(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc);
  void (*ref_tt)(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc);
};

// Portable kernel family (separate multiply + add chain). Always
// available.
const GemmKernel& ScalarGemmKernel();

// AVX2+FMA kernel family, built in its own translation unit with
// per-file -mavx2 -mfma so the rest of the library stays baseline
// x86-64. Returns nullptr when the TU was compiled without AVX2 support
// (non-x86 targets); the caller must additionally check CpuInfo()
// before dispatching to it.
const GemmKernel* Avx2GemmKernel();

// The kernel family this host dispatches to, chosen once on first use:
// AVX2 when the CPU reports both AVX2 and FMA, scalar otherwise.
const GemmKernel& SelectGemmKernel();

namespace internal {
// Testing hook: force dispatch to "scalar" or "avx2" (silently ignored
// when that family is unavailable on this build/host), or pass nullptr
// to restore automatic detection.
void SetGemmKernelForTesting(const char* name);
}  // namespace internal

}  // namespace thali

#endif  // THALI_TENSOR_GEMM_MICROKERNEL_H_
