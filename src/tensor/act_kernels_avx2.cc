// AVX2 activation kernel family. Like gemm_microkernel_avx2.cc this is
// the only activation TU compiled with -mavx2 -mfma (per-file
// COMPILE_OPTIONS in src/tensor/CMakeLists.txt) and is reached only
// through runtime dispatch guarded by CpuInfo().
//
// Every vector body below mirrors the scalar formulas in
// act_kernels_impl.h operation for operation — same op order, same
// rounding mode, multiply+add (never fmadd) in the polynomial — so a
// lane's result is bitwise identical to the scalar remainder loop and
// to the scalar family. See act_kernels.h for why that matters.

#include "tensor/act_kernels.h"
#include "tensor/act_kernels_impl.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "tensor/simd_exp_avx2.h"

namespace thali {

namespace {

using act_detail::ActKernel;
using simd_detail::FastMishVec;

void LeakyAvx2(float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 slope = _mm256_set1_ps(0.1f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(x + i,
                     _mm256_blendv_ps(_mm256_mul_ps(slope, v), v, pos));
  }
  act_detail::LeakyScalar(x + i, n - i);
}

void ReluAvx2(float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(x + i, _mm256_blendv_ps(zero, v, pos));
  }
  act_detail::ReluScalar(x + i, n - i);
}

void MishAvx2(float* x, int64_t n) {
  // Vector body shared with the int8 requantize epilogue
  // (simd_exp_avx2.h) so both produce the same bits as the scalar
  // family.
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, FastMishVec(_mm256_loadu_ps(x + i)));
  }
  act_detail::MishScalar(x + i, n - i);
}

int64_t CollectAtLeastAvx2(const float* x, int64_t n, float threshold,
                           int32_t* out) {
  // _CMP_NLT_UQ is the bit-exact vector form of !(x < threshold):
  // not-less-than, unordered (NaN) compares true, same as the scalar
  // body, so both families collect the same indices.
  const __m256 thr = _mm256_set1_ps(threshold);
  int64_t m = 0;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, thr, _CMP_NLT_UQ)));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[m++] = static_cast<int32_t>(i + lane);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (!(x[i] < threshold)) out[m++] = static_cast<int32_t>(i);
  }
  return m;
}

const ActKernel kAvx2ActKernel = {
    /*name=*/"avx2-act",
    /*leaky=*/&LeakyAvx2,
    /*relu=*/&ReluAvx2,
    /*mish=*/&MishAvx2,
    /*collect=*/&CollectAtLeastAvx2,
};

}  // namespace

const act_detail::ActKernel* Avx2ActKernel() { return &kAvx2ActKernel; }

}  // namespace thali

#else  // !(__AVX2__ && __FMA__)

namespace thali {

const act_detail::ActKernel* Avx2ActKernel() { return nullptr; }

}  // namespace thali

#endif
