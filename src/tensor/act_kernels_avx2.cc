// AVX2 activation kernel family. Like gemm_microkernel_avx2.cc this is
// the only activation TU compiled with -mavx2 -mfma (per-file
// COMPILE_OPTIONS in src/tensor/CMakeLists.txt) and is reached only
// through runtime dispatch guarded by CpuInfo().
//
// Every vector body below mirrors the scalar formulas in
// act_kernels_impl.h operation for operation — same op order, same
// rounding mode, multiply+add (never fmadd) in the polynomial — so a
// lane's result is bitwise identical to the scalar remainder loop and
// to the scalar family. See act_kernels.h for why that matters.

#include "tensor/act_kernels.h"
#include "tensor/act_kernels_impl.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace thali {

namespace {

using act_detail::ActKernel;

inline __m256 FastExpVec(__m256 x) {
  const __m256 hi = _mm256_set1_ps(act_detail::kExpHi);
  const __m256 lo = _mm256_set1_ps(act_detail::kExpLo);
  x = _mm256_min_ps(x, hi);
  x = _mm256_max_ps(x, lo);
  __m256 fx = _mm256_round_ps(_mm256_mul_ps(x, _mm256_set1_ps(act_detail::kLog2e)),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(act_detail::kExpC1)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(act_detail::kExpC2)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(act_detail::kExpP0);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP1));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP2));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP3));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP4));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(act_detail::kExpP5));
  y = _mm256_add_ps(_mm256_mul_ps(y, z), x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

void LeakyAvx2(float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 slope = _mm256_set1_ps(0.1f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(x + i,
                     _mm256_blendv_ps(_mm256_mul_ps(slope, v), v, pos));
  }
  act_detail::LeakyScalar(x + i, n - i);
}

void ReluAvx2(float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(x + i, _mm256_blendv_ps(zero, v, pos));
  }
  act_detail::ReluScalar(x + i, n - i);
}

void MishAvx2(float* x, int64_t n) {
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 sat = _mm256_set1_ps(20.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 e = FastExpVec(v);
    const __m256 num = _mm256_mul_ps(e, _mm256_add_ps(e, two));
    const __m256 m =
        _mm256_mul_ps(v, _mm256_div_ps(num, _mm256_add_ps(num, two)));
    // Saturated lanes (x >= 20) return x exactly, matching both the
    // scalar fast path and the libm reference's tanh==1 branch. The
    // blended-away num may be inf (exp overflow after the clamp); its
    // NaN quotient never escapes the dead lane.
    const __m256 saturated = _mm256_cmp_ps(v, sat, _CMP_GE_OQ);
    _mm256_storeu_ps(x + i, _mm256_blendv_ps(m, v, saturated));
  }
  act_detail::MishScalar(x + i, n - i);
}

const ActKernel kAvx2ActKernel = {
    /*name=*/"avx2-act",
    /*leaky=*/&LeakyAvx2,
    /*relu=*/&ReluAvx2,
    /*mish=*/&MishAvx2,
};

}  // namespace

const act_detail::ActKernel* Avx2ActKernel() { return &kAvx2ActKernel; }

}  // namespace thali

#else  // !(__AVX2__ && __FMA__)

namespace thali {

const act_detail::ActKernel* Avx2ActKernel() { return nullptr; }

}  // namespace thali

#endif
