#ifndef THALI_TENSOR_ACT_KERNELS_IMPL_H_
#define THALI_TENSOR_ACT_KERNELS_IMPL_H_

// Scalar implementation of the fast activation kernels, included by both
// act_kernels.cc (the portable family and the dispatch) and
// act_kernels_avx2.cc (vector-loop remainders). The AVX2 vector bodies
// mirror these formulas operation for operation — same order, same
// rounding, no FMA contraction (the build pins -ffp-contract=off) — so a
// value is bitwise identical whether it was computed in a vector lane,
// in a remainder iteration, or by the scalar family on a non-AVX2 host.

#include <cmath>

namespace thali {
namespace act_detail {

// Cephes-style expf: range-reduce x = n*ln2 + r with Cody-Waite
// constants, evaluate a degree-5 polynomial in r, scale by 2^n through
// the exponent bits. Relative error ~2e-7 over the clamped domain.
inline constexpr float kExpHi = 88.72283f;
inline constexpr float kExpLo = -87.33654f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;

inline float FastExp(float x) {
  x = x < kExpHi ? x : kExpHi;
  x = x > kExpLo ? x : kExpLo;
  // n = round-to-nearest-even(x * log2e), matching _mm256_round_ps with
  // _MM_FROUND_TO_NEAREST_INT in the vector body.
  const float fx = std::nearbyintf(x * kLog2e);
  x = x - fx * kExpC1;
  x = x - fx * kExpC2;
  const float z = x * x;
  float y = kExpP0;
  y = y * x + kExpP1;
  y = y * x + kExpP2;
  y = y * x + kExpP3;
  y = y * x + kExpP4;
  y = y * x + kExpP5;
  y = y * z + x;
  y = y + 1.0f;
  // 2^n via exponent bits; |n| <= 128 within the clamped domain.
  const int32_t n = static_cast<int32_t>(fx);
  union {
    int32_t i;
    float f;
  } pow2;
  pow2.i = (n + 127) << 23;
  return y * pow2.f;
}

// mish(x) = x * tanh(softplus(x)) rewritten with E = exp(x):
//   tanh(log1p(E)) = ((1+E)^2 - 1) / ((1+E)^2 + 1) = E(E+2) / (E(E+2)+2)
// One exp, one division, no tanh/log. For x >= 20 the libm reference
// saturates to exactly x (tanhf(softplus) rounds to 1.0f); return x on
// the same branch so the two agree bitwise there.
inline float FastMish(float x) {
  if (x >= 20.0f) return x;
  const float e = FastExp(x);
  const float num = e * (e + 2.0f);
  return x * (num / (num + 2.0f));
}

inline void LeakyScalar(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] = x[i] > 0 ? x[i] : 0.1f * x[i];
}

inline void ReluScalar(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] = x[i] > 0 ? x[i] : 0.0f;
}

inline void MishScalar(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] = FastMish(x[i]);
}

// Index compaction for the YOLO decode pre-filter. The predicate is
// !(x[i] < threshold) — the negation of the reference decode's skip
// test — so NaN elements are collected exactly like the reference's
// `if (obj < thresh) continue` keeps them. Comparisons are exact, so
// the scalar and AVX2 bodies are trivially identical.
inline int64_t CollectAtLeastScalar(const float* x, int64_t n,
                                    float threshold, int32_t* out) {
  int64_t m = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!(x[i] < threshold)) out[m++] = static_cast<int32_t>(i);
  }
  return m;
}

// One activation kernel family (see GemmKernel for the pattern).
struct ActKernel {
  const char* name;
  void (*leaky)(float* x, int64_t n);
  void (*relu)(float* x, int64_t n);
  void (*mish)(float* x, int64_t n);
  int64_t (*collect)(const float* x, int64_t n, float threshold,
                     int32_t* out);
};

}  // namespace act_detail

// AVX2 family, or nullptr when the TU was built without AVX2 support.
const act_detail::ActKernel* Avx2ActKernel();

}  // namespace thali

#endif  // THALI_TENSOR_ACT_KERNELS_IMPL_H_
