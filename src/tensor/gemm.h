#ifndef THALI_TENSOR_GEMM_H_
#define THALI_TENSOR_GEMM_H_

#include <cstdint>

namespace thali {

// C[MxN] = alpha * op(A) * op(B) + beta * C, row-major, single precision.
// ta/tb select transposition of A/B. lda/ldb/ldc are leading dimensions
// (row strides) of the *stored* matrices.
//
// This is the compute core of every convolutional layer (via im2col). The
// default path packs A and B into cache-friendly panels and runs a
// register-tiled microkernel family chosen once per process by runtime
// CPU detection (AVX2+FMA when available, portable scalar otherwise; see
// gemm_microkernel.h for the accumulation-chain contract that keeps
// results bitwise reproducible across thread counts and across the
// packed / unpacked paths). Setting THALI_NO_PACK=1 in the environment
// latches the unpacked row-parallel loop nest instead.
void Gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc);

// Convenience wrapper: C[MxN] += A[MxK] * B[KxN], all tightly packed.
void MatMulAccumulate(int64_t m, int64_t n, int64_t k, const float* a,
                      const float* b, float* c);

// Optional fused write-back for GemmPrepacked. kLeaky/kRelu replicate,
// element for element, the conv layer's post-GEMM passes (bias add, then
// leaky/ReLU), so fusing them into the GEMM's C traversal is
// bitwise-neutral. kMish routes through the fast activation family
// (tensor/act_kernels.h) — only the fused inference plan emits it, and
// it is covered by that plan's documented tolerance, not bitwise
// identity with the libm reference.
enum class GemmActivation { kNone, kLeaky, kRelu, kMish };

struct GemmEpilogue {
  const float* bias = nullptr;  // length m; row i of C gets bias[i] added
  GemmActivation activation = GemmActivation::kNone;
};

// Pack the m x k matrix A (not transposed, lda == k, alpha == 1) for
// GemmPrepacked. `packed` must hold GemmPackedWeightFloats(m, k) floats
// (gemm_pack.h). Conv layers do this once per weight update so inference
// skips the A-packing traffic on every forward pass.
void GemmPackWeights(const float* a, int64_t m, int64_t k, float* packed);

// C = A * B + beta * C with a pre-packed A (GemmPackWeights), plus an
// optional fused epilogue applied to C after the accumulation finishes.
// Only valid when the packed path is enabled (GemmPackingEnabled()).
void GemmPrepacked(int64_t m, int64_t n, int64_t k, const float* packed_a,
                   bool tb, const float* b, int64_t ldb, float beta, float* c,
                   int64_t ldc, const GemmEpilogue* epilogue = nullptr);

// False when THALI_NO_PACK=1 (or a testing override) disables the packed
// driver. Callers holding pre-packed weights must re-check this per call.
bool GemmPackingEnabled();

// Name of the microkernel family this host dispatches to (for logs).
const char* GemmKernelName();

namespace internal {

// Sequential oracle: the unpacked reference kernels of the dispatched
// family, no thread pool involved. The packed path must match it bitwise.
void GemmReference(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
                   float alpha, const float* a, int64_t lda, const float* b,
                   int64_t ldb, float beta, float* c, int64_t ldc);

// Force the packed path on (1) / off (0) or restore the THALI_NO_PACK
// environment default (-1).
void SetGemmPackingForTesting(int enabled);

// True when the given THALI_NO_PACK value disables packing (any
// non-empty string except "0").
bool NoPackEnvValueDisables(const char* value);

}  // namespace internal

}  // namespace thali

#endif  // THALI_TENSOR_GEMM_H_
