#ifndef THALI_TENSOR_GEMM_H_
#define THALI_TENSOR_GEMM_H_

#include <cstdint>

namespace thali {

// C[MxN] = alpha * op(A) * op(B) + beta * C, row-major, single precision.
// ta/tb select transposition of A/B. lda/ldb/ldc are leading dimensions
// (row strides) of the *stored* matrices.
//
// This is the compute core of every convolutional layer (via im2col), so a
// cache-blocked kernel with a vectorizable inner loop is used for the
// non-transposed case; transposed variants fall back to a simple loop nest
// (they only appear on the backward pass).
void Gemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc);

// Convenience wrapper: C[MxN] += A[MxK] * B[KxN], all tightly packed.
void MatMulAccumulate(int64_t m, int64_t n, int64_t k, const float* a,
                      const float* b, float* c);

}  // namespace thali

#endif  // THALI_TENSOR_GEMM_H_
