#include "tensor/gemm_pack.h"

#include <cstdlib>

#include "tensor/gemm_microkernel.h"

namespace thali {

namespace {

// Lazily grown 64-byte-aligned float buffer, one per OS thread.
struct AlignedScratch {
  float* data = nullptr;
  int64_t capacity = 0;

  ~AlignedScratch() { std::free(data); }

  float* Ensure(int64_t floats) {
    if (floats > capacity) {
      std::free(data);
      // aligned_alloc requires the size to be a multiple of the alignment.
      const size_t bytes =
          (static_cast<size_t>(floats) * sizeof(float) + 63u) & ~size_t{63};
      data = static_cast<float*>(std::aligned_alloc(64, bytes));
      capacity = floats;
    }
    return data;
  }
};

}  // namespace

int64_t GemmPackedRowTiles(int64_t m) {
  return (m + kGemmMR - 1) / kGemmMR;
}

int64_t GemmPackedWeightFloats(int64_t m, int64_t k) {
  return GemmPackedRowTiles(m) * kGemmMR * k;
}

void GemmPackA(bool trans_a, const float* a, int64_t lda, int64_t i0,
               int64_t mb, int64_t p0, int64_t kb, float alpha, float* dst) {
  const int64_t tiles = GemmPackedRowTiles(mb);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t row0 = i0 + t * kGemmMR;
    const int64_t rows =
        mb - t * kGemmMR < kGemmMR ? mb - t * kGemmMR : kGemmMR;
    float* panel = dst + t * kGemmMR * kb;
    for (int64_t p = 0; p < kb; ++p) {
      float* out = panel + p * kGemmMR;
      if (!trans_a) {
        for (int64_t r = 0; r < rows; ++r) {
          out[r] = alpha * a[(row0 + r) * lda + (p0 + p)];
        }
      } else {
        const float* ap = a + (p0 + p) * lda;
        for (int64_t r = 0; r < rows; ++r) out[r] = alpha * ap[row0 + r];
      }
      for (int64_t r = rows; r < kGemmMR; ++r) out[r] = 0.0f;
    }
  }
}

void GemmPackB(bool trans_b, const float* b, int64_t ldb, int64_t p0,
               int64_t kb, int64_t j0, int64_t nb, float* dst) {
  const int64_t strips = (nb + kGemmNR - 1) / kGemmNR;
  for (int64_t u = 0; u < strips; ++u) {
    const int64_t col0 = j0 + u * kGemmNR;
    const int64_t cols =
        nb - u * kGemmNR < kGemmNR ? nb - u * kGemmNR : kGemmNR;
    float* panel = dst + u * kb * kGemmNR;
    for (int64_t p = 0; p < kb; ++p) {
      float* out = panel + p * kGemmNR;
      if (!trans_b) {
        const float* bp = b + (p0 + p) * ldb + col0;
        for (int64_t j = 0; j < cols; ++j) out[j] = bp[j];
      } else {
        for (int64_t j = 0; j < cols; ++j) {
          out[j] = b[(col0 + j) * ldb + (p0 + p)];
        }
      }
      for (int64_t j = cols; j < kGemmNR; ++j) out[j] = 0.0f;
    }
  }
}

void GemmPackMatrixA(bool trans_a, const float* a, int64_t lda, int64_t m,
                     int64_t k, float alpha, float* dst) {
  const int64_t padded_m = GemmPackedRowTiles(m) * kGemmMR;
  for (int64_t p0 = 0; p0 < k; p0 += kGemmKC) {
    const int64_t kcb = k - p0 < kGemmKC ? k - p0 : kGemmKC;
    GemmPackA(trans_a, a, lda, /*i0=*/0, m, p0, kcb, alpha,
              dst + p0 * padded_m);
  }
}

float* GemmPackScratchA(int64_t floats) {
  thread_local AlignedScratch scratch;
  return scratch.Ensure(floats);
}

float* GemmPackScratchB(int64_t floats) {
  thread_local AlignedScratch scratch;
  return scratch.Ensure(floats);
}

}  // namespace thali
