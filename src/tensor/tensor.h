#ifndef THALI_TENSOR_TENSOR_H_
#define THALI_TENSOR_TENSOR_H_

#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.h"
#include "tensor/shape.h"

namespace thali {

// Dense float32 tensor with contiguous row-major storage. Copy is a deep
// copy; Tensor is the value type the whole NN substrate computes on.
//
// Activations use NCHW layout; convolution weights use (out, in, kh, kw).
class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)), data_(std::move(values)) {
    THALI_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.num_elements());
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const Shape& shape() const { return shape_; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    THALI_CHECK_GE(i, 0);
    THALI_CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    THALI_CHECK_GE(i, 0);
    THALI_CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }

  // Unchecked 4-d accessors for hot loops (NCHW).
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[static_cast<size_t>(
        ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) + w)];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[static_cast<size_t>(
        ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) + w)];
  }

  // Sets every element to `v`.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  // Reinterprets the storage with a new shape of equal element count.
  void Reshape(Shape new_shape) {
    THALI_CHECK_EQ(new_shape.num_elements(), shape_.num_elements());
    shape_ = std::move(new_shape);
  }

  // Resizes to `new_shape`, discarding contents (re-zeroed) if the element
  // count changes. Compares against the actual storage size, not the old
  // shape: a default-constructed Tensor has a rank-0 shape whose element
  // product is 1 but owns no storage.
  void Resize(Shape new_shape) {
    if (static_cast<size_t>(new_shape.num_elements()) != data_.size()) {
      data_.assign(static_cast<size_t>(new_shape.num_elements()), 0.0f);
    }
    shape_ = std::move(new_shape);
  }

  const std::vector<float>& vec() const { return data_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace thali

#endif  // THALI_TENSOR_TENSOR_H_
