#ifndef THALI_TENSOR_TENSOR_H_
#define THALI_TENSOR_TENSOR_H_

#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.h"
#include "tensor/shape.h"

namespace thali {

// Dense float32 tensor with contiguous row-major storage. Copy is a deep
// copy; Tensor is the value type the whole NN substrate computes on.
//
// Storage is normally owned, but a tensor can also be bound to external
// storage (BindExternal) — the activation arena plants layer outputs in
// one shared allocation this way. A bound tensor never owns or frees the
// pointer; copying one materializes an owned deep copy, so value
// semantics are preserved for callers that snapshot activations.
//
// Activations use NCHW layout; convolution weights use (out, in, kh, kw).
class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)), data_(std::move(values)) {
    THALI_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.num_elements());
  }

  Tensor(const Tensor& o) : shape_(o.shape_) {
    data_.assign(o.data(), o.data() + o.size());
  }
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      shape_ = o.shape_;
      data_.assign(o.data(), o.data() + o.size());
      external_ = nullptr;
    }
    return *this;
  }
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const Shape& shape() const { return shape_; }
  int64_t size() const {
    return external_ != nullptr ? shape_.num_elements()
                                : static_cast<int64_t>(data_.size());
  }
  bool empty() const { return size() == 0; }

  float* data() { return external_ != nullptr ? external_ : data_.data(); }
  const float* data() const {
    return external_ != nullptr ? external_ : data_.data();
  }

  // True when the storage lives outside this tensor (arena-planned).
  bool external() const { return external_ != nullptr; }

  // Binds the tensor to `shape.num_elements()` floats at `ptr`, owned by
  // someone else (the activation arena). Any owned storage is released.
  //
  // Contract:
  //  - Lifetime: the binder must keep `ptr` alive for as long as the
  //    tensor is bound, and may rebind at any time (SetBatch re-plans).
  //  - Alignment: `ptr` must be 64-byte aligned — arena slots are placed
  //    on cache-line boundaries and vectorized kernels rely on it. Views
  //    that legitimately alias the interior of another tensor's storage
  //    (route slices, concat-adopted outputs, in-place shortcuts) land
  //    at arbitrary offsets and must use BindExternalAliased instead.
  //  - Aliasing/reuse: distinct BindExternal ranges may share arena
  //    storage across *time* (liveness-disjoint layers reuse offsets),
  //    so a bound output is only valid between its producing step and
  //    its last consumer; snapshot (copy) it to keep it longer.
  void BindExternal(float* ptr, Shape shape) {
    THALI_CHECK(ptr != nullptr);
    THALI_CHECK_EQ(reinterpret_cast<uintptr_t>(ptr) & 63u, 0u)
        << "BindExternal pointer must be 64-byte aligned "
        << "(use BindExternalAliased for interior views)";
    shape_ = std::move(shape);
    external_ = ptr;
    data_.clear();
    data_.shrink_to_fit();
  }

  // BindExternal for a view that aliases the interior of another bound
  // range (copy-elided route/concat/shortcut outputs): same lifetime
  // rules, no alignment requirement. The view is live only while its
  // group root's block is live, and writes through it are writes into
  // the root's storage — the plan compiler guarantees the members'
  // liveness intervals make that safe.
  void BindExternalAliased(float* ptr, Shape shape) {
    THALI_CHECK(ptr != nullptr);
    shape_ = std::move(shape);
    external_ = ptr;
    data_.clear();
    data_.shrink_to_fit();
  }

  float& operator[](int64_t i) {
    THALI_CHECK_GE(i, 0);
    THALI_CHECK_LT(i, size());
    return data()[i];
  }
  float operator[](int64_t i) const {
    THALI_CHECK_GE(i, 0);
    THALI_CHECK_LT(i, size());
    return data()[i];
  }

  // Unchecked 4-d accessors for hot loops (NCHW).
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data()[((n * shape_.dim(1) + c) * shape_.dim(2) + h) *
                      shape_.dim(3) +
                  w];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data()[((n * shape_.dim(1) + c) * shape_.dim(2) + h) *
                      shape_.dim(3) +
                  w];
  }

  // Sets every element to `v`.
  void Fill(float v) { std::fill(data(), data() + size(), v); }
  void Zero() { Fill(0.0f); }

  // Reinterprets the storage with a new shape of equal element count.
  void Reshape(Shape new_shape) {
    THALI_CHECK_EQ(new_shape.num_elements(), shape_.num_elements());
    shape_ = std::move(new_shape);
  }

  // Resizes to `new_shape`, discarding contents (re-zeroed) if the element
  // count changes. Compares against the actual storage size, not the old
  // shape: a default-constructed Tensor has a rank-0 shape whose element
  // product is 1 but owns no storage. Externally-bound tensors cannot be
  // resized — the binder rebinds them instead.
  void Resize(Shape new_shape) {
    THALI_CHECK(external_ == nullptr) << "Resize on externally-bound tensor";
    if (static_cast<size_t>(new_shape.num_elements()) != data_.size()) {
      data_.assign(static_cast<size_t>(new_shape.num_elements()), 0.0f);
    }
    shape_ = std::move(new_shape);
  }

 private:
  Shape shape_;
  std::vector<float> data_;
  float* external_ = nullptr;
};

}  // namespace thali

#endif  // THALI_TENSOR_TENSOR_H_
