#include "base/logging.h"

#include <cstring>

namespace thali {

namespace {
LogSeverity g_min_level = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogSeverity MinLogLevel() { return g_min_level; }
void SetMinLogLevel(LogSeverity severity) { g_min_level = severity; }

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_level || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace thali
