#ifndef THALI_BASE_STOPWATCH_H_
#define THALI_BASE_STOPWATCH_H_

#include <chrono>

namespace thali {

// Wall-clock stopwatch for harnesses and benches. Library code proper never
// depends on time; this exists only for reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace thali

#endif  // THALI_BASE_STOPWATCH_H_
