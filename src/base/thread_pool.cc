#include "base/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "base/logging.h"

namespace thali {

namespace {

// Set while a thread executes a ParallelFor chunk so nested regions run
// inline instead of deadlocking on (or oversubscribing) the pool.
thread_local bool t_in_parallel_region = false;

int ParallelismFromEnv() {
  if (const char* env = std::getenv("THALI_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return static_cast<int>(std::min<long>(v, 1024));
    }
    THALI_LOG(Warning) << "ignoring invalid THALI_NUM_THREADS='" << env << "'";
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu
int g_parallelism = 0;               // guarded by g_pool_mu; 0 = uninitialized

// Returns the global pool, creating it on first use. Parallelism P maps
// to P-1 workers; the ParallelFor caller is the P-th strand.
ThreadPool& GlobalPool(int* parallelism) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_parallelism = ParallelismFromEnv();
    g_pool = std::make_unique<ThreadPool>(g_parallelism - 1);
  }
  if (parallelism != nullptr) *parallelism = g_parallelism;
  return *g_pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  THALI_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int MaxParallelism() {
  int p = 1;
  GlobalPool(&p);
  return p;
}

void SetMaxParallelism(int n) {
  const int p = std::max(1, n);
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (g_pool != nullptr && g_parallelism == p) return;
    old = std::move(g_pool);  // destroyed (joined) outside the lock
    g_parallelism = p;
    g_pool = std::make_unique<ThreadPool>(p - 1);
  }
}

void ParallelForBounded(
    int64_t begin, int64_t end, int64_t grain, int max_strands,
    const std::function<void(int64_t, int64_t, int)>& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;

  int parallelism = 1;
  ThreadPool& pool = GlobalPool(&parallelism);
  const int64_t g = std::max<int64_t>(1, grain);
  const int64_t strands =
      std::min<int64_t>(std::min(parallelism, std::max(1, max_strands)),
                        (range + g - 1) / g);
  if (strands <= 1 || t_in_parallel_region) {
    // Inline execution. A single-chunk region is not a parallel region:
    // loops nested under it (e.g. the GEMM inside a batch-1 conv loop)
    // may still fan out.
    fn(begin, end, 0);
    return;
  }

  struct SharedState {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining;
    std::exception_ptr error;  // first exception wins, guarded by mu
  };
  SharedState state;
  state.remaining = strands;

  auto run_chunk = [&state, &fn, begin, range, strands](int64_t c) {
    const int64_t lo = begin + range * c / strands;
    const int64_t hi = begin + range * (c + 1) / strands;
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      fn(lo, hi, static_cast<int>(c));
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mu);
      if (!state.error) state.error = std::current_exception();
    }
    t_in_parallel_region = was_in_region;
    {
      // Notify under the lock: once the caller observes remaining == 0 it
      // may destroy `state`, so this must be the last touch.
      std::lock_guard<std::mutex> lock(state.mu);
      --state.remaining;
      state.done.notify_one();
    }
  };

  for (int64_t c = 1; c < strands; ++c) {
    pool.Schedule([&run_chunk, c] { run_chunk(c); });
  }
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
    if (state.error) std::rethrow_exception(state.error);
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int)>& fn) {
  ParallelForBounded(begin, end, grain, std::numeric_limits<int>::max(), fn);
}

}  // namespace thali
