#include "base/table_printer.h"

#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace thali {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  THALI_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  THALI_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c];
      for (size_t p = cells[c].size(); p < width[c]; ++p) os << ' ';
      os << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  size_t total = 1;
  for (size_t w : width) total += w + 3;

  os << title_ << "\n";
  os << std::string(total, '-') << "\n";
  os << render_row(header_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) os << render_row(row);
  os << std::string(total, '-') << "\n";
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace thali
