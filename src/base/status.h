#ifndef THALI_BASE_STATUS_H_
#define THALI_BASE_STATUS_H_

#include <string>
#include <utility>

namespace thali {

// Error categories used across the library. Mirrors the Arrow/RocksDB
// convention of returning a Status instead of throwing across API
// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
};

// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// A Status holds either success (OK) or an error code plus message. It is
// cheap to copy in the OK case and is the only error channel the public
// API uses; exceptions never cross module boundaries.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define THALI_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::thali::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace thali

#endif  // THALI_BASE_STATUS_H_
