#ifndef THALI_BASE_THREAD_POOL_H_
#define THALI_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace thali {

// A persistent pool of worker threads executing submitted closures.
// Construction spawns the workers; destruction drains the queue and
// joins. Library code normally goes through ParallelFor below rather
// than scheduling onto a pool directly.
class ThreadPool {
 public:
  // Spawns `num_workers` threads (0 is allowed: Schedule then runs the
  // closure inline on the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` for execution on a worker thread. `fn` must not block
  // waiting for other pool tasks (ParallelFor handles nesting by running
  // nested regions inline).
  void Schedule(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Maximum number of concurrent strands ParallelFor may use (>= 1). The
// first call sizes the global pool from the THALI_NUM_THREADS environment
// variable, defaulting to std::thread::hardware_concurrency().
int MaxParallelism();

// Replaces the global pool with one of parallelism `n` (clamped to
// >= 1). Intended for tests and benchmarks; must not be called while a
// ParallelFor is in flight.
void SetMaxParallelism(int n);

// Chunked parallel-for. Splits [begin, end) into at most
// min(MaxParallelism(), max_strands) contiguous chunks of roughly equal
// size (never creating more chunks than ceil(range / grain)) and invokes
// fn(chunk_begin, chunk_end, tid) with a distinct tid in
// [0, max_strands) per chunk. The calling thread executes chunk 0;
// remaining chunks run on the global pool.
//
// Runs fn(begin, end, 0) inline — bit-identical to a plain loop — when
// the range fits a single chunk, parallelism is 1, or the caller is
// already inside a ParallelFor (nested regions never re-parallelize).
// Exceptions thrown by fn are captured and the first one is rethrown on
// the calling thread after all chunks finish.
//
// Determinism contract: chunks are disjoint, so any fn that (a) writes
// only to locations derived from indices in its chunk and (b) preserves
// the sequential iteration order inside the chunk produces bitwise
// identical results for every parallelism level, 1 included.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int)>& fn);

// ParallelFor with an explicit strand cap, for callers whose per-strand
// resources (e.g. per-thread workspaces) were sized below the current
// pool parallelism.
void ParallelForBounded(int64_t begin, int64_t end, int64_t grain,
                        int max_strands,
                        const std::function<void(int64_t, int64_t, int)>& fn);

}  // namespace thali

#endif  // THALI_BASE_THREAD_POOL_H_
