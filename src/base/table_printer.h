#ifndef THALI_BASE_TABLE_PRINTER_H_
#define THALI_BASE_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace thali {

// Renders paper-style ASCII tables: the bench harnesses use this to print
// rows in the same layout as the paper's Tables I-IV so the reproduction
// can be eyeballed against the original.
class TablePrinter {
 public:
  // `title` is printed above the table (e.g. "TABLE I — Average Precision
  // for each class").
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  // Sets the column headers. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Appends one row; the number of cells must match the header width.
  void AddRow(std::vector<std::string> row);

  // Renders the full table.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace thali

#endif  // THALI_BASE_TABLE_PRINTER_H_
