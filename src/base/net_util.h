#ifndef THALI_BASE_NET_UTIL_H_
#define THALI_BASE_NET_UTIL_H_

#include <cstddef>
#include <cstdint>

#include "base/statusor.h"

namespace thali {

// Thin Status-returning wrappers over the POSIX socket calls the network
// front-end (src/net) uses. Loopback-only by design: the server binds
// 127.0.0.1, never a routable interface — the front-end is an in-host
// edge (a reverse proxy terminates the real network), so these helpers
// refuse to listen anywhere else.

// Creates a non-blocking TCP listen socket bound to 127.0.0.1:`port`
// (port 0 picks an ephemeral port; read it back with LocalPort). Returns
// the fd.
StatusOr<int> ListenLoopback(uint16_t port, int backlog = 64);

// The port a bound socket actually listens on.
StatusOr<uint16_t> LocalPort(int fd);

// Blocking connect to 127.0.0.1:`port`. Returns the connected fd (in
// blocking mode — clients use blocking I/O, only the server event loop
// is non-blocking).
StatusOr<int> ConnectLoopback(uint16_t port);

// Accepts one pending connection on non-blocking `listen_fd` and puts it
// in non-blocking mode. Returns the fd, or kUnavailable when no
// connection is pending (EAGAIN) — the event-loop retry signal.
StatusOr<int> AcceptConnection(int listen_fd);

// Switches O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool nonblocking);

// Blocking loop until all `len` bytes are sent (client-side helper).
Status SendAll(int fd, const void* data, size_t len);

// Blocking loop until all `len` bytes are received. kUnavailable on a
// clean peer close mid-message.
Status RecvAll(int fd, void* data, size_t len);

// close(fd), ignoring EINTR; no-op for fd < 0.
void CloseFd(int fd);

}  // namespace thali

#endif  // THALI_BASE_NET_UTIL_H_
