#include "base/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace thali {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

StatusOr<int> ParseInt(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty int");
  char* end = nullptr;
  long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an int: '" + buf + "'");
  }
  return static_cast<int>(v);
}

StatusOr<float> ParseFloat(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty float");
  char* end = nullptr;
  float v = std::strtof(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a float: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? n : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace thali
