#include "base/fastpre.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace thali {

namespace {
std::atomic<int> g_fastpre_override{-1};
}  // namespace

bool FastPreEnabled() {
  const int o = g_fastpre_override.load(std::memory_order_acquire);
  if (o >= 0) return o == 1;
  return !internal::NoFastPreEnvValueDisables(
      std::getenv("THALI_NO_FASTPRE"));
}

namespace internal {

void SetFastPreForTesting(int enabled) {
  g_fastpre_override.store(enabled < 0 ? -1 : (enabled != 0),
                           std::memory_order_release);
}

bool NoFastPreEnvValueDisables(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace internal

}  // namespace thali
