#include "base/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/string_util.h"

namespace thali {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

}  // namespace

StatusOr<int> ListenLoopback(uint16_t port, int backlog) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind");
  }
  if (listen(fd, backlog) != 0) {
    CloseFd(fd);
    return Errno("listen");
  }
  Status nb = SetNonBlocking(fd, true);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<int> ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    CloseFd(fd);
    return Errno("connect");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<int> AcceptConnection(int listen_fd) {
  int fd;
  do {
    fd = accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return Errno("accept");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Status nb = SetNonBlocking(fd, true);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && fcntl(fd, F_SETFL, want) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::Unavailable("connection closed by peer");
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace thali
