#ifndef THALI_BASE_CPU_FEATURES_H_
#define THALI_BASE_CPU_FEATURES_H_

#include <string>

namespace thali {

// SIMD capabilities of the CPU the process is running on, probed once at
// first use. Release binaries are compiled for baseline x86-64 (see the
// THALI_NATIVE CMake option), so kernel code that wants wider vectors
// must check these at runtime and dispatch — never assume compile-time
// availability.
struct CpuFeatures {
  bool sse4_2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

// The host CPU's features, detected once and cached (thread-safe).
const CpuFeatures& CpuInfo();

// Space-separated list of the detected features ("avx2 fma ..."), or
// "baseline" when none of them are present. For logs and summaries.
std::string CpuFeatureString();

}  // namespace thali

#endif  // THALI_BASE_CPU_FEATURES_H_
