#include "base/cpu_features.h"

namespace thali {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads CPUID (and XGETBV for the AVX family,
  // so OS save-state support is included in the answer).
  f.sse4_2 = __builtin_cpu_supports("sse4.2");
  f.avx = __builtin_cpu_supports("avx");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

}  // namespace

const CpuFeatures& CpuInfo() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string CpuFeatureString() {
  const CpuFeatures& f = CpuInfo();
  std::string s;
  const auto add = [&s](bool has, const char* name) {
    if (!has) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(f.sse4_2, "sse4.2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  return s.empty() ? "baseline" : s;
}

}  // namespace thali
