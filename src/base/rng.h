#ifndef THALI_BASE_RNG_H_
#define THALI_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace thali {

// Deterministic pseudo-random number generator (xoshiro256**) used across
// the library. All dataset generation, weight initialization and
// augmentation derive from explicit Rng seeds so every experiment is
// bit-reproducible; library code never reads the wall clock.
class Rng {
 public:
  // Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x5eedf00dULL);

  // Returns the next 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextU64Below(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  // Uniform float in [0, 1).
  float NextFloat();

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  // Standard normal via Box-Muller.
  float NextGaussian();

  // Gaussian with the given mean and stddev.
  float NextGaussian(float mean, float stddev);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBool(float p = 0.5f);

  // Samples an index in [0, weights.size()) proportional to weights.
  // Non-positive weights are treated as zero; if all weights are zero the
  // result is uniform.
  int NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextU64Below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator (for per-image / per-worker
  // streams) without perturbing this generator's future output more than
  // one draw.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  float spare_gaussian_ = 0.0f;
};

}  // namespace thali

#endif  // THALI_BASE_RNG_H_
