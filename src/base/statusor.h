#ifndef THALI_BASE_STATUSOR_H_
#define THALI_BASE_STATUSOR_H_

#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"

namespace thali {

// StatusOr<T> holds either a value of type T or a non-OK Status explaining
// why the value is absent. Accessing the value of a non-OK StatusOr is a
// CHECK failure (programmer error), never undefined behaviour.
template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    THALI_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  // Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    THALI_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    THALI_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    THALI_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a StatusOr expression to `lhs`, or returns its
// status from the enclosing function on error.
#define THALI_ASSIGN_OR_RETURN(lhs, expr)                \
  THALI_ASSIGN_OR_RETURN_IMPL_(                          \
      THALI_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define THALI_STATUS_CONCAT_INNER_(a, b) a##b
#define THALI_STATUS_CONCAT_(a, b) THALI_STATUS_CONCAT_INNER_(a, b)

#define THALI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace thali

#endif  // THALI_BASE_STATUSOR_H_
