#ifndef THALI_BASE_LOGGING_H_
#define THALI_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace thali {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Minimum severity that is actually printed. Defaults to kInfo; benches and
// tests may raise it to quiet the library.
LogSeverity MinLogLevel();
void SetMinLogLevel(LogSeverity severity);

namespace internal {

// Accumulates one log line and emits it (with file:line prefix) on
// destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define THALI_LOG(severity)                                        \
  ::thali::internal::LogMessage(__FILE__, __LINE__,                \
                                ::thali::LogSeverity::k##severity) \
      .stream()

// CHECK-style assertions for programmer errors (invariant violations). They
// are active in all build types: a detector silently computing garbage is
// worse than a crash.
#define THALI_CHECK(cond)                                             \
  (cond) ? (void)0                                                    \
         : ::thali::internal::CheckFailVoidify() &                    \
               ::thali::internal::LogMessage(                         \
                   __FILE__, __LINE__, ::thali::LogSeverity::kFatal)  \
                   .stream()                                          \
               << "Check failed: " #cond " "

#define THALI_CHECK_EQ(a, b) THALI_CHECK((a) == (b))
#define THALI_CHECK_NE(a, b) THALI_CHECK((a) != (b))
#define THALI_CHECK_LT(a, b) THALI_CHECK((a) < (b))
#define THALI_CHECK_LE(a, b) THALI_CHECK((a) <= (b))
#define THALI_CHECK_GT(a, b) THALI_CHECK((a) > (b))
#define THALI_CHECK_GE(a, b) THALI_CHECK((a) >= (b))

// Checks `expr` yields an OK thali::Status.
#define THALI_CHECK_OK(expr)                                   \
  do {                                                         \
    const ::thali::Status _st = (expr);                        \
    THALI_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

namespace internal {
// Allows THALI_CHECK to be used in expression position with operator&.
struct CheckFailVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace internal

}  // namespace thali

#endif  // THALI_BASE_LOGGING_H_
