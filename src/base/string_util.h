#ifndef THALI_BASE_STRING_UTIL_H_
#define THALI_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace thali {

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Splits `s` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

// Strict numeric parsing: the whole string must be consumed.
StatusOr<int> ParseInt(std::string_view s);
StatusOr<float> ParseFloat(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace thali

#endif  // THALI_BASE_STRING_UTIL_H_
