#ifndef THALI_BASE_FILE_UTIL_H_
#define THALI_BASE_FILE_UTIL_H_

#include <string>
#include <vector>

#include "base/statusor.h"

namespace thali {

// Reads the whole file into a string (binary-safe).
StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

// Reads a text file and returns its lines (without trailing newlines).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

// True if a file or directory exists at `path`.
bool PathExists(const std::string& path);

// Recursively creates `path` as a directory (like mkdir -p).
Status MakeDirs(const std::string& path);

// Joins two path fragments with exactly one '/'.
std::string JoinPath(std::string_view a, std::string_view b);

}  // namespace thali

#endif  // THALI_BASE_FILE_UTIL_H_
