#include "base/file_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace thali {

namespace fs = std::filesystem;

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  THALI_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      size_t len = i - start;
      if (len > 0 && text[start + len - 1] == '\r') --len;
      lines.emplace_back(text.substr(start, len));
      start = i + 1;
    }
  }
  // A trailing newline creates one empty final entry; drop it.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir -p " + path + ": " + ec.message());
  return Status::OK();
}

std::string JoinPath(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() != '/') out += '/';
  size_t skip = 0;
  while (skip < b.size() && b[skip] == '/') ++skip;
  out += b.substr(skip);
  return out;
}

}  // namespace thali
