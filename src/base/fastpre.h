#ifndef THALI_BASE_FASTPRE_H_
#define THALI_BASE_FASTPRE_H_

namespace thali {

// False when THALI_NO_FASTPRE=1 (or a testing override) disables the
// pre/post-processing fast paths: the table-driven / AVX2 letterbox
// (image/image.h), the logit-space YOLO decode pre-filter
// (nn/yolo_layer.cc) and the bucketed NMS (eval/detection.cc). With the
// knob set every call runs the seed reference implementation, which is
// what the parity tests pin the fast paths against.
//
// Read at call time (not latched): flipping the override mid-process
// switches the very next letterbox/decode/NMS call, which is what the
// equivalence tests rely on.
bool FastPreEnabled();

namespace internal {

// Force the fast pre/post paths on (1) / off (0) or restore the
// THALI_NO_FASTPRE environment default (-1).
void SetFastPreForTesting(int enabled);

// True when the given THALI_NO_FASTPRE value disables the fast paths
// (any non-empty string except "0").
bool NoFastPreEnvValueDisables(const char* value);

}  // namespace internal

}  // namespace thali

#endif  // THALI_BASE_FASTPRE_H_
