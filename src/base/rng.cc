#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace thali {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextU64Below(uint64_t n) {
  THALI_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int Rng::NextInt(int lo, int hi) {
  THALI_CHECK_LE(lo, hi);
  return lo + static_cast<int>(NextU64Below(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

float Rng::NextFloat() {
  // 24 high bits -> [0, 1) float with full mantissa coverage.
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::NextFloat(float lo, float hi) {
  return lo + (hi - lo) * NextFloat();
}

float Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  float u1 = NextFloat();
  float u2 = NextFloat();
  // Avoid log(0).
  if (u1 < 1e-12f) u1 = 1e-12f;
  const float mag = std::sqrt(-2.0f * std::log(u1));
  spare_gaussian_ = mag * std::sin(6.28318530718f * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(6.28318530718f * u2);
}

float Rng::NextGaussian(float mean, float stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(float p) { return NextFloat() < p; }

int Rng::NextWeighted(const std::vector<double>& weights) {
  THALI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0.0) {
    return static_cast<int>(NextU64Below(weights.size()));
  }
  double pick = NextFloat() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (pick < w) return static_cast<int>(i);
    pick -= w;
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace thali
