#include "eval/report.h"

#include <algorithm>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "base/table_printer.h"

namespace thali {

std::string RenderClassApTable(const EvalResult& result,
                               const std::vector<std::string>& class_names) {
  THALI_CHECK_EQ(class_names.size(), result.per_class.size());
  TablePrinter table("Average Precision for each class");
  table.SetHeader({"Class", "AP (%)", "truths", "TP", "FP"});
  for (const ClassMetrics& cm : result.per_class) {
    table.AddRow({class_names[static_cast<size_t>(cm.class_id)],
                  StrFormat("%.1f", cm.ap * 100),
                  std::to_string(cm.num_truths),
                  std::to_string(cm.true_positives),
                  std::to_string(cm.false_positives)});
  }
  return table.ToString();
}

std::string RenderSummaryLine(const EvalResult& result) {
  return StrFormat("mAP@0.5 %.2f%%  P %.2f  R %.2f  F1 %.2f",
                   result.map * 100, result.precision, result.recall,
                   result.f1);
}

std::string RenderPrChart(const std::vector<PrPoint>& curve, int width,
                          int height) {
  THALI_CHECK_GT(width, 0);
  THALI_CHECK_GT(height, 0);
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (const PrPoint& p : curve) {
    const int x = std::min(width - 1, static_cast<int>(p.recall * width));
    const int y =
        std::min(height - 1, static_cast<int>((1.0f - p.precision) * height));
    grid[static_cast<size_t>(y)][static_cast<size_t>(x)] = '*';
  }
  std::string out;
  out += "  1.0 +" + std::string(static_cast<size_t>(width), '-') + "+\n";
  for (int y = 0; y < height; ++y) {
    out += (y == height / 2 ? "  P   |" : "      |");
    out += grid[static_cast<size_t>(y)];
    out += "|\n";
  }
  out += "  0.0 +" + std::string(static_cast<size_t>(width), '-') + "+\n";
  out += "      0.0                 recall                 1.0\n";
  return out;
}

std::string EvalResultToCsv(const EvalResult& result,
                            const std::vector<std::string>& class_names) {
  std::string csv = "class,ap,truths,tp,fp\n";
  for (const ClassMetrics& cm : result.per_class) {
    csv += StrFormat("%s,%.6f,%d,%d,%d\n",
                     class_names[static_cast<size_t>(cm.class_id)].c_str(),
                     cm.ap, cm.num_truths, cm.true_positives,
                     cm.false_positives);
  }
  csv += StrFormat("__summary__,%.6f,%d,%d,%d\n", result.map, 0, 0, 0);
  return csv;
}

std::string PrCurvesToCsv(const EvalResult& result,
                          const std::vector<std::string>& class_names) {
  std::string csv = "class,recall,precision,confidence\n";
  for (const ClassMetrics& cm : result.per_class) {
    const std::string& name = class_names[static_cast<size_t>(cm.class_id)];
    for (const PrPoint& p : cm.pr_curve) {
      csv += StrFormat("%s,%.5f,%.5f,%.5f\n", name.c_str(), p.recall,
                       p.precision, p.confidence);
    }
  }
  return csv;
}

Status WriteMarkdownReport(const EvalResult& result,
                           const std::vector<std::string>& class_names,
                           const std::string& title, const std::string& path) {
  std::string md = "# " + title + "\n\n";
  md += RenderSummaryLine(result) + "\n\n";
  md += "| Class | AP (%) | truths | TP | FP |\n";
  md += "|---|---|---|---|---|\n";
  for (const ClassMetrics& cm : result.per_class) {
    md += StrFormat("| %s | %.1f | %d | %d | %d |\n",
                    class_names[static_cast<size_t>(cm.class_id)].c_str(),
                    cm.ap * 100, cm.num_truths, cm.true_positives,
                    cm.false_positives);
  }
  md += "\n## PR curves (CSV)\n\n```\n";
  md += PrCurvesToCsv(result, class_names);
  md += "```\n";
  return WriteStringToFile(path, md);
}

}  // namespace thali
