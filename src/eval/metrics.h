#ifndef THALI_EVAL_METRICS_H_
#define THALI_EVAL_METRICS_H_

#include <vector>

#include "eval/detection.h"

namespace thali {

// Detection metrics following Padilla, Netto & da Silva, "A survey on
// performance metrics for object-detection algorithms" (IWSSIP 2020) — the
// exact evaluation code the paper uses. A detection is a true positive
// when its IoU with an unmatched same-class ground truth is >= the IoU
// threshold; each ground truth can be matched at most once, in order of
// descending detection confidence (greedy matching).

enum class ApInterpolation {
  kEveryPoint,   // all-point interpolation (the paper's headline metric)
  kElevenPoint,  // PASCAL VOC 2007 11-point interpolation
};

// One precision/recall point of a PR curve, tagged with the confidence of
// the detection that produced it.
struct PrPoint {
  float recall = 0.0f;
  float precision = 0.0f;
  float confidence = 0.0f;
};

// Per-class evaluation result.
struct ClassMetrics {
  int class_id = -1;
  float ap = 0.0f;          // average precision at the IoU threshold
  int num_truths = 0;       // ground truths of this class
  int num_detections = 0;   // detections of this class
  int true_positives = 0;   // TP count over the full detection list
  int false_positives = 0;
  std::vector<PrPoint> pr_curve;  // cumulative PR points (Fig. 7 series)
};

// Aggregate evaluation result across classes.
struct EvalResult {
  std::vector<ClassMetrics> per_class;
  float map = 0.0f;        // mean AP over classes that have ground truths
  float precision = 0.0f;  // micro precision at the confidence threshold
  float recall = 0.0f;     // micro recall at the confidence threshold
  float f1 = 0.0f;         // harmonic mean of the above
};

// Evaluates detections against ground truths across all images.
//
// `num_classes` fixes the class universe (classes with no truths get
// AP = 0 but are excluded from mAP, matching Padilla's tool).
// `iou_threshold` is the TP criterion (the paper uses 0.5).
// `conf_threshold` only affects the P/R/F1 summary numbers (the paper's
// F1 column, Darknet reports these at 0.25); AP integrates over all
// confidences regardless.
EvalResult Evaluate(const std::vector<ImageEval>& images, int num_classes,
                    float iou_threshold = 0.5f, float conf_threshold = 0.25f,
                    ApInterpolation interp = ApInterpolation::kEveryPoint);

// Computes AP from a PR curve using the chosen interpolation. Exposed for
// unit tests pinning the hand-worked examples in the Padilla paper.
float AveragePrecision(const std::vector<PrPoint>& curve,
                       ApInterpolation interp);

// COCO-style IoU sweep: mAP at each threshold in [0.5, 0.95] step 0.05,
// plus their mean. The paper reports mAP@0.5 only; the sweep is the
// modern companion metric and a sensitive localization-quality probe.
struct IouSweepResult {
  std::vector<float> thresholds;  // 0.50, 0.55, ..., 0.95
  std::vector<float> map_at;      // mAP at each threshold
  float map_5095 = 0.0f;          // mean over the sweep
  float map_50 = 0.0f;
  float map_75 = 0.0f;
};
IouSweepResult EvaluateIouSweep(const std::vector<ImageEval>& images,
                                int num_classes);

// Confusion matrix over single-dish evaluation images (the paper's
// Fig. 5): rows are true classes, columns are predicted classes, plus one
// extra "None" column for images where the detector predicted nothing
// above threshold. Row `num_classes` ("None" as truth) exists for layout
// parity with the figure but is structurally empty — a labelled image
// always has a true class (the greyed-out row in the paper).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  // Records one single-dish image: the true class and the detector's
  // highest-confidence prediction (-1 when the detector found nothing).
  void Add(int true_class, int predicted_class);

  int count(int true_class, int predicted_class) const;
  int num_classes() const { return num_classes_; }

  // Row-normalized accuracy of class i (diagonal / row sum).
  float RowAccuracy(int true_class) const;

  // Total fraction of images on the diagonal.
  float OverallAccuracy() const;

  // Renders the matrix with class names (last column = None).
  std::string ToString(const std::vector<std::string>& class_names) const;

 private:
  int num_classes_;
  std::vector<int> cells_;  // (num_classes+1) x (num_classes+1)
};

}  // namespace thali

#endif  // THALI_EVAL_METRICS_H_
