#ifndef THALI_EVAL_DETECTION_H_
#define THALI_EVAL_DETECTION_H_

#include <string>
#include <vector>

#include "eval/box.h"

namespace thali {

// One predicted object: a box, a class id, and a confidence score
// (objectness x class probability, as YOLO reports it).
struct Detection {
  Box box;
  int class_id = -1;
  float confidence = 0.0f;

  std::string ToString() const;
};

// One ground-truth object (a labelled dish).
struct GroundTruth {
  Box box;
  int class_id = -1;
};

// All predictions/labels for one evaluation image, keyed by an image id so
// the matcher never pairs detections with another image's truths.
struct ImageEval {
  int image_id = 0;
  std::vector<Detection> detections;
  std::vector<GroundTruth> truths;
};

// Non-maximum suppression: sorts by confidence descending and greedily
// suppresses same-class boxes whose IoU with a kept box exceeds
// `iou_threshold`. Returns the surviving detections, still sorted.
//
// Dispatches between the seed all-pairs implementation and a fast
// variant (cached areas, per-class index buckets, alive-list compaction)
// that returns the exact same kept set; THALI_NO_FASTPRE=1 (or the
// base/fastpre.h testing override) forces the reference.
std::vector<Detection> Nms(std::vector<Detection> dets, float iou_threshold);

// Class-agnostic variant (suppresses across classes); not used by the
// paper pipeline but exposed for the baseline detector.
std::vector<Detection> NmsClassAgnostic(std::vector<Detection> dets,
                                        float iou_threshold);

namespace internal {

// Direct entry points to both NMS implementations, bypassing the
// FastPreEnabled dispatch — the equivalence property test compares them
// on the same input.
std::vector<Detection> NmsReference(std::vector<Detection> dets,
                                    float iou_threshold, bool class_aware);
std::vector<Detection> NmsFast(std::vector<Detection> dets,
                               float iou_threshold, bool class_aware);

}  // namespace internal

}  // namespace thali

#endif  // THALI_EVAL_DETECTION_H_
