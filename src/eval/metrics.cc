#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.h"
#include "base/string_util.h"
#include "base/thread_pool.h"

namespace thali {

namespace {

// A detection flattened across images, remembering its source image.
struct FlatDet {
  int image_index;
  Detection det;
};

}  // namespace

float AveragePrecision(const std::vector<PrPoint>& curve,
                       ApInterpolation interp) {
  if (curve.empty()) return 0.0f;

  if (interp == ApInterpolation::kElevenPoint) {
    // Max precision at recall >= r for r in {0, 0.1, ..., 1.0}.
    float sum = 0.0f;
    for (int i = 0; i <= 10; ++i) {
      const float r = i / 10.0f;
      float pmax = 0.0f;
      for (const PrPoint& p : curve) {
        if (p.recall >= r - 1e-9f) pmax = std::max(pmax, p.precision);
      }
      sum += pmax;
    }
    return sum / 11.0f;
  }

  // Every-point interpolation: area under the precision envelope.
  // Build recall/precision arrays with sentinels, take the running max of
  // precision from the right, and integrate over recall steps.
  std::vector<float> rec{0.0f};
  std::vector<float> prec{0.0f};
  for (const PrPoint& p : curve) {
    rec.push_back(p.recall);
    prec.push_back(p.precision);
  }
  rec.push_back(1.0f);
  prec.push_back(0.0f);

  for (size_t i = prec.size() - 1; i > 0; --i) {
    prec[i - 1] = std::max(prec[i - 1], prec[i]);
  }
  float ap = 0.0f;
  for (size_t i = 1; i < rec.size(); ++i) {
    if (rec[i] > rec[i - 1]) ap += (rec[i] - rec[i - 1]) * prec[i];
  }
  return ap;
}

EvalResult Evaluate(const std::vector<ImageEval>& images, int num_classes,
                    float iou_threshold, float conf_threshold,
                    ApInterpolation interp) {
  THALI_CHECK_GT(num_classes, 0);
  EvalResult result;
  result.per_class.resize(num_classes);

  // Micro P/R/F1 at the confidence threshold (computed alongside AP using
  // the same greedy matching, restricted to detections above threshold).
  // Classes are scored independently and in parallel — each strand fills
  // its own per_class slots and per-class counter entries; the reductions
  // below run sequentially in class order, so results are deterministic
  // at any parallelism level.
  std::vector<int> tp_at_conf_per_class(static_cast<size_t>(num_classes), 0);
  std::vector<int> fp_at_conf_per_class(static_cast<size_t>(num_classes), 0);

  ParallelFor(0, num_classes, 1, [&](int64_t c0, int64_t c1, int) {
  for (int cls = static_cast<int>(c0); cls < static_cast<int>(c1); ++cls) {
    ClassMetrics& cm = result.per_class[cls];
    cm.class_id = cls;

    // Gather this class's detections (all images) and count truths.
    std::vector<FlatDet> dets;
    int total_truths = 0;
    for (size_t i = 0; i < images.size(); ++i) {
      for (const Detection& d : images[i].detections) {
        if (d.class_id == cls) dets.push_back({static_cast<int>(i), d});
      }
      for (const GroundTruth& g : images[i].truths) {
        if (g.class_id == cls) ++total_truths;
      }
    }
    cm.num_truths = total_truths;
    cm.num_detections = static_cast<int>(dets.size());

    std::stable_sort(dets.begin(), dets.end(),
                     [](const FlatDet& a, const FlatDet& b) {
                       return a.det.confidence > b.det.confidence;
                     });

    // Greedy matching: per image, track which truths are already taken.
    std::vector<std::vector<bool>> taken(images.size());
    for (size_t i = 0; i < images.size(); ++i) {
      taken[i].assign(images[i].truths.size(), false);
    }

    int tp = 0, fp = 0;
    int tp_at_conf = 0, fp_at_conf = 0;
    for (const FlatDet& fd : dets) {
      const auto& truths = images[fd.image_index].truths;
      float best_iou = 0.0f;
      int best_j = -1;
      for (size_t j = 0; j < truths.size(); ++j) {
        if (truths[j].class_id != cls) continue;
        const float iou = Iou(fd.det.box, truths[j].box);
        if (iou > best_iou) {
          best_iou = iou;
          best_j = static_cast<int>(j);
        }
      }
      bool is_tp = false;
      if (best_j >= 0 && best_iou >= iou_threshold &&
          !taken[fd.image_index][best_j]) {
        taken[fd.image_index][best_j] = true;
        is_tp = true;
      }
      if (is_tp) {
        ++tp;
      } else {
        ++fp;
      }
      if (fd.det.confidence >= conf_threshold) {
        if (is_tp) {
          ++tp_at_conf;
        } else {
          ++fp_at_conf;
        }
      }
      PrPoint p;
      p.confidence = fd.det.confidence;
      p.recall = total_truths > 0
                     ? static_cast<float>(tp) / total_truths
                     : 0.0f;
      p.precision = static_cast<float>(tp) / (tp + fp);
      cm.pr_curve.push_back(p);
    }

    cm.true_positives = tp;
    cm.false_positives = fp;
    cm.ap = total_truths > 0 ? AveragePrecision(cm.pr_curve, interp) : 0.0f;

    tp_at_conf_per_class[static_cast<size_t>(cls)] = tp_at_conf;
    fp_at_conf_per_class[static_cast<size_t>(cls)] = fp_at_conf;
  }
  });

  // Sequential reductions in class order.
  int micro_tp = 0, micro_fp = 0, micro_fn = 0;
  int classes_with_truths = 0;
  double ap_sum = 0.0;
  for (int cls = 0; cls < num_classes; ++cls) {
    const ClassMetrics& cm = result.per_class[cls];
    micro_tp += tp_at_conf_per_class[static_cast<size_t>(cls)];
    micro_fp += fp_at_conf_per_class[static_cast<size_t>(cls)];
    micro_fn += cm.num_truths - tp_at_conf_per_class[static_cast<size_t>(cls)];
    if (cm.num_truths > 0) {
      ++classes_with_truths;
      ap_sum += cm.ap;
    }
  }

  result.map = classes_with_truths > 0
                   ? static_cast<float>(ap_sum / classes_with_truths)
                   : 0.0f;
  result.precision = (micro_tp + micro_fp) > 0
                         ? static_cast<float>(micro_tp) / (micro_tp + micro_fp)
                         : 0.0f;
  result.recall = (micro_tp + micro_fn) > 0
                      ? static_cast<float>(micro_tp) / (micro_tp + micro_fn)
                      : 0.0f;
  result.f1 = (result.precision + result.recall) > 0
                  ? 2 * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0f;
  return result;
}

IouSweepResult EvaluateIouSweep(const std::vector<ImageEval>& images,
                                int num_classes) {
  IouSweepResult out;
  double total = 0.0;
  for (int i = 0; i <= 9; ++i) {
    const float thresh = 0.5f + 0.05f * i;
    const EvalResult r = Evaluate(images, num_classes, thresh);
    out.thresholds.push_back(thresh);
    out.map_at.push_back(r.map);
    total += r.map;
    if (i == 0) out.map_50 = r.map;
    if (i == 5) out.map_75 = r.map;
  }
  out.map_5095 = static_cast<float>(total / 10.0);
  return out;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<size_t>(num_classes + 1) * (num_classes + 1), 0) {
  THALI_CHECK_GT(num_classes, 0);
}

void ConfusionMatrix::Add(int true_class, int predicted_class) {
  THALI_CHECK_GE(true_class, 0);
  THALI_CHECK_LT(true_class, num_classes_);
  // predicted -1 => "None" column.
  const int col = predicted_class < 0 ? num_classes_ : predicted_class;
  THALI_CHECK_LE(col, num_classes_);
  ++cells_[static_cast<size_t>(true_class) * (num_classes_ + 1) + col];
}

int ConfusionMatrix::count(int true_class, int predicted_class) const {
  const int col = predicted_class < 0 ? num_classes_ : predicted_class;
  return cells_[static_cast<size_t>(true_class) * (num_classes_ + 1) + col];
}

float ConfusionMatrix::RowAccuracy(int true_class) const {
  int row_sum = 0;
  for (int c = 0; c <= num_classes_; ++c) row_sum += count(true_class, c);
  if (row_sum == 0) return 0.0f;
  return static_cast<float>(count(true_class, true_class)) / row_sum;
}

float ConfusionMatrix::OverallAccuracy() const {
  int diag = 0, total = 0;
  for (int r = 0; r < num_classes_; ++r) {
    for (int c = 0; c <= num_classes_; ++c) total += count(r, c);
    diag += count(r, r);
  }
  if (total == 0) return 0.0f;
  return static_cast<float>(diag) / total;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  THALI_CHECK_EQ(static_cast<int>(class_names.size()), num_classes_);
  // Column width driven by the longest name (abbreviated to 12 chars).
  auto abbrev = [](const std::string& s) {
    return s.size() > 12 ? s.substr(0, 12) : s;
  };
  std::ostringstream os;
  os << StrFormat("%-14s", "true\\pred");
  for (int c = 0; c < num_classes_; ++c) {
    os << StrFormat(" %-12s", abbrev(class_names[c]).c_str());
  }
  os << StrFormat(" %-12s", "None") << "\n";
  for (int r = 0; r < num_classes_; ++r) {
    os << StrFormat("%-14s", abbrev(class_names[r]).c_str());
    for (int c = 0; c <= num_classes_; ++c) {
      os << StrFormat(" %-12d", count(r, c));
    }
    os << "\n";
  }
  os << StrFormat("%-14s", "None") ;
  for (int c = 0; c <= num_classes_; ++c) os << StrFormat(" %-12s", "-");
  os << "  (greyed out: a labelled image always has a true class)\n";
  return os.str();
}

}  // namespace thali
