#ifndef THALI_EVAL_REPORT_H_
#define THALI_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "eval/metrics.h"

namespace thali {

// Textual reporting for evaluation results: the rendering layer shared by
// the bench harnesses, the CLI and the examples, so every surface prints
// the paper-style artifacts identically.

// Per-class AP table in the layout of the paper's Table I.
std::string RenderClassApTable(const EvalResult& result,
                               const std::vector<std::string>& class_names);

// One-line summary: "mAP@0.5 91.76%  P 0.91  R 0.89  F1 0.90".
std::string RenderSummaryLine(const EvalResult& result);

// ASCII precision-recall chart (the Fig. 7 panel for one class).
// `width`/`height` are the plot body size in characters.
std::string RenderPrChart(const std::vector<PrPoint>& curve, int width = 50,
                          int height = 10);

// CSV serializations for external plotting.
std::string EvalResultToCsv(const EvalResult& result,
                            const std::vector<std::string>& class_names);
std::string PrCurvesToCsv(const EvalResult& result,
                          const std::vector<std::string>& class_names);

// Writes a complete markdown evaluation report (summary, per-class table,
// PR data) to `path`.
Status WriteMarkdownReport(const EvalResult& result,
                           const std::vector<std::string>& class_names,
                           const std::string& title, const std::string& path);

}  // namespace thali

#endif  // THALI_EVAL_REPORT_H_
