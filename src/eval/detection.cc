#include "eval/detection.h"

#include <algorithm>
#include <utility>

#include "base/fastpre.h"
#include "base/string_util.h"

namespace thali {

std::string Detection::ToString() const {
  return StrFormat("Detection(class=%d conf=%.3f %s)", class_id, confidence,
                   box.ToString().c_str());
}

namespace {

// Matches box.cc's kEps: the fast path reproduces Iou's arithmetic with
// cached corners/areas, so the degenerate-union guard must be the same
// constant.
constexpr float kIouEps = 1e-9f;

std::vector<Detection> NmsImpl(std::vector<Detection> dets,
                               float iou_threshold, bool class_aware) {
  std::stable_sort(dets.begin(), dets.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
  std::vector<Detection> kept;
  std::vector<bool> suppressed(dets.size(), false);
  for (size_t i = 0; i < dets.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(dets[i]);
    for (size_t j = i + 1; j < dets.size(); ++j) {
      if (suppressed[j]) continue;
      if (class_aware && dets[j].class_id != dets[i].class_id) continue;
      if (Iou(dets[i].box, dets[j].box) > iou_threshold) {
        suppressed[j] = true;
      }
    }
  }
  return kept;
}

// Fast NMS: same greedy algorithm, same kept set (pinned by the property
// test in tests/prepost_test.cc), different bookkeeping:
//
//  - corners and areas are computed once per box, not once per IoU pair;
//  - class-aware runs bucket the sorted indices per class (suppression
//    never crosses classes, so the per-class greedy scans are
//    independent — the reference's `continue` on class mismatch does the
//    same walk with the mismatches inlined);
//  - each bucket compacts its alive list every round (keep the
//    highest-confidence survivor, filter the rest), so total pair work
//    is sum(alive per round) instead of all-pairs — with heavy overlap
//    (the common detector output) that terminates after a few rounds.
//
// The IoU arithmetic mirrors box.cc's Intersection/Union/Iou float for
// float: the intersection is evaluated once and reused where the
// reference calls the pure function twice, which cannot change the value.
struct NmsScratch {
  std::vector<float> left, right, top, bottom, area;
  std::vector<int> bucket, alive, next;
  std::vector<char> kept_mask;
};

void SuppressBucket(float iou_threshold, NmsScratch& s) {
  s.alive = s.bucket;
  while (!s.alive.empty()) {
    const int i = s.alive.front();
    s.kept_mask[static_cast<size_t>(i)] = 1;
    s.next.clear();
    for (size_t b = 1; b < s.alive.size(); ++b) {
      const int j = s.alive[b];
      const float iw =
          std::min(s.right[i], s.right[j]) - std::max(s.left[i], s.left[j]);
      const float ih =
          std::min(s.bottom[i], s.bottom[j]) - std::max(s.top[i], s.top[j]);
      const float inter = (iw <= 0 || ih <= 0) ? 0.0f : iw * ih;
      const float u = s.area[i] + s.area[j] - inter;
      const float iou = u <= kIouEps ? 0.0f : inter / u;
      if (!(iou > iou_threshold)) s.next.push_back(j);
    }
    s.alive.swap(s.next);
  }
}

std::vector<Detection> FastNmsImpl(std::vector<Detection> dets,
                                   float iou_threshold, bool class_aware) {
  std::stable_sort(dets.begin(), dets.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
  const size_t n = dets.size();
  NmsScratch s;
  s.left.resize(n);
  s.right.resize(n);
  s.top.resize(n);
  s.bottom.resize(n);
  s.area.resize(n);
  s.kept_mask.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const Box& b = dets[i].box;
    s.left[i] = b.Left();
    s.right[i] = b.Right();
    s.top[i] = b.Top();
    s.bottom[i] = b.Bottom();
    s.area[i] = b.Area();
  }
  if (class_aware) {
    // Bucket the sorted indices by class, preserving confidence order
    // inside each bucket. Class ids are few (dataset classes), so the
    // linear id scan beats hashing.
    std::vector<int> ids;
    for (size_t i = 0; i < n; ++i) {
      const int c = dets[i].class_id;
      if (std::find(ids.begin(), ids.end(), c) == ids.end()) ids.push_back(c);
    }
    for (const int c : ids) {
      s.bucket.clear();
      for (size_t i = 0; i < n; ++i) {
        if (dets[i].class_id == c) s.bucket.push_back(static_cast<int>(i));
      }
      SuppressBucket(iou_threshold, s);
    }
  } else {
    s.bucket.resize(n);
    for (size_t i = 0; i < n; ++i) s.bucket[i] = static_cast<int>(i);
    SuppressBucket(iou_threshold, s);
  }
  std::vector<Detection> kept;
  for (size_t i = 0; i < n; ++i) {
    if (s.kept_mask[i]) kept.push_back(dets[i]);
  }
  return kept;
}

std::vector<Detection> NmsDispatch(std::vector<Detection> dets,
                                   float iou_threshold, bool class_aware) {
  if (FastPreEnabled()) {
    return FastNmsImpl(std::move(dets), iou_threshold, class_aware);
  }
  return NmsImpl(std::move(dets), iou_threshold, class_aware);
}

}  // namespace

std::vector<Detection> Nms(std::vector<Detection> dets, float iou_threshold) {
  return NmsDispatch(std::move(dets), iou_threshold, /*class_aware=*/true);
}

std::vector<Detection> NmsClassAgnostic(std::vector<Detection> dets,
                                        float iou_threshold) {
  return NmsDispatch(std::move(dets), iou_threshold, /*class_aware=*/false);
}

namespace internal {

std::vector<Detection> NmsReference(std::vector<Detection> dets,
                                    float iou_threshold, bool class_aware) {
  return NmsImpl(std::move(dets), iou_threshold, class_aware);
}

std::vector<Detection> NmsFast(std::vector<Detection> dets,
                               float iou_threshold, bool class_aware) {
  return FastNmsImpl(std::move(dets), iou_threshold, class_aware);
}

}  // namespace internal

}  // namespace thali
