#include "eval/detection.h"

#include <algorithm>

#include "base/string_util.h"

namespace thali {

std::string Detection::ToString() const {
  return StrFormat("Detection(class=%d conf=%.3f %s)", class_id, confidence,
                   box.ToString().c_str());
}

namespace {

std::vector<Detection> NmsImpl(std::vector<Detection> dets,
                               float iou_threshold, bool class_aware) {
  std::stable_sort(dets.begin(), dets.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
  std::vector<Detection> kept;
  std::vector<bool> suppressed(dets.size(), false);
  for (size_t i = 0; i < dets.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(dets[i]);
    for (size_t j = i + 1; j < dets.size(); ++j) {
      if (suppressed[j]) continue;
      if (class_aware && dets[j].class_id != dets[i].class_id) continue;
      if (Iou(dets[i].box, dets[j].box) > iou_threshold) {
        suppressed[j] = true;
      }
    }
  }
  return kept;
}

}  // namespace

std::vector<Detection> Nms(std::vector<Detection> dets, float iou_threshold) {
  return NmsImpl(std::move(dets), iou_threshold, /*class_aware=*/true);
}

std::vector<Detection> NmsClassAgnostic(std::vector<Detection> dets,
                                        float iou_threshold) {
  return NmsImpl(std::move(dets), iou_threshold, /*class_aware=*/false);
}

}  // namespace thali
