#ifndef THALI_EVAL_BOX_H_
#define THALI_EVAL_BOX_H_

#include <string>

namespace thali {

// Axis-aligned bounding box in center form (YOLO's native representation).
// Units are whatever the caller uses consistently — normalized [0,1] image
// fractions in the dataset/labels, network-input fractions inside the YOLO
// head, or pixels in the examples.
struct Box {
  float x = 0.0f;  // center x
  float y = 0.0f;  // center y
  float w = 0.0f;
  float h = 0.0f;

  float Left() const { return x - w / 2; }
  float Right() const { return x + w / 2; }
  float Top() const { return y - h / 2; }
  float Bottom() const { return y + h / 2; }
  float Area() const { return w * h; }

  std::string ToString() const;
};

// Builds a Box from corner coordinates.
Box BoxFromCorners(float left, float top, float right, float bottom);

// Intersection area of a and b (0 when disjoint).
float Intersection(const Box& a, const Box& b);

// Union area (never negative; 0 only for two empty boxes).
float Union(const Box& a, const Box& b);

// Intersection over union in [0,1].
float Iou(const Box& a, const Box& b);

// Generalized IoU (Rezatofighi et al.): IoU - |C \ (A∪B)| / |C|, in (-1,1].
float Giou(const Box& a, const Box& b);

// Distance IoU (Zheng et al.): IoU - ρ²(centers)/c²(enclosing diagonal).
float Diou(const Box& a, const Box& b);

// Complete IoU: DIoU minus the aspect-ratio consistency term αv. This is
// the YOLOv4 bounding-box regression objective.
float Ciou(const Box& a, const Box& b);

// Gradient of CIoU(pred, truth) with respect to the four pred
// coordinates (x, y, w, h), written to grad[0..3]. α is treated as a
// constant per the CIoU paper. Returns the CIoU value.
float CiouGrad(const Box& pred, const Box& truth, float grad[4]);

// IoU computed on width/height only, with both boxes centered at the
// origin; Darknet uses this to pick the best anchor for a ground truth.
float WhIou(float w1, float h1, float w2, float h2);

}  // namespace thali

#endif  // THALI_EVAL_BOX_H_
