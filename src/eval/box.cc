#include "eval/box.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"

namespace thali {

namespace {
constexpr float kEps = 1e-9f;
constexpr float kPi = 3.14159265358979f;
}  // namespace

std::string Box::ToString() const {
  return StrFormat("Box(x=%.4f y=%.4f w=%.4f h=%.4f)", x, y, w, h);
}

Box BoxFromCorners(float left, float top, float right, float bottom) {
  Box b;
  b.x = (left + right) / 2;
  b.y = (top + bottom) / 2;
  b.w = right - left;
  b.h = bottom - top;
  return b;
}

float Intersection(const Box& a, const Box& b) {
  const float iw =
      std::min(a.Right(), b.Right()) - std::max(a.Left(), b.Left());
  const float ih =
      std::min(a.Bottom(), b.Bottom()) - std::max(a.Top(), b.Top());
  if (iw <= 0 || ih <= 0) return 0.0f;
  return iw * ih;
}

float Union(const Box& a, const Box& b) {
  return a.Area() + b.Area() - Intersection(a, b);
}

float Iou(const Box& a, const Box& b) {
  const float u = Union(a, b);
  if (u <= kEps) return 0.0f;
  return Intersection(a, b) / u;
}

float Giou(const Box& a, const Box& b) {
  const float iou = Iou(a, b);
  const float cl = std::min(a.Left(), b.Left());
  const float cr = std::max(a.Right(), b.Right());
  const float ct = std::min(a.Top(), b.Top());
  const float cb = std::max(a.Bottom(), b.Bottom());
  const float c_area = (cr - cl) * (cb - ct);
  if (c_area <= kEps) return iou;
  return iou - (c_area - Union(a, b)) / c_area;
}

float Diou(const Box& a, const Box& b) {
  const float iou = Iou(a, b);
  const float cw = std::max(a.Right(), b.Right()) -
                   std::min(a.Left(), b.Left());
  const float ch = std::max(a.Bottom(), b.Bottom()) -
                   std::min(a.Top(), b.Top());
  const float c2 = cw * cw + ch * ch;
  if (c2 <= kEps) return iou;
  const float rho2 =
      (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
  return iou - rho2 / c2;
}

float Ciou(const Box& a, const Box& b) {
  const float iou = Iou(a, b);
  const float diou = Diou(a, b);
  const float aw = std::max(a.w, kEps);
  const float ah = std::max(a.h, kEps);
  const float bw = std::max(b.w, kEps);
  const float bh = std::max(b.h, kEps);
  const float angle = std::atan(bw / bh) - std::atan(aw / ah);
  const float v = (4.0f / (kPi * kPi)) * angle * angle;
  const float alpha = v / (1.0f - iou + v + kEps);
  return diou - alpha * v;
}

float CiouGrad(const Box& pred, const Box& truth, float grad[4]) {
  // Corner coordinates of both boxes.
  const float pl = pred.Left(), pr = pred.Right();
  const float pt = pred.Top(), pb = pred.Bottom();
  const float tl = truth.Left(), tr = truth.Right();
  const float tt = truth.Top(), tb = truth.Bottom();

  // Intersection geometry and its derivatives wrt pred x,y,w,h.
  const float iw = std::min(pr, tr) - std::max(pl, tl);
  const float ih = std::min(pb, tb) - std::max(pt, tt);
  const float inter = (iw > 0 && ih > 0) ? iw * ih : 0.0f;

  // Indicator terms: does moving the pred edge change the intersection?
  const float dr = (pr < tr) ? 1.0f : 0.0f;  // right edge active
  const float dl = (pl > tl) ? 1.0f : 0.0f;  // left edge active
  const float db = (pb < tb) ? 1.0f : 0.0f;
  const float dt = (pt > tt) ? 1.0f : 0.0f;

  float dI[4] = {0, 0, 0, 0};  // d(inter)/d{x,y,w,h}
  if (inter > 0) {
    dI[0] = ih * (dr - dl);
    dI[1] = iw * (db - dt);
    dI[2] = ih * 0.5f * (dr + dl);
    dI[3] = iw * 0.5f * (db + dt);
  }

  const float area_p = pred.Area();
  const float area_t = truth.Area();
  const float uni = std::max(area_p + area_t - inter, kEps);
  const float iou = inter / uni;

  // dU/dθ = dAp/dθ - dI/dθ.
  const float dAp[4] = {0, 0, pred.h, pred.w};
  float diou_d[4];
  for (int i = 0; i < 4; ++i) {
    const float dU = dAp[i] - dI[i];
    diou_d[i] = (dI[i] * uni - inter * dU) / (uni * uni);
  }

  // Center-distance term rho^2 / c^2.
  const float cw = std::max(pr, tr) - std::min(pl, tl);
  const float ch = std::max(pb, tb) - std::min(pt, tt);
  const float c2 = std::max(cw * cw + ch * ch, kEps);
  const float dx = pred.x - truth.x;
  const float dy = pred.y - truth.y;
  const float rho2 = dx * dx + dy * dy;

  // Enclosing-box derivatives: edge grows only when pred's edge is the
  // outer one.
  const float er = (pr > tr) ? 1.0f : 0.0f;
  const float el = (pl < tl) ? 1.0f : 0.0f;
  const float eb = (pb > tb) ? 1.0f : 0.0f;
  const float et = (pt < tt) ? 1.0f : 0.0f;
  const float dcw[4] = {er - el, 0, 0.5f * (er + el), 0};
  const float dch[4] = {0, eb - et, 0, 0.5f * (eb + et)};

  const float drho[4] = {2 * dx, 2 * dy, 0, 0};
  float ddist[4];
  for (int i = 0; i < 4; ++i) {
    const float dc2 = 2 * cw * dcw[i] + 2 * ch * dch[i];
    ddist[i] = (drho[i] * c2 - rho2 * dc2) / (c2 * c2);
  }

  // Aspect-ratio term alpha * v, with alpha held constant.
  const float pw = std::max(pred.w, kEps);
  const float ph = std::max(pred.h, kEps);
  const float tw = std::max(truth.w, kEps);
  const float th = std::max(truth.h, kEps);
  const float angle = std::atan(tw / th) - std::atan(pw / ph);
  const float v = (4.0f / (kPi * kPi)) * angle * angle;
  const float alpha = v / (1.0f - iou + v + kEps);
  const float denom = pw * pw + ph * ph;
  // dv/dpw = -(8/pi^2) * angle * d(atan(pw/ph))/dpw = -(8/pi^2)*angle*ph/den
  const float dv_dw = -(8.0f / (kPi * kPi)) * angle * ph / denom;
  const float dv_dh = (8.0f / (kPi * kPi)) * angle * pw / denom;

  grad[0] = diou_d[0] - ddist[0];
  grad[1] = diou_d[1] - ddist[1];
  grad[2] = diou_d[2] - ddist[2] - alpha * dv_dw;
  grad[3] = diou_d[3] - ddist[3] - alpha * dv_dh;

  return iou - rho2 / c2 - alpha * v;
}

float WhIou(float w1, float h1, float w2, float h2) {
  const float inter = std::min(w1, w2) * std::min(h1, h2);
  const float uni = w1 * h1 + w2 * h2 - inter;
  if (uni <= kEps) return 0.0f;
  return inter / uni;
}

}  // namespace thali
