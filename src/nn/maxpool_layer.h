#ifndef THALI_NN_MAXPOOL_LAYER_H_
#define THALI_NN_MAXPOOL_LAYER_H_

#include <vector>

#include "nn/layer.h"

namespace thali {

// Max pooling with Darknet geometry: total `padding` (default size-1)
// split as floor(padding/2) before the window origin; out-of-bounds taps
// read as -inf. size=5/9/13 with stride 1 realizes the SPP block.
class MaxPoolLayer : public Layer {
 public:
  struct Options {
    int size = 2;
    int stride = 2;
    int padding = -1;  // -1 -> Darknet default (size - 1)
  };

  explicit MaxPoolLayer(const Options& options) : opts_(options) {
    if (opts_.padding < 0) opts_.padding = opts_.size - 1;
  }

  const char* kind() const override { return "maxpool"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  std::vector<int64_t> argmax_;  // flat input index of each output's max
};

}  // namespace thali

#endif  // THALI_NN_MAXPOOL_LAYER_H_
