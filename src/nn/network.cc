#include "nn/network.h"

#include <algorithm>

#include "base/logging.h"
#include "base/thread_pool.h"

namespace thali {

Network::Network(int width, int height, int channels, int batch)
    : width_(width), height_(height), channels_(channels), batch_(batch) {
  THALI_CHECK_GT(width, 0);
  THALI_CHECK_GT(height, 0);
  THALI_CHECK_GT(channels, 0);
  THALI_CHECK_GT(batch, 0);
}

void Network::Add(std::unique_ptr<Layer> layer) {
  THALI_CHECK(!finalized_) << "Add after Finalize";
  layer->set_index(num_layers());
  layers_.push_back(std::move(layer));
}

Status Network::Finalize() {
  THALI_CHECK(!finalized_);
  if (layers_.empty()) return Status::InvalidArgument("empty network");
  Shape prev = input_shape();
  int64_t max_ws = 0;
  for (auto& layer : layers_) {
    THALI_RETURN_IF_ERROR(layer->Configure(prev, *this));
    prev = layer->output_shape();
    max_ws = std::max(max_ws, layer->WorkspaceSize());
  }
  workspace_floats_ = max_ws;
  workspaces_.resize(static_cast<size_t>(MaxParallelism()));
  for (Tensor& ws : workspaces_) ws.Resize(Shape({max_ws}));
  finalized_ = true;
  return Status::OK();
}

float* Network::workspace(int tid, int64_t required) {
  THALI_CHECK_GE(tid, 0);
  THALI_CHECK_LT(tid, workspace_slots());
  THALI_CHECK_LE(required, workspace_floats_)
      << "layer requests " << required << " workspace floats but Finalize() "
      << "sized " << workspace_floats_;
  return workspaces_[static_cast<size_t>(tid)].data();
}

const Tensor& Network::Forward(const Tensor& input, bool train) {
  THALI_CHECK(finalized_);
  THALI_CHECK(input.shape() == input_shape())
      << "input " << input.shape().ToString() << " vs net "
      << input_shape().ToString();
  const Tensor* x = &input;
  for (auto& layer : layers_) {
    layer->Forward(*x, *this, train);
    x = &layer->output();
  }
  return *x;
}

void Network::Backward(const Tensor& input) {
  THALI_CHECK(finalized_);
  for (int i = num_layers() - 1; i >= 0; --i) {
    const Tensor& in = i == 0 ? input : layers_[i - 1]->output();
    Tensor* in_delta = i == 0 ? nullptr : &layers_[i - 1]->delta();
    layers_[i]->Backward(in, in_delta, *this);
  }
}

void Network::ZeroDeltas() {
  for (auto& layer : layers_) layer->delta().Zero();
}

void Network::ZeroGrads() {
  for (auto& layer : layers_) {
    for (const Param& p : layer->Params()) p.grad->Zero();
  }
}

int Network::ResolveIndex(int ref, int at) const {
  const int idx = ref < 0 ? at + ref : ref;
  THALI_CHECK_GE(idx, 0) << "bad layer reference " << ref << " at " << at;
  THALI_CHECK_LT(idx, num_layers());
  return idx;
}

std::vector<Param> Network::TrainableParams() {
  std::vector<Param> out;
  for (auto& layer : layers_) {
    if (layer->frozen()) continue;
    for (Param& p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Param> Network::AllParams() {
  std::vector<Param> out;
  for (auto& layer : layers_) {
    for (Param& p : layer->Params()) out.push_back(p);
  }
  return out;
}

int64_t Network::NumParameters() const {
  int64_t n = 0;
  for (const auto& layer : layers_) {
    for (const Param& p : const_cast<Layer&>(*layer).Params()) {
      n += p.value->size();
    }
  }
  return n;
}

void Network::FreezeUpTo(int cutoff) {
  for (int i = 0; i < num_layers() && i < cutoff; ++i) {
    layers_[static_cast<size_t>(i)]->set_frozen(true);
  }
}

}  // namespace thali
