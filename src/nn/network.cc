#include "nn/network.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "base/logging.h"
#include "base/thread_pool.h"
#include "tensor/gemm_int8.h"

namespace thali {

namespace {

bool ArenaDisabledByEnv() {
  const char* env = std::getenv("THALI_NO_ARENA");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

Network::Network(int width, int height, int channels, int batch)
    : width_(width), height_(height), channels_(channels), batch_(batch) {
  THALI_CHECK_GT(width, 0);
  THALI_CHECK_GT(height, 0);
  THALI_CHECK_GT(channels, 0);
  THALI_CHECK_GT(batch, 0);
}

void Network::Add(std::unique_ptr<Layer> layer) {
  THALI_CHECK(!finalized_) << "Add after Finalize";
  layer->set_index(num_layers());
  layers_.push_back(std::move(layer));
}

Status Network::Finalize(ExecMode mode) {
  THALI_CHECK(!finalized_);
  if (layers_.empty()) return Status::InvalidArgument("empty network");
  mode_ = mode;
  // Latched here so later SetBatch re-plans keep the same decision even
  // if the environment changes while the process runs.
  arena_disabled_ = ArenaDisabledByEnv();
  fuse_disabled_ = !FusionEnabled();
  int8_enabled_ = mode == ExecMode::kInference && Int8Enabled();
  Shape prev = input_shape();
  for (auto& layer : layers_) {
    layer->set_exec_mode(mode_);
    THALI_RETURN_IF_ERROR(layer->Configure(prev, *this));
    prev = layer->output_shape();
  }
  PlanBuffers();
  // Workspace sizing happens after the plan is compiled: a layer's
  // scratch need depends on its planned conv algorithm (im2col panels
  // vs Winograd transform buffers).
  int64_t max_ws = 0;
  for (auto& layer : layers_) {
    max_ws = std::max(max_ws, layer->WorkspaceSize());
  }
  workspace_floats_ = max_ws;
  workspaces_.resize(static_cast<size_t>(MaxParallelism()));
  for (Tensor& ws : workspaces_) ws.Resize(Shape({max_ws}));
  if (mode_ == ExecMode::kInference) {
    // Pack GEMM weights into microkernel panel layout up front. Layers
    // re-pack lazily if weights change afterwards (loading, BN folding).
    for (auto& layer : layers_) layer->PrepackWeights();
  }
  finalized_ = true;
  return Status::OK();
}

Status Network::SetBatch(int batch) {
  THALI_CHECK(finalized_) << "SetBatch before Finalize";
  THALI_CHECK_GT(batch, 0);
  if (batch == batch_) return Status::OK();
  batch_ = batch;
  Shape prev = input_shape();
  for (auto& layer : layers_) {
    THALI_RETURN_IF_ERROR(layer->Rebatch(prev, *this));
    prev = layer->output_shape();
  }
  // Re-compile the plan first — batch size changes which copy elisions
  // are legal — then re-derive workspace needs under the fresh plan
  // (grow-only; per-item scratch is batch-independent for every
  // current layer, but a re-plan could in principle change algorithms).
  PlanBuffers();
  int64_t max_ws = 0;
  for (auto& layer : layers_) {
    max_ws = std::max(max_ws, layer->WorkspaceSize());
  }
  if (max_ws > workspace_floats_) {
    workspace_floats_ = max_ws;
    for (Tensor& ws : workspaces_) ws.Resize(Shape({max_ws}));
  }
  return Status::OK();
}

Status Network::ReplanInference() {
  THALI_CHECK(finalized_) << "ReplanInference before Finalize";
  if (mode_ != ExecMode::kInference) return Status::OK();
  PlanBuffers();
  // Grow-only workspace re-derivation, like SetBatch: a freshly chained
  // plan can change per-layer scratch needs (e.g. a conv that now skips
  // its fp32 im2col panel never needs MORE, but keep the general form).
  int64_t max_ws = 0;
  for (auto& layer : layers_) {
    max_ws = std::max(max_ws, layer->WorkspaceSize());
  }
  if (max_ws > workspace_floats_) {
    workspace_floats_ = max_ws;
    for (Tensor& ws : workspaces_) ws.Resize(Shape({max_ws}));
  }
  return Status::OK();
}

void Network::PlanBuffers() {
  const bool fuse = mode_ == ExecMode::kInference && !fuse_disabled_;
  const bool use_arena = mode_ == ExecMode::kInference && !arena_disabled_;
  eplan_ = CompileExecPlan(*this, fuse, use_arena, fuse && int8_enabled_);
  for (int i = 0; i < num_layers(); ++i) {
    layers_[static_cast<size_t>(i)]->set_plan(
        eplan_.layers[static_cast<size_t>(i)]);
  }
  // u8 chain storage: one block per alias-group root the dtype pass
  // marked kU8 (mirrors the fp32 arena's alias forest; empty without
  // chains), then the resolved per-layer base pointers. Root blocks are
  // allocated before any pointer resolves into them.
  qbufs_.clear();
  qbufs_.resize(static_cast<size_t>(num_layers()));
  qact_.assign(static_cast<size_t>(num_layers()), nullptr);
  for (int i = 0; i < num_layers(); ++i) {
    const LayerPlan& lp = eplan_.layers[static_cast<size_t>(i)];
    if (lp.out_dtype == DType::kU8 && lp.quant_root == i) {
      qbufs_[static_cast<size_t>(i)].Resize(
          DType::kU8, layers_[static_cast<size_t>(i)]->output_shape());
    }
  }
  for (int i = 0; i < num_layers(); ++i) {
    const LayerPlan& lp = eplan_.layers[static_cast<size_t>(i)];
    if (lp.out_dtype == DType::kU8) {
      qact_[static_cast<size_t>(i)] =
          qbufs_[static_cast<size_t>(lp.quant_root)].raw() + lp.quant_offset;
    }
  }
  // Quantized network input when the chain reaches layer 0; Forward (or
  // the detector's fused letterbox-quantize) fills it each call.
  if (eplan_.input_u8) {
    qinput_.Resize(DType::kU8, input_shape());
  } else {
    qinput_.Clear();
  }
  input_prequantized_ = false;
  // Plan-derived layer state (conv int8 workspace sections) recomputes
  // once here instead of per Forward.
  for (auto& layer : layers_) layer->OnPlanUpdated();
  if (mode_ != ExecMode::kInference) return;  // SetShapes owns the buffers
  if (use_arena) {
    // Slots are 16-float (64-byte) aligned relative to the arena base,
    // but vector<float> storage only guarantees 16 bytes — over-allocate
    // and align the base up so BindExternal's cache-line contract holds.
    arena_.Resize(Shape({eplan_.arena.arena_floats + 15}));
    const uintptr_t raw = reinterpret_cast<uintptr_t>(arena_.data());
    float* base = reinterpret_cast<float*>((raw + 63) & ~uintptr_t{63});
    for (int i = 0; i < num_layers(); ++i) {
      const ArenaAssignment& slot =
          eplan_.arena.assignments[static_cast<size_t>(i)];
      Tensor& out = layers_[static_cast<size_t>(i)]->output();
      if (slot.aliased) {
        // Interior view of another layer's block (copy-elided route /
        // adopted concat source / in-place shortcut): arbitrary offset.
        out.BindExternalAliased(base + slot.offset,
                                layers_[static_cast<size_t>(i)]
                                    ->output_shape());
      } else {
        out.BindExternal(base + slot.offset, layers_[static_cast<size_t>(i)]
                                                 ->output_shape());
      }
    }
  } else {
    arena_ = Tensor();
    for (auto& layer : layers_) {
      // THALI_NO_ARENA fallback: per-layer owned outputs, as in training
      // mode (a previously bound output is replaced by owned storage).
      layer->output() = Tensor(layer->output_shape());
    }
  }
}

int64_t Network::ActivationBytes() const {
  int64_t floats = 0;
  if (mode_ == ExecMode::kInference) {
    if (eplan_.arena.enabled) {
      floats = eplan_.arena.arena_floats;
    } else {
      floats = eplan_.arena.sum_output_floats;
    }
  } else {
    for (const auto& layer : layers_) {
      floats += layer->output().size() + layer->delta().size();
    }
  }
  return floats * static_cast<int64_t>(sizeof(float));
}

float* Network::workspace(int tid, int64_t required) {
  THALI_CHECK_GE(tid, 0);
  THALI_CHECK_LT(tid, workspace_slots());
  THALI_CHECK_LE(required, workspace_floats_)
      << "layer requests " << required << " workspace floats but Finalize() "
      << "sized " << workspace_floats_;
  return workspaces_[static_cast<size_t>(tid)].data();
}

const Tensor& Network::Forward(const Tensor& input, bool train) {
  THALI_CHECK(finalized_);
  THALI_CHECK(!(train && mode_ == ExecMode::kInference))
      << "Forward(train=true) on an inference-mode network";
  THALI_CHECK(input.shape() == input_shape())
      << "input " << input.shape().ToString() << " vs net "
      << input_shape().ToString();
  if (eplan_.input_u8) {
    // Layer 0 consumes quantized input bytes. Either the caller staged
    // them already (the detector's fused letterbox-quantize, armed
    // one-shot via set_input_prequantized) or we quantize the fp32
    // input here with the plan's input domain — the same shared
    // quantizer, so both routes produce identical bytes.
    if (!input_prequantized_) {
      Int8QuantizeActivations(input.data(), input.size(),
                              1.0f / eplan_.input_qscale, eplan_.input_qzp,
                              qinput_.raw());
    }
    input_prequantized_ = false;
  }
  const Tensor* x = &input;
  for (auto& layer : layers_) {
    layer->Forward(*x, *this, train);
    x = &layer->output();
  }
  return *x;
}

void Network::Backward(const Tensor& input) {
  THALI_CHECK(finalized_);
  THALI_CHECK(mode_ == ExecMode::kTraining)
      << "Backward on an inference-mode network";
  for (int i = num_layers() - 1; i >= 0; --i) {
    const Tensor& in = i == 0 ? input : layers_[i - 1]->output();
    Tensor* in_delta = i == 0 ? nullptr : &layers_[i - 1]->delta();
    layers_[i]->Backward(in, in_delta, *this);
  }
}

void Network::ZeroDeltas() {
  THALI_CHECK(mode_ == ExecMode::kTraining)
      << "ZeroDeltas on an inference-mode network";
  for (auto& layer : layers_) layer->delta().Zero();
}

void Network::ZeroGrads() {
  for (auto& layer : layers_) {
    for (const Param& p : layer->Params()) p.grad->Zero();
  }
}

int Network::ResolveIndex(int ref, int at) const {
  const int idx = ref < 0 ? at + ref : ref;
  THALI_CHECK_GE(idx, 0) << "bad layer reference " << ref << " at " << at;
  THALI_CHECK_LT(idx, num_layers());
  return idx;
}

std::vector<Param> Network::TrainableParams() {
  std::vector<Param> out;
  for (auto& layer : layers_) {
    if (layer->frozen()) continue;
    for (Param& p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Param> Network::AllParams() {
  std::vector<Param> out;
  for (auto& layer : layers_) {
    for (Param& p : layer->Params()) out.push_back(p);
  }
  return out;
}

int64_t Network::NumParameters() const {
  int64_t n = 0;
  for (const auto& layer : layers_) {
    const Layer& l = *layer;
    for (const ConstParam& p : l.Params()) n += p.value->size();
  }
  return n;
}

void Network::FreezeUpTo(int cutoff) {
  for (int i = 0; i < num_layers() && i < cutoff; ++i) {
    layers_[static_cast<size_t>(i)]->set_frozen(true);
  }
}

}  // namespace thali
