#ifndef THALI_NN_ROUTE_LAYER_H_
#define THALI_NN_ROUTE_LAYER_H_

#include <vector>

#include "nn/layer.h"

namespace thali {

// Darknet's `[route]`: concatenates the outputs of earlier layers along
// the channel axis. With groups > 1, each source contributes only channel
// group `group_id` of `groups` equal slices — the channel-split that CSP
// blocks are built from.
class RouteLayer : public Layer {
 public:
  struct Options {
    std::vector<int> layers;  // absolute or negative (relative) indices
    int groups = 1;
    int group_id = 0;
  };

  explicit RouteLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "route"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;
  // Route reads only its source layers, never the `input` argument.
  std::vector<int> ExtraInputIndices() const override { return sources_; }
  bool ReadsPreviousOutput() const override { return false; }

  const std::vector<int>& source_indices() const { return sources_; }
  // Channels taken from / channel offset within each source — the plan
  // compiler reads these to decide view aliasing and concat adoption.
  const std::vector<int64_t>& source_channels() const { return src_chans_; }
  const std::vector<int64_t>& source_offsets() const { return src_offset_; }

 private:
  Options opts_;
  std::vector<int> sources_;        // resolved absolute indices
  std::vector<int64_t> src_chans_;  // channels taken from each source
  std::vector<int64_t> src_offset_; // channel offset within each source
};

}  // namespace thali

#endif  // THALI_NN_ROUTE_LAYER_H_
