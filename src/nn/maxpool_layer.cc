#include "nn/maxpool_layer.h"

#include <cfloat>

#include "nn/network.h"

namespace thali {

Status MaxPoolLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("maxpool input must be NCHW");
  }
  if (opts_.size <= 0 || opts_.stride <= 0) {
    return Status::InvalidArgument("bad maxpool geometry");
  }
  const int64_t out_h =
      (input_shape.dim(2) + opts_.padding - opts_.size) / opts_.stride + 1;
  const int64_t out_w =
      (input_shape.dim(3) + opts_.padding - opts_.size) / opts_.stride + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("maxpool output collapses to zero");
  }
  SetShapes(input_shape,
            Shape({input_shape.dim(0), input_shape.dim(1), out_h, out_w}));
  if (inference()) {
    // Backward never runs; skip the argmax routing cache entirely.
    argmax_.clear();
    argmax_.shrink_to_fit();
  } else {
    argmax_.assign(static_cast<size_t>(out_shape_.num_elements()), 0);
  }
  return Status::OK();
}

// Works unchanged in either activation layout: the loop visits input
// plane p and writes output plane p for p = 0..batch*C-1, and pooling
// preserves the channel count, so the (b,c) <-> (c,b) plane orderings
// of NCHW and CNHW map through identically.
void MaxPoolLayer::Forward(const Tensor& input, Network& net, bool) {
  const int64_t batch = in_shape_.dim(0);
  const int64_t c = in_shape_.dim(1);
  const int64_t ih = in_shape_.dim(2);
  const int64_t iw = in_shape_.dim(3);
  const int64_t oh = out_shape_.dim(2);
  const int64_t ow = out_shape_.dim(3);
  const int64_t offset = -opts_.padding / 2;
  const bool track_argmax = !argmax_.empty();

  if (plan().out_dtype == DType::kU8) {
    // Quantize-once chain: pool the u8 bytes directly. The quantizer is
    // monotonic, so the byte max picks the same tap the fp32 max would;
    // an all-padding window writes the zero point (the exact image of
    // the fp32 path's 0.0f).
    const uint8_t* qin = net.quant_act(index() - 1);
    uint8_t* qout = net.quant_act(index());
    const uint8_t zp = static_cast<uint8_t>(plan().out_qzp);
    int64_t qi = 0;
    for (int64_t p = 0; p < batch * c; ++p) {
      const uint8_t* plane = qin + p * ih * iw;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++qi) {
          int best = -1;
          for (int64_t ky = 0; ky < opts_.size; ++ky) {
            const int64_t sy = y * opts_.stride + offset + ky;
            if (sy < 0 || sy >= ih) continue;
            for (int64_t kx = 0; kx < opts_.size; ++kx) {
              const int64_t sx = x * opts_.stride + offset + kx;
              if (sx < 0 || sx >= iw) continue;
              const int v = plane[sy * iw + sx];
              if (v > best) best = v;
            }
          }
          qout[qi] = best >= 0 ? static_cast<uint8_t>(best) : zp;
        }
      }
    }
    return;
  }

  int64_t out_idx = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (b * c + ch) * ih * iw;
      const int64_t plane_base = (b * c + ch) * ih * iw;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++out_idx) {
          float best = -FLT_MAX;
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < opts_.size; ++ky) {
            const int64_t sy = y * opts_.stride + offset + ky;
            if (sy < 0 || sy >= ih) continue;
            for (int64_t kx = 0; kx < opts_.size; ++kx) {
              const int64_t sx = x * opts_.stride + offset + kx;
              if (sx < 0 || sx >= iw) continue;
              const float v = plane[sy * iw + sx];
              if (v > best) {
                best = v;
                best_idx = plane_base + sy * iw + sx;
              }
            }
          }
          output_.data()[out_idx] = best_idx >= 0 ? best : 0.0f;
          if (track_argmax) argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
}

void MaxPoolLayer::Backward(const Tensor&, Tensor* input_delta, Network&) {
  if (input_delta == nullptr) return;
  float* id = input_delta->data();
  const float* d = delta_.data();
  for (int64_t i = 0; i < output_.size(); ++i) {
    const int64_t src = argmax_[static_cast<size_t>(i)];
    if (src >= 0) id[src] += d[i];
  }
}

}  // namespace thali
