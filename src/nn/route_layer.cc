#include "nn/route_layer.h"

#include "nn/network.h"

namespace thali {

Status RouteLayer::Configure(const Shape& input_shape, const Network& net) {
  if (opts_.layers.empty()) {
    return Status::InvalidArgument("route needs at least one source");
  }
  if (opts_.groups <= 0 || opts_.group_id < 0 ||
      opts_.group_id >= opts_.groups) {
    return Status::InvalidArgument("bad route groups");
  }
  sources_.clear();
  src_chans_.clear();
  src_offset_.clear();

  int64_t out_c = 0;
  int64_t h = -1, w = -1;
  for (int ref : opts_.layers) {
    const int idx = ref < 0 ? index() + ref : ref;
    if (idx < 0 || idx >= index() || idx >= net.num_layers()) {
      return Status::InvalidArgument("route source must precede the route");
    }
    const Shape& s = net.layer(idx).output_shape();
    if (s.dim(1) % opts_.groups != 0) {
      return Status::InvalidArgument("route source channels not divisible");
    }
    const int64_t take = s.dim(1) / opts_.groups;
    if (h < 0) {
      h = s.dim(2);
      w = s.dim(3);
    } else if (h != s.dim(2) || w != s.dim(3)) {
      return Status::InvalidArgument("route sources disagree on spatial size");
    }
    sources_.push_back(idx);
    src_chans_.push_back(take);
    src_offset_.push_back(take * opts_.group_id);
    out_c += take;
  }
  SetShapes(input_shape, Shape({input_shape.dim(0), out_c, h, w}));
  return Status::OK();
}

void RouteLayer::Forward(const Tensor&, Network& net, bool) {
  // Elided by the plan compiler: output_ is bound as a view of the
  // source (group split) or the sources already wrote into this block
  // (concat adoption) — there is nothing to move.
  if (plan().copy_elided) return;

  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_shape_.dim(2) * out_shape_.dim(3);
  const int64_t out_c = out_shape_.dim(1);

  if (plan().out_dtype == DType::kU8) {
    // Quantize-once chain: concatenate the sources' u8 bytes instead of
    // floats. Element offsets are byte offsets, so the loops mirror the
    // fp32 ones exactly; the dtype pass guarantees every source shares
    // this layer's dtype (and quantization domain).
    uint8_t* out = net.quant_act(index());
    if (plan().out_layout == ActLayout::kCNHW) {
      int64_t chan_base = 0;
      for (size_t s = 0; s < sources_.size(); ++s) {
        const uint8_t* from = net.quant_act(sources_[s]) +
                              src_offset_[s] * batch * spatial;
        uint8_t* to = out + chan_base * batch * spatial;
        std::copy(from, from + src_chans_[s] * batch * spatial, to);
        chan_base += src_chans_[s];
      }
      return;
    }
    int64_t chan_base = 0;
    for (size_t s = 0; s < sources_.size(); ++s) {
      const uint8_t* src = net.quant_act(sources_[s]);
      const int64_t src_c = net.layer(sources_[s]).output_shape().dim(1);
      for (int64_t b = 0; b < batch; ++b) {
        const uint8_t* from = src + (b * src_c + src_offset_[s]) * spatial;
        uint8_t* to = out + (b * out_c + chan_base) * spatial;
        std::copy(from, from + src_chans_[s] * spatial, to);
      }
      chan_base += src_chans_[s];
    }
    return;
  }

  if (plan().out_layout == ActLayout::kCNHW) {
    // Blocked layout: a channel range is one contiguous span (plane
    // (c, b) lives at (c*batch + b)*spatial), so each source is a
    // single copy regardless of batch.
    int64_t chan_base = 0;
    for (size_t s = 0; s < sources_.size(); ++s) {
      const Tensor& src = net.layer(sources_[s]).output();
      const float* from = src.data() + src_offset_[s] * batch * spatial;
      float* to = output_.data() + chan_base * batch * spatial;
      std::copy(from, from + src_chans_[s] * batch * spatial, to);
      chan_base += src_chans_[s];
    }
    return;
  }

  int64_t chan_base = 0;
  for (size_t s = 0; s < sources_.size(); ++s) {
    const Tensor& src = net.layer(sources_[s]).output();
    const int64_t src_c = net.layer(sources_[s]).output_shape().dim(1);
    for (int64_t b = 0; b < batch; ++b) {
      const float* from =
          src.data() + (b * src_c + src_offset_[s]) * spatial;
      float* to = output_.data() + (b * out_c + chan_base) * spatial;
      std::copy(from, from + src_chans_[s] * spatial, to);
    }
    chan_base += src_chans_[s];
  }
}

void RouteLayer::Backward(const Tensor&, Tensor*, Network& net) {
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_shape_.dim(2) * out_shape_.dim(3);
  const int64_t out_c = out_shape_.dim(1);

  int64_t chan_base = 0;
  for (size_t s = 0; s < sources_.size(); ++s) {
    Tensor& src_delta = net.layer(sources_[s]).delta();
    const int64_t src_c = net.layer(sources_[s]).output_shape().dim(1);
    for (int64_t b = 0; b < batch; ++b) {
      const float* from = delta_.data() + (b * out_c + chan_base) * spatial;
      float* to = src_delta.data() + (b * src_c + src_offset_[s]) * spatial;
      const int64_t n = src_chans_[s] * spatial;
      for (int64_t i = 0; i < n; ++i) to[i] += from[i];
    }
    chan_base += src_chans_[s];
  }
}

}  // namespace thali
