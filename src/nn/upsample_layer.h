#ifndef THALI_NN_UPSAMPLE_LAYER_H_
#define THALI_NN_UPSAMPLE_LAYER_H_

#include "nn/layer.h"

namespace thali {

// Nearest-neighbour spatial upsampling by an integer stride — the PAN/FPN
// top-down path of YOLOv3/v4.
class UpsampleLayer : public Layer {
 public:
  explicit UpsampleLayer(int stride) : stride_(stride) {}

  const char* kind() const override { return "upsample"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;

  int stride() const { return stride_; }

 private:
  int stride_;
};

}  // namespace thali

#endif  // THALI_NN_UPSAMPLE_LAYER_H_
