#include "nn/optimizer.h"

#include <cmath>

#include "base/logging.h"

namespace thali {

float LrPolicy::LearningRateAt(int iteration) const {
  float lr = base_lr;
  if (burn_in > 0 && iteration < burn_in) {
    const float f = static_cast<float>(iteration + 1) / burn_in;
    return lr * f * f * f * f;  // darknet power = 4
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    if (iteration >= steps[i]) {
      lr *= i < scales.size() ? scales[i] : 0.1f;
    }
  }
  return lr;
}

void SgdOptimizer::Step(Network& net, int iteration, float batch_scale) {
  const float lr = opts_.lr.LearningRateAt(iteration);
  std::vector<Param> params = net.TrainableParams();

  // (Re)build momentum buffers if the trainable set changed (e.g. layers
  // were frozen/unfrozen between steps).
  bool rebuild = velocity_.size() != params.size();
  if (!rebuild) {
    for (size_t i = 0; i < params.size(); ++i) {
      if (velocity_keys_[i] != params[i].value->data()) {
        rebuild = true;
        break;
      }
    }
  }
  if (rebuild) {
    velocity_.clear();
    velocity_keys_.clear();
    for (const Param& p : params) {
      velocity_.emplace_back(static_cast<size_t>(p.value->size()), 0.0f);
      velocity_keys_.push_back(p.value->data());
    }
  }

  for (size_t i = 0; i < params.size(); ++i) {
    float* w = params[i].value->data();
    float* g = params[i].grad->data();
    std::vector<float>& v = velocity_[i];
    const int64_t n = params[i].value->size();
    const float decay = params[i].apply_decay ? opts_.weight_decay : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] * batch_scale + decay * w[j];
      v[static_cast<size_t>(j)] =
          opts_.momentum * v[static_cast<size_t>(j)] - lr * grad;
      w[j] += v[static_cast<size_t>(j)];
      g[j] = 0.0f;
    }
  }
}

}  // namespace thali
