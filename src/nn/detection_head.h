#ifndef THALI_NN_DETECTION_HEAD_H_
#define THALI_NN_DETECTION_HEAD_H_

#include <vector>

#include "eval/detection.h"
#include "nn/truth.h"

namespace thali {

// Loss decomposition reported by a detection head for one batch.
struct HeadLossStats {
  double total = 0.0;
  double box = 0.0;
  double obj = 0.0;
  double cls = 0.0;
  int assigned = 0;      // anchor-cell assignments made
  float avg_iou = 0.0f;  // mean IoU of assigned predictions

  HeadLossStats& operator+=(const HeadLossStats& o) {
    // Weighted merge of avg_iou by assignment counts.
    const int total_assigned = assigned + o.assigned;
    if (total_assigned > 0) {
      avg_iou = (avg_iou * assigned + o.avg_iou * o.assigned) / total_assigned;
    }
    assigned = total_assigned;
    total += o.total;
    box += o.box;
    obj += o.obj;
    cls += o.cls;
    return *this;
  }
};

// Interface shared by detection output layers (the YOLOv4 head and the
// SSD-style baseline head), so one trainer and one evaluator drive both.
class DetectionHead {
 public:
  virtual ~DetectionHead() = default;

  // Computes the training loss against `truths` (normalized boxes) and
  // seeds the layer's delta tensor. Must follow a Forward(train=true).
  virtual HeadLossStats ComputeLoss(const TruthBatch& truths, int net_w,
                                    int net_h) = 0;

  // Decodes detections for batch item `b` above `conf_thresh`, boxes
  // normalized to [0,1] of the network input.
  virtual std::vector<Detection> GetDetections(int b, float conf_thresh,
                                               int net_w, int net_h) const = 0;
};

}  // namespace thali

#endif  // THALI_NN_DETECTION_HEAD_H_
