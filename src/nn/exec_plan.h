#ifndef THALI_NN_EXEC_PLAN_H_
#define THALI_NN_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace thali {

class Network;

// How a network's buffers are planned at Finalize time.
//
//  kTraining  — every layer owns its output and a same-sized delta
//               tensor plus whatever backward caches it needs; batch
//               statistics may be updated. This is the seed behaviour.
//  kInference — no delta tensors, no backward caches, and (unless the
//               THALI_NO_ARENA environment variable is set) layer
//               outputs live at planned offsets inside one shared
//               activation arena, reusing storage between layers whose
//               liveness intervals do not overlap. Forward(train=true)
//               is a programming error on an inference network.
enum class ExecMode { kTraining, kInference };

const char* ExecModeName(ExecMode mode);

// One layer's slot in the activation arena.
struct ArenaAssignment {
  int64_t offset = 0;  // float offset into the arena
  int64_t floats = 0;  // output size in floats
  int first_use = 0;   // layer index producing the buffer
  int last_use = 0;    // last layer index reading it (num_layers = post-
                       // forward consumer: detection heads / final output)
};

// The planner's result: per-layer offsets plus the headline numbers the
// acceptance bench reports (peak arena floats vs the no-reuse sum).
struct ArenaPlan {
  // False when planning was skipped (training mode or THALI_NO_ARENA);
  // assignments/arena_floats are still filled so reports can show what
  // the planner *would* save.
  bool enabled = false;
  std::vector<ArenaAssignment> assignments;  // one per layer
  int64_t arena_floats = 0;       // peak concurrent footprint (arena size)
  int64_t sum_output_floats = 0;  // one-buffer-per-layer baseline

  // Human-readable planner report: per-layer offset/interval table and
  // the peak-vs-sum summary.
  std::string ToString() const;
};

// Liveness-based first-fit arena planning over the network DAG. A
// layer's output is live from the step that produces it through its last
// consumer — the next layer when it reads its input argument, any
// route/shortcut that references it, and "after the forward pass" for
// detection-head outputs and the network's final output (modelled as a
// consumer at index num_layers). Offsets are assigned greedily in layer
// order, first-fit into gaps left by expired buffers, 16-float aligned.
// Requires every layer to be configured (shapes known).
ArenaPlan PlanActivationArena(const Network& net);

}  // namespace thali

#endif  // THALI_NN_EXEC_PLAN_H_
