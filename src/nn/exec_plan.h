#ifndef THALI_NN_EXEC_PLAN_H_
#define THALI_NN_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/qtensor.h"

namespace thali {

class Network;

// How a network's buffers are planned at Finalize time.
//
//  kTraining  — every layer owns its output and a same-sized delta
//               tensor plus whatever backward caches it needs; batch
//               statistics may be updated. This is the seed behaviour.
//  kInference — no delta tensors, no backward caches, and (unless the
//               THALI_NO_ARENA environment variable is set) layer
//               outputs live at planned offsets inside one shared
//               activation arena, reusing storage between layers whose
//               liveness intervals do not overlap. Forward(train=true)
//               is a programming error on an inference network.
enum class ExecMode { kTraining, kInference };

const char* ExecModeName(ExecMode mode);

// Which activation-statistics pass, if any, the network's Forward is
// currently running (int8 calibration — see Detector::CalibrateInt8).
//
//  kOff   — normal execution. Quantized conv paths may run.
//  kRange — conv layers record the min/max of their fp32 input.
//  kHist  — conv layers accumulate an input histogram over the range
//           found by a prior kRange pass (percentile calibration).
//
// While a calibration phase is active every conv runs its fp32 path, so
// the observed statistics describe the unquantized network.
enum class CalibPhase { kOff, kRange, kHist };

// Memory layout of one layer's activation tensor.
//
//  kNCHW — the Darknet layout every layer uses in training mode: batch
//          item b's channel c plane starts at float (b*C + c)*H*W.
//  kCNHW — the blocked layout the inference plan compiler assigns to
//          backbone conv chains: channel-major with the batch folded
//          inside, plane (c, b) at float (c*N + b)*H*W. At batch 1 the
//          two layouts are byte-identical. CNHW keeps a channel range
//          contiguous at any batch, so route concats become single
//          memcpys (or alias away entirely) and a 1x1 conv is one
//          whole-batch GEMM over an [C, N*H*W] matrix.
enum class ActLayout { kNCHW, kCNHW };

const char* ActLayoutName(ActLayout layout);

// Which convolution algorithm a conv layer's Forward dispatches to.
//
//  kIm2col    — the reference path (im2col + GEMM); always used by
//               training networks and by THALI_NO_FUSE inference, and
//               by fused inference for geometries the fast paths do not
//               cover (stride > 1, ksize other than 1/3).
//  kDirect1x1 — 1x1/stride-1/pad-0: the input planes already form the
//               GEMM B matrix; with CNHW layouts on both sides the
//               whole batch collapses into a single [F,C]x[C,N*H*W]
//               GEMM. Bitwise identical to kIm2col.
//  kWinograd  — F(2x2,3x3) for 3x3/stride-1/pad-1: 2.25x fewer
//               multiplies, no im2col. NOT bitwise identical to the
//               reference (transforms re-associate the 3x3 dot
//               products); covered by the documented fused-plan
//               tolerance (see tensor/winograd.h).
//  kQuantInt8 — per-channel symmetric int8 (tensor/gemm_int8.h) for
//               3x3/pad-1 at stride 1 or 2 (the u8 im2col walks any
//               stride), selected only when the network was finalized
//               with THALI_INT8 enabled and the layer is not NCHW-pinned
//               (detection-head feeders stay fp32). Forward falls back
//               to kWinograd (stride 1) or kIm2col (stride 2) at runtime
//               until the layer has a calibrated activation range.
//  kQuantInt8Direct1x1 — int8 variant of kDirect1x1 (1x1/stride-1/
//               pad-0): the quantized channel planes ARE the GEMM B
//               matrix, so the path quantizes (or chains) and packs
//               with no im2col at all. Selected under THALI_INT8
//               regardless of layout pins (the GEMM absorbs layouts
//               through strides like kDirect1x1 does). Forward falls
//               back to kDirect1x1 until calibrated.
enum class ConvAlgo {
  kIm2col,
  kDirect1x1,
  kWinograd,
  kQuantInt8,
  kQuantInt8Direct1x1,
};

const char* ConvAlgoName(ConvAlgo algo);

// Per-layer decisions of the inference plan compiler. The default
// constructed value (NCHW in/out, kIm2col, nothing fused, nothing
// elided) reproduces the pre-compiler behaviour exactly and is what
// training networks, standalone layers and THALI_NO_FUSE inference run
// with.
struct LayerPlan {
  ActLayout in_layout = ActLayout::kNCHW;
  ActLayout out_layout = ActLayout::kNCHW;
  ConvAlgo conv_algo = ConvAlgo::kIm2col;
  // Route mish activations through the fast vectorized family
  // (tensor/act_kernels.h) instead of libm — fused plans only.
  bool fast_act = false;
  // The layer's output aliases arena storage written by other layers
  // (route view/concat) so its Forward copies nothing. The arena
  // planner places every aliased layer inside its group root's block.
  bool copy_elided = false;

  // --- Quantize-once chaining (filled by Network::ReplanInference once
  // calibration ranges exist; kF32 everywhere before that). ---
  //
  // Dtype of the activation tensor this layer READS and WRITES. kU8
  // means the 7-bit unsigned quantized domain of gemm_int8.h: an
  // in_dtype of kU8 marks a CHAINED layer (it consumes the producer's
  // requantized bytes and never touches fp32 input); an out_dtype of
  // kU8 means every consumer is quantized, so the fp32 arena slot for
  // this layer is never written in steady state.
  DType in_dtype = DType::kF32;
  DType out_dtype = DType::kF32;
  // Quantization domain of the u8 edge tensors (meaningful only when
  // the matching dtype is kU8). One tensor can feed several quantized
  // convs, so the domain is per-TENSOR, not per-consumer: the dtype
  // pass unions the calibrated ranges of every quantized consumer
  // reachable through passthroughs and derives one (scale, zp) for the
  // whole component. A chained conv therefore dequantizes with the
  // edge domain here rather than its own calibrated range.
  float in_qscale = 1.0f;
  float out_qscale = 1.0f;
  int32_t in_qzp = 0;
  int32_t out_qzp = 0;
  // Storage of the u8 tensor this layer writes: index of the layer
  // whose DTypeBuffer holds the bytes (the alias-group root, mirroring
  // the fp32 elision forest) and the byte offset inside it. -1 when
  // out_dtype is kF32.
  int quant_root = -1;
  int64_t quant_offset = 0;
};

// One layer's slot in the activation arena.
struct ArenaAssignment {
  int64_t offset = 0;  // float offset into the arena
  int64_t floats = 0;  // output size in floats
  int first_use = 0;   // layer index producing the buffer
  int last_use = 0;    // last layer index reading it (num_layers = post-
                       // forward consumer: detection heads / final output)
  // The slot is an interior view of another layer's block (copy-elided
  // route slice / adopted concat source / in-place shortcut) — its
  // offset may not be cache-line aligned, so the network binds it with
  // BindExternalAliased instead of BindExternal.
  bool aliased = false;
};

// The planner's result: per-layer offsets plus the headline numbers the
// acceptance bench reports (peak arena floats vs the no-reuse sum).
struct ArenaPlan {
  // False when planning was skipped (training mode or THALI_NO_ARENA);
  // assignments/arena_floats are still filled so reports can show what
  // the planner *would* save.
  bool enabled = false;
  std::vector<ArenaAssignment> assignments;  // one per layer
  int64_t arena_floats = 0;       // peak concurrent footprint (arena size)
  int64_t sum_output_floats = 0;  // one-buffer-per-layer baseline

  // Human-readable planner report: per-layer offset/interval table and
  // the peak-vs-sum summary.
  std::string ToString() const;
};

// The full execution plan Network::Finalize(kInference) compiles: one
// LayerPlan per layer plus the (alias-aware) arena placement.
struct ExecPlan {
  // True when the plan compiler ran with fusion on (inference mode and
  // neither THALI_NO_FUSE nor the testing override disabled it). When
  // false every LayerPlan is default-constructed and the forward pass
  // is bitwise identical to the seed per-layer path.
  bool fused = false;
  std::vector<LayerPlan> layers;  // one per layer
  ArenaPlan arena;

  // Quantize-once chaining stats (zero until ReplanInference installs
  // dtypes): edges whose producer writes u8 (consumer skips
  // quantize+pack-from-fp32), edges where an armed quantized conv must
  // dequantize to fp32 for an unquantized consumer, and layers running
  // in the quantized domain (quantized convs + u8 passthroughs).
  int chained_edges = 0;
  int dequant_edges = 0;
  int quantized_layers = 0;

  // Layer-0 chaining: when layer 0 is a quantized conv, the NETWORK
  // INPUT itself becomes a u8 edge in this domain (derived from layer
  // 0's calibrated input range, which IS the net input's observed
  // range). Network::Forward quantizes the fp32 input once — or the
  // detector's fused letterbox→quantize stages the bytes directly — and
  // layer 0 consumes them like any chained conv.
  bool input_u8 = false;
  float input_qscale = 1.0f;
  int32_t input_qzp = 0;

  // Per-layer table of the compiler's decisions (layouts, conv
  // algorithm, fast activations, elided copies, dtypes).
  std::string ToString() const;
};

// Compiles the execution plan for a configured network.
//
// With fuse=false, every layer gets a default LayerPlan and the arena
// is the plain liveness plan (PlanActivationArena) — the seed
// behaviour. With fuse=true the compiler decides, in order:
//
//  1. Layouts: a fixpoint over the DAG assigns kCNHW to conv-chain
//     interiors. Detection heads, the final output, any layer a
//     non-conv non-passthrough consumer (yolo) reads, and the network
//     input are pinned kNCHW; passthrough layers (route, shortcut,
//     upsample, maxpool) propagate the pin both directions so they are
//     always layout-uniform; convs absorb either layout on either side
//     through GEMM strides, so no standalone convert pass ever runs.
//  2. Conv algorithms: kDirect1x1 / kWinograd / kIm2col by geometry,
//     plus fast_act for mish convs.
//  3. Copy elision (only when arena_enabled): route layers whose
//     sources can legally alias arena storage are folded away — a
//     group-split route becomes a view into its source, a concat route
//     adopts its sources so they write into the concat's block
//     directly (this also folds upsample+route pairs), and a shortcut
//     whose addend dies at the shortcut runs in place. The arena
//     planner then places each alias group as one block.
//
// Elision requires layout-uniform members and (kCNHW or batch == 1) so
// a member's storage is one contiguous range. Requires every layer to
// be configured (shapes known).
// With int8=true (latched from THALI_INT8 by Network::Finalize), step 2
// upgrades eligible Winograd-geometry convs to kQuantInt8.
ExecPlan CompileExecPlan(const Network& net, bool fuse, bool arena_enabled,
                         bool int8 = false);

// Liveness-based first-fit arena planning over the network DAG. A
// layer's output is live from the step that produces it through its last
// consumer — the next layer when it reads its input argument, any
// route/shortcut that references it, and "after the forward pass" for
// detection-head outputs and the network's final output (modelled as a
// consumer at index num_layers). Offsets are assigned greedily in layer
// order, first-fit into gaps left by expired buffers, 16-float aligned.
// Requires every layer to be configured (shapes known).
ArenaPlan PlanActivationArena(const Network& net);

// False when THALI_NO_FUSE=1 (or a testing override) disables the
// inference plan compiler's fused paths. Network::Finalize latches the
// value, so later SetBatch re-plans keep the same decision.
bool FusionEnabled();

// True when THALI_INT8 opts the int8 conv path in (set and not "0").
// Unlike the other knobs this one is opt-IN: default builds never
// quantize. Network::Finalize latches the value like FusionEnabled.
bool Int8Enabled();

namespace internal {

// Force fusion on (1) / off (0) or restore the THALI_NO_FUSE
// environment default (-1).
void SetFusionForTesting(int enabled);

// True when the given THALI_NO_FUSE value disables fusion (any
// non-empty string except "0").
bool NoFuseEnvValueDisables(const char* value);

// Force int8 on (1) / off (0) or restore the THALI_INT8 environment
// default (-1).
void SetInt8ForTesting(int enabled);

// True when the given THALI_INT8 value enables int8 (set and not "0").
bool Int8EnvValueEnables(const char* value);

}  // namespace internal

}  // namespace thali

#endif  // THALI_NN_EXEC_PLAN_H_
