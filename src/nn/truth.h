#ifndef THALI_NN_TRUTH_H_
#define THALI_NN_TRUTH_H_

#include <vector>

#include "eval/box.h"

namespace thali {

// One ground-truth object for training, with the box normalized to [0,1]
// image fractions (the YOLO label convention).
struct TruthBox {
  Box box;
  int class_id = -1;
};

// Ground truths for a training batch: truths[b] labels batch item b.
using TruthBatch = std::vector<std::vector<TruthBox>>;

}  // namespace thali

#endif  // THALI_NN_TRUTH_H_
