#ifndef THALI_NN_OPTIMIZER_H_
#define THALI_NN_OPTIMIZER_H_

#include <vector>

#include "nn/network.h"

namespace thali {

// Darknet's learning-rate schedule: linear^4 warm-up ("burn-in") followed
// by step decays (lr *= scale at each step boundary). This is the exact
// policy yolov4.cfg trains with.
struct LrPolicy {
  float base_lr = 1e-3f;
  int burn_in = 0;       // iterations of warm-up (darknet power=4)
  std::vector<int> steps;
  std::vector<float> scales;

  // Learning rate at (1-based counting not required; pass the completed
  // iteration count).
  float LearningRateAt(int iteration) const;
};

// SGD with momentum and decoupled L2 weight decay, matching Darknet's
// update rule:
//   v <- momentum*v - lr*(grad + decay*w)   [decay only on conv weights]
//   w <- w + v
// Gradients are accumulated by the network's backward pass and cleared by
// Step.
class SgdOptimizer {
 public:
  struct Options {
    float momentum = 0.9f;
    float weight_decay = 5e-4f;
    LrPolicy lr;
  };

  explicit SgdOptimizer(const Options& options) : opts_(options) {}

  // Applies one update to every trainable parameter of `net` using the
  // learning rate for `iteration`, then zeroes the gradients it consumed.
  // `batch_scale` divides gradients by the batch size (Darknet divides by
  // batch*subdivisions).
  void Step(Network& net, int iteration, float batch_scale = 1.0f);

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  // Momentum buffers keyed by parameter order; allocated lazily on the
  // first Step and invalidated if the parameter set changes size.
  std::vector<std::vector<float>> velocity_;
  std::vector<const float*> velocity_keys_;
};

}  // namespace thali

#endif  // THALI_NN_OPTIMIZER_H_
