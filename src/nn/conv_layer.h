#ifndef THALI_NN_CONV_LAYER_H_
#define THALI_NN_CONV_LAYER_H_

#include <vector>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/layer.h"

namespace thali {

// 2-d convolution with optional fused batch normalization and activation —
// Darknet's `[convolutional]` layer. Weight layout is
// (out_channels, in_channels, ksize, ksize); the reference computation is
// im2col + GEMM. Under a fused inference plan (nn/exec_plan.h) Forward
// instead dispatches on plan().conv_algo — a direct whole-batch GEMM for
// 1x1 convs, Winograd F(2x2,3x3) for stride-1 3x3 convs — and reads/
// writes either NCHW or the blocked CNHW layout through GEMM strides.
//
// With batch_normalize, the layer carries scales (gamma), biases (beta)
// and rolling mean/variance exactly like Darknet, so the serialized
// parameter order matches the .weights format.
class ConvLayer : public Layer {
 public:
  struct Options {
    int filters = 1;
    int ksize = 3;
    int stride = 1;
    int pad = 1;  // symmetric zero padding in pixels
    bool batch_normalize = false;
    Activation activation = Activation::kLeaky;
  };

  explicit ConvLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "convolutional"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  Status Rebatch(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;
  std::vector<Param> Params() override;
  std::vector<ConstParam> Params() const override;
  int64_t WorkspaceSize() const override;

  // Packs weights_ into the GEMM panel layout so inference forwards skip
  // the per-call A packing (and fuse bias/activation into the GEMM
  // write-back once batch norm has been folded). No-op for training
  // networks or when the packed path is disabled.
  void PrepackWeights() override;

  // Invalidates the packed copy after any mutation of weights_ (weight
  // loading, optimizer steps, batch-norm folding); the next inference
  // Forward re-packs.
  void MarkWeightsDirty() { packed_dirty_ = true; }

  // Bytes held by the pre-packed weight copy (0 when not packed).
  int64_t packed_weight_bytes() const {
    return packed_weights_.size() * static_cast<int64_t>(sizeof(float));
  }

  const Options& options() const { return opts_; }

  // He-style initialization scaled for the fan-in, matching Darknet's
  // scale = sqrt(2/(k*k*c)).
  void InitWeights(Rng& rng);

  // Direct parameter access for the serializer.
  Tensor& weights() { return weights_; }
  Tensor& biases() { return biases_; }
  Tensor& scales() { return scales_; }
  Tensor& rolling_mean() { return rolling_mean_; }
  Tensor& rolling_var() { return rolling_var_; }

  // Folds batch-norm parameters into weights/biases for faster inference
  // (w' = w*gamma/sqrt(var+eps), b' = beta - gamma*mean/sqrt(var+eps)).
  // Irreversible; the layer afterwards behaves as batch_normalize=false.
  // Only valid on a layer that will no longer be trained.
  void FoldBatchNorm();

 private:
  // 1x1/stride-1/pad-0 convs need no im2col: the input planes already
  // form the col matrix.
  bool IsDirect1x1() const;

  // Returns the col matrix for one image: the input itself (1x1 fast
  // path, only valid for a contiguous NCHW item) or `ws` after an
  // im2col with the given channel-plane stride into it.
  const float* PrepareCol(const float* in, int64_t chan_stride,
                          float* ws) const;

  void BatchNormForward(bool train);
  void BatchNormBackward();

  // Sizes the activation-shaped caches for the current out_shape_ and
  // mode (inference layers keep none); shared by Configure and Rebatch.
  void SizeActivationCaches();

  Options opts_;
  int64_t out_h_ = 0;
  int64_t out_w_ = 0;
  int64_t in_c_ = 0;

  Tensor weights_, weight_grads_;
  Tensor packed_weights_;      // microkernel panel layout (inference only)
  Tensor u_;                   // Winograd-transformed weights U = G w G^T
                               // (16 x F x C; kWinograd plans only)
  Tensor wino_packed_;         // the 16 U_k prepacked into GEMM A panels
  bool packed_dirty_ = true;   // weights_ changed since the last pack
  Tensor biases_, bias_grads_;
  // Batch-norm parameters (allocated only when batch_normalize).
  Tensor scales_, scale_grads_;
  Tensor rolling_mean_, rolling_var_;
  Tensor mean_, var_;        // batch statistics cached for backward
  Tensor conv_out_;          // pre-BN conv output cache
  Tensor x_norm_;            // normalized activations cache
  Tensor pre_activation_;    // post-BN/bias, pre-activation cache
  Tensor col_cache_;         // per-item im2col panels cached by Forward
  bool cols_cached_ = false; // whether col_cache_ matches the last Forward
  Tensor wg_scratch_;        // per-item weight-gradient slots (Backward)
};

}  // namespace thali

#endif  // THALI_NN_CONV_LAYER_H_
