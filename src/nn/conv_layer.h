#ifndef THALI_NN_CONV_LAYER_H_
#define THALI_NN_CONV_LAYER_H_

#include <vector>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/layer.h"
#include "tensor/qtensor.h"

namespace thali {

// 2-d convolution with optional fused batch normalization and activation —
// Darknet's `[convolutional]` layer. Weight layout is
// (out_channels, in_channels, ksize, ksize); the reference computation is
// im2col + GEMM. Under a fused inference plan (nn/exec_plan.h) Forward
// instead dispatches on plan().conv_algo — a direct whole-batch GEMM for
// 1x1 convs, Winograd F(2x2,3x3) for stride-1 3x3 convs — and reads/
// writes either NCHW or the blocked CNHW layout through GEMM strides.
//
// With batch_normalize, the layer carries scales (gamma), biases (beta)
// and rolling mean/variance exactly like Darknet, so the serialized
// parameter order matches the .weights format.
class ConvLayer : public Layer {
 public:
  struct Options {
    int filters = 1;
    int ksize = 3;
    int stride = 1;
    int pad = 1;  // symmetric zero padding in pixels
    bool batch_normalize = false;
    Activation activation = Activation::kLeaky;
  };

  explicit ConvLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "convolutional"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  Status Rebatch(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;
  std::vector<Param> Params() override;
  std::vector<ConstParam> Params() const override;
  int64_t WorkspaceSize() const override;

  // Precomputes the int8 byte-workspace section offsets for the current
  // plan/shapes (quant algos only). Forward used to re-derive these
  // inside its batch loop on every call; now they are computed exactly
  // once per plan push and asserted against in the hot path.
  void OnPlanUpdated() override;

  // Packs weights_ into the GEMM panel layout so inference forwards skip
  // the per-call A packing (and fuse bias/activation into the GEMM
  // write-back once batch norm has been folded). No-op for training
  // networks or when the packed path is disabled.
  void PrepackWeights() override;

  // Invalidates the packed copy after any mutation of weights_ (weight
  // loading, optimizer steps, batch-norm folding); the next inference
  // Forward re-packs.
  void MarkWeightsDirty() { packed_dirty_ = true; }

  // Bytes held by the pre-packed weight copy (0 when not packed).
  int64_t packed_weight_bytes() const {
    return packed_weights_.size() * static_cast<int64_t>(sizeof(float));
  }

  // Bytes held by the quantized int8 weight copy (0 when the layer's
  // plan is not kQuantInt8 or weights are not packed yet).
  int64_t int8_weight_bytes() const { return qweights_.q.bytes(); }

  // --- int8 activation calibration (kQuantInt8 plans only) ---
  //
  // The quantized path needs the input activation range of each int8
  // conv. Detector::CalibrateInt8 collects it by running fp32 forwards
  // with net.calib_phase() set (kRange then optionally kHist) and then
  // calling FinalizeCalibration; a persisted calibration instead lands
  // directly in SetActivationRange. Until a range is set, Forward falls
  // back to the fp32 Winograd path.

  // Installs the input range; derives (scale, zero point) per
  // tensor/gemm_int8.h and arms the quantized path.
  void SetActivationRange(float range_min, float range_max);
  bool has_activation_range() const { return has_act_range_; }
  float activation_range_min() const { return act_in_min_; }
  float activation_range_max() const { return act_in_max_; }

  // Clears accumulated calibration statistics (and the installed range).
  void ResetCalibration();

  // Converts accumulated statistics into an activation range:
  // percentile == 100 keeps the observed min/max; otherwise the
  // histogram pass's tails are trimmed so each holds at most
  // (100 - percentile)/2 percent of the observed values.
  void FinalizeCalibration(double percentile);

  const Options& options() const { return opts_; }

  // He-style initialization scaled for the fan-in, matching Darknet's
  // scale = sqrt(2/(k*k*c)).
  void InitWeights(Rng& rng);

  // Direct parameter access for the serializer.
  Tensor& weights() { return weights_; }
  Tensor& biases() { return biases_; }
  Tensor& scales() { return scales_; }
  Tensor& rolling_mean() { return rolling_mean_; }
  Tensor& rolling_var() { return rolling_var_; }

  // Folds batch-norm parameters into weights/biases for faster inference
  // (w' = w*gamma/sqrt(var+eps), b' = beta - gamma*mean/sqrt(var+eps)).
  // Irreversible; the layer afterwards behaves as batch_normalize=false.
  // Only valid on a layer that will no longer be trained.
  void FoldBatchNorm();

 private:
  // 1x1/stride-1/pad-0 convs need no im2col: the input planes already
  // form the col matrix.
  bool IsDirect1x1() const;

  // Returns the col matrix for one image: the input itself (1x1 fast
  // path, only valid for a contiguous NCHW item) or `ws` after an
  // im2col with the given channel-plane stride into it.
  const float* PrepareCol(const float* in, int64_t chan_stride,
                          float* ws) const;

  void BatchNormForward(bool train);
  void BatchNormBackward();

  // Records input statistics for the active calibration phase (min/max
  // under kRange, histogram under kHist).
  void ObserveCalibration(const Tensor& input, CalibPhase phase);

  // Sizes the activation-shaped caches for the current out_shape_ and
  // mode (inference layers keep none); shared by Configure and Rebatch.
  void SizeActivationCaches();

  Options opts_;
  int64_t out_h_ = 0;
  int64_t out_w_ = 0;
  int64_t in_c_ = 0;

  Tensor weights_, weight_grads_;
  Tensor packed_weights_;      // microkernel panel layout (inference only)
  QTensor qweights_;           // per-channel int8 rows (kQuantInt8 plans)
  std::vector<int32_t> wcolsum_;  // per-filter quantized-row sums
  Tensor u_;                   // Winograd-transformed weights U = G w G^T
                               // (16 x F x C; kWinograd plans only)
  Tensor wino_packed_;         // the 16 U_k prepacked into GEMM A panels
  bool packed_dirty_ = true;   // weights_ changed since the last pack
  Tensor biases_, bias_grads_;
  // Batch-norm parameters (allocated only when batch_normalize).
  Tensor scales_, scale_grads_;
  Tensor rolling_mean_, rolling_var_;
  Tensor mean_, var_;        // batch statistics cached for backward
  Tensor conv_out_;          // pre-BN conv output cache
  Tensor x_norm_;            // normalized activations cache
  Tensor pre_activation_;    // post-BN/bias, pre-activation cache
  Tensor col_cache_;         // per-item im2col panels cached by Forward
  bool cols_cached_ = false; // whether col_cache_ matches the last Forward
  Tensor wg_scratch_;        // per-item weight-gradient slots (Backward)

  // Byte-section offsets inside the per-strand float workspace of the
  // quantized paths, laid out exactly as Int8ConvWorkspaceBytes /
  // Int8Direct1x1WorkspaceBytes size them. Derived from the plan once
  // in OnPlanUpdated (Finalize / SetBatch / ReplanInference), never in
  // Forward.
  struct Int8Sections {
    int64_t qin = 0;     // quantized input planes (u8)
    int64_t col = 0;     // u8 im2col panel (kQuantInt8 only)
    int64_t packed = 0;  // packed activation panel
    int64_t acc = 0;     // i32 accumulator tile
    int64_t ws_floats = 0;  // floats to request from net.workspace()
    int64_t gemm_n = 0;     // GEMM width the sections were sized for
    bool whole_batch = false;  // direct-1x1 CNHW both sides: one GEMM
    bool valid = false;
  };
  Int8Sections int8_ws_;

  // int8 activation quantization state (quantized plans).
  bool has_act_range_ = false;
  float act_in_min_ = 0.0f, act_in_max_ = 0.0f;
  float act_in_scale_ = 1.0f;
  int32_t act_in_zp_ = 0;
  // Calibration accumulators (only touched while a phase is active).
  float calib_min_ = 0.0f, calib_max_ = 0.0f;
  bool calib_seen_ = false;
  std::vector<int64_t> calib_hist_;
};

}  // namespace thali

#endif  // THALI_NN_CONV_LAYER_H_
