#ifndef THALI_NN_CONV_LAYER_H_
#define THALI_NN_CONV_LAYER_H_

#include <vector>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/layer.h"

namespace thali {

// 2-d convolution with optional fused batch normalization and activation —
// Darknet's `[convolutional]` layer. Weight layout is
// (out_channels, in_channels, ksize, ksize); computation is im2col + GEMM.
//
// With batch_normalize, the layer carries scales (gamma), biases (beta)
// and rolling mean/variance exactly like Darknet, so the serialized
// parameter order matches the .weights format.
class ConvLayer : public Layer {
 public:
  struct Options {
    int filters = 1;
    int ksize = 3;
    int stride = 1;
    int pad = 1;  // symmetric zero padding in pixels
    bool batch_normalize = false;
    Activation activation = Activation::kLeaky;
  };

  explicit ConvLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "convolutional"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;
  std::vector<Param> Params() override;
  int64_t WorkspaceSize() const override;

  const Options& options() const { return opts_; }

  // He-style initialization scaled for the fan-in, matching Darknet's
  // scale = sqrt(2/(k*k*c)).
  void InitWeights(Rng& rng);

  // Direct parameter access for the serializer.
  Tensor& weights() { return weights_; }
  Tensor& biases() { return biases_; }
  Tensor& scales() { return scales_; }
  Tensor& rolling_mean() { return rolling_mean_; }
  Tensor& rolling_var() { return rolling_var_; }

  // Folds batch-norm parameters into weights/biases for faster inference
  // (w' = w*gamma/sqrt(var+eps), b' = beta - gamma*mean/sqrt(var+eps)).
  // Irreversible; the layer afterwards behaves as batch_normalize=false.
  // Only valid on a layer that will no longer be trained.
  void FoldBatchNorm();

 private:
  // Per-image convolution: out[f, oh*ow] = W[f, ckk] * col[ckk, oh*ow].
  void ForwardOne(const float* in, float* out, float* ws) const;

  void BatchNormForward(bool train);
  void BatchNormBackward();

  Options opts_;
  int64_t out_h_ = 0;
  int64_t out_w_ = 0;
  int64_t in_c_ = 0;

  Tensor weights_, weight_grads_;
  Tensor biases_, bias_grads_;
  // Batch-norm parameters (allocated only when batch_normalize).
  Tensor scales_, scale_grads_;
  Tensor rolling_mean_, rolling_var_;
  Tensor mean_, var_;        // batch statistics cached for backward
  Tensor conv_out_;          // pre-BN conv output cache
  Tensor x_norm_;            // normalized activations cache
  Tensor pre_activation_;    // post-BN/bias, pre-activation cache
};

}  // namespace thali

#endif  // THALI_NN_CONV_LAYER_H_
