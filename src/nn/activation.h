#ifndef THALI_NN_ACTIVATION_H_
#define THALI_NN_ACTIVATION_H_

#include <cstdint>
#include <string>

#include "base/statusor.h"

namespace thali {

// Activation functions supported by the Darknet layer set. kMish is the
// YOLOv4 backbone activation; kLeaky is used in the neck/head.
enum class Activation {
  kLinear,
  kLeaky,     // max(0.1x, x)
  kRelu,
  kMish,      // x * tanh(softplus(x))
  kLogistic,  // sigmoid
};

// Parses the Darknet cfg spelling ("leaky", "mish", ...).
StatusOr<Activation> ActivationFromString(const std::string& name);
const char* ActivationToString(Activation a);

// Applies the activation elementwise in place.
void ApplyActivation(Activation a, float* x, int64_t n);

// Multiplies `delta` by the activation derivative, elementwise in place.
// `pre` must hold the *pre-activation* values (the layer caches them when
// the activation's derivative is not expressible from the output alone,
// as with mish).
void GradientActivation(Activation a, const float* pre, float* delta,
                        int64_t n);

}  // namespace thali

#endif  // THALI_NN_ACTIVATION_H_
