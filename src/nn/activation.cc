#include "nn/activation.h"

#include <cmath>

namespace thali {

StatusOr<Activation> ActivationFromString(const std::string& name) {
  if (name == "linear") return Activation::kLinear;
  if (name == "leaky") return Activation::kLeaky;
  if (name == "relu") return Activation::kRelu;
  if (name == "mish") return Activation::kMish;
  if (name == "logistic") return Activation::kLogistic;
  return Status::InvalidArgument("unknown activation: " + name);
}

const char* ActivationToString(Activation a) {
  switch (a) {
    case Activation::kLinear: return "linear";
    case Activation::kLeaky: return "leaky";
    case Activation::kRelu: return "relu";
    case Activation::kMish: return "mish";
    case Activation::kLogistic: return "logistic";
  }
  return "?";
}

namespace {

inline float Softplus(float x) {
  // Numerically stable softplus.
  if (x > 20.0f) return x;
  if (x < -20.0f) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace

void ApplyActivation(Activation a, float* x, int64_t n) {
  switch (a) {
    case Activation::kLinear:
      return;
    case Activation::kLeaky:
      for (int64_t i = 0; i < n; ++i) x[i] = x[i] > 0 ? x[i] : 0.1f * x[i];
      return;
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) x[i] = x[i] > 0 ? x[i] : 0.0f;
      return;
    case Activation::kMish:
      for (int64_t i = 0; i < n; ++i) {
        x[i] = x[i] * std::tanh(Softplus(x[i]));
      }
      return;
    case Activation::kLogistic:
      for (int64_t i = 0; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
      return;
  }
}

void GradientActivation(Activation a, const float* pre, float* delta,
                        int64_t n) {
  switch (a) {
    case Activation::kLinear:
      return;
    case Activation::kLeaky:
      for (int64_t i = 0; i < n; ++i) delta[i] *= pre[i] > 0 ? 1.0f : 0.1f;
      return;
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) delta[i] *= pre[i] > 0 ? 1.0f : 0.0f;
      return;
    case Activation::kMish:
      for (int64_t i = 0; i < n; ++i) {
        // d/dx [x * tanh(sp(x))] = tanh(sp) + x * sech^2(sp) * sigmoid(x)
        const float sp = Softplus(pre[i]);
        const float t = std::tanh(sp);
        const float sig = 1.0f / (1.0f + std::exp(-pre[i]));
        delta[i] *= t + pre[i] * (1.0f - t * t) * sig;
      }
      return;
    case Activation::kLogistic:
      for (int64_t i = 0; i < n; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-pre[i]));
        delta[i] *= s * (1.0f - s);
      }
      return;
  }
}

}  // namespace thali
