#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace thali {

ScalarLoss SquaredErrorLoss(Tensor target) {
  auto tgt = std::make_shared<Tensor>(std::move(target));
  ScalarLoss loss;
  loss.value = [tgt](const Tensor& out) {
    THALI_CHECK_EQ(out.size(), tgt->size());
    double s = 0.0;
    for (int64_t i = 0; i < out.size(); ++i) {
      const double d = out.data()[i] - tgt->data()[i];
      s += 0.5 * d * d;
    }
    return s;
  };
  loss.seed = [tgt](const Tensor& out, Tensor& delta) {
    THALI_CHECK_EQ(out.size(), delta.size());
    for (int64_t i = 0; i < out.size(); ++i) {
      delta.data()[i] = out.data()[i] - tgt->data()[i];
    }
  };
  return loss;
}

namespace {

void Accumulate(GradCheckResult& r, float analytic, float numeric) {
  const float abs_err = std::fabs(analytic - numeric);
  r.max_abs_err = std::max(r.max_abs_err, abs_err);
  ++r.checked;
  // Differences below the float32 forward-pass noise floor carry no
  // signal about gradient correctness; count them as matches.
  if (abs_err < 5e-3f) {
    r.rel_errors.push_back(0.0f);
    return;
  }
  const float denom =
      std::max({std::fabs(analytic), std::fabs(numeric), 5e-2f});
  const float rel = abs_err / denom;
  r.rel_errors.push_back(rel);
  r.max_rel_err = std::max(r.max_rel_err, rel);
}

// Runs forward(train) + seeded backward, leaving gradients/deltas
// populated. Returns the loss value.
double ForwardBackward(Network& net, const Tensor& input,
                       const ScalarLoss& loss) {
  net.ZeroDeltas();
  net.ZeroGrads();
  const Tensor& out = net.Forward(input, /*train=*/true);
  const double value = loss.value(out);
  loss.seed(out, net.layer(net.num_layers() - 1).delta());
  net.Backward(input);
  return value;
}

double ForwardOnly(Network& net, const Tensor& input, const ScalarLoss& loss) {
  const Tensor& out = net.Forward(input, /*train=*/true);
  return loss.value(out);
}

}  // namespace

GradCheckResult CheckInputGradients(Network& net, const Tensor& input,
                                    const ScalarLoss& loss, int num_probes,
                                    Rng& rng, float eps) {
  // Analytic pass: accumulate dL/dInput into a buffer via a sacrificial
  // copy of the input delta mechanism — the network writes the input
  // gradient only into layer 0's consumer, so we wrap: treat layer 0's
  // input as the probe target by re-running Backward with an explicit
  // input delta tensor.
  Tensor input_delta(input.shape());
  net.ZeroDeltas();
  net.ZeroGrads();
  const Tensor& out = net.Forward(input, /*train=*/true);
  loss.seed(out, net.layer(net.num_layers() - 1).delta());
  // Manual backward that captures the input gradient.
  for (int i = net.num_layers() - 1; i >= 0; --i) {
    const Tensor& in = i == 0 ? input : net.layer(i - 1).output();
    Tensor* id = i == 0 ? &input_delta : &net.layer(i - 1).delta();
    net.layer(i).Backward(in, id, net);
  }

  GradCheckResult result;
  Tensor probe = input;
  for (int p = 0; p < num_probes; ++p) {
    const int64_t idx =
        static_cast<int64_t>(rng.NextU64Below(static_cast<uint64_t>(
            input.size())));
    const float orig = probe[idx];
    probe[idx] = orig + eps;
    const double lp = ForwardOnly(net, probe, loss);
    probe[idx] = orig - eps;
    const double lm = ForwardOnly(net, probe, loss);
    probe[idx] = orig;
    const float numeric = static_cast<float>((lp - lm) / (2.0 * eps));
    Accumulate(result, input_delta[idx], numeric);
  }
  return result;
}

GradCheckResult CheckParamGradients(Network& net, const Tensor& input,
                                    const ScalarLoss& loss, int num_probes,
                                    Rng& rng, float eps) {
  ForwardBackward(net, input, loss);

  // Snapshot analytic gradients (they are cleared by later passes only via
  // ZeroGrads, but ForwardOnly below does not touch them; still copy for
  // safety).
  std::vector<Param> params = net.AllParams();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(params.size());
  for (const Param& p : params) {
    analytic.emplace_back(p.grad->data(), p.grad->data() + p.grad->size());
  }

  GradCheckResult result;
  if (params.empty()) return result;
  for (int probe = 0; probe < num_probes; ++probe) {
    const size_t pi = rng.NextU64Below(params.size());
    if (params[pi].value->size() == 0) continue;
    const int64_t idx = static_cast<int64_t>(
        rng.NextU64Below(static_cast<uint64_t>(params[pi].value->size())));
    float* w = params[pi].value->data() + idx;
    const float orig = *w;
    *w = orig + eps;
    const double lp = ForwardOnly(net, input, loss);
    *w = orig - eps;
    const double lm = ForwardOnly(net, input, loss);
    *w = orig;
    const float numeric = static_cast<float>((lp - lm) / (2.0 * eps));
    Accumulate(result, analytic[pi][static_cast<size_t>(idx)], numeric);
  }
  return result;
}

}  // namespace thali
