#ifndef THALI_NN_SHORTCUT_LAYER_H_
#define THALI_NN_SHORTCUT_LAYER_H_

#include <vector>

#include "nn/activation.h"
#include "nn/layer.h"

namespace thali {

// Darknet's `[shortcut]`: elementwise residual addition of the previous
// layer's output and an earlier layer's output, followed by an
// activation. Both inputs must have identical shapes (the only form the
// YOLOv4 config family uses).
class ShortcutLayer : public Layer {
 public:
  struct Options {
    int from = -3;  // layer reference (negative = relative)
    Activation activation = Activation::kLinear;
  };

  explicit ShortcutLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "shortcut"; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;
  std::vector<int> ExtraInputIndices() const override { return {from_}; }

  int from_index() const { return from_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  int from_ = -1;
  Tensor pre_activation_;
};

}  // namespace thali

#endif  // THALI_NN_SHORTCUT_LAYER_H_
