#include "nn/yolo_layer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/fastpre.h"
#include "nn/network.h"
#include "tensor/act_kernels.h"
#include "tensor/ops.h"

namespace thali {

Status YoloLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("yolo input must be NCHW");
  }
  if (opts_.mask.empty() || opts_.classes <= 0) {
    return Status::InvalidArgument("yolo needs mask and classes");
  }
  for (int m : opts_.mask) {
    if (m < 0 || m >= static_cast<int>(opts_.anchors.size())) {
      return Status::InvalidArgument("yolo mask index out of range");
    }
  }
  const int64_t want =
      static_cast<int64_t>(opts_.mask.size()) * (5 + opts_.classes);
  if (input_shape.dim(1) != want) {
    return Status::InvalidArgument(
        "yolo input channels mismatch: got " +
        std::to_string(input_shape.dim(1)) + ", want " + std::to_string(want));
  }
  SetShapes(input_shape, input_shape);
  return Status::OK();
}

int64_t YoloLayer::Entry(int64_t b, int64_t n, int64_t attr, int64_t y,
                         int64_t x) const {
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t c = out_shape_.dim(1);
  const int64_t chan = n * (5 + opts_.classes) + attr;
  return ((b * c + chan) * gh + y) * gw + x;
}

void YoloLayer::Forward(const Tensor& input, Network& net, bool train) {
  std::copy(input.data(), input.data() + input.size(), output_.data());
  // Fast decode path: leave the raw values in place and let
  // GetDetections pre-filter in logit space, sigmoiding only survivors.
  // Opt-in via the network flag because the raw output is observable to
  // anyone reading output() directly; only owners that never do (the
  // detector) set it. Training forwards always activate — ComputeLoss
  // reads the sigmoided planes.
  raw_output_ =
      !train && inference() && net.defer_head_activation() && FastPreEnabled();
  if (raw_output_) return;
  const int64_t batch = out_shape_.dim(0);
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t spatial = gh * gw;
  const float s = opts_.scale_x_y;
  const int64_t n_anchors = static_cast<int64_t>(opts_.mask.size());

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t n = 0; n < n_anchors; ++n) {
      // x, y planes: scaled sigmoid.
      for (int64_t attr = 0; attr < 2; ++attr) {
        float* p = output_.data() + Entry(b, n, attr, 0, 0);
        for (int64_t i = 0; i < spatial; ++i) {
          p[i] = Sigmoid(p[i]) * s - 0.5f * (s - 1.0f);
        }
      }
      // objectness + class planes: plain sigmoid.
      for (int64_t attr = 4; attr < 5 + opts_.classes; ++attr) {
        float* p = output_.data() + Entry(b, n, attr, 0, 0);
        for (int64_t i = 0; i < spatial; ++i) p[i] = Sigmoid(p[i]);
      }
    }
  }
}

void YoloLayer::Backward(const Tensor&, Tensor* input_delta, Network&) {
  if (input_delta == nullptr) return;
  // delta_ already holds dL/d(raw input); accumulate.
  float* id = input_delta->data();
  const float* d = delta_.data();
  for (int64_t i = 0; i < delta_.size(); ++i) id[i] += d[i];
}

Box YoloLayer::PredBox(int64_t b, int64_t n, int64_t y, int64_t x, int net_w,
                       int net_h) const {
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const auto& anchor = opts_.anchors[static_cast<size_t>(
      opts_.mask[static_cast<size_t>(n)])];
  Box box;
  box.x = (static_cast<float>(x) + output_[Entry(b, n, 0, y, x)]) / gw;
  box.y = (static_cast<float>(y) + output_[Entry(b, n, 1, y, x)]) / gh;
  box.w = anchor.first * std::exp(output_[Entry(b, n, 2, y, x)]) / net_w;
  box.h = anchor.second * std::exp(output_[Entry(b, n, 3, y, x)]) / net_h;
  return box;
}

float YoloLayer::DeltaBox(int64_t b, int64_t n, int64_t y, int64_t x,
                          const Box& truth, int net_w, int net_h,
                          LossStats& stats) {
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const Box pred = PredBox(b, n, y, x, net_w, net_h);

  float g[4];
  const float ciou = CiouGrad(pred, truth, g);
  stats.box += (1.0f - ciou) * opts_.iou_normalizer;

  // dLoss/dpred = -grad(CIoU) * normalizer.
  const float s = opts_.scale_x_y;
  // Recover sigma from the stored scaled value: v = sig*s - 0.5(s-1).
  const float vx = output_[Entry(b, n, 0, y, x)];
  const float vy = output_[Entry(b, n, 1, y, x)];
  const float sig_x = (vx + 0.5f * (s - 1.0f)) / s;
  const float sig_y = (vy + 0.5f * (s - 1.0f)) / s;

  // Chain rules: bx = (cell + sig*s - 0.5(s-1))/gw; bw = aw*exp(tw)/net_w.
  const float dbx_dtx = s * sig_x * (1.0f - sig_x) / gw;
  const float dby_dty = s * sig_y * (1.0f - sig_y) / gh;
  const float dbw_dtw = pred.w;
  const float dbh_dth = pred.h;

  delta_[Entry(b, n, 0, y, x)] += -g[0] * opts_.iou_normalizer * dbx_dtx;
  delta_[Entry(b, n, 1, y, x)] += -g[1] * opts_.iou_normalizer * dby_dty;
  delta_[Entry(b, n, 2, y, x)] += -g[2] * opts_.iou_normalizer * dbw_dtw;
  delta_[Entry(b, n, 3, y, x)] += -g[3] * opts_.iou_normalizer * dbh_dth;

  return Iou(pred, truth);
}

void YoloLayer::DeltaClass(int64_t b, int64_t n, int64_t y, int64_t x,
                           int true_class, LossStats& stats) {
  for (int c = 0; c < opts_.classes; ++c) {
    const float p = output_[Entry(b, n, 5 + c, y, x)];
    const float target = (c == true_class) ? 1.0f : 0.0f;
    // BCE-with-logits gradient: sigma - target.
    delta_[Entry(b, n, 5 + c, y, x)] =
        (p - target) * opts_.cls_normalizer;
    const float pc = std::clamp(target > 0.5f ? p : 1.0f - p, 1e-7f, 1.0f);
    stats.cls += -std::log(pc) * opts_.cls_normalizer;
  }
}

YoloLayer::LossStats YoloLayer::ComputeLoss(const TruthBatch& truths,
                                            int net_w, int net_h) {
  const int64_t batch = out_shape_.dim(0);
  THALI_CHECK_EQ(static_cast<int64_t>(truths.size()), batch);
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t n_anchors = static_cast<int64_t>(opts_.mask.size());

  LossStats stats;
  float iou_sum = 0.0f;

  // Objectness target per anchor-cell: 0 = background, -1 = ignored
  // (overlaps a truth beyond ignore_thresh), 1 = assigned to a truth.
  // Deltas and the loss value are derived from this grid in one place so
  // they can never disagree.
  std::vector<int8_t> obj_state(
      static_cast<size_t>(batch * n_anchors * gh * gw), 0);
  auto state_at = [&](int64_t b, int64_t n, int64_t y, int64_t x) -> int8_t& {
    return obj_state[static_cast<size_t>(((b * n_anchors + n) * gh + y) * gw +
                                         x)];
  };

  // Pass 1: mark ignored cells (prediction already overlaps some truth).
  for (int64_t b = 0; b < batch; ++b) {
    if (truths[static_cast<size_t>(b)].empty()) continue;
    for (int64_t n = 0; n < n_anchors; ++n) {
      for (int64_t y = 0; y < gh; ++y) {
        for (int64_t x = 0; x < gw; ++x) {
          const Box pred = PredBox(b, n, y, x, net_w, net_h);
          float best_iou = 0.0f;
          for (const TruthBox& t : truths[static_cast<size_t>(b)]) {
            best_iou = std::max(best_iou, Iou(pred, t.box));
          }
          if (best_iou > opts_.ignore_thresh) state_at(b, n, y, x) = -1;
        }
      }
    }
  }

  // Pass 2: per-truth assignments.
  for (int64_t b = 0; b < batch; ++b) {
    for (const TruthBox& t : truths[static_cast<size_t>(b)]) {
      if (t.box.w <= 0 || t.box.h <= 0) continue;
      const int64_t cx = std::clamp<int64_t>(
          static_cast<int64_t>(t.box.x * gw), 0, gw - 1);
      const int64_t cy = std::clamp<int64_t>(
          static_cast<int64_t>(t.box.y * gh), 0, gh - 1);

      // Best anchor across the whole network, by wh-IoU in input pixels.
      const float tw_px = t.box.w * net_w;
      const float th_px = t.box.h * net_h;
      int best_a = 0;
      float best_wh = -1.0f;
      for (size_t a = 0; a < opts_.anchors.size(); ++a) {
        const float wh = WhIou(tw_px, th_px, opts_.anchors[a].first,
                               opts_.anchors[a].second);
        if (wh > best_wh) {
          best_wh = wh;
          best_a = static_cast<int>(a);
        }
      }

      for (int64_t n = 0; n < n_anchors; ++n) {
        const int a = opts_.mask[static_cast<size_t>(n)];
        bool assign = (a == best_a);
        if (!assign && opts_.iou_thresh < 1.0f) {
          const float wh = WhIou(tw_px, th_px, opts_.anchors[a].first,
                                 opts_.anchors[a].second);
          assign = wh > opts_.iou_thresh;
        }
        if (!assign) continue;

        const float iou = DeltaBox(b, n, cy, cx, t.box, net_w, net_h, stats);
        iou_sum += iou;
        ++stats.assigned;
        state_at(b, n, cy, cx) = 1;
        DeltaClass(b, n, cy, cx, t.class_id, stats);
      }
    }
  }

  // Pass 3: objectness deltas + loss from the final target grid.
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t n = 0; n < n_anchors; ++n) {
      for (int64_t y = 0; y < gh; ++y) {
        for (int64_t x = 0; x < gw; ++x) {
          const float obj = output_[Entry(b, n, 4, y, x)];
          switch (state_at(b, n, y, x)) {
            case -1:
              delta_[Entry(b, n, 4, y, x)] = 0.0f;
              break;
            case 0:
              delta_[Entry(b, n, 4, y, x)] = obj * opts_.obj_normalizer;
              stats.obj += -std::log(std::clamp(1.0f - obj, 1e-7f, 1.0f)) *
                           opts_.obj_normalizer;
              break;
            default:
              delta_[Entry(b, n, 4, y, x)] =
                  (obj - 1.0f) * opts_.obj_normalizer;
              stats.obj += -std::log(std::clamp(obj, 1e-7f, 1.0f)) *
                           opts_.obj_normalizer;
              break;
          }
        }
      }
    }
  }

  stats.avg_iou = stats.assigned > 0 ? iou_sum / stats.assigned : 0.0f;
  stats.total = stats.box + stats.obj + stats.cls;
  return stats;
}

std::vector<Detection> YoloLayer::DecodeRaw(int b, float conf_thresh,
                                            int net_w, int net_h) const {
  std::vector<Detection> dets;
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t spatial = gh * gw;
  const float s = opts_.scale_x_y;
  const int64_t n_anchors = static_cast<int64_t>(opts_.mask.size());

  // Conservative raw-logit threshold. Sigmoid is strictly monotone, so
  // obj >= conf_thresh implies t_obj >= logit(conf_thresh); the 1e-3
  // margin absorbs the float rounding of logit(). Survivors re-check the
  // exact sigmoid-domain test below, so the pre-filter can only ever be
  // conservative — the kept set is bitwise identical to the reference.
  float raw_thresh;
  if (!(conf_thresh > 0.0f)) {
    // Also covers NaN thresholds: collect everything, exactly like the
    // reference's never-true `obj < conf_thresh` skip.
    raw_thresh = -std::numeric_limits<float>::infinity();
  } else if (conf_thresh >= 1.0f) {
    // float Sigmoid rounds to exactly 1.0f for raw values above ~17, so
    // saturated cells can still pass the exact `obj < 1.0f` check.
    raw_thresh = 15.0f;
  } else {
    raw_thresh = std::log(conf_thresh / (1.0f - conf_thresh)) - 1e-3f;
  }

  std::vector<int32_t> hits(static_cast<size_t>(spatial));
  for (int64_t n = 0; n < n_anchors; ++n) {
    const float* obj_plane = output_.data() + Entry(b, n, 4, 0, 0);
    const int64_t m = CollectAtLeast(obj_plane, spatial, raw_thresh,
                                     hits.data());
    const auto& anchor = opts_.anchors[static_cast<size_t>(
        opts_.mask[static_cast<size_t>(n)])];
    for (int64_t h = 0; h < m; ++h) {
      const int64_t i = hits[static_cast<size_t>(h)];
      const int64_t y = i / gw;
      const int64_t x = i - y * gw;
      const float obj = Sigmoid(obj_plane[i]);
      if (obj < conf_thresh) continue;
      // Exact seed expressions on the raw values: each activated value
      // is computed with the same expression Forward stores, then fed
      // through the same PredBox arithmetic — identical bits.
      const float vx =
          Sigmoid(output_[Entry(b, n, 0, y, x)]) * s - 0.5f * (s - 1.0f);
      const float vy =
          Sigmoid(output_[Entry(b, n, 1, y, x)]) * s - 0.5f * (s - 1.0f);
      Box box;
      box.x = (static_cast<float>(x) + vx) / gw;
      box.y = (static_cast<float>(y) + vy) / gh;
      box.w = anchor.first * std::exp(output_[Entry(b, n, 2, y, x)]) / net_w;
      box.h = anchor.second * std::exp(output_[Entry(b, n, 3, y, x)]) / net_h;
      for (int c = 0; c < opts_.classes; ++c) {
        const float conf = obj * Sigmoid(output_[Entry(b, n, 5 + c, y, x)]);
        if (conf < conf_thresh) continue;
        Detection d;
        d.box = box;
        d.class_id = c;
        d.confidence = conf;
        dets.push_back(d);
      }
    }
  }
  return dets;
}

std::vector<Detection> YoloLayer::GetDetections(int b, float conf_thresh,
                                                int net_w, int net_h) const {
  if (raw_output_) return DecodeRaw(b, conf_thresh, net_w, net_h);
  std::vector<Detection> dets;
  const int64_t gh = out_shape_.dim(2);
  const int64_t gw = out_shape_.dim(3);
  const int64_t n_anchors = static_cast<int64_t>(opts_.mask.size());
  for (int64_t n = 0; n < n_anchors; ++n) {
    for (int64_t y = 0; y < gh; ++y) {
      for (int64_t x = 0; x < gw; ++x) {
        const float obj = output_[Entry(b, n, 4, y, x)];
        if (obj < conf_thresh) continue;
        const Box box = PredBox(b, n, y, x, net_w, net_h);
        for (int c = 0; c < opts_.classes; ++c) {
          const float conf = obj * output_[Entry(b, n, 5 + c, y, x)];
          if (conf < conf_thresh) continue;
          Detection d;
          d.box = box;
          d.class_id = c;
          d.confidence = conf;
          dets.push_back(d);
        }
      }
    }
  }
  return dets;
}

}  // namespace thali
