#ifndef THALI_NN_NETWORK_H_
#define THALI_NN_NETWORK_H_

#include <memory>
#include <vector>

#include "base/statusor.h"
#include "nn/exec_plan.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace thali {

// A feed-forward network of Darknet-style layers executed in insertion
// order. Route/shortcut layers make the graph a DAG, referencing earlier
// layers by index.
//
// Usage:
//   Network net(width, height, channels, batch);
//   net.Add(std::make_unique<ConvLayer>(...));
//   ...
//   THALI_CHECK_OK(net.Finalize(ExecMode::kInference));
//   const Tensor& out = net.Forward(input);
class Network {
 public:
  // `width`/`height`/`channels` describe the input image planes; `batch`
  // sets the initial batch dimension (changeable later via SetBatch).
  Network(int width, int height, int channels, int batch);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Appends a layer. Must be called before Finalize.
  void Add(std::unique_ptr<Layer> layer);

  // Configures every layer's shapes/buffers for `mode`, sizes the shared
  // workspace and plans output storage. Must be called once after the
  // last Add. kTraining reproduces the seed allocator (per-layer output
  // + delta); kInference skips deltas/backward caches and places outputs
  // in a liveness-planned shared arena unless the THALI_NO_ARENA
  // environment variable is set (each layer then owns its output).
  Status Finalize(ExecMode mode = ExecMode::kTraining);

  // Changes the batch dimension of an already-finalized network:
  // re-derives every layer's shapes, resizes activation buffers and
  // re-plans arena offsets. Learnable parameters and layer objects are
  // untouched, so a loaded model keeps its weights across batch changes.
  Status SetBatch(int batch);

  // Recompiles the execution plan of a finalized inference network
  // without touching shapes. Quantize-once chaining depends on
  // calibration state the plan compiler reads from the conv layers, so
  // this must run after Detector::CalibrateInt8 / LoadCalibration
  // install activation ranges (to pick the chains up) and after
  // ResetCalibration drops them (a chained conv has no fp32 fallback).
  // No-op outside THALI_INT8 inference. Grows workspaces if the fresh
  // plan needs more scratch.
  Status ReplanInference();

  // Runs all layers; returns the last layer's output. `input` must be
  // (batch, channels, height, width). With train=true, layers use batch
  // statistics and keep backward caches — kTraining networks only.
  const Tensor& Forward(const Tensor& input, bool train = false);

  // Backpropagates all layer deltas (seeded by loss layers) down to the
  // input. Call after Forward(train=true) and after loss layers populated
  // their delta tensors. Parameter gradients accumulate until ZeroGrads.
  // kTraining networks only.
  void Backward(const Tensor& input);

  // Clears every layer's delta tensor (dL/dOutput buffers). kTraining
  // networks only.
  void ZeroDeltas();

  // Clears every parameter gradient accumulator.
  void ZeroGrads();

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_.at(static_cast<size_t>(i)); }
  const Layer& layer(int i) const { return *layers_.at(static_cast<size_t>(i)); }

  // Resolves a possibly-negative Darknet layer reference (-1 = previous
  // layer relative to `at`) to an absolute index.
  int ResolveIndex(int ref, int at) const;

  int input_width() const { return width_; }
  int input_height() const { return height_; }
  int input_channels() const { return channels_; }
  int batch() const { return batch_; }
  Shape input_shape() const {
    return Shape({batch_, channels_, height_, width_});
  }

  // Execution mode chosen at Finalize.
  ExecMode exec_mode() const { return mode_; }

  // THALI_INT8 opt-in, latched at Finalize like the fuse/arena knobs.
  // When false the plan compiler never emits kQuantInt8.
  bool int8_enabled() const { return int8_enabled_; }

  // Active calibration pass. Conv layers consult this in Forward: any
  // phase other than kOff forces the fp32 path and records statistics.
  CalibPhase calib_phase() const { return calib_phase_; }
  void set_calib_phase(CalibPhase phase) { calib_phase_ = phase; }

  // Opt-in for the decode fast path (base/fastpre.h): when set on an
  // inference network, YOLO heads skip their Forward sigmoid loops and
  // leave output_ holding RAW logits; GetDetections then pre-filters in
  // logit space and activates only surviving cells (bitwise identical
  // detections). Only owners that never read head outputs directly
  // (Detector) should set this — raw Network users keep the seed
  // sigmoided outputs.
  bool defer_head_activation() const { return defer_head_activation_; }
  void set_defer_head_activation(bool defer) {
    defer_head_activation_ = defer;
  }

  // The activation-arena plan computed at Finalize/SetBatch. For
  // kTraining networks the plan is computed for reporting only
  // (enabled=false); for kInference it reflects the live layout unless
  // THALI_NO_ARENA disabled placement.
  const ArenaPlan& arena_plan() const { return eplan_.arena; }

  // The full execution plan (per-layer layouts, conv algorithms, copy
  // elisions) the inference plan compiler produced at Finalize/SetBatch.
  // Training networks and THALI_NO_FUSE inference get the reference
  // plan (fused == false, all LayerPlans default).
  const ExecPlan& exec_plan() const { return eplan_; }

  // Bytes of activation buffers this network holds live: outputs plus
  // deltas in training mode; the arena (or per-layer outputs under
  // THALI_NO_ARENA) in inference mode. The acceptance metric the memory
  // bench reports.
  int64_t ActivationBytes() const;

  // Per-thread scratch buffer (im2col panels). Finalize sizes one slot
  // per strand of parallelism (MaxParallelism() at finalize time), each
  // holding the largest WorkspaceSize() any layer declared. `tid` is the
  // strand index a ParallelFor chunk runs as; `required` is the float
  // count the layer is about to use and is checked against the sized
  // capacity — an undersized workspace would otherwise be a silent
  // buffer overrun.
  float* workspace(int tid, int64_t required);

  // Base of layer i's u8 activation tensor, or nullptr when the plan
  // keeps that layer fp32. Valid after PlanBuffers; chained producers
  // write their requantized bytes here and chained consumers read their
  // sources' pointers. Storage lives in per-alias-group DTypeBuffers
  // parallel to the fp32 arena (the fp32 slots stay bound, so
  // THALI_INT8=0 and unchained plans are untouched).
  uint8_t* quant_act(int i) {
    return qact_.empty() ? nullptr : qact_[static_cast<size_t>(i)];
  }

  // Base of the quantized NETWORK INPUT tensor, or nullptr when the plan
  // does not chain layer 0 (plan.input_u8 == false). When the chain
  // reaches layer 0, Forward fills this by quantizing the fp32 input
  // with the plan's input domain — unless the caller already staged the
  // bytes (the detector's fused letterbox→quantize path) and armed
  // set_input_prequantized, in which case the staged bytes are consumed
  // as-is (one-shot; the flag clears on every Forward).
  uint8_t* quant_input() { return qinput_.empty() ? nullptr : qinput_.raw(); }
  void set_input_prequantized(bool prequantized) {
    input_prequantized_ = prequantized;
  }
  // Scratch floats available per slot.
  int64_t workspace_size() const { return workspace_floats_; }
  // Number of per-thread slots; callers running layer code in parallel
  // must bound their strand count by this (ParallelForBounded).
  int workspace_slots() const { return static_cast<int>(workspaces_.size()); }

  // All learnable parameters of unfrozen layers, in layer order.
  std::vector<Param> TrainableParams();
  // All learnable parameters regardless of freeze state (serialization).
  std::vector<Param> AllParams();

  // Total learnable parameter count.
  int64_t NumParameters() const;

  // Freezes layers [0, cutoff) — the transfer-learning backbone freeze.
  void FreezeUpTo(int cutoff);

  bool finalized() const { return finalized_; }

 private:
  // (Re)plans output storage: computes the arena plan and either binds
  // layer outputs into arena_ (inference + arena enabled) or gives each
  // layer an owned output buffer. Also records the planner report.
  void PlanBuffers();

  int width_;
  int height_;
  int channels_;
  int batch_;
  ExecMode mode_ = ExecMode::kTraining;
  // THALI_NO_ARENA / THALI_NO_FUSE, sampled once at Finalize so later
  // SetBatch re-plans keep the same decisions.
  bool arena_disabled_ = false;
  bool fuse_disabled_ = false;
  // THALI_INT8, sampled once at Finalize (opt-in, so the default is off).
  bool int8_enabled_ = false;
  CalibPhase calib_phase_ = CalibPhase::kOff;
  bool defer_head_activation_ = false;
  bool input_prequantized_ = false;
  bool finalized_ = false;
  std::vector<std::unique_ptr<Layer>> layers_;
  // One im2col scratch tensor per parallel strand (distinct allocations,
  // so concurrent strands never share cache lines).
  std::vector<Tensor> workspaces_;
  int64_t workspace_floats_ = 0;
  // Shared activation storage for arena-planned inference outputs.
  Tensor arena_;
  // u8 activation blocks for quantize-once chaining: one buffer per
  // alias-group root whose planned out_dtype is kU8, plus the resolved
  // per-layer base pointers (both empty without chains).
  std::vector<DTypeBuffer> qbufs_;
  std::vector<uint8_t*> qact_;
  // Quantized network-input bytes when the chain reaches layer 0
  // (plan.input_u8); empty otherwise.
  DTypeBuffer qinput_;
  ExecPlan eplan_;
};

}  // namespace thali

#endif  // THALI_NN_NETWORK_H_
