#ifndef THALI_NN_NETWORK_H_
#define THALI_NN_NETWORK_H_

#include <memory>
#include <vector>

#include "base/statusor.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace thali {

// A feed-forward network of Darknet-style layers executed in insertion
// order. Route/shortcut layers make the graph a DAG, referencing earlier
// layers by index.
//
// Usage:
//   Network net(width, height, channels, batch);
//   net.Add(std::make_unique<ConvLayer>(...));
//   ...
//   THALI_CHECK_OK(net.Finalize());
//   const Tensor& out = net.Forward(input);
class Network {
 public:
  // `width`/`height`/`channels` describe the input image planes; `batch`
  // fixes the batch dimension for all buffers.
  Network(int width, int height, int channels, int batch);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Appends a layer. Must be called before Finalize.
  void Add(std::unique_ptr<Layer> layer);

  // Configures every layer's shapes/buffers and sizes the shared
  // workspace. Must be called once after the last Add.
  Status Finalize();

  // Runs all layers; returns the last layer's output. `input` must be
  // (batch, channels, height, width). With train=true, layers use batch
  // statistics and keep backward caches.
  const Tensor& Forward(const Tensor& input, bool train = false);

  // Backpropagates all layer deltas (seeded by loss layers) down to the
  // input. Call after Forward(train=true) and after loss layers populated
  // their delta tensors. Parameter gradients accumulate until ZeroGrads.
  void Backward(const Tensor& input);

  // Clears every layer's delta tensor (dL/dOutput buffers).
  void ZeroDeltas();

  // Clears every parameter gradient accumulator.
  void ZeroGrads();

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_.at(static_cast<size_t>(i)); }
  const Layer& layer(int i) const { return *layers_.at(static_cast<size_t>(i)); }

  // Resolves a possibly-negative Darknet layer reference (-1 = previous
  // layer relative to `at`) to an absolute index.
  int ResolveIndex(int ref, int at) const;

  int input_width() const { return width_; }
  int input_height() const { return height_; }
  int input_channels() const { return channels_; }
  int batch() const { return batch_; }
  Shape input_shape() const {
    return Shape({batch_, channels_, height_, width_});
  }

  // Per-thread scratch buffer (im2col panels). Finalize sizes one slot
  // per strand of parallelism (MaxParallelism() at finalize time), each
  // holding the largest WorkspaceSize() any layer declared. `tid` is the
  // strand index a ParallelFor chunk runs as; `required` is the float
  // count the layer is about to use and is checked against the sized
  // capacity — an undersized workspace would otherwise be a silent
  // buffer overrun.
  float* workspace(int tid, int64_t required);
  // Scratch floats available per slot.
  int64_t workspace_size() const { return workspace_floats_; }
  // Number of per-thread slots; callers running layer code in parallel
  // must bound their strand count by this (ParallelForBounded).
  int workspace_slots() const { return static_cast<int>(workspaces_.size()); }

  // All learnable parameters of unfrozen layers, in layer order.
  std::vector<Param> TrainableParams();
  // All learnable parameters regardless of freeze state (serialization).
  std::vector<Param> AllParams();

  // Total learnable parameter count.
  int64_t NumParameters() const;

  // Freezes layers [0, cutoff) — the transfer-learning backbone freeze.
  void FreezeUpTo(int cutoff);

  bool finalized() const { return finalized_; }

 private:
  int width_;
  int height_;
  int channels_;
  int batch_;
  bool finalized_ = false;
  std::vector<std::unique_ptr<Layer>> layers_;
  // One im2col scratch tensor per parallel strand (distinct allocations,
  // so concurrent strands never share cache lines).
  std::vector<Tensor> workspaces_;
  int64_t workspace_floats_ = 0;
};

}  // namespace thali

#endif  // THALI_NN_NETWORK_H_
