#ifndef THALI_NN_GRADIENT_CHECK_H_
#define THALI_NN_GRADIENT_CHECK_H_

#include <functional>
#include <vector>

#include "base/rng.h"
#include "nn/network.h"
#include "nn/truth.h"

namespace thali {

// Finite-difference verification of the analytic backward pass. Used by
// the property-based test suite: for random small networks, the analytic
// parameter/input gradients must agree with central differences of the
// scalar loss.

// A scalar loss over the network's final output (e.g. 0.5*||out - tgt||^2
// with its seed delta).
struct ScalarLoss {
  // Returns the loss value for `out`.
  std::function<double(const Tensor& out)> value;
  // Writes dLoss/dOut into `delta` (same shape as out).
  std::function<void(const Tensor& out, Tensor& delta)> seed;
};

// The standard check loss: L = 0.5 * sum((out - target)^2).
ScalarLoss SquaredErrorLoss(Tensor target);

struct GradCheckResult {
  float max_abs_err = 0.0f;  // worst |analytic - numeric|
  float max_rel_err = 0.0f;  // worst |a-n| / max(|a|,|n|,floor)
  int checked = 0;
  // Per-probe relative errors (0 for sub-noise differences). Piecewise
  // activations (leaky/maxpool) legitimately produce a few large entries
  // when a probe straddles a kink, so tests assert on quantiles: a real
  // backward bug (sign flip, missing chain factor) corrupts *every*
  // probe, a kink only a few.
  std::vector<float> rel_errors;

  // Fraction of probes with relative error above `threshold`.
  float FractionAbove(float threshold) const {
    if (rel_errors.empty()) return 0.0f;
    int n = 0;
    for (float e : rel_errors) {
      if (e > threshold) ++n;
    }
    return static_cast<float>(n) / static_cast<float>(rel_errors.size());
  }
};

// Compares analytic input gradients against central differences for
// `num_probes` randomly chosen input coordinates.
GradCheckResult CheckInputGradients(Network& net, const Tensor& input,
                                    const ScalarLoss& loss, int num_probes,
                                    Rng& rng, float eps = 2e-3f);

// Compares analytic parameter gradients against central differences for
// `num_probes` randomly chosen parameter coordinates.
GradCheckResult CheckParamGradients(Network& net, const Tensor& input,
                                    const ScalarLoss& loss, int num_probes,
                                    Rng& rng, float eps = 4e-3f);

}  // namespace thali

#endif  // THALI_NN_GRADIENT_CHECK_H_
