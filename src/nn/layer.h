#ifndef THALI_NN_LAYER_H_
#define THALI_NN_LAYER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "nn/exec_plan.h"
#include "tensor/tensor.h"

namespace thali {

class Network;

// One learnable parameter tensor of a layer, paired with its gradient
// accumulator. `apply_decay` marks tensors subject to L2 weight decay
// (conv weights yes; biases and batch-norm scales no, per Darknet).
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool apply_decay = false;
  std::string name;
};

// Read-only view of a Param, for const consumers (summaries, parameter
// counting) that must not mutate the tensors.
struct ConstParam {
  const Tensor* value = nullptr;
  const Tensor* grad = nullptr;
  bool apply_decay = false;
  std::string name;
};

// Base class for all network layers (Darknet semantics: every layer owns
// its output activation tensor; training networks additionally give each
// layer a delta tensor holding dLoss/dOutput).
//
// Lifecycle: construct -> Configure(input_shape) once the preceding
// layer's shape is known -> Forward/Backward repeatedly. The execution
// mode (set by Network::Finalize before Configure runs) decides what
// Configure allocates: kTraining layers own output + delta + backward
// caches; kInference layers allocate neither delta nor caches, and their
// output storage is provided by the network (arena-planned or owned).
// Batch size is taken from the input shape and may later change via
// Rebatch (Network::SetBatch), which re-derives shapes and resizes
// activation buffers without touching parameters.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  // Short Darknet-style kind tag ("convolutional", "route", ...).
  virtual const char* kind() const = 0;

  // Validates geometry, computes the output shape and allocates buffers.
  // `net` exposes earlier layers (route/shortcut need their shapes).
  virtual Status Configure(const Shape& input_shape, const Network& net) = 0;

  // Re-derives shapes and resizes activation buffers for a new batch
  // size, leaving learnable parameters untouched. The default re-runs
  // Configure, which is correct for every parameter-free layer; layers
  // owning parameters (conv) override to skip parameter initialization.
  virtual Status Rebatch(const Shape& input_shape, const Network& net) {
    return Configure(input_shape, net);
  }

  // Computes output_ from `input` (the preceding layer's output, NCHW).
  // `train` selects training behaviour (batch statistics, caches) and is
  // only legal on a kTraining network.
  virtual void Forward(const Tensor& input, Network& net, bool train) = 0;

  // Propagates delta_ (dL/dOutput) into `input_delta` (accumulating;
  // may be null at the network input) and accumulates parameter
  // gradients. Layers reading extra inputs (route/shortcut) also
  // accumulate into those layers' deltas via `net`. kTraining only.
  virtual void Backward(const Tensor& input, Tensor* input_delta,
                        Network& net) = 0;

  // Learnable parameters (empty for pooling/route/etc.).
  virtual std::vector<Param> Params() { return {}; }
  // Const view of the same parameters for read-only consumers.
  virtual std::vector<ConstParam> Params() const { return {}; }

  // Scratch floats this layer needs from the shared network workspace.
  virtual int64_t WorkspaceSize() const { return 0; }

  // Gives layers with GEMM weights a chance to pre-pack them into the
  // microkernel panel layout (inference-mode networks call this from
  // Network::Finalize; layers re-pack lazily after weight mutations).
  // Default: nothing to pack.
  virtual void PrepackWeights() {}

  // --- Dataflow hooks for the activation arena planner. Valid after
  // Configure (layer references resolved). ---

  // Earlier layers whose outputs Forward reads through `net` (route
  // sources, shortcut 'from').
  virtual std::vector<int> ExtraInputIndices() const { return {}; }
  // Whether Forward reads the `input` argument (the previous layer's
  // output). Route reads only its sources.
  virtual bool ReadsPreviousOutput() const { return true; }
  // Whether the output is consumed after the forward pass finishes
  // (detection heads are decoded post-forward), pinning it live to the
  // end of the plan.
  virtual bool OutputLiveAfterForward() const { return false; }

  const Shape& input_shape() const { return in_shape_; }
  const Shape& output_shape() const { return out_shape_; }
  Tensor& output() { return output_; }
  const Tensor& output() const { return output_; }
  Tensor& delta() { return delta_; }
  const Tensor& delta() const { return delta_; }

  // Position in the owning network; set by Network::Add.
  int index() const { return index_; }
  void set_index(int idx) { index_ = idx; }

  // Execution mode, set by Network::Finalize before Configure runs.
  // Standalone layers default to kTraining (the seed behaviour).
  ExecMode exec_mode() const { return mode_; }
  void set_exec_mode(ExecMode mode) { mode_ = mode; }

  // This layer's slice of the compiled execution plan, pushed by
  // Network::PlanBuffers after CompileExecPlan runs (and re-pushed on
  // every SetBatch). The default-constructed LayerPlan (NCHW, im2col,
  // nothing fused or elided) is what training networks and standalone
  // layers run with.
  const LayerPlan& plan() const { return plan_; }
  void set_plan(const LayerPlan& plan) { plan_ = plan; }

  // Called by Network::PlanBuffers after every layer's plan has been
  // (re)pushed — at Finalize, SetBatch and ReplanInference. Layers that
  // derive per-forward state from the plan (the conv int8 workspace
  // sections) recompute it here instead of on every Forward.
  virtual void OnPlanUpdated() {}

  // When frozen, the optimizer skips this layer's parameters (transfer
  // learning freezes backbone layers).
  bool frozen() const { return frozen_; }
  void set_frozen(bool f) { frozen_ = f; }

 protected:
  Layer() = default;

  // True when the layer runs inference-only: no delta, no backward
  // caches. Layers gate their cache allocations/writes on this.
  bool inference() const { return mode_ == ExecMode::kInference; }

  // Records shapes and allocates the mode-appropriate buffers: training
  // layers own output_ and delta_; inference layers get their output
  // storage from Network::Finalize (arena slot or owned fallback) after
  // all layers are configured.
  void SetShapes(Shape input_shape, Shape output_shape) {
    in_shape_ = std::move(input_shape);
    out_shape_ = std::move(output_shape);
    if (!inference()) {
      output_.Resize(out_shape_);
      delta_.Resize(out_shape_);
    } else if (!output_.external()) {
      // Drop any stale owned storage; the network (re)binds or sizes it.
      output_ = Tensor();
    }
  }

  Shape in_shape_;
  Shape out_shape_;
  Tensor output_;
  Tensor delta_;

 private:
  int index_ = -1;
  ExecMode mode_ = ExecMode::kTraining;
  LayerPlan plan_;
  bool frozen_ = false;
};

}  // namespace thali

#endif  // THALI_NN_LAYER_H_
