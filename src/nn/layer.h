#ifndef THALI_NN_LAYER_H_
#define THALI_NN_LAYER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "tensor/tensor.h"

namespace thali {

class Network;

// One learnable parameter tensor of a layer, paired with its gradient
// accumulator. `apply_decay` marks tensors subject to L2 weight decay
// (conv weights yes; biases and batch-norm scales no, per Darknet).
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool apply_decay = false;
  std::string name;
};

// Base class for all network layers (Darknet semantics: every layer owns
// its output activation tensor and a delta tensor holding dLoss/dOutput).
//
// Lifecycle: construct -> Configure(input_shape) once the preceding
// layer's shape is known -> Forward/Backward repeatedly. Batch size is
// fixed at Configure time (shape dim 0).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  // Short Darknet-style kind tag ("convolutional", "route", ...).
  virtual const char* kind() const = 0;

  // Validates geometry, computes the output shape and allocates buffers.
  // `net` exposes earlier layers (route/shortcut need their shapes).
  virtual Status Configure(const Shape& input_shape, const Network& net) = 0;

  // Computes output_ from `input` (the preceding layer's output, NCHW).
  // `train` selects training behaviour (batch statistics, caches).
  virtual void Forward(const Tensor& input, Network& net, bool train) = 0;

  // Propagates delta_ (dL/dOutput) into `input_delta` (accumulating;
  // may be null at the network input) and accumulates parameter
  // gradients. Layers reading extra inputs (route/shortcut) also
  // accumulate into those layers' deltas via `net`.
  virtual void Backward(const Tensor& input, Tensor* input_delta,
                        Network& net) = 0;

  // Learnable parameters (empty for pooling/route/etc.).
  virtual std::vector<Param> Params() { return {}; }

  // Scratch floats this layer needs from the shared network workspace.
  virtual int64_t WorkspaceSize() const { return 0; }

  const Shape& input_shape() const { return in_shape_; }
  const Shape& output_shape() const { return out_shape_; }
  Tensor& output() { return output_; }
  const Tensor& output() const { return output_; }
  Tensor& delta() { return delta_; }
  const Tensor& delta() const { return delta_; }

  // Position in the owning network; set by Network::Add.
  int index() const { return index_; }
  void set_index(int idx) { index_ = idx; }

  // When frozen, the optimizer skips this layer's parameters (transfer
  // learning freezes backbone layers).
  bool frozen() const { return frozen_; }
  void set_frozen(bool f) { frozen_ = f; }

 protected:
  Layer() = default;

  // Allocates output_ and delta_ for `shape` and records shapes.
  void SetShapes(Shape input_shape, Shape output_shape) {
    in_shape_ = std::move(input_shape);
    out_shape_ = std::move(output_shape);
    output_.Resize(out_shape_);
    delta_.Resize(out_shape_);
  }

  Shape in_shape_;
  Shape out_shape_;
  Tensor output_;
  Tensor delta_;

 private:
  int index_ = -1;
  bool frozen_ = false;
};

}  // namespace thali

#endif  // THALI_NN_LAYER_H_
