#include "nn/shortcut_layer.h"

#include "nn/network.h"

namespace thali {

Status ShortcutLayer::Configure(const Shape& input_shape, const Network& net) {
  from_ = opts_.from < 0 ? index() + opts_.from : opts_.from;
  if (from_ < 0 || from_ >= index()) {
    return Status::InvalidArgument("shortcut source must precede it");
  }
  const Shape& from_shape = net.layer(from_).output_shape();
  if (from_shape != input_shape) {
    return Status::InvalidArgument(
        "shortcut shape mismatch: " + from_shape.ToString() + " vs " +
        input_shape.ToString());
  }
  SetShapes(input_shape, input_shape);
  if (opts_.activation != Activation::kLinear && !inference()) {
    pre_activation_.Resize(out_shape_);
  }
  return Status::OK();
}

// Elementwise, so layout-invariant as long as both inputs share the
// output's layout (the plan compiler's fixpoint guarantees that). When
// the plan elided this layer's copy, output_ aliases the previous
// layer's block: each o[i] reads a[i] before overwriting it, so the
// in-place add needs no special casing.
void ShortcutLayer::Forward(const Tensor& input, Network& net, bool) {
  if (plan().out_dtype == DType::kU8) {
    // Quantize-once chain (linear-activation shortcuts only, per the
    // dtype pass). Both inputs share the output's quantization domain,
    // so with q = rne(x/s) + zp the fp32 sum maps to a + b - zp,
    // saturated to the 7-bit activation range. In-place elision is safe
    // for the same reason as the fp32 path: o[i] reads a[i] first.
    const uint8_t* a = net.quant_act(index() - 1);
    const uint8_t* b = net.quant_act(from_);
    uint8_t* o = net.quant_act(index());
    const int zp = plan().out_qzp;
    const int64_t n = out_shape_.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      const int v = static_cast<int>(a[i]) + static_cast<int>(b[i]) - zp;
      o[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 127 ? 127 : v));
    }
    return;
  }
  const Tensor& from = net.layer(from_).output();
  const float* a = input.data();
  const float* b = from.data();
  float* o = output_.data();
  const int64_t n = output_.size();
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
  if (opts_.activation != Activation::kLinear) {
    if (!inference()) std::copy(o, o + n, pre_activation_.data());
    ApplyActivation(opts_.activation, o, n);
  }
}

void ShortcutLayer::Backward(const Tensor&, Tensor* input_delta,
                             Network& net) {
  if (opts_.activation != Activation::kLinear) {
    GradientActivation(opts_.activation, pre_activation_.data(), delta_.data(),
                       delta_.size());
  }
  const float* d = delta_.data();
  const int64_t n = delta_.size();
  if (input_delta != nullptr) {
    float* id = input_delta->data();
    for (int64_t i = 0; i < n; ++i) id[i] += d[i];
  }
  float* fd = net.layer(from_).delta().data();
  for (int64_t i = 0; i < n; ++i) fd[i] += d[i];
}

}  // namespace thali
