#ifndef THALI_NN_YOLO_LAYER_H_
#define THALI_NN_YOLO_LAYER_H_

#include <utility>
#include <vector>

#include "eval/detection.h"
#include "nn/detection_head.h"
#include "nn/layer.h"
#include "nn/truth.h"

namespace thali {

// YOLOv3/v4 detection head (`[yolo]`). The incoming feature map carries,
// per anchor of this head and per grid cell, the raw values
// (tx, ty, tw, th, t_obj, t_cls0..t_clsC-1).
//
// Forward activates in place into output_: x and y become
// sigmoid(t)*scale_x_y - 0.5*(scale_x_y - 1) (the YOLOv4 grid-sensitivity
// fix), objectness and class scores become sigmoids, w/h stay raw.
//
// Training follows AlexeyAB's YOLOv4 recipe: CIoU loss on assigned boxes,
// binary cross-entropy on objectness (with the ignore-threshold rule) and
// on class scores, and multi-anchor assignment above `iou_thresh`.
//
// Convention: after ComputeLoss, delta_ holds dLoss/d(raw inputs) — the
// sigmoid chains are already applied — so Backward simply accumulates
// delta_ into the previous layer's delta.
class YoloLayer : public Layer, public DetectionHead {
 public:
  struct Options {
    // All anchor (w,h) pairs of the network, in network-input pixels.
    std::vector<std::pair<float, float>> anchors;
    // Indices into `anchors` owned by this head.
    std::vector<int> mask;
    int classes = 10;
    // Predictions whose best IoU with any truth exceeds this are not
    // punished for objectness.
    float ignore_thresh = 0.7f;
    // Anchors (besides the best) whose wh-IoU with a truth exceeds this
    // are also assigned to it; 1.0 disables (YOLOv4 uses 0.213).
    float iou_thresh = 1.0f;
    float scale_x_y = 1.0f;
    // Loss term weights (Darknet normalizers).
    float iou_normalizer = 0.07f;
    float obj_normalizer = 1.0f;
    float cls_normalizer = 1.0f;
  };

  // Loss decomposition for one ComputeLoss call, for progress logging.
  using LossStats = HeadLossStats;

  explicit YoloLayer(const Options& options) : opts_(options) {}

  const char* kind() const override { return "yolo"; }
  // Detections are decoded from the head output after the forward pass.
  bool OutputLiveAfterForward() const override { return true; }
  Status Configure(const Shape& input_shape, const Network& net) override;
  void Forward(const Tensor& input, Network& net, bool train) override;
  void Backward(const Tensor& input, Tensor* input_delta,
                Network& net) override;

  // Computes the YOLOv4 loss against `truths` (boxes normalized to [0,1]
  // of the network input) and seeds delta_. Must follow
  // Forward(train=true). net_w/net_h are the network input dimensions.
  LossStats ComputeLoss(const TruthBatch& truths, int net_w,
                        int net_h) override;

  // Decodes detections for batch item `b` with confidence
  // (objectness * class prob) above `conf_thresh`. Boxes are normalized
  // to [0,1] of the network input.
  std::vector<Detection> GetDetections(int b, float conf_thresh, int net_w,
                                       int net_h) const override;

  const Options& options() const { return opts_; }
  int grid_w() const { return static_cast<int>(out_shape_.dim(3)); }
  int grid_h() const { return static_cast<int>(out_shape_.dim(2)); }

 private:
  // Flat index of (batch, anchor-slot n, attribute a, cell y, cell x).
  int64_t Entry(int64_t b, int64_t n, int64_t attr, int64_t y,
                int64_t x) const;

  // Decode for the raw-logit fast path: a SIMD objectness pre-filter in
  // logit space (sigmoid is monotone, so thresholding raw t_obj against
  // a conservative logit(conf_thresh) cannot drop a detection the
  // reference keeps), then exact seed-expression decode of only the
  // surviving cells — bitwise identical detections, cost proportional
  // to detections instead of grid cells.
  std::vector<Detection> DecodeRaw(int b, float conf_thresh, int net_w,
                                   int net_h) const;

  // Decodes the predicted box at an anchor slot/cell from output_.
  Box PredBox(int64_t b, int64_t n, int64_t y, int64_t x, int net_w,
              int net_h) const;

  // Writes the CIoU box delta and returns the IoU of pred vs truth.
  float DeltaBox(int64_t b, int64_t n, int64_t y, int64_t x,
                 const Box& truth, int net_w, int net_h, LossStats& stats);

  void DeltaClass(int64_t b, int64_t n, int64_t y, int64_t x, int true_class,
                  LossStats& stats);

  Options opts_;
  // Latched by Forward: true when output_ was left holding the RAW head
  // values (inference nets whose owner opted in via
  // Network::set_defer_head_activation and the fast pre/post path is
  // enabled). GetDetections then routes through DecodeRaw.
  bool raw_output_ = false;
};

}  // namespace thali

#endif  // THALI_NN_YOLO_LAYER_H_
