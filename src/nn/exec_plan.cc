#include "nn/exec_plan.h"

#include <algorithm>
#include <sstream>

#include "base/string_util.h"
#include "nn/network.h"

namespace thali {

namespace {

// Arena offsets are aligned to 16 floats (64 bytes) so no two layers'
// buffers share a cache line and vectorized kernels see aligned bases.
constexpr int64_t kArenaAlignFloats = 16;

int64_t AlignUp(int64_t v) {
  return (v + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

}  // namespace

const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kTraining ? "training" : "inference";
}

ArenaPlan PlanActivationArena(const Network& net) {
  const int n = net.num_layers();
  ArenaPlan plan;
  plan.assignments.resize(static_cast<size_t>(n));

  // 1. Liveness: last layer index that reads each output. Index n is the
  // virtual post-forward consumer (detection decoding / returned output).
  std::vector<int> last_use(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) last_use[static_cast<size_t>(i)] = i;
  for (int j = 0; j < n; ++j) {
    const Layer& layer = net.layer(j);
    if (j > 0 && layer.ReadsPreviousOutput()) {
      last_use[static_cast<size_t>(j - 1)] =
          std::max(last_use[static_cast<size_t>(j - 1)], j);
    }
    for (int src : layer.ExtraInputIndices()) {
      THALI_CHECK_GE(src, 0);
      THALI_CHECK_LT(src, j);
      last_use[static_cast<size_t>(src)] =
          std::max(last_use[static_cast<size_t>(src)], j);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (net.layer(i).OutputLiveAfterForward() || i == n - 1) {
      last_use[static_cast<size_t>(i)] = n;
    }
  }

  // 2. Greedy first-fit in execution order. A buffer whose last consumer
  // precedes the current step is expired and its span becomes a gap; the
  // new output takes the lowest-offset gap it fits into. The produced
  // buffer and every buffer still being read at step i stay disjoint by
  // construction (their intervals all include i).
  struct LiveBlock {
    int64_t offset;
    int64_t floats;
    int last_use;
  };
  std::vector<LiveBlock> live;
  for (int i = 0; i < n; ++i) {
    const int64_t floats = net.layer(i).output_shape().num_elements();
    plan.sum_output_floats += floats;

    live.erase(std::remove_if(live.begin(), live.end(),
                              [i](const LiveBlock& b) { return b.last_use < i; }),
               live.end());
    std::sort(live.begin(), live.end(),
              [](const LiveBlock& a, const LiveBlock& b) {
                return a.offset < b.offset;
              });
    int64_t offset = 0;
    for (const LiveBlock& b : live) {
      if (offset + floats <= b.offset) break;
      offset = AlignUp(std::max(offset, b.offset + b.floats));
    }

    ArenaAssignment& a = plan.assignments[static_cast<size_t>(i)];
    a.offset = offset;
    a.floats = floats;
    a.first_use = i;
    a.last_use = last_use[static_cast<size_t>(i)];
    live.push_back({offset, floats, a.last_use});
    plan.arena_floats = std::max(plan.arena_floats, offset + floats);
  }
  return plan;
}

std::string ArenaPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("%4s %12s %12s %6s %6s\n", "idx", "offset", "floats",
                  "live", "until");
  for (size_t i = 0; i < assignments.size(); ++i) {
    const ArenaAssignment& a = assignments[i];
    os << StrFormat("%4d %12lld %12lld %6d %6d\n", static_cast<int>(i),
                    static_cast<long long>(a.offset),
                    static_cast<long long>(a.floats), a.first_use, a.last_use);
  }
  const double ratio =
      sum_output_floats > 0
          ? static_cast<double>(arena_floats) / sum_output_floats
          : 0.0;
  os << StrFormat(
      "arena: %lld floats peak vs %lld sum-of-outputs (%.1f%%), %s\n",
      static_cast<long long>(arena_floats),
      static_cast<long long>(sum_output_floats), ratio * 100.0,
      enabled ? "enabled" : "disabled");
  return os.str();
}

}  // namespace thali
