#include "nn/exec_plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string_view>

#include "base/string_util.h"
#include "nn/conv_layer.h"
#include "nn/network.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"

namespace thali {

namespace {

// Arena offsets are aligned to 16 floats (64 bytes) so no two layers'
// buffers share a cache line and vectorized kernels see aligned bases.
constexpr int64_t kArenaAlignFloats = 16;

int64_t AlignUp(int64_t v) {
  return (v + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

std::atomic<int> g_fuse_override{-1};
std::atomic<int> g_int8_override{-1};

// Layers the `input` argument and ExtraInputIndices say layer i reads.
std::vector<int> InputsOf(const Network& net, int i) {
  std::vector<int> in;
  if (i > 0 && net.layer(i).ReadsPreviousOutput()) in.push_back(i - 1);
  for (int s : net.layer(i).ExtraInputIndices()) in.push_back(s);
  return in;
}

// Liveness: last layer index that reads each output. Index n is the
// virtual post-forward consumer (detection decoding / returned output).
std::vector<int> ComputeLastUse(const Network& net) {
  const int n = net.num_layers();
  std::vector<int> last_use(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) last_use[static_cast<size_t>(i)] = i;
  for (int j = 0; j < n; ++j) {
    for (int src : InputsOf(net, j)) {
      THALI_CHECK_GE(src, 0);
      THALI_CHECK_LT(src, j);
      last_use[static_cast<size_t>(src)] =
          std::max(last_use[static_cast<size_t>(src)], j);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (net.layer(i).OutputLiveAfterForward() || i == n - 1) {
      last_use[static_cast<size_t>(i)] = n;
    }
  }
  return last_use;
}

// Greedy first-fit placement over alias groups. `parent`/`poffset`
// describe the alias forest the elision pass built: layer i's storage
// lives at float offset poffset[i] inside parent[i]'s storage (-1 for
// roots). A group (a root and all its transitive children) is one
// block, sized by the root's output, allocated when the group's
// earliest member runs, and live until the latest member's last use.
// With an empty forest (all parents -1) every group is a singleton and
// this reduces exactly to the original per-layer first-fit.
ArenaPlan PlanArenaGrouped(const Network& net, const std::vector<int>& last_use,
                           const std::vector<int>& parent,
                           const std::vector<int64_t>& poffset) {
  const int n = net.num_layers();
  ArenaPlan plan;
  plan.assignments.resize(static_cast<size_t>(n));

  // Resolve each layer to (root, total offset inside the root's block).
  std::vector<int> root(static_cast<size_t>(n));
  std::vector<int64_t> roff(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int r = i;
    int64_t off = 0;
    while (parent[static_cast<size_t>(r)] >= 0) {
      off += poffset[static_cast<size_t>(r)];
      r = parent[static_cast<size_t>(r)];
    }
    root[static_cast<size_t>(i)] = r;
    roff[static_cast<size_t>(i)] = off;
  }

  // Group extents: first member's step through last member's last use.
  std::vector<int> gstart(static_cast<size_t>(n),
                          std::numeric_limits<int>::max());
  std::vector<int> gend(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int r = root[static_cast<size_t>(i)];
    gstart[static_cast<size_t>(r)] = std::min(gstart[static_cast<size_t>(r)], i);
    gend[static_cast<size_t>(r)] =
        std::max(gend[static_cast<size_t>(r)], last_use[static_cast<size_t>(i)]);
  }

  // First-fit in execution order. A block whose group's last consumer
  // precedes the current step is expired and its span becomes a gap;
  // a group's block takes the lowest-offset gap it fits into at the
  // step its first member runs.
  struct LiveBlock {
    int64_t offset;
    int64_t floats;
    int last_use;
  };
  std::vector<LiveBlock> live;
  std::vector<int64_t> goffset(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int64_t floats = net.layer(i).output_shape().num_elements();
    plan.sum_output_floats += floats;
    const int r = root[static_cast<size_t>(i)];
    if (gstart[static_cast<size_t>(r)] == i) {
      const int64_t gfloats = net.layer(r).output_shape().num_elements();
      live.erase(std::remove_if(live.begin(), live.end(),
                                [i](const LiveBlock& b) { return b.last_use < i; }),
                 live.end());
      std::sort(live.begin(), live.end(),
                [](const LiveBlock& a, const LiveBlock& b) {
                  return a.offset < b.offset;
                });
      int64_t offset = 0;
      for (const LiveBlock& b : live) {
        if (offset + gfloats <= b.offset) break;
        offset = AlignUp(std::max(offset, b.offset + b.floats));
      }
      goffset[static_cast<size_t>(r)] = offset;
      live.push_back({offset, gfloats, gend[static_cast<size_t>(r)]});
      plan.arena_floats = std::max(plan.arena_floats, offset + gfloats);
    }
    THALI_CHECK_LE(roff[static_cast<size_t>(i)] + floats,
                   net.layer(r).output_shape().num_elements());
    ArenaAssignment& a = plan.assignments[static_cast<size_t>(i)];
    a.offset = goffset[static_cast<size_t>(r)] + roff[static_cast<size_t>(i)];
    a.floats = floats;
    a.first_use = i;
    a.last_use = last_use[static_cast<size_t>(i)];
    a.aliased = parent[static_cast<size_t>(i)] >= 0;
  }
  return plan;
}

}  // namespace

const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kTraining ? "training" : "inference";
}

const char* ActLayoutName(ActLayout layout) {
  return layout == ActLayout::kNCHW ? "nchw" : "cnhw";
}

const char* ConvAlgoName(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kDirect1x1:
      return "direct1x1";
    case ConvAlgo::kWinograd:
      return "winograd";
    case ConvAlgo::kQuantInt8:
      return "int8";
    case ConvAlgo::kQuantInt8Direct1x1:
      return "int8-1x1";
    default:
      return "im2col";
  }
}

bool FusionEnabled() {
  const int o = g_fuse_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return !internal::NoFuseEnvValueDisables(std::getenv("THALI_NO_FUSE"));
}

bool Int8Enabled() {
  const int o = g_int8_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return internal::Int8EnvValueEnables(std::getenv("THALI_INT8"));
}

namespace internal {

void SetFusionForTesting(int enabled) {
  g_fuse_override.store(enabled, std::memory_order_relaxed);
}

bool NoFuseEnvValueDisables(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

void SetInt8ForTesting(int enabled) {
  g_int8_override.store(enabled, std::memory_order_relaxed);
}

bool Int8EnvValueEnables(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace internal

ArenaPlan PlanActivationArena(const Network& net) {
  const int n = net.num_layers();
  return PlanArenaGrouped(net, ComputeLastUse(net),
                          std::vector<int>(static_cast<size_t>(n), -1),
                          std::vector<int64_t>(static_cast<size_t>(n), 0));
}

ExecPlan CompileExecPlan(const Network& net, bool fuse, bool arena_enabled,
                         bool int8) {
  const int n = net.num_layers();
  ExecPlan plan;
  plan.fused = fuse;
  plan.layers.resize(static_cast<size_t>(n));
  const std::vector<int> last_use = ComputeLastUse(net);
  std::vector<int> parent(static_cast<size_t>(n), -1);
  std::vector<int64_t> poffset(static_cast<size_t>(n), 0);

  if (fuse) {
    // Layer classes: convs are layout-polymorphic (strided GEMMs absorb
    // either layout on either side); passthrough layers work in any
    // layout but must be layout-uniform; everything else (yolo) indexes
    // NCHW explicitly and pins itself and its sources.
    enum Class { kConv, kPass, kOther };
    std::vector<Class> cls(static_cast<size_t>(n), kOther);
    for (int i = 0; i < n; ++i) {
      const std::string_view kind = net.layer(i).kind();
      if (kind == "convolutional") {
        cls[static_cast<size_t>(i)] = kConv;
      } else if (kind == "route" || kind == "shortcut" || kind == "upsample" ||
                 kind == "maxpool") {
        cls[static_cast<size_t>(i)] = kPass;
      }
    }

    // 1. Layout fixpoint. forced[i] == layer i's output must be NCHW.
    // Seeds: the final output, anything consumed post-forward, every
    // kOther layer and its sources, and (implicitly) the network input.
    // Passthrough layers propagate the pin both ways until stable, so a
    // passthrough's inputs always share its output layout; convs stop
    // the propagation.
    std::vector<char> forced(static_cast<size_t>(n), 0);
    forced[static_cast<size_t>(n - 1)] = 1;
    for (int i = 0; i < n; ++i) {
      if (net.layer(i).OutputLiveAfterForward()) forced[static_cast<size_t>(i)] = 1;
      if (cls[static_cast<size_t>(i)] == kOther) {
        forced[static_cast<size_t>(i)] = 1;
        for (int s : InputsOf(net, i)) forced[static_cast<size_t>(s)] = 1;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = 0; i < n; ++i) {
        if (cls[static_cast<size_t>(i)] != kPass) continue;
        bool in_nchw = i == 0 && net.layer(i).ReadsPreviousOutput();
        const std::vector<int> ins = InputsOf(net, i);
        for (int s : ins) in_nchw = in_nchw || forced[static_cast<size_t>(s)];
        if (in_nchw && !forced[static_cast<size_t>(i)]) {
          forced[static_cast<size_t>(i)] = 1;
          changed = true;
        }
        if (forced[static_cast<size_t>(i)]) {
          for (int s : ins) {
            if (!forced[static_cast<size_t>(s)]) {
              forced[static_cast<size_t>(s)] = 1;
              changed = true;
            }
          }
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      plan.layers[static_cast<size_t>(i)].out_layout =
          forced[static_cast<size_t>(i)] ? ActLayout::kNCHW : ActLayout::kCNHW;
    }
    for (int i = 0; i < n; ++i) {
      LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
      switch (cls[static_cast<size_t>(i)]) {
        case kConv:
          lp.in_layout = i == 0 ? ActLayout::kNCHW
                                : plan.layers[static_cast<size_t>(i - 1)].out_layout;
          break;
        case kPass:
          lp.in_layout = lp.out_layout;  // uniform by fixpoint
          break;
        case kOther:
          lp.in_layout = ActLayout::kNCHW;
          break;
      }
    }

    // 2. Conv algorithm and fast-activation selection by geometry.
    for (int i = 0; i < n; ++i) {
      if (cls[static_cast<size_t>(i)] != kConv) continue;
      LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
      const auto& o = static_cast<const ConvLayer&>(net.layer(i)).options();
      if (o.ksize == 1 && o.stride == 1 && o.pad == 0) {
        // int8 takes 1x1s regardless of layout pins — like kDirect1x1,
        // the quantized GEMM absorbs layouts through strides, so even
        // the NCHW-pinned head feeders quantize (their f32 output is a
        // dequant edge into the yolo heads).
        lp.conv_algo =
            int8 ? ConvAlgo::kQuantInt8Direct1x1 : ConvAlgo::kDirect1x1;
      } else if (o.ksize == 3 && o.stride == 1 && o.pad == 1) {
        // int8 takes the Winograd geometry, but NCHW-pinned convs stay
        // fp32 to protect whatever consumer forced the pin (in the
        // thali net the head feeders are 1x1 direct convs, already
        // fp32; the guard covers pinned 3x3s in other topologies).
        lp.conv_algo = int8 && !forced[static_cast<size_t>(i)]
                           ? ConvAlgo::kQuantInt8
                           : ConvAlgo::kWinograd;
      } else if (o.ksize == 3 && o.stride == 2 && o.pad == 1 && int8 &&
                 !forced[static_cast<size_t>(i)]) {
        // Strided 3x3 (the thali downsampling prefix, convs 0-1): no
        // Winograd form exists, but the u8 im2col already walks any
        // stride, so int8 takes it; fp32 plans stay on im2col.
        lp.conv_algo = ConvAlgo::kQuantInt8;
      } else {
        lp.conv_algo = ConvAlgo::kIm2col;
      }
      lp.fast_act = o.activation == Activation::kMish;
    }

    // 3. Copy elision. Only legal with the arena (aliases are offsets
    // into shared storage) and when a channel range is one contiguous
    // span: CNHW at any batch, or any layout at batch 1.
    if (arena_enabled) {
      const int64_t batch = net.batch();
      std::vector<char> has_child(static_cast<size_t>(n), 0);
      auto resolve_root = [&](int i) {
        while (parent[static_cast<size_t>(i)] >= 0) {
          i = parent[static_cast<size_t>(i)];
        }
        return i;
      };
      for (int r = 0; r < n; ++r) {
        const std::string_view kind = net.layer(r).kind();
        LayerPlan& lp = plan.layers[static_cast<size_t>(r)];
        const bool span_ok =
            lp.in_layout == lp.out_layout &&
            (lp.out_layout == ActLayout::kCNHW || batch == 1);
        if (!span_ok) continue;
        if (kind == "route") {
          const auto& rt = static_cast<const RouteLayer&>(net.layer(r));
          const std::vector<int>& srcs = rt.source_indices();
          const int64_t plane =
              batch * net.layer(r).output_shape().dim(2) *
              net.layer(r).output_shape().dim(3);
          if (srcs.size() == 1) {
            // Group-split view: the route's output is a contiguous
            // channel slice of its (sole) source; alias it in place.
            // Safe even when the source is itself aliased — the route
            // writes nothing.
            parent[static_cast<size_t>(r)] = srcs[0];
            poffset[static_cast<size_t>(r)] =
                rt.source_offsets()[0] * plane;
            has_child[static_cast<size_t>(srcs[0])] = 1;
            lp.copy_elided = true;
            continue;
          }
          // Concat adoption: every source writes its output directly
          // into the concat's block (this folds upsample+route pairs
          // too). All-or-nothing — a source that is partial (grouped
          // slice), already aliased elsewhere, or repeated keeps the
          // whole route on the plain copy path.
          bool ok = true;
          for (size_t s = 0; s < srcs.size() && ok; ++s) {
            const int src = srcs[s];
            ok = rt.source_offsets()[s] == 0 &&
                 rt.source_channels()[s] ==
                     net.layer(src).output_shape().dim(1) &&
                 parent[static_cast<size_t>(src)] == -1 &&
                 resolve_root(src) == src;
            for (size_t t = 0; t < s && ok; ++t) ok = srcs[t] != src;
          }
          if (!ok) continue;
          int64_t chan_base = 0;
          for (size_t s = 0; s < srcs.size(); ++s) {
            parent[static_cast<size_t>(srcs[s])] = r;
            poffset[static_cast<size_t>(srcs[s])] = chan_base * plane;
            chan_base += rt.source_channels()[s];
          }
          has_child[static_cast<size_t>(r)] = 1;
          lp.copy_elided = true;
        } else if (kind == "shortcut" && r > 0) {
          // In-place residual add: output aliases the previous layer's
          // block when nothing reads that block after this step and it
          // is not shared with anyone else. The elementwise o=a+b reads
          // each element before overwriting it, so no code change is
          // needed in the layer.
          const int prev = r - 1;
          if (last_use[static_cast<size_t>(prev)] == r &&
              parent[static_cast<size_t>(prev)] == -1 &&
              !has_child[static_cast<size_t>(prev)] &&
              net.layer(prev).output_shape().num_elements() ==
                  net.layer(r).output_shape().num_elements()) {
            parent[static_cast<size_t>(r)] = prev;
            poffset[static_cast<size_t>(r)] = 0;
            has_child[static_cast<size_t>(prev)] = 1;
            lp.copy_elided = true;
          }
        }
      }
    }

    // 4. Quantize-once dtype assignment. A u8 edge means the producer's
    // requantize epilogue emits 7-bit bytes in the edge domain and the
    // consumer skips quantize + pack-from-fp32. The pass only sees
    // chains once calibration ranges exist: the Finalize-time compile is
    // chain-free (nothing is calibrated yet) and
    // Network::ReplanInference recompiles after Detector::CalibrateInt8
    // or LoadCalibration installs ranges. Dropping ranges
    // (ResetCalibration) must likewise replan, because a chained conv
    // has no fp32 fallback.
    if (int8 && GemmPackingEnabled()) {
      // qconv: convs the runtime int8 gate will actually keep quantized
      // (algo selected int8, range installed, batch norm folded).
      // qprod: qconv whose activation the requantize epilogue can apply
      // (linear/leaky/relu, mish through the FastMish family) so its
      // OUTPUT may be u8. qpass: layout-uniform passthroughs that move
      // u8 bytes exactly — max and concat/upsample copies commute with
      // the monotonic quantizer, shortcut's clamped add needs a linear
      // activation; a passthrough reading the fp32 network input can
      // never be u8.
      std::vector<char> qconv(static_cast<size_t>(n), 0);
      std::vector<char> qprod(static_cast<size_t>(n), 0);
      std::vector<char> qpass(static_cast<size_t>(n), 0);
      for (int i = 0; i < n; ++i) {
        const LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
        if (cls[static_cast<size_t>(i)] == kConv) {
          if (lp.conv_algo != ConvAlgo::kQuantInt8 &&
              lp.conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
            continue;
          }
          const auto& cv = static_cast<const ConvLayer&>(net.layer(i));
          if (cv.options().batch_normalize || !cv.has_activation_range()) {
            continue;
          }
          qconv[static_cast<size_t>(i)] = 1;
          const Activation a = cv.options().activation;
          qprod[static_cast<size_t>(i)] =
              a == Activation::kLinear || a == Activation::kLeaky ||
              a == Activation::kRelu ||
              (a == Activation::kMish && lp.fast_act);
        } else if (cls[static_cast<size_t>(i)] == kPass) {
          bool ok = lp.in_layout == lp.out_layout &&
                    !(i == 0 && net.layer(i).ReadsPreviousOutput());
          if (ok && net.layer(i).kind() == std::string_view("shortcut")) {
            ok = static_cast<const ShortcutLayer&>(net.layer(i))
                     .options()
                     .activation == Activation::kLinear;
          }
          qpass[static_cast<size_t>(i)] = ok;
        }
      }

      // f32[i] == layer i's OUTPUT tensor must stay fp32. Seeds: the
      // network output, post-forward consumers (yolo head inputs), any
      // layer that cannot emit u8, and the sources of any consumer that
      // cannot read u8. Passthroughs propagate the force both ways (they
      // cannot convert), exactly like the layout fixpoint above.
      std::vector<char> f32(static_cast<size_t>(n), 0);
      for (int i = 0; i < n; ++i) {
        if (i == n - 1 || net.layer(i).OutputLiveAfterForward() ||
            (!qprod[static_cast<size_t>(i)] &&
             !qpass[static_cast<size_t>(i)])) {
          f32[static_cast<size_t>(i)] = 1;
        }
        if (!qconv[static_cast<size_t>(i)] &&
            !qpass[static_cast<size_t>(i)]) {
          for (int s : InputsOf(net, i)) f32[static_cast<size_t>(s)] = 1;
        }
      }
      bool dchanged = true;
      while (dchanged) {
        dchanged = false;
        for (int i = 0; i < n; ++i) {
          if (!qpass[static_cast<size_t>(i)]) continue;
          const std::vector<int> ins = InputsOf(net, i);
          bool in_f32 = false;
          for (int s : ins) in_f32 = in_f32 || f32[static_cast<size_t>(s)];
          if (in_f32 && !f32[static_cast<size_t>(i)]) {
            f32[static_cast<size_t>(i)] = 1;
            dchanged = true;
          }
          if (f32[static_cast<size_t>(i)]) {
            for (int s : ins) {
              if (!f32[static_cast<size_t>(s)]) {
                f32[static_cast<size_t>(s)] = 1;
                dchanged = true;
              }
            }
          }
        }
      }

      // One tensor can reach several quantized convs through
      // passthroughs (which move bytes without requantizing), so the u8
      // domain is per connected COMPONENT: union-find joins every u8
      // passthrough with its inputs, and the component's range is the
      // union of the calibrated ranges of every quantized conv reading
      // any member tensor.
      std::vector<int> uf(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) uf[static_cast<size_t>(i)] = i;
      auto find = [&uf](int x) {
        while (uf[static_cast<size_t>(x)] != x) {
          uf[static_cast<size_t>(x)] =
              uf[static_cast<size_t>(uf[static_cast<size_t>(x)])];
          x = uf[static_cast<size_t>(x)];
        }
        return x;
      };
      for (int i = 0; i < n; ++i) {
        if (!qpass[static_cast<size_t>(i)] || f32[static_cast<size_t>(i)]) {
          continue;
        }
        for (int s : InputsOf(net, i)) {
          const int a = find(i);
          const int b = find(s);
          if (a != b) uf[static_cast<size_t>(a)] = b;
        }
      }
      std::vector<float> cmin(static_cast<size_t>(n), 0.0f);
      std::vector<float> cmax(static_cast<size_t>(n), 0.0f);
      std::vector<char> chas(static_cast<size_t>(n), 0);
      for (int j = 0; j < n; ++j) {
        if (!qconv[static_cast<size_t>(j)]) continue;
        const auto& cv = static_cast<const ConvLayer&>(net.layer(j));
        for (int s : InputsOf(net, j)) {
          if (f32[static_cast<size_t>(s)]) continue;
          const int r = find(s);
          if (!chas[static_cast<size_t>(r)]) {
            cmin[static_cast<size_t>(r)] = cv.activation_range_min();
            cmax[static_cast<size_t>(r)] = cv.activation_range_max();
            chas[static_cast<size_t>(r)] = 1;
          } else {
            cmin[static_cast<size_t>(r)] = std::min(
                cmin[static_cast<size_t>(r)], cv.activation_range_min());
            cmax[static_cast<size_t>(r)] = std::max(
                cmax[static_cast<size_t>(r)], cv.activation_range_max());
          }
        }
      }
      // A u8 component no quantized conv ever reads has no domain; only
      // dead subgraphs could produce one, but fp32 is always safe.
      // Forcing the WHOLE component keeps passthrough in/out dtypes
      // consistent without re-running the fixpoint.
      for (int i = 0; i < n; ++i) {
        if (!f32[static_cast<size_t>(i)] && !chas[static_cast<size_t>(find(i))]) {
          f32[static_cast<size_t>(i)] = 1;
        }
      }
      std::vector<float> cscale(static_cast<size_t>(n), 1.0f);
      std::vector<int32_t> czp(static_cast<size_t>(n), 0);
      for (int r = 0; r < n; ++r) {
        if (chas[static_cast<size_t>(r)]) {
          Int8RangeToScaleZp(cmin[static_cast<size_t>(r)],
                             cmax[static_cast<size_t>(r)],
                             &cscale[static_cast<size_t>(r)],
                             &czp[static_cast<size_t>(r)]);
        }
      }

      // Annotate the plan. u8 storage reuses the copy-elision alias
      // forest: a u8 layer's root is provably u8 too (alias edges only
      // link layers whose dtypes the fixpoint tied together), so the
      // network can allocate one u8 block per root and the element
      // offsets inside the fp32 block double as byte offsets.
      for (int i = 0; i < n; ++i) {
        LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
        if (f32[static_cast<size_t>(i)]) continue;
        lp.out_dtype = DType::kU8;
        const int r = find(i);
        lp.out_qscale = cscale[static_cast<size_t>(r)];
        lp.out_qzp = czp[static_cast<size_t>(r)];
        int root = i;
        int64_t off = 0;
        while (parent[static_cast<size_t>(root)] >= 0) {
          off += poffset[static_cast<size_t>(root)];
          root = parent[static_cast<size_t>(root)];
        }
        lp.quant_root = root;
        lp.quant_offset = off;
      }
      for (int i = 0; i < n; ++i) {
        const LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
        if (lp.out_dtype == DType::kU8) {
          THALI_CHECK(plan.layers[static_cast<size_t>(lp.quant_root)]
                          .out_dtype == DType::kU8);
        }
      }
      for (int j = 0; j < n; ++j) {
        LayerPlan& lp = plan.layers[static_cast<size_t>(j)];
        if (!qconv[static_cast<size_t>(j)] && !qpass[static_cast<size_t>(j)]) {
          continue;
        }
        const std::vector<int> ins = InputsOf(net, j);
        bool all_u8 = !ins.empty();
        for (int s : ins) {
          all_u8 = all_u8 &&
                   plan.layers[static_cast<size_t>(s)].out_dtype == DType::kU8;
        }
        if (!all_u8) continue;
        lp.in_dtype = DType::kU8;
        const int r = find(ins[0]);
        lp.in_qscale = cscale[static_cast<size_t>(r)];
        lp.in_qzp = czp[static_cast<size_t>(r)];
      }
      // Layer-0 chaining: the network input is an edge InputsOf cannot
      // express (layer 0 has no producer layer). When layer 0 is a
      // quantized conv, the input becomes a u8 edge whose domain is
      // layer 0's calibrated activation range — by definition the
      // observed range of the net input itself. Network::Forward (or
      // the detector's fused letterbox-quantize) supplies the bytes.
      if (n > 0 && qconv[0] && net.layer(0).ReadsPreviousOutput()) {
        LayerPlan& lp0 = plan.layers[0];
        const auto& cv0 = static_cast<const ConvLayer&>(net.layer(0));
        lp0.in_dtype = DType::kU8;
        Int8RangeToScaleZp(cv0.activation_range_min(),
                           cv0.activation_range_max(), &lp0.in_qscale,
                           &lp0.in_qzp);
        plan.input_u8 = true;
        plan.input_qscale = lp0.in_qscale;
        plan.input_qzp = lp0.in_qzp;
        ++plan.chained_edges;
      }
      for (int j = 0; j < n; ++j) {
        for (int s : InputsOf(net, j)) {
          if (plan.layers[static_cast<size_t>(s)].out_dtype == DType::kU8) {
            ++plan.chained_edges;
          } else if (qconv[static_cast<size_t>(s)]) {
            ++plan.dequant_edges;
          }
        }
      }
      for (int i = 0; i < n; ++i) {
        if (qconv[static_cast<size_t>(i)] ||
            plan.layers[static_cast<size_t>(i)].out_dtype == DType::kU8) {
          ++plan.quantized_layers;
        }
      }
    }
  }

  plan.arena = PlanArenaGrouped(net, last_use, parent, poffset);
  plan.arena.enabled = arena_enabled;
  return plan;
}

std::string ExecPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("%4s %5s %5s %10s %5s %6s %4s %4s %7s\n", "idx", "in",
                  "out", "conv", "fast", "elide", "din", "dout", "chain");
  for (size_t i = 0; i < layers.size(); ++i) {
    const LayerPlan& lp = layers[i];
    os << StrFormat("%4d %5s %5s %10s %5s %6s %4s %4s %7s\n",
                    static_cast<int>(i), ActLayoutName(lp.in_layout),
                    ActLayoutName(lp.out_layout), ConvAlgoName(lp.conv_algo),
                    lp.fast_act ? "mish" : "-",
                    lp.copy_elided ? "elide" : "-", DTypeName(lp.in_dtype),
                    DTypeName(lp.out_dtype),
                    lp.in_dtype == DType::kU8 ? "chained" : "-");
  }
  os << (fused ? "fused plan" : "reference plan (fusion disabled)");
  if (chained_edges > 0 || dequant_edges > 0 || quantized_layers > 0) {
    os << StrFormat(
        ": %d quantized layers, %d chained edges, %d dequant edges",
        quantized_layers, chained_edges, dequant_edges);
  }
  os << "\n";
  return os.str();
}

std::string ArenaPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("%4s %12s %12s %6s %6s\n", "idx", "offset", "floats",
                  "live", "until");
  for (size_t i = 0; i < assignments.size(); ++i) {
    const ArenaAssignment& a = assignments[i];
    os << StrFormat("%4d %12lld %12lld %6d %6d\n", static_cast<int>(i),
                    static_cast<long long>(a.offset),
                    static_cast<long long>(a.floats), a.first_use, a.last_use);
  }
  const double ratio =
      sum_output_floats > 0
          ? static_cast<double>(arena_floats) / sum_output_floats
          : 0.0;
  os << StrFormat(
      "arena: %lld floats peak vs %lld sum-of-outputs (%.1f%%), %s\n",
      static_cast<long long>(arena_floats),
      static_cast<long long>(sum_output_floats), ratio * 100.0,
      enabled ? "enabled" : "disabled");
  return os.str();
}

}  // namespace thali
