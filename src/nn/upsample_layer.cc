#include "nn/upsample_layer.h"

#include "nn/network.h"

namespace thali {

Status UpsampleLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("upsample input must be NCHW");
  }
  if (stride_ <= 0) return Status::InvalidArgument("bad upsample stride");
  SetShapes(input_shape,
            Shape({input_shape.dim(0), input_shape.dim(1),
                   input_shape.dim(2) * stride_, input_shape.dim(3) * stride_}));
  return Status::OK();
}

// Layout-invariant (NCHW or CNHW): plane p maps to plane p and the
// channel count is preserved. When the plan compiler adopted this
// layer into a following route's concat block, output_ is simply bound
// inside that block — the writes below land in place.
void UpsampleLayer::Forward(const Tensor& input, Network& net, bool) {
  const int64_t planes = in_shape_.dim(0) * in_shape_.dim(1);
  const int64_t ih = in_shape_.dim(2);
  const int64_t iw = in_shape_.dim(3);
  const int64_t ow = iw * stride_;
  if (plan().out_dtype == DType::kU8) {
    // Quantize-once chain: replicate the u8 bytes with the same nearest-
    // neighbor loops (value-preserving, so the quantization domain
    // passes through untouched).
    const uint8_t* qin = net.quant_act(index() - 1);
    uint8_t* qout = net.quant_act(index());
    for (int64_t p = 0; p < planes; ++p) {
      const uint8_t* src = qin + p * ih * iw;
      uint8_t* dst = qout + p * ih * iw * stride_ * stride_;
      for (int64_t y = 0; y < ih * stride_; ++y) {
        const uint8_t* srow = src + (y / stride_) * iw;
        uint8_t* drow = dst + y * ow;
        for (int64_t x = 0; x < ow; ++x) drow[x] = srow[x / stride_];
      }
    }
    return;
  }
  for (int64_t p = 0; p < planes; ++p) {
    const float* src = input.data() + p * ih * iw;
    float* dst = output_.data() + p * ih * iw * stride_ * stride_;
    for (int64_t y = 0; y < ih * stride_; ++y) {
      const float* srow = src + (y / stride_) * iw;
      float* drow = dst + y * ow;
      for (int64_t x = 0; x < ow; ++x) drow[x] = srow[x / stride_];
    }
  }
}

void UpsampleLayer::Backward(const Tensor&, Tensor* input_delta, Network&) {
  if (input_delta == nullptr) return;
  const int64_t planes = in_shape_.dim(0) * in_shape_.dim(1);
  const int64_t ih = in_shape_.dim(2);
  const int64_t iw = in_shape_.dim(3);
  const int64_t ow = iw * stride_;
  for (int64_t p = 0; p < planes; ++p) {
    float* dst = input_delta->data() + p * ih * iw;
    const float* src = delta_.data() + p * ih * iw * stride_ * stride_;
    for (int64_t y = 0; y < ih * stride_; ++y) {
      const float* srow = src + y * ow;
      float* drow = dst + (y / stride_) * iw;
      for (int64_t x = 0; x < ow; ++x) drow[x / stride_] += srow[x];
    }
  }
}

}  // namespace thali
