#include "nn/conv_layer.h"

#include <algorithm>
#include <cmath>

#include "base/thread_pool.h"
#include "nn/network.h"
#include "tensor/act_kernels.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/gemm_pack.h"
#include "tensor/im2col.h"
#include "tensor/winograd.h"

namespace thali {

namespace {
constexpr float kBnEps = 1e-5f;
constexpr float kBnMomentum = 0.99f;  // rolling = m*rolling + (1-m)*batch
// Training caches the forward im2col panels (so Backward need not redo
// them) only while batch * panel stays below this many floats (64 MB).
constexpr int64_t kColCacheMaxFloats = int64_t{1} << 24;
// Per-filter loops below this many batch*spatial elements are not worth
// a chunk of their own.
constexpr int64_t kBnGrainElems = int64_t{1} << 14;
// Histogram resolution of the percentile calibration pass.
constexpr int64_t kCalibBins = 2048;
}  // namespace

Status ConvLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("conv input must be NCHW, got " +
                                   input_shape.ToString());
  }
  if (opts_.filters <= 0 || opts_.ksize <= 0 || opts_.stride <= 0 ||
      opts_.pad < 0) {
    return Status::InvalidArgument("bad conv geometry");
  }
  in_c_ = input_shape.dim(1);
  const int64_t in_h = input_shape.dim(2);
  const int64_t in_w = input_shape.dim(3);
  out_h_ = ConvOutSize(in_h, opts_.ksize, opts_.stride, opts_.pad);
  out_w_ = ConvOutSize(in_w, opts_.ksize, opts_.stride, opts_.pad);
  if (out_h_ <= 0 || out_w_ <= 0) {
    return Status::InvalidArgument("conv output collapses to zero");
  }

  SetShapes(input_shape,
            Shape({input_shape.dim(0), opts_.filters, out_h_, out_w_}));

  weights_.Resize(Shape({opts_.filters, in_c_, opts_.ksize, opts_.ksize}));
  biases_.Resize(Shape({opts_.filters}));
  if (opts_.batch_normalize) {
    scales_.Resize(Shape({opts_.filters}));
    scales_.Fill(1.0f);
    rolling_mean_.Resize(Shape({opts_.filters}));
    rolling_var_.Resize(Shape({opts_.filters}));
    rolling_var_.Fill(1.0f);
  }
  if (!inference()) {
    weight_grads_.Resize(weights_.shape());
    bias_grads_.Resize(biases_.shape());
    if (opts_.batch_normalize) {
      scale_grads_.Resize(scales_.shape());
      mean_.Resize(Shape({opts_.filters}));
      var_.Resize(Shape({opts_.filters}));
    }
  }
  SizeActivationCaches();
  return Status::OK();
}

void ConvLayer::SizeActivationCaches() {
  if (inference()) return;  // no backward pass, no caches
  if (opts_.batch_normalize) {
    conv_out_.Resize(out_shape_);
    x_norm_.Resize(out_shape_);
  }
  pre_activation_.Resize(out_shape_);
}

Status ConvLayer::Rebatch(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4 || input_shape.dim(1) != in_c_ ||
      input_shape.dim(2) != in_shape_.dim(2) ||
      input_shape.dim(3) != in_shape_.dim(3)) {
    return Status::InvalidArgument(
        "conv Rebatch may only change the batch dimension: " +
        in_shape_.ToString() + " -> " + input_shape.ToString());
  }
  SetShapes(input_shape,
            Shape({input_shape.dim(0), opts_.filters, out_h_, out_w_}));
  SizeActivationCaches();
  cols_cached_ = false;
  return Status::OK();
}

int64_t ConvLayer::WorkspaceSize() const {
  switch (plan().conv_algo) {
    case ConvAlgo::kDirect1x1:
      return 0;  // the input planes are the GEMM B matrix
    case ConvAlgo::kWinograd:
      return WinogradWorkspaceFloats(in_c_, opts_.filters, in_shape_.dim(2),
                                     in_shape_.dim(3));
    case ConvAlgo::kQuantInt8: {
      // The int8 path's byte scratch, and enough for the fp32 forward it
      // falls back to before calibration (or under THALI_NO_PACK):
      // Winograd at stride 1, the im2col panel at stride 2.
      const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
      const int64_t int8_floats =
          (Int8ConvWorkspaceBytes(opts_.filters, out_h_ * out_w_, k,
                                  in_c_ * in_shape_.dim(2) *
                                      in_shape_.dim(3)) +
           3) /
          4;
      const int64_t fallback_floats =
          opts_.stride == 1
              ? WinogradWorkspaceFloats(in_c_, opts_.filters,
                                        in_shape_.dim(2), in_shape_.dim(3))
              : k * out_h_ * out_w_;
      return std::max(int8_floats, fallback_floats);
    }
    case ConvAlgo::kQuantInt8Direct1x1: {
      // With CNHW on both sides the whole batch is one GEMM over a
      // [C, batch*HW] panel; otherwise the path runs per item. The
      // fp32 kDirect1x1 fallback needs no scratch at all.
      const bool whole = plan().in_layout == ActLayout::kCNHW &&
                         plan().out_layout == ActLayout::kCNHW;
      const int64_t n =
          (whole ? in_shape_.dim(0) : int64_t{1}) * out_h_ * out_w_;
      return (Int8Direct1x1WorkspaceBytes(opts_.filters, n, in_c_) + 3) / 4;
    }
    case ConvAlgo::kIm2col:
      break;
  }
  if (IsDirect1x1()) return 0;  // input planes already form the col matrix
  return in_c_ * opts_.ksize * opts_.ksize * out_h_ * out_w_;
}

void ConvLayer::OnPlanUpdated() {
  int8_ws_ = Int8Sections();
  const ConvAlgo algo = plan().conv_algo;
  if (algo != ConvAlgo::kQuantInt8 &&
      algo != ConvAlgo::kQuantInt8Direct1x1) {
    return;
  }
  const auto align64 = [](int64_t v) { return (v + 63) / 64 * 64; };
  const int64_t out_hw = out_h_ * out_w_;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
  const int64_t kp = Int8PackedK(k);
  if (algo == ConvAlgo::kQuantInt8) {
    const int64_t in_planes = in_c_ * in_shape_.dim(2) * in_shape_.dim(3);
    int8_ws_.gemm_n = out_hw;
    int8_ws_.qin = 0;
    int8_ws_.col = align64(in_planes);
    int8_ws_.packed = int8_ws_.col + align64(k * out_hw);
    int8_ws_.acc = int8_ws_.packed + align64(kp * out_hw);
    int8_ws_.ws_floats =
        (Int8ConvWorkspaceBytes(opts_.filters, out_hw, k, in_planes) + 3) / 4;
  } else {
    int8_ws_.whole_batch = plan().in_layout == ActLayout::kCNHW &&
                           plan().out_layout == ActLayout::kCNHW;
    const int64_t n =
        (int8_ws_.whole_batch ? in_shape_.dim(0) : int64_t{1}) * out_hw;
    int8_ws_.gemm_n = n;
    int8_ws_.qin = 0;
    int8_ws_.col = -1;  // no im2col panel on the direct path
    int8_ws_.packed = align64(k * n);
    int8_ws_.acc = int8_ws_.packed + align64(kp * n);
    int8_ws_.ws_floats =
        (Int8Direct1x1WorkspaceBytes(opts_.filters, n, k) + 3) / 4;
  }
  int8_ws_.valid = true;
}

void ConvLayer::InitWeights(Rng& rng) {
  const float scale =
      std::sqrt(2.0f / (static_cast<float>(opts_.ksize) * opts_.ksize *
                        static_cast<float>(in_c_)));
  for (int64_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = rng.NextGaussian(0.0f, scale);
  }
  biases_.Zero();
  if (opts_.batch_normalize) {
    scales_.Fill(1.0f);
    rolling_mean_.Zero();
    rolling_var_.Fill(1.0f);
  }
  packed_dirty_ = true;
}

void ConvLayer::PrepackWeights() {
  if (!inference()) return;
  const bool quant_algo = plan().conv_algo == ConvAlgo::kQuantInt8 ||
                          plan().conv_algo == ConvAlgo::kQuantInt8Direct1x1;
  if (quant_algo) {
    // Quantize the fp32 weights per output channel. The fp32 pack below
    // (Winograd for stride-1 3x3, plain panels for 1x1 and the strided
    // prefix) is kept too: Forward falls back to it until the layer has
    // a calibrated activation range (and under THALI_NO_PACK).
    const int64_t m = opts_.filters;
    const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
    const Shape qshape({m, Int8PackedK(k)});
    if (qweights_.q.dtype() != DType::kI8 ||
        !(qweights_.q.shape() == qshape)) {
      qweights_.q.Resize(DType::kI8, qshape);
    }
    qweights_.scale.resize(static_cast<size_t>(m));
    qweights_.zero_point = 0;
    wcolsum_.resize(static_cast<size_t>(m));
    Int8QuantizeWeights(weights_.data(), m, k, qweights_.q.data<int8_t>(),
                        qweights_.scale.data(), wcolsum_.data());
  } else {
    qweights_.Clear();
    wcolsum_.clear();
  }
  if (plan().conv_algo == ConvAlgo::kQuantInt8Direct1x1) {
    // The 1x1 quant path shares the plain fp32 panel pack below for its
    // kDirect1x1 fallback; no Winograd state.
    u_ = Tensor();
    wino_packed_ = Tensor();
  }
  if (plan().conv_algo == ConvAlgo::kWinograd ||
      (plan().conv_algo == ConvAlgo::kQuantInt8 && opts_.stride == 1)) {
    // Winograd plans always hold U = G w G^T (the GEMM A matrices); the
    // prepacked panel copy exists only while the packed driver is on —
    // THALI_NO_PACK runs the 16 GEMMs through the reference entry point
    // straight from u_.
    const int64_t uf = WinogradWeightFloats(opts_.filters, in_c_);
    if (u_.size() != uf) u_.Resize(Shape({uf}));
    WinogradTransformWeights(weights_.data(), opts_.filters, in_c_, u_.data());
    if (GemmPackingEnabled()) {
      const int64_t pf = WinogradPackedWeightFloats(opts_.filters, in_c_);
      if (wino_packed_.size() != pf) wino_packed_.Resize(Shape({pf}));
      WinogradPackWeights(u_.data(), opts_.filters, in_c_, wino_packed_.data());
    } else {
      wino_packed_ = Tensor();
    }
    packed_weights_ = Tensor();
    packed_dirty_ = false;
    return;
  }
  if (!GemmPackingEnabled()) return;
  const int64_t m = opts_.filters;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
  const int64_t floats = GemmPackedWeightFloats(m, k);
  if (packed_weights_.size() != floats) {
    packed_weights_.Resize(Shape({floats}));
  }
  GemmPackWeights(weights_.data(), m, k, packed_weights_.data());
  u_ = Tensor();
  wino_packed_ = Tensor();
  packed_dirty_ = false;
}

bool ConvLayer::IsDirect1x1() const {
  return opts_.ksize == 1 && opts_.stride == 1 && opts_.pad == 0;
}

const float* ConvLayer::PrepareCol(const float* in, int64_t chan_stride,
                                   float* ws) const {
  // The direct shortcut is only valid when the item's channel planes are
  // contiguous (NCHW); fused plans route 1x1 convs to kDirect1x1 before
  // reaching here.
  if (IsDirect1x1()) return in;
  Im2ColStrided(in, chan_stride, in_c_, in_shape_.dim(2), in_shape_.dim(3),
                opts_.ksize, opts_.stride, opts_.pad, ws);
  return ws;
}

void ConvLayer::Forward(const Tensor& input, Network& net, bool train) {
  const int64_t batch = in_shape_.dim(0);
  const int64_t in_hw = in_shape_.dim(2) * in_shape_.dim(3);
  const int64_t out_hw = out_h_ * out_w_;
  const int64_t in_plane = in_c_ * in_hw;
  const int64_t out_plane = opts_.filters * out_hw;
  const int64_t m = opts_.filters;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
  const int64_t n = out_hw;
  const bool direct = IsDirect1x1();

  // Layout strides from the compiled plan. NCHW: item b's channel c
  // plane at (b*C + c)*HW — per-item base b*in_plane, channel stride
  // HW. CNHW: plane (c, b) at (c*batch + b)*HW — per-item base b*HW,
  // channel stride batch*HW. Both the im2col gather and the GEMM C
  // write-back absorb either layout through these strides.
  ConvAlgo algo = plan().conv_algo;
  if (algo == ConvAlgo::kQuantInt8 ||
      algo == ConvAlgo::kQuantInt8Direct1x1) {
    if (net.calib_phase() != CalibPhase::kOff) {
      ObserveCalibration(input, net.calib_phase());
    }
    // The quantized path needs a calibrated input range, folded batch
    // norm and the packed-GEMM regime; until then (and during
    // calibration passes) the layer runs its fp32 fallback — Winograd
    // for the 3x3 geometry, direct 1x1 otherwise. A CHAINED layer has
    // no fp32 fallback (its u8 input is never materialized as floats),
    // which is why every calibration-state change must go through
    // Network::ReplanInference before the next Forward.
    const bool int8_active = !opts_.batch_normalize && has_act_range_ &&
                             net.calib_phase() == CalibPhase::kOff &&
                             GemmPackingEnabled();
    if (!int8_active) {
      THALI_CHECK(plan().in_dtype == DType::kF32 &&
                  plan().out_dtype == DType::kF32)
          << "conv " << index()
          << ": chained int8 plan with an inactive quantized path — "
             "ReplanInference was skipped after a calibration change";
      if (algo == ConvAlgo::kQuantInt8) {
        // Stride-1 3x3 falls back to Winograd; the strided prefix convs
        // have no Winograd form and fall back to the im2col reference.
        algo = opts_.stride == 1 ? ConvAlgo::kWinograd : ConvAlgo::kIm2col;
      } else {
        algo = ConvAlgo::kDirect1x1;
      }
    }
  }
  const bool cnhw_in = plan().in_layout == ActLayout::kCNHW;
  const bool cnhw_out = plan().out_layout == ActLayout::kCNHW;
  const int64_t in_chan_stride = cnhw_in ? batch * in_hw : in_hw;
  const int64_t out_chan_stride = cnhw_out ? batch * out_hw : out_hw;
  const int64_t in_item = cnhw_in ? in_hw : in_plane;
  const int64_t out_item = cnhw_out ? out_hw : out_plane;
  const int64_t col_plane =
      algo == ConvAlgo::kIm2col && !direct ? in_c_ * opts_.ksize *
                                                 opts_.ksize * out_hw
                                           : 0;

  // During training, keep the per-item im2col panels around so Backward's
  // weight-gradient GEMM reuses them instead of recomputing (bounded by
  // kColCacheMaxFloats; larger layers fall back to recompute).
  cols_cached_ =
      train && !direct && batch * col_plane <= kColCacheMaxFloats &&
      col_plane > 0;
  if (cols_cached_ && col_cache_.size() != batch * col_plane) {
    col_cache_.Resize(Shape({batch, col_plane}));
  }

  // Inference networks run the GEMM from a pre-packed weight copy, and —
  // once batch norm has been folded away — fuse the bias add and simple
  // activations into the GEMM's C write-back. Leaky/ReLU fusion
  // replicates the separate passes op for op, so outputs stay bitwise
  // identical to the staged path (and to THALI_NO_PACK=1 runs); the
  // mish epilogue (fused plans only) runs the same fast kernel the
  // separate pass would, so packed and unpacked runs still agree.
  const bool use_packed = inference() && GemmPackingEnabled();
  if (algo == ConvAlgo::kWinograd ||
      (algo == ConvAlgo::kQuantInt8 && opts_.stride == 1)) {
    // FoldBatchNorm and weight loading invalidate the transformed (and
    // quantized) weights too; re-derive lazily like the packed panels.
    if (packed_dirty_ || u_.size() == 0 ||
        (use_packed && wino_packed_.size() == 0) ||
        (plan().conv_algo == ConvAlgo::kQuantInt8 && qweights_.empty())) {
      PrepackWeights();
    }
  } else if (algo == ConvAlgo::kQuantInt8) {
    // Strided quantized conv: no Winograd state; the packed fp32 panels
    // back the im2col fallback.
    if (packed_dirty_ || qweights_.empty() ||
        (use_packed && packed_weights_.size() == 0)) {
      PrepackWeights();
    }
  } else if (use_packed && (packed_dirty_ || packed_weights_.size() == 0)) {
    PrepackWeights();
  }
  GemmEpilogue epilogue;
  bool fused_bias = false;
  bool fused_act = false;
  if (use_packed && algo != ConvAlgo::kWinograd &&
      algo != ConvAlgo::kQuantInt8 && !opts_.batch_normalize) {
    epilogue.bias = biases_.data();
    fused_bias = true;
    switch (opts_.activation) {
      case Activation::kLinear:
        fused_act = true;  // nothing to apply
        break;
      case Activation::kLeaky:
        epilogue.activation = GemmActivation::kLeaky;
        fused_act = true;
        break;
      case Activation::kRelu:
        epilogue.activation = GemmActivation::kRelu;
        fused_act = true;
        break;
      case Activation::kMish:
        if (plan().fast_act) {
          epilogue.activation = GemmActivation::kMish;
          fused_act = true;
        }
        break;
      default:
        break;  // logistic keeps its separate activation pass
    }
  }

  // Inference layers keep no pre-BN cache: the GEMM lands in output_
  // and BN normalizes it in place (elementwise, so bitwise identical to
  // the staged path).
  Tensor& raw =
      opts_.batch_normalize && !inference() ? conv_out_ : output_;

  if (algo == ConvAlgo::kQuantInt8 ||
      algo == ConvAlgo::kQuantInt8Direct1x1) {
    // Quantized path: the u8 activation columns come either from the
    // chained producer's buffer (plan().in_dtype == kU8 — quantize-once)
    // or from quantizing the fp32 input planes here; then pack,
    // exact-integer GEMM, and the shared requantize epilogue fuses bias
    // and leaky/relu. When plan().out_dtype == kU8 the epilogue also
    // requantizes straight into this layer's u8 buffer (mish included,
    // via the fast-math vector kernel); f32-out mish keeps its separate
    // FastMishInPlace pass below so unchained values stay bitwise
    // identical to the pre-chaining path.
    const bool chained_in = plan().in_dtype == DType::kU8;
    const bool u8_out = plan().out_dtype == DType::kU8;
    Int8Epilogue epi;
    epi.in_scale = chained_in ? plan().in_qscale : act_in_scale_;
    epi.in_zp = chained_in ? plan().in_qzp : act_in_zp_;
    epi.wscale = qweights_.scale.data();
    epi.wcolsum = wcolsum_.data();
    epi.bias = biases_.data();
    fused_bias = true;
    switch (opts_.activation) {
      case Activation::kLinear:
        fused_act = true;  // nothing to apply
        break;
      case Activation::kLeaky:
        epi.activation = GemmActivation::kLeaky;
        fused_act = true;
        break;
      case Activation::kRelu:
        epi.activation = GemmActivation::kRelu;
        fused_act = true;
        break;
      case Activation::kMish:
        if (u8_out) {
          epi.activation = GemmActivation::kMish;
          fused_act = true;
        }
        break;
      default:
        break;
    }
    if (u8_out) {
      THALI_CHECK(fused_act)
          << "conv " << index() << ": u8-out plan with unfusable activation";
      epi.out_inv_scale = 1.0f / plan().out_qscale;
      epi.out_zp = plan().out_qzp;
    }
    // A chained layer 0 reads the quantized NETWORK INPUT (filled by
    // Network::Forward or staged by the detector's fused
    // letterbox-quantize); every other chained conv reads its producer's
    // u8 activation block.
    const uint8_t* qsrc =
        !chained_in ? nullptr
                    : (index() == 0 ? net.quant_input()
                                    : net.quant_act(index() - 1));
    uint8_t* qdst = u8_out ? net.quant_act(index()) : nullptr;
    THALI_CHECK(int8_ws_.valid) << "conv " << index()
                                << ": int8 sections not planned";
    THALI_CHECK(!chained_in || qsrc != nullptr);
    THALI_CHECK(!u8_out || qdst != nullptr);
    const int64_t ws_floats = int8_ws_.ws_floats;
    const float inv_scale = 1.0f / act_in_scale_;
    const int8_t* qw = qweights_.q.data<int8_t>();
    if (algo == ConvAlgo::kQuantInt8) {
      THALI_CHECK(int8_ws_.gemm_n == n);
      const uint8_t in_zp_byte =
          static_cast<uint8_t>(chained_in ? plan().in_qzp : act_in_zp_);
      ParallelForBounded(
          0, batch, 1, net.workspace_slots(),
          [&](int64_t b0, int64_t b1, int tid) {
            // Byte sections inside the float workspace, precomputed by
            // OnPlanUpdated to match Int8ConvWorkspaceBytes.
            uint8_t* wsb =
                reinterpret_cast<uint8_t*>(net.workspace(tid, ws_floats));
            uint8_t* qin = wsb + int8_ws_.qin;
            uint8_t* col = wsb + int8_ws_.col;
            uint8_t* packed = wsb + int8_ws_.packed;
            int32_t* acc = reinterpret_cast<int32_t*>(wsb + int8_ws_.acc);
            for (int64_t b = b0; b < b1; ++b) {
              const uint8_t* qim;
              int64_t qim_stride;
              if (chained_in) {
                // The producer already wrote this layer's input domain;
                // im2col gathers straight from its u8 planes (border
                // pad = the shared zero point, exact x = 0).
                qim = qsrc + b * in_item;
                qim_stride = in_chan_stride;
              } else {
                const float* in = input.data() + b * in_item;
                for (int64_t c = 0; c < in_c_; ++c) {
                  Int8QuantizeActivations(in + c * in_chan_stride, in_hw,
                                          inv_scale, act_in_zp_,
                                          qin + c * in_hw);
                }
                qim = qin;
                qim_stride = in_hw;
              }
              Im2ColStridedU8(qim, qim_stride, in_c_, in_shape_.dim(2),
                              in_shape_.dim(3), opts_.ksize, opts_.stride,
                              opts_.pad, in_zp_byte, col);
              Int8PackActCols(col, k, n, packed);
              Int8Epilogue e = epi;
              float* cmat = nullptr;
              if (u8_out) {
                e.out_u8 = qdst + b * out_item;
              } else {
                cmat = raw.data() + b * out_item;
              }
              Int8GemmPrepacked(m, n, k, qw, packed, e, cmat,
                                out_chan_stride, acc);
            }
          });
    } else if (int8_ws_.whole_batch) {
      // 1x1, blocked layout on both sides: the whole batch is one GEMM
      // over the [C, batch*HW] block (no im2col — the channel planes
      // already form the col matrix). Runs inline; the GEMM itself
      // row-parallelizes across the pool.
      const int64_t nb = batch * n;
      THALI_CHECK(int8_ws_.gemm_n == nb);
      uint8_t* wsb = reinterpret_cast<uint8_t*>(net.workspace(0, ws_floats));
      uint8_t* packed = wsb + int8_ws_.packed;
      int32_t* acc = reinterpret_cast<int32_t*>(wsb + int8_ws_.acc);
      const uint8_t* qcols;
      if (chained_in) {
        qcols = qsrc;
      } else {
        uint8_t* qin = wsb + int8_ws_.qin;
        Int8QuantizeActivations(input.data(), k * nb, inv_scale, act_in_zp_,
                                qin);
        qcols = qin;
      }
      Int8PackActCols(qcols, k, nb, packed);
      Int8Epilogue e = epi;
      float* cmat = nullptr;
      if (u8_out) {
        e.out_u8 = qdst;
      } else {
        cmat = raw.data();
      }
      Int8GemmPrepacked(m, nb, k, qw, packed, e, cmat, batch * out_hw, acc);
    } else {
      // 1x1, mixed or NCHW layouts: one GEMM per item, packing the u8
      // columns straight from the (possibly strided) channel planes.
      THALI_CHECK(int8_ws_.gemm_n == n);
      ParallelForBounded(
          0, batch, 1, net.workspace_slots(),
          [&](int64_t b0, int64_t b1, int tid) {
            uint8_t* wsb =
                reinterpret_cast<uint8_t*>(net.workspace(tid, ws_floats));
            uint8_t* qin = wsb + int8_ws_.qin;
            uint8_t* packed = wsb + int8_ws_.packed;
            int32_t* acc = reinterpret_cast<int32_t*>(wsb + int8_ws_.acc);
            for (int64_t b = b0; b < b1; ++b) {
              if (chained_in) {
                Int8PackActColsStrided(qsrc + b * in_item, in_chan_stride, k,
                                       n, packed);
              } else {
                const float* in = input.data() + b * in_item;
                if (cnhw_in) {
                  for (int64_t c = 0; c < in_c_; ++c) {
                    Int8QuantizeActivations(in + c * in_chan_stride, in_hw,
                                            inv_scale, act_in_zp_,
                                            qin + c * in_hw);
                  }
                } else {
                  // NCHW item: the k*HW block is contiguous.
                  Int8QuantizeActivations(in, k * in_hw, inv_scale,
                                          act_in_zp_, qin);
                }
                Int8PackActCols(qin, k, n, packed);
              }
              Int8Epilogue e = epi;
              float* cmat = nullptr;
              if (u8_out) {
                e.out_u8 = qdst + b * out_item;
              } else {
                cmat = raw.data() + b * out_item;
              }
              Int8GemmPrepacked(m, n, k, qw, packed, e, cmat,
                                out_chan_stride, acc);
            }
          });
    }
    if (u8_out) return;  // bias + activation fused; no fp32 output exists
  } else if (algo == ConvAlgo::kWinograd) {
    // Per-item Winograd; at batch 1 the single chunk runs inline so the
    // 16 transform-domain GEMMs fan out across the pool instead. Bias
    // and activation stay separate passes (no GEMM C traversal to fuse
    // into spans the whole output).
    const int64_t wino_ws = WinogradWorkspaceFloats(
        in_c_, opts_.filters, in_shape_.dim(2), in_shape_.dim(3));
    const float* u_packed = use_packed ? wino_packed_.data() : nullptr;
    ParallelForBounded(
        0, batch, 1, net.workspace_slots(),
        [&](int64_t b0, int64_t b1, int tid) {
          float* ws = net.workspace(tid, wino_ws);
          for (int64_t b = b0; b < b1; ++b) {
            WinogradForward(input.data() + b * in_item, in_chan_stride,
                            in_c_, in_shape_.dim(2), in_shape_.dim(3),
                            u_.data(), u_packed, opts_.filters,
                            raw.data() + b * out_item, out_chan_stride, ws);
          }
        });
  } else if (algo == ConvAlgo::kDirect1x1 && cnhw_in && cnhw_out) {
    // Blocked layout on both sides: the whole batch is one GEMM over
    // the [C, batch*HW] input block — identical per-element accumulation
    // chains to the per-item GEMMs, just wider.
    if (use_packed) {
      GemmPrepacked(m, batch * n, k, packed_weights_.data(), /*tb=*/false,
                    input.data(), batch * in_hw, 0.0f, raw.data(),
                    batch * out_hw, fused_bias ? &epilogue : nullptr);
    } else {
      Gemm(false, false, m, batch * n, k, 1.0f, weights_.data(), k,
           input.data(), batch * in_hw, 0.0f, raw.data(), batch * out_hw);
    }
  } else if (algo == ConvAlgo::kDirect1x1) {
    // Mixed or NCHW layouts: one strided GEMM per item, no im2col.
    ParallelForBounded(
        0, batch, 1, net.workspace_slots(),
        [&](int64_t b0, int64_t b1, int) {
          for (int64_t b = b0; b < b1; ++b) {
            const float* bmat = input.data() + b * in_item;
            float* cmat = raw.data() + b * out_item;
            if (use_packed) {
              GemmPrepacked(m, n, k, packed_weights_.data(), /*tb=*/false,
                            bmat, in_chan_stride, 0.0f, cmat,
                            out_chan_stride, fused_bias ? &epilogue : nullptr);
            } else {
              Gemm(false, false, m, n, k, 1.0f, weights_.data(), k, bmat,
                   in_chan_stride, 0.0f, cmat, out_chan_stride);
            }
          }
        });
  } else {
    // Reference im2col path. Batch items are independent: each strand
    // owns disjoint output planes and its own im2col scratch.
    ParallelForBounded(
        0, batch, 1, net.workspace_slots(),
        [&](int64_t b0, int64_t b1, int tid) {
          float* ws = nullptr;
          if (!direct && !cols_cached_) ws = net.workspace(tid, col_plane);
          for (int64_t b = b0; b < b1; ++b) {
            float* dst = cols_cached_ ? col_cache_.data() + b * col_plane : ws;
            const float* col =
                PrepareCol(input.data() + b * in_item, in_chan_stride, dst);
            if (use_packed) {
              GemmPrepacked(m, n, k, packed_weights_.data(), /*tb=*/false,
                            col, n, 0.0f, raw.data() + b * out_item,
                            out_chan_stride, fused_bias ? &epilogue : nullptr);
            } else {
              Gemm(false, false, m, n, k, 1.0f, weights_.data(), k, col, n,
                   0.0f, raw.data() + b * out_item, out_chan_stride);
            }
          }
        });
  }

  if (opts_.batch_normalize) {
    BatchNormForward(train);
  } else if (!fused_bias) {
    // Plain bias add; (batch, filter) planes are independent. The plane
    // index maps to a filter as pl % F in NCHW and pl / batch in CNHW.
    const int64_t spatial = out_hw;
    ParallelFor(0, batch * opts_.filters,
                std::max<int64_t>(1, kBnGrainElems / std::max<int64_t>(
                                                         1, spatial)),
                [&](int64_t p0, int64_t p1, int) {
                  for (int64_t pl = p0; pl < p1; ++pl) {
                    float* p = output_.data() + pl * spatial;
                    const float bias =
                        biases_[cnhw_out ? pl / batch : pl % opts_.filters];
                    for (int64_t i = 0; i < spatial; ++i) p[i] += bias;
                  }
                });
  }

  // Cache pre-activation values for the backward pass (training networks
  // only), then activate. The activation is elementwise, so it needs no
  // layout awareness; fused plans route mish through the fast kernel
  // family (deterministic and identical across the scalar/AVX2 paths).
  if (inference()) {
    if (!fused_act) {
      if (plan().fast_act && opts_.activation == Activation::kMish) {
        ParallelFor(0, output_.size(), kBnGrainElems,
                    [&](int64_t i0, int64_t i1, int) {
                      FastMishInPlace(output_.data() + i0, i1 - i0);
                    });
      } else {
        ParallelFor(0, output_.size(), kBnGrainElems,
                    [&](int64_t i0, int64_t i1, int) {
                      ApplyActivation(opts_.activation, output_.data() + i0,
                                      i1 - i0);
                    });
      }
    }
  } else {
    ParallelFor(0, output_.size(), kBnGrainElems,
                [&](int64_t i0, int64_t i1, int) {
                  std::copy(output_.data() + i0, output_.data() + i1,
                            pre_activation_.data() + i0);
                  ApplyActivation(opts_.activation, output_.data() + i0,
                                  i1 - i0);
                });
  }
}

void ConvLayer::BatchNormForward(bool train) {
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_h_ * out_w_;
  const int64_t m = batch * spatial;
  const int64_t filter_grain =
      std::max<int64_t>(1, kBnGrainElems / std::max<int64_t>(1, m));

  const float* use_mean;
  const float* use_var;
  if (train) {
    // Filters are independent, and each filter's reduction runs in the
    // same (batch, spatial) order at any parallelism level.
    ParallelFor(0, opts_.filters, filter_grain,
                [&](int64_t f0, int64_t f1, int) {
                  for (int64_t f = f0; f < f1; ++f) {
                    double s = 0.0;
                    for (int64_t b = 0; b < batch; ++b) {
                      const float* p =
                          conv_out_.data() + (b * opts_.filters + f) * spatial;
                      for (int64_t i = 0; i < spatial; ++i) s += p[i];
                    }
                    mean_[f] = static_cast<float>(s / m);
                    double v = 0.0;
                    for (int64_t b = 0; b < batch; ++b) {
                      const float* p =
                          conv_out_.data() + (b * opts_.filters + f) * spatial;
                      for (int64_t i = 0; i < spatial; ++i) {
                        const double d = p[i] - mean_[f];
                        v += d * d;
                      }
                    }
                    var_[f] = static_cast<float>(v / m);
                    rolling_mean_[f] = kBnMomentum * rolling_mean_[f] +
                                       (1 - kBnMomentum) * mean_[f];
                    rolling_var_[f] = kBnMomentum * rolling_var_[f] +
                                      (1 - kBnMomentum) * var_[f];
                  }
                });
    use_mean = mean_.data();
    use_var = var_.data();
  } else {
    use_mean = rolling_mean_.data();
    use_var = rolling_var_.data();
  }

  // Normalize: (batch, filter) planes are independent. Inference layers
  // read the raw conv output from output_ itself (written there by
  // Forward) and keep no x_norm_ cache; the per-element arithmetic is
  // unchanged, so both paths produce bitwise identical activations.
  // Under a CNHW plan (inference only) plane pl belongs to filter
  // pl / batch instead of pl % filters.
  const bool cnhw = inference() && plan().out_layout == ActLayout::kCNHW;
  const float* src_base = inference() ? output_.data() : conv_out_.data();
  float* xn_base = inference() ? nullptr : x_norm_.data();
  ParallelFor(
      0, batch * opts_.filters,
      std::max<int64_t>(1, kBnGrainElems / std::max<int64_t>(1, spatial)),
      [&](int64_t p0, int64_t p1, int) {
        for (int64_t pl = p0; pl < p1; ++pl) {
          const int64_t f = cnhw ? pl / batch : pl % opts_.filters;
          const float inv_std = 1.0f / std::sqrt(use_var[f] + kBnEps);
          const float mu = use_mean[f];
          const float gamma = scales_[f];
          const float beta = biases_[f];
          const float* src = src_base + pl * spatial;
          float* dst = output_.data() + pl * spatial;
          if (xn_base != nullptr) {
            float* xn = xn_base + pl * spatial;
            for (int64_t i = 0; i < spatial; ++i) {
              const float norm = (src[i] - mu) * inv_std;
              xn[i] = norm;
              dst[i] = gamma * norm + beta;
            }
          } else {
            for (int64_t i = 0; i < spatial; ++i) {
              const float norm = (src[i] - mu) * inv_std;
              dst[i] = gamma * norm + beta;
            }
          }
        }
      });
}

void ConvLayer::BatchNormBackward() {
  // Input: delta_ holds dL/d(pre-activation). Transforms it in place into
  // dL/d(conv_out) and accumulates scale/bias gradients. Filters are
  // independent, so the per-filter loop parallelizes without changing
  // any accumulation order.
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_h_ * out_w_;
  const int64_t m = batch * spatial;
  const int64_t filter_grain =
      std::max<int64_t>(1, kBnGrainElems / std::max<int64_t>(1, m));

  ParallelFor(0, opts_.filters, filter_grain, [&](int64_t f0, int64_t f1,
                                                  int) {
    for (int64_t f = f0; f < f1; ++f) {
      const float inv_std = 1.0f / std::sqrt(var_[f] + kBnEps);
      const float gamma = scales_[f];

      double dbeta = 0.0, dgamma = 0.0, sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const float* d = delta_.data() + (b * opts_.filters + f) * spatial;
        const float* xn = x_norm_.data() + (b * opts_.filters + f) * spatial;
        for (int64_t i = 0; i < spatial; ++i) {
          dbeta += d[i];
          dgamma += d[i] * xn[i];
          const float dxhat = d[i] * gamma;
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xn[i];
        }
      }
      bias_grads_[f] += static_cast<float>(dbeta);
      scale_grads_[f] += static_cast<float>(dgamma);

      // dL/dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
      const float mean_dxhat = static_cast<float>(sum_dxhat / m);
      const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / m);
      for (int64_t b = 0; b < batch; ++b) {
        float* d = delta_.data() + (b * opts_.filters + f) * spatial;
        const float* xn = x_norm_.data() + (b * opts_.filters + f) * spatial;
        for (int64_t i = 0; i < spatial; ++i) {
          const float dxhat = d[i] * gamma;
          d[i] = inv_std * (dxhat - mean_dxhat - xn[i] * mean_dxhat_xhat);
        }
      }
    }
  });
}

void ConvLayer::Backward(const Tensor& input, Tensor* input_delta,
                         Network& net) {
  const int64_t batch = in_shape_.dim(0);
  const int64_t in_plane = in_c_ * in_shape_.dim(2) * in_shape_.dim(3);
  const int64_t out_plane = opts_.filters * out_h_ * out_w_;
  const int64_t spatial = out_h_ * out_w_;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
  const bool direct = IsDirect1x1();
  const int64_t col_plane = WorkspaceSize();
  const int64_t wsize = weights_.size();

  // 1. Chain through the activation (elementwise).
  ParallelFor(0, delta_.size(), kBnGrainElems,
              [&](int64_t i0, int64_t i1, int) {
                GradientActivation(opts_.activation,
                                   pre_activation_.data() + i0,
                                   delta_.data() + i0, i1 - i0);
              });

  // 2. Batch norm (or bias) gradients.
  if (opts_.batch_normalize) {
    BatchNormBackward();
  } else {
    // Per-filter sums; batch items are visited in ascending order inside
    // each filter, exactly as the sequential loop nest did.
    ParallelFor(0, opts_.filters, 1, [&](int64_t f0, int64_t f1, int) {
      for (int64_t f = f0; f < f1; ++f) {
        for (int64_t b = 0; b < batch; ++b) {
          const float* d = delta_.data() + (b * opts_.filters + f) * spatial;
          double s = 0.0;
          for (int64_t i = 0; i < spatial; ++i) s += d[i];
          bias_grads_[f] += static_cast<float>(s);
        }
      }
    });
  }

  // 3. Weight gradients and input deltas, per batch item. Each item's
  // gradient goes to its own scratch slot; the reduction below then adds
  // the slots in ascending batch order, which is bitwise identical to
  // the sequential per-item accumulation (a beta=0 GEMM computes exactly
  // the alpha*sum terms a beta=1 GEMM would have added in place).
  if (wg_scratch_.size() != batch * wsize) {
    wg_scratch_.Resize(Shape({batch, wsize}));
  }
  ParallelForBounded(
      0, batch, 1, net.workspace_slots(),
      [&](int64_t b0, int64_t b1, int tid) {
        float* ws = direct ? nullptr : net.workspace(tid, col_plane);
        for (int64_t b = b0; b < b1; ++b) {
          const float* in = input.data() + b * in_plane;
          const float* d = delta_.data() + b * out_plane;
          const float* col =
              cols_cached_
                  ? col_cache_.data() + b * col_plane
                  : PrepareCol(in, in_shape_.dim(2) * in_shape_.dim(3), ws);
          // dW_b[f, ckk] = d[f, hw] * col[ckk, hw]^T into this item's slot.
          Gemm(false, true, opts_.filters, k, spatial, 1.0f, d, spatial, col,
               spatial, 0.0f, wg_scratch_.data() + b * wsize, k);

          if (input_delta != nullptr) {
            // id[ckk, hw] += W^T[ckk, f] * d[f, hw]
            float* id = input_delta->data() + b * in_plane;
            if (direct) {
              Gemm(true, false, k, spatial, opts_.filters, 1.0f,
                   weights_.data(), k, d, spatial, 1.0f, id, spatial);
            } else {
              Gemm(true, false, k, spatial, opts_.filters, 1.0f,
                   weights_.data(), k, d, spatial, 0.0f, ws, spatial);
              Col2Im(ws, in_c_, in_shape_.dim(2), in_shape_.dim(3),
                     opts_.ksize, opts_.stride, opts_.pad, id);
            }
          }
        }
      });

  // Deterministic reduction: parallel over the weight index (disjoint
  // writes), sequential in batch order per element.
  ParallelFor(0, wsize, kBnGrainElems, [&](int64_t i0, int64_t i1, int) {
    for (int64_t b = 0; b < batch; ++b) {
      const float* src = wg_scratch_.data() + b * wsize;
      float* dst = weight_grads_.data();
      for (int64_t i = i0; i < i1; ++i) dst[i] += src[i];
    }
  });
}

std::vector<Param> ConvLayer::Params() {
  std::vector<Param> params;
  params.push_back({&weights_, &weight_grads_, /*apply_decay=*/true, "weights"});
  params.push_back({&biases_, &bias_grads_, false, "biases"});
  if (opts_.batch_normalize) {
    params.push_back({&scales_, &scale_grads_, false, "scales"});
  }
  return params;
}

std::vector<ConstParam> ConvLayer::Params() const {
  std::vector<ConstParam> params;
  params.push_back({&weights_, &weight_grads_, /*apply_decay=*/true, "weights"});
  params.push_back({&biases_, &bias_grads_, false, "biases"});
  if (opts_.batch_normalize) {
    params.push_back({&scales_, &scale_grads_, false, "scales"});
  }
  return params;
}

void ConvLayer::SetActivationRange(float range_min, float range_max) {
  act_in_min_ = range_min;
  act_in_max_ = range_max;
  Int8RangeToScaleZp(range_min, range_max, &act_in_scale_, &act_in_zp_);
  has_act_range_ = true;
}

void ConvLayer::ResetCalibration() {
  has_act_range_ = false;
  act_in_min_ = act_in_max_ = 0.0f;
  act_in_scale_ = 1.0f;
  act_in_zp_ = 0;
  calib_seen_ = false;
  calib_min_ = calib_max_ = 0.0f;
  calib_hist_.clear();
}

void ConvLayer::ObserveCalibration(const Tensor& input, CalibPhase phase) {
  // Single-threaded on purpose: calibration is an offline pass, and the
  // sequential reduction keeps the observed range deterministic.
  const float* x = input.data();
  const int64_t count = input.size();
  if (count == 0) return;
  if (phase == CalibPhase::kRange) {
    float lo = calib_seen_ ? calib_min_ : x[0];
    float hi = calib_seen_ ? calib_max_ : x[0];
    for (int64_t i = 0; i < count; ++i) {
      lo = std::min(lo, x[i]);
      hi = std::max(hi, x[i]);
    }
    calib_min_ = lo;
    calib_max_ = hi;
    calib_seen_ = true;
    return;
  }
  // kHist over the kRange interval; values outside it (the hist pass may
  // see different images) clamp into the edge bins.
  if (!calib_seen_ || calib_max_ <= calib_min_) return;
  if (calib_hist_.size() != static_cast<size_t>(kCalibBins)) {
    calib_hist_.assign(static_cast<size_t>(kCalibBins), 0);
  }
  const float inv_bin =
      static_cast<float>(kCalibBins) / (calib_max_ - calib_min_);
  for (int64_t i = 0; i < count; ++i) {
    int64_t b = static_cast<int64_t>((x[i] - calib_min_) * inv_bin);
    b = std::clamp<int64_t>(b, 0, kCalibBins - 1);
    ++calib_hist_[static_cast<size_t>(b)];
  }
}

void ConvLayer::FinalizeCalibration(double percentile) {
  if (!calib_seen_) return;
  int64_t total = 0;
  for (int64_t c : calib_hist_) total += c;
  if (percentile >= 100.0 || total == 0) {
    SetActivationRange(calib_min_, calib_max_);
    return;
  }
  // Trim each tail to at most (100 - percentile)/2 percent of the mass.
  const int64_t tail = static_cast<int64_t>(
      static_cast<double>(total) * (100.0 - percentile) / 200.0);
  int64_t lo_bin = 0;
  int64_t acc = 0;
  while (lo_bin < kCalibBins - 1 &&
         acc + calib_hist_[static_cast<size_t>(lo_bin)] <= tail) {
    acc += calib_hist_[static_cast<size_t>(lo_bin)];
    ++lo_bin;
  }
  int64_t hi_bin = kCalibBins - 1;
  acc = 0;
  while (hi_bin > lo_bin &&
         acc + calib_hist_[static_cast<size_t>(hi_bin)] <= tail) {
    acc += calib_hist_[static_cast<size_t>(hi_bin)];
    --hi_bin;
  }
  const float bin_w = (calib_max_ - calib_min_) / kCalibBins;
  SetActivationRange(calib_min_ + bin_w * static_cast<float>(lo_bin),
                     calib_min_ + bin_w * static_cast<float>(hi_bin + 1));
}

void ConvLayer::FoldBatchNorm() {
  if (!opts_.batch_normalize) return;
  const int64_t per_filter = in_c_ * opts_.ksize * opts_.ksize;
  for (int64_t f = 0; f < opts_.filters; ++f) {
    const float inv_std = 1.0f / std::sqrt(rolling_var_[f] + kBnEps);
    const float g = scales_[f] * inv_std;
    float* w = weights_.data() + f * per_filter;
    for (int64_t i = 0; i < per_filter; ++i) w[i] *= g;
    biases_[f] = biases_[f] - scales_[f] * rolling_mean_[f] * inv_std;
  }
  opts_.batch_normalize = false;
  packed_dirty_ = true;
  scales_ = Tensor();
  scale_grads_ = Tensor();
  rolling_mean_ = Tensor();
  rolling_var_ = Tensor();
  conv_out_ = Tensor();
  x_norm_ = Tensor();
  col_cache_ = Tensor();
  wg_scratch_ = Tensor();
}

}  // namespace thali
