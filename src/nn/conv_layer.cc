#include "nn/conv_layer.h"

#include <cmath>

#include "nn/network.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace thali {

namespace {
constexpr float kBnEps = 1e-5f;
constexpr float kBnMomentum = 0.99f;  // rolling = m*rolling + (1-m)*batch
}  // namespace

Status ConvLayer::Configure(const Shape& input_shape, const Network&) {
  if (input_shape.rank() != 4) {
    return Status::InvalidArgument("conv input must be NCHW, got " +
                                   input_shape.ToString());
  }
  if (opts_.filters <= 0 || opts_.ksize <= 0 || opts_.stride <= 0 ||
      opts_.pad < 0) {
    return Status::InvalidArgument("bad conv geometry");
  }
  in_c_ = input_shape.dim(1);
  const int64_t in_h = input_shape.dim(2);
  const int64_t in_w = input_shape.dim(3);
  out_h_ = ConvOutSize(in_h, opts_.ksize, opts_.stride, opts_.pad);
  out_w_ = ConvOutSize(in_w, opts_.ksize, opts_.stride, opts_.pad);
  if (out_h_ <= 0 || out_w_ <= 0) {
    return Status::InvalidArgument("conv output collapses to zero");
  }

  SetShapes(input_shape,
            Shape({input_shape.dim(0), opts_.filters, out_h_, out_w_}));

  weights_.Resize(Shape({opts_.filters, in_c_, opts_.ksize, opts_.ksize}));
  weight_grads_.Resize(weights_.shape());
  biases_.Resize(Shape({opts_.filters}));
  bias_grads_.Resize(biases_.shape());
  if (opts_.batch_normalize) {
    scales_.Resize(Shape({opts_.filters}));
    scales_.Fill(1.0f);
    scale_grads_.Resize(scales_.shape());
    rolling_mean_.Resize(Shape({opts_.filters}));
    rolling_var_.Resize(Shape({opts_.filters}));
    rolling_var_.Fill(1.0f);
    mean_.Resize(Shape({opts_.filters}));
    var_.Resize(Shape({opts_.filters}));
    conv_out_.Resize(out_shape_);
    x_norm_.Resize(out_shape_);
  }
  pre_activation_.Resize(out_shape_);
  return Status::OK();
}

int64_t ConvLayer::WorkspaceSize() const {
  return in_c_ * opts_.ksize * opts_.ksize * out_h_ * out_w_;
}

void ConvLayer::InitWeights(Rng& rng) {
  const float scale =
      std::sqrt(2.0f / (static_cast<float>(opts_.ksize) * opts_.ksize *
                        static_cast<float>(in_c_)));
  for (int64_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = rng.NextGaussian(0.0f, scale);
  }
  biases_.Zero();
  if (opts_.batch_normalize) {
    scales_.Fill(1.0f);
    rolling_mean_.Zero();
    rolling_var_.Fill(1.0f);
  }
}

void ConvLayer::ForwardOne(const float* in, float* out, float* ws) const {
  const int64_t m = opts_.filters;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;
  const int64_t n = out_h_ * out_w_;
  if (opts_.ksize == 1 && opts_.stride == 1 && opts_.pad == 0) {
    // 1x1 conv needs no im2col: input planes are already the col matrix.
    Gemm(false, false, m, n, k, 1.0f, weights_.data(), k, in, n, 0.0f, out, n);
    return;
  }
  Im2Col(in, in_c_, in_shape_.dim(2), in_shape_.dim(3), opts_.ksize,
         opts_.stride, opts_.pad, ws);
  Gemm(false, false, m, n, k, 1.0f, weights_.data(), k, ws, n, 0.0f, out, n);
}

void ConvLayer::Forward(const Tensor& input, Network& net, bool train) {
  const int64_t batch = in_shape_.dim(0);
  const int64_t in_plane = in_c_ * in_shape_.dim(2) * in_shape_.dim(3);
  const int64_t out_plane = opts_.filters * out_h_ * out_w_;

  Tensor& raw = opts_.batch_normalize ? conv_out_ : output_;
  for (int64_t b = 0; b < batch; ++b) {
    ForwardOne(input.data() + b * in_plane, raw.data() + b * out_plane,
               net.workspace());
  }

  if (opts_.batch_normalize) {
    BatchNormForward(train);
  } else {
    // Plain bias add.
    const int64_t spatial = out_h_ * out_w_;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t f = 0; f < opts_.filters; ++f) {
        float* p = output_.data() + (b * opts_.filters + f) * spatial;
        const float bias = biases_[f];
        for (int64_t i = 0; i < spatial; ++i) p[i] += bias;
      }
    }
  }

  // Cache pre-activation values for the backward pass, then activate.
  std::copy(output_.data(), output_.data() + output_.size(),
            pre_activation_.data());
  ApplyActivation(opts_.activation, output_.data(), output_.size());
}

void ConvLayer::BatchNormForward(bool train) {
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_h_ * out_w_;
  const int64_t m = batch * spatial;

  const float* use_mean;
  const float* use_var;
  if (train) {
    for (int64_t f = 0; f < opts_.filters; ++f) {
      double s = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const float* p = conv_out_.data() + (b * opts_.filters + f) * spatial;
        for (int64_t i = 0; i < spatial; ++i) s += p[i];
      }
      mean_[f] = static_cast<float>(s / m);
    }
    for (int64_t f = 0; f < opts_.filters; ++f) {
      double s = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const float* p = conv_out_.data() + (b * opts_.filters + f) * spatial;
        for (int64_t i = 0; i < spatial; ++i) {
          const double d = p[i] - mean_[f];
          s += d * d;
        }
      }
      var_[f] = static_cast<float>(s / m);
      rolling_mean_[f] =
          kBnMomentum * rolling_mean_[f] + (1 - kBnMomentum) * mean_[f];
      rolling_var_[f] =
          kBnMomentum * rolling_var_[f] + (1 - kBnMomentum) * var_[f];
    }
    use_mean = mean_.data();
    use_var = var_.data();
  } else {
    use_mean = rolling_mean_.data();
    use_var = rolling_var_.data();
  }

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t f = 0; f < opts_.filters; ++f) {
      const float inv_std = 1.0f / std::sqrt(use_var[f] + kBnEps);
      const float mu = use_mean[f];
      const float gamma = scales_[f];
      const float beta = biases_[f];
      const float* src = conv_out_.data() + (b * opts_.filters + f) * spatial;
      float* xn = x_norm_.data() + (b * opts_.filters + f) * spatial;
      float* dst = output_.data() + (b * opts_.filters + f) * spatial;
      for (int64_t i = 0; i < spatial; ++i) {
        const float norm = (src[i] - mu) * inv_std;
        xn[i] = norm;
        dst[i] = gamma * norm + beta;
      }
    }
  }
}

void ConvLayer::BatchNormBackward() {
  // Input: delta_ holds dL/d(pre-activation). Transforms it in place into
  // dL/d(conv_out) and accumulates scale/bias gradients.
  const int64_t batch = out_shape_.dim(0);
  const int64_t spatial = out_h_ * out_w_;
  const int64_t m = batch * spatial;

  for (int64_t f = 0; f < opts_.filters; ++f) {
    const float inv_std = 1.0f / std::sqrt(var_[f] + kBnEps);
    const float gamma = scales_[f];

    double dbeta = 0.0, dgamma = 0.0, sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
      const float* d = delta_.data() + (b * opts_.filters + f) * spatial;
      const float* xn = x_norm_.data() + (b * opts_.filters + f) * spatial;
      for (int64_t i = 0; i < spatial; ++i) {
        dbeta += d[i];
        dgamma += d[i] * xn[i];
        const float dxhat = d[i] * gamma;
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xn[i];
      }
    }
    bias_grads_[f] += static_cast<float>(dbeta);
    scale_grads_[f] += static_cast<float>(dgamma);

    // dL/dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
    const float mean_dxhat = static_cast<float>(sum_dxhat / m);
    const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / m);
    for (int64_t b = 0; b < batch; ++b) {
      float* d = delta_.data() + (b * opts_.filters + f) * spatial;
      const float* xn = x_norm_.data() + (b * opts_.filters + f) * spatial;
      for (int64_t i = 0; i < spatial; ++i) {
        const float dxhat = d[i] * gamma;
        d[i] = inv_std * (dxhat - mean_dxhat - xn[i] * mean_dxhat_xhat);
      }
    }
  }
}

void ConvLayer::Backward(const Tensor& input, Tensor* input_delta,
                         Network& net) {
  const int64_t batch = in_shape_.dim(0);
  const int64_t in_plane = in_c_ * in_shape_.dim(2) * in_shape_.dim(3);
  const int64_t out_plane = opts_.filters * out_h_ * out_w_;
  const int64_t spatial = out_h_ * out_w_;
  const int64_t k = in_c_ * opts_.ksize * opts_.ksize;

  // 1. Chain through the activation.
  GradientActivation(opts_.activation, pre_activation_.data(), delta_.data(),
                     delta_.size());

  // 2. Batch norm (or bias) gradients.
  if (opts_.batch_normalize) {
    BatchNormBackward();
  } else {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t f = 0; f < opts_.filters; ++f) {
        const float* d = delta_.data() + (b * opts_.filters + f) * spatial;
        double s = 0.0;
        for (int64_t i = 0; i < spatial; ++i) s += d[i];
        bias_grads_[f] += static_cast<float>(s);
      }
    }
  }

  // 3. Weight gradients and input deltas, per batch item.
  const bool direct_1x1 =
      opts_.ksize == 1 && opts_.stride == 1 && opts_.pad == 0;
  for (int64_t b = 0; b < batch; ++b) {
    const float* in = input.data() + b * in_plane;
    const float* d = delta_.data() + b * out_plane;
    float* ws = net.workspace();

    const float* col = in;
    if (!direct_1x1) {
      Im2Col(in, in_c_, in_shape_.dim(2), in_shape_.dim(3), opts_.ksize,
             opts_.stride, opts_.pad, ws);
      col = ws;
    }
    // dW[f, ckk] += d[f, hw] * col[ckk, hw]^T
    Gemm(false, true, opts_.filters, k, spatial, 1.0f, d, spatial, col,
         spatial, 1.0f, weight_grads_.data(), k);

    if (input_delta != nullptr) {
      float* id = input_delta->data() + b * in_plane;
      if (direct_1x1) {
        // id[ckk, hw] += W^T[ckk, f] * d[f, hw]
        Gemm(true, false, k, spatial, opts_.filters, 1.0f, weights_.data(), k,
             d, spatial, 1.0f, id, spatial);
      } else {
        Gemm(true, false, k, spatial, opts_.filters, 1.0f, weights_.data(), k,
             d, spatial, 0.0f, ws, spatial);
        Col2Im(ws, in_c_, in_shape_.dim(2), in_shape_.dim(3), opts_.ksize,
               opts_.stride, opts_.pad, id);
      }
    }
  }
}

std::vector<Param> ConvLayer::Params() {
  std::vector<Param> params;
  params.push_back({&weights_, &weight_grads_, /*apply_decay=*/true, "weights"});
  params.push_back({&biases_, &bias_grads_, false, "biases"});
  if (opts_.batch_normalize) {
    params.push_back({&scales_, &scale_grads_, false, "scales"});
  }
  return params;
}

void ConvLayer::FoldBatchNorm() {
  if (!opts_.batch_normalize) return;
  const int64_t per_filter = in_c_ * opts_.ksize * opts_.ksize;
  for (int64_t f = 0; f < opts_.filters; ++f) {
    const float inv_std = 1.0f / std::sqrt(rolling_var_[f] + kBnEps);
    const float g = scales_[f] * inv_std;
    float* w = weights_.data() + f * per_filter;
    for (int64_t i = 0; i < per_filter; ++i) w[i] *= g;
    biases_[f] = biases_[f] - scales_[f] * rolling_mean_[f] * inv_std;
  }
  opts_.batch_normalize = false;
  scales_ = Tensor();
  scale_grads_ = Tensor();
  rolling_mean_ = Tensor();
  rolling_var_ = Tensor();
  conv_out_ = Tensor();
  x_norm_ = Tensor();
}

}  // namespace thali
