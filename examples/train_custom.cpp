// train_custom: command-line fine-tuning harness over the public API.
// Mirrors the `darknet detector train` entry point: pick a class set,
// dataset size and schedule, optionally transfer from a pretrained
// backbone, train, and report mAP/F1 on the held-out split.
//
// Usage (all flags optional):
//   train_custom [--classes10|--classes20] [--images N] [--iters N]
//                [--lr F] [--iou-norm F] [--batch N] [--size N]
//                [--pretrain N] [--freeze N] [--no-mosaic] [--seed N]

#include <cstdio>
#include <cstring>
#include <string>

#include "base/file_util.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "base/table_printer.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"

namespace {

float ArgF(int argc, char** argv, const char* name, float def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::strtof(argv[i + 1], nullptr);
  }
  return def;
}
int ArgI(int argc, char** argv, const char* name, int def) {
  return static_cast<int>(ArgF(argc, argv, name, static_cast<float>(def)));
}
bool ArgB(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thali;

  const bool use20 = ArgB(argc, argv, "--classes20");
  const auto& classes = use20 ? IndianFood20() : IndianFood10();

  DatasetSpec spec;
  spec.num_images = ArgI(argc, argv, "--images", 800);
  spec.width = spec.height = ArgI(argc, argv, "--size", 96);
  spec.seed = static_cast<uint64_t>(ArgI(argc, argv, "--seed", 20220131));

  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  yopts.width = spec.width;
  yopts.height = spec.height;
  yopts.batch = ArgI(argc, argv, "--batch", 4);
  yopts.max_batches = ArgI(argc, argv, "--iters", 400);
  yopts.learning_rate = ArgF(argc, argv, "--lr", 2e-3f);
  yopts.mosaic = !ArgB(argc, argv, "--no-mosaic");
  if (ArgB(argc, argv, "--no-aug")) {
    yopts.mosaic = false;
    yopts.saturation = 1.0f;
    yopts.exposure = 1.0f;
    yopts.hue = 0.0f;
    yopts.jitter = 0.0f;
    yopts.flip = false;
  }
  const std::string cfg_base = YoloThaliCfg(yopts);

  // Optional override of the CIoU loss weight (ablation knob).
  std::string cfg = cfg_base;
  const float iou_norm = ArgF(argc, argv, "--iou-norm", -1.0f);
  if (iou_norm > 0) {
    std::string needle = "iou_normalizer=0.07";
    for (size_t pos = cfg.find(needle); pos != std::string::npos;
         pos = cfg.find(needle, pos)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "iou_normalizer=%.3f", iou_norm);
      cfg.replace(pos, needle.size(), buf);
      pos += std::strlen(buf);
    }
  }

  std::printf("generating %d-image dataset (%d classes, %dx%d)...\n",
              spec.num_images, static_cast<int>(classes.size()), spec.width,
              spec.height);
  FoodDataset dataset = FoodDataset::Generate(classes, spec);

  TransferTrainer::Options topts;
  topts.cfg_text = cfg;
  topts.seed = static_cast<uint64_t>(ArgI(argc, argv, "--seed", 20220131)) + 3;
  topts.log_every = ArgI(argc, argv, "--log-every", 50);

  const int pretrain_iters = ArgI(argc, argv, "--pretrain", 0);
  if (pretrain_iters > 0) {
    std::printf("pretraining backbone for %d iterations...\n", pretrain_iters);
    auto backbone = PretrainBackbone("thali_cache", pretrain_iters, spec.width,
                                     topts.seed + 11, topts.log_every);
    THALI_CHECK(backbone.ok()) << backbone.status().ToString();
    topts.pretrained_weights = *backbone;
    topts.transfer_cutoff = kYoloThaliBackboneCutoff;
    topts.freeze_cutoff = ArgI(argc, argv, "--freeze", 0);
  }

  auto trainer_or = TransferTrainer::Create(topts);
  THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();

  Stopwatch sw;
  THALI_CHECK_OK(trainer.Train(dataset));
  std::printf("trained %d iterations in %.1fs\n", trainer.trained_iterations(),
              sw.ElapsedSeconds());

  EvalResult eval = trainer.Evaluate(dataset, dataset.val_indices());
  TablePrinter table("Per-class AP on the 20% validation split");
  table.SetHeader({"Class", "AP (%)", "truths", "TP", "FP"});
  for (const ClassMetrics& cm : eval.per_class) {
    table.AddRow({classes[static_cast<size_t>(cm.class_id)].display_name,
                  StrFormat("%.1f", cm.ap * 100),
                  std::to_string(cm.num_truths),
                  std::to_string(cm.true_positives),
                  std::to_string(cm.false_positives)});
  }
  table.Print();
  std::printf("mAP@0.5 = %.2f%%   precision=%.2f recall=%.2f F1=%.2f\n",
              eval.map * 100, eval.precision, eval.recall, eval.f1);

  THALI_CHECK_OK(MakeDirs("thali_cache"));
  THALI_CHECK_OK(trainer.SaveWeightsTo("thali_cache/custom.weights"));
  std::printf("weights saved to thali_cache/custom.weights\n");
  return 0;
}
