// thali_netserve: the network serving stack end to end — a ModelRouter
// carrying yolov4-thali and the SSD baseline side by side (20% A/B
// split), admission control on (priority lanes, deadline shedding), a
// loopback NetServer in front, then a mixed burst of interactive and
// batch THL1 clients, a hot weight reload in the middle of the burst,
// and the per-class tallies + STATS JSON at the end.
//
// Environment:
//   THALI_NET_PORT  port to bind (default 0 = ephemeral, printed)
//   THALI_NET_POLL  1 forces the poll() event-loop backend
//   THALI_NETSERVE_WAIT  1 keeps serving until stdin closes instead of
//                        running the demo burst (pair with thali_netclient)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/rng.h"
#include "baseline/ssd_detector.h"
#include "core/detector.h"
#include "darknet/model_zoo.h"
#include "darknet/weights_io.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "net/client.h"
#include "net/net_server.h"
#include "serve/router.h"

namespace {

using namespace thali;

std::string FindWeights() {
  for (const char* candidate :
       {"thali_cache/main.weights", "thali_cache/quickstart.weights"}) {
    if (PathExists(candidate)) return candidate;
  }
  return "";
}

uint16_t PortFromEnv() {
  const char* env = std::getenv("THALI_NET_PORT");
  return env != nullptr ? static_cast<uint16_t>(std::atoi(env)) : 0;
}

}  // namespace

int main() {
  using namespace thali;

  const auto& classes = IndianFood10();
  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  const std::string cfg = YoloThaliCfg(yopts);
  const std::string weights = FindWeights();
  if (weights.empty()) {
    std::printf("No cached model; serving with random weights (run "
                "`quickstart` first for real detections).\n");
  }

  serve::ModelRouter router;

  // Model A: yolov4-thali, 2 workers, admission control on.
  serve::Server::Options yolo_opts;
  yolo_opts.num_workers = 2;
  yolo_opts.queue_capacity = 16;
  yolo_opts.batch_queue_capacity = 16;
  yolo_opts.max_batch_size = 4;
  yolo_opts.admission.enabled = true;
  Status added = router.AddModel("yolov4-thali", yolo_opts, [&] {
    return weights.empty() ? Detector::FromCfg(cfg)
                           : Detector::FromFiles(cfg, weights);
  });
  THALI_CHECK(added.ok()) << added.ToString();

  // Model B: the Table III SSD baseline, 1 worker (it is far cheaper).
  serve::Server::Options ssd_opts;
  ssd_opts.num_workers = 1;
  ssd_opts.queue_capacity = 16;
  ssd_opts.admission.enabled = true;
  added = router.AddModel("ssd-baseline", ssd_opts, [&] {
    Rng rng(11);
    auto ssd = BuildSsdBaseline(static_cast<int>(classes.size()), 96, 96,
                                /*batch=*/1, BaselineTier::kModern, rng);
    if (!ssd.ok()) return StatusOr<Detector>(ssd.status());
    return StatusOr<Detector>(
        Detector(std::move(ssd->net), {ssd->head}));
  });
  THALI_CHECK(added.ok()) << added.ToString();

  // 20 of every 100 default-routed requests exercise the baseline.
  THALI_CHECK_OK(router.SetAbSplit("ssd-baseline", 20));

  net::NetServer::Options net_opts;
  net_opts.port = PortFromEnv();
  auto server_or = net::NetServer::Start(net_opts, &router);
  THALI_CHECK(server_or.ok()) << server_or.status().ToString();
  net::NetServer& server = **server_or;
  std::printf("thali_netserve listening on 127.0.0.1:%u (%s backend), "
              "models: yolov4-thali (default) + ssd-baseline @ 20%% A/B\n",
              server.port(),
              server.backend() == net::EventLoop::Backend::kEpoll ? "epoll"
                                                                  : "poll");

  const char* wait = std::getenv("THALI_NETSERVE_WAIT");
  if (wait != nullptr && wait[0] == '1') {
    std::printf("Serving until stdin closes (THALI_NETSERVE_WAIT=1)...\n");
    (void)std::getchar();
    server.Shutdown();
    return 0;
  }

  // Demo burst: 3 interactive clients with 500ms deadlines and 2 batch
  // clients with none, 6 platters each, all over real sockets.
  constexpr int kInteractive = 3, kBatch = 2, kPerClient = 6;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0}, shed_count{0};
  for (int c = 0; c < kInteractive + kBatch; ++c) {
    clients.emplace_back([&, c] {
      auto client_or = net::NetClient::Connect(server.port());
      THALI_CHECK(client_or.ok()) << client_or.status().ToString();
      net::NetClient client = std::move(client_or).value();
      PlatterRenderer renderer(classes, PlatterRenderer::Options{});
      Rng rng(1300 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        RenderedScene scene = renderer.RenderRandomPlatter(2 + i % 3, rng);
        net::DetectRequest req;
        req.image = std::move(scene.image);
        if (c < kInteractive) {
          req.priority = serve::Priority::kInteractive;
          req.deadline_ms = 500;
        } else {
          req.priority = serve::Priority::kBatch;
        }
        auto result = client.Detect(req);
        if (result.ok()) {
          ok_count.fetch_add(1);
        } else {
          shed_count.fetch_add(1);
        }
      }
    });
  }

  // Hot reload mid-burst: re-stage the same weights file. Workers swap
  // between batches; every in-flight request still completes (watch
  // weight_reloads in the stats and ok+shed == total below).
  if (!weights.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Status reloaded = router.ReloadWeights("yolov4-thali", weights);
    std::printf("Hot reload staged: %s (generation %lld)\n",
                reloaded.ToString().c_str(),
                static_cast<long long>(
                    router.Find("yolov4-thali")->weights_generation()));
  }

  for (auto& t : clients) t.join();
  std::printf("\nBurst done: %d ok + %d rejected/timed-out of %d requests\n",
              ok_count.load(), shed_count.load(),
              (kInteractive + kBatch) * kPerClient);

  // The STATS op — the same JSON a monitoring scraper would read.
  auto stats_client = net::NetClient::Connect(server.port());
  THALI_CHECK(stats_client.ok()) << stats_client.status().ToString();
  auto stats = stats_client->Stats();
  THALI_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("\nSTATS: %s\n", stats->c_str());

  server.Shutdown();
  return 0;
}
