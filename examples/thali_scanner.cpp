// thali_scanner: the paper's motivating application — point a detector at
// an Indian platter and estimate the meal (dish localization + calorie
// estimate, §VI "implications for calorie estimation").
//
// Loads the cached quickstart/benchmark model if present (run `quickstart`
// or any bench first for a better model); otherwise trains a quick one.
// Then scans a series of fresh platters, prints per-dish detections with
// positions, and totals calories.

#include <cstdio>

#include "base/file_util.h"
#include "base/string_util.h"
#include "core/detector.h"
#include "core/trainer.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"
#include "data/nutrition.h"
#include "data/renderer.h"
#include "image/draw.h"
#include "image/image_io.h"

namespace {

using namespace thali;

// Picks the best available cached checkpoint.
std::string FindWeights() {
  for (const char* candidate :
       {"thali_cache/main.weights", "thali_cache/quickstart.weights"}) {
    if (PathExists(candidate)) return candidate;
  }
  return "";
}

std::string PositionLabel(const Box& b) {
  const char* vert = b.y < 0.4f ? "top" : (b.y > 0.6f ? "bottom" : "middle");
  const char* horz = b.x < 0.4f ? "left" : (b.x > 0.6f ? "right" : "center");
  return StrFormat("%s-%s", vert, horz);
}

}  // namespace

int main() {
  using namespace thali;

  const auto& classes = IndianFood10();
  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  const std::string cfg = YoloThaliCfg(yopts);

  std::string weights = FindWeights();
  if (weights.empty()) {
    std::printf("No cached model; training a quick one (about a minute)...\n");
    DatasetSpec spec;
    spec.num_images = 400;
    FoodDataset ds = FoodDataset::Generate(classes, spec);
    TransferTrainer::Options topts;
    topts.cfg_text = cfg;
    topts.log_every = 200;
    auto trainer = TransferTrainer::Create(topts);
    THALI_CHECK(trainer.ok()) << trainer.status().ToString();
    THALI_CHECK_OK(trainer->Train(ds, 600));
    THALI_CHECK_OK(MakeDirs("thali_cache"));
    THALI_CHECK_OK(trainer->SaveWeightsTo("thali_cache/quickstart.weights"));
    weights = "thali_cache/quickstart.weights";
  }

  std::printf("Loading detector from %s\n", weights.c_str());
  auto det_or = Detector::FromFiles(cfg, weights);
  THALI_CHECK(det_or.ok()) << det_or.status().ToString();
  Detector detector = std::move(det_or).value();
  detector.FuseBatchNorm();  // inference-only: fold BN for speed

  PlatterRenderer renderer(classes, PlatterRenderer::Options{});
  NutritionEstimator nutrition(classes);
  Rng rng(20260707);

  float grand_total = 0.0f;
  for (int meal = 0; meal < 3; ++meal) {
    const int dishes = 2 + meal % 2;
    RenderedScene scene = renderer.RenderRandomPlatter(dishes, rng);
    std::vector<Detection> dets = detector.Detect(scene.image, 0.25f, 0.45f);

    std::printf("\n=== Meal %d: platter with %d dishes ===\n", meal + 1,
                dishes);
    Image annotated = scene.image;
    for (const Detection& d : dets) {
      std::printf("  %-14s conf %.2f  at %s\n",
                  classes[static_cast<size_t>(d.class_id)]
                      .display_name.c_str(),
                  d.confidence, PositionLabel(d.box).c_str());
      DrawRect(annotated,
               static_cast<int>(d.box.Left() * annotated.width()),
               static_cast<int>(d.box.Top() * annotated.height()),
               static_cast<int>(d.box.Right() * annotated.width()),
               static_cast<int>(d.box.Bottom() * annotated.height()),
               Color{1.0f, 0.1f, 0.1f});
    }
    if (dets.empty()) std::printf("  (no dishes above threshold)\n");
    const MealEstimate estimate = nutrition.Estimate(dets);
    const float meal_kcal = estimate.total_kcal;
    std::printf("%s", RenderMealReceipt(estimate).c_str());
    std::printf("  ground truth was:");
    for (const TruthBox& t : scene.truths) {
      std::printf(" %s", classes[static_cast<size_t>(t.class_id)]
                             .display_name.c_str());
    }
    std::printf("\n  estimated meal total: %.0f kcal\n", meal_kcal);
    grand_total += meal_kcal;

    const std::string path = StrFormat("thali_cache/meal_%d.ppm", meal + 1);
    THALI_CHECK_OK(MakeDirs("thali_cache"));
    THALI_CHECK_OK(WritePpm(annotated, path));
    std::printf("  annotated platter saved to %s\n", path.c_str());
  }
  std::printf("\nDay total across 3 meals: ~%.0f kcal\n", grand_total);
  return 0;
}
