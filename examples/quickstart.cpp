// Quickstart: generate a small synthetic IndianFood10 dataset, fine-tune
// the yolov4-thali detector, and detect dishes on a fresh platter image.
//
// Run from anywhere; artifacts (weights) are cached in ./thali_cache so a
// second run skips training.

#include <cstdio>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "core/detector.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "image/image_io.h"

namespace {

constexpr char kCacheDir[] = "thali_cache";
constexpr char kWeights[] = "thali_cache/quickstart.weights";
constexpr char kBenchWeights[] = "thali_cache/main.weights";

}  // namespace

int main() {
  using namespace thali;

  const auto& classes = IndianFood10();
  const std::vector<std::string> names = ClassDisplayNames(classes);

  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  yopts.max_batches = 600;
  const std::string cfg = YoloThaliCfg(yopts);

  THALI_CHECK_OK(MakeDirs(kCacheDir));

  // Prefer the fully-trained benchmark model when present (built by any
  // bench_table* binary); otherwise quick-train a small one.
  const char* weights_path = PathExists(kBenchWeights) ? kBenchWeights
                                                       : kWeights;
  if (!PathExists(weights_path)) {
    std::printf("== No cached model; training yolov4-thali from scratch ==\n");
    DatasetSpec spec;
    spec.num_images = 600;
    FoodDataset dataset = FoodDataset::Generate(classes, spec);
    const DatasetStats stats = dataset.ComputeStats();
    std::printf("dataset: %d images, %d platters, %d annotations\n",
                stats.num_images, stats.num_platters, stats.num_annotations);

    TransferTrainer::Options topts;
    topts.cfg_text = cfg;
    topts.log_every = 50;
    auto trainer_or = TransferTrainer::Create(topts);
    THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
    TransferTrainer trainer = std::move(trainer_or).value();

    Stopwatch sw;
    THALI_CHECK_OK(trainer.Train(dataset));
    std::printf("trained %d iterations in %.1fs\n",
                trainer.trained_iterations(), sw.ElapsedSeconds());

    EvalResult eval = trainer.Evaluate(dataset, dataset.val_indices());
    std::printf("validation mAP@0.5 = %.2f%%   F1 = %.2f\n", eval.map * 100,
                eval.f1);
    THALI_CHECK_OK(trainer.SaveWeightsTo(kWeights));
    std::printf("saved weights to %s\n", kWeights);
  }

  std::printf("== Loading detector from %s ==\n", weights_path);
  auto det_or = Detector::FromFiles(cfg, weights_path);
  THALI_CHECK(det_or.ok()) << det_or.status().ToString();
  Detector detector = std::move(det_or).value();

  // Render a fresh 3-dish thali the model has never seen and detect.
  PlatterRenderer::Options ropts;
  PlatterRenderer renderer(classes, ropts);
  Rng rng(424242);
  RenderedScene scene = renderer.RenderRandomPlatter(3, rng);

  std::printf("\nGround truth:\n");
  for (const TruthBox& t : scene.truths) {
    std::printf("  %-14s at %s\n",
                names[static_cast<size_t>(t.class_id)].c_str(),
                t.box.ToString().c_str());
  }

  std::vector<Detection> dets = detector.Detect(scene.image);
  std::printf("\nDetections:\n");
  for (const Detection& d : dets) {
    std::printf("  %-14s conf=%.2f at %s\n",
                names[static_cast<size_t>(d.class_id)].c_str(), d.confidence,
                d.box.ToString().c_str());
  }

  THALI_CHECK_OK(WritePpm(scene.image, "thali_cache/quickstart_platter.ppm"));
  std::printf("\nPlatter image written to thali_cache/quickstart_platter.ppm\n");
  std::printf("%s\n", AsciiArt(scene.image, 56).c_str());
  return 0;
}
