// dataset_builder: the paper's Fig. 3 data-preparation pipeline, end to
// end — rank Instagram hashtags (simulated), select the top-k dishes,
// "scrape and download" (synthesize), annotate in YOLO format, split
// 80/20, and write the dataset in Darknet on-disk layout.
//
// Usage: dataset_builder [--classes N] [--images N] [--out DIR]

#include <cstdio>
#include <cstring>
#include <string>

#include "base/file_util.h"
#include "base/string_util.h"
#include "base/table_printer.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/hashtag_catalog.h"

namespace {

int ArgI(int argc, char** argv, const char* name, int def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return def;
}

const char* ArgS(int argc, char** argv, const char* name, const char* def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thali;

  const int k = ArgI(argc, argv, "--classes", 10);
  const int images = ArgI(argc, argv, "--images", 200);
  const std::string out = ArgS(argc, argv, "--out", "thali_cache/indianfood");

  // Stage 1 (Fig. 3): hashtag popularity analysis over >100 Indian dishes.
  HashtagCatalog catalog = HashtagCatalog::BuildIndianFoodCatalog();
  std::printf("Stage 1: ranked %d dishes by simulated Instagram posts\n",
              catalog.size());
  TablePrinter top("Top hashtags (class-selection input)");
  top.SetHeader({"rank", "hashtag", "posts"});
  auto selected = catalog.TopK(k);
  for (size_t i = 0; i < selected.size(); ++i) {
    top.AddRow({std::to_string(i + 1), selected[i].hashtag,
                StrFormat("%lld", selected[i].posts)});
  }
  top.Print();

  // Stage 2: scrape post URLs per hashtag (Selenium stand-in).
  Rng rng(108);
  int scraped = 0;
  for (const HashtagEntry& e : selected) {
    scraped += static_cast<int>(catalog.Scrape(e.hashtag, images / k, rng).size());
  }
  std::printf("Stage 2: scraped %d post records\n", scraped);

  // Stage 3+4: "download" (synthesize) images and annotate; 80/20 split.
  const auto& classes = k <= 10 ? IndianFood10() : IndianFood20();
  DatasetSpec spec;
  spec.num_images = images;
  FoodDataset ds = FoodDataset::Generate(classes, spec);
  DatasetStats st = ds.ComputeStats();
  std::printf("Stage 3: generated %d images (%d platters, %d annotations, "
              "%.2f dishes/platter)\n",
              st.num_images, st.num_platters, st.num_annotations,
              st.avg_dishes_per_platter);
  std::printf("Stage 4: split %zu train / %zu valid\n",
              ds.train_indices().size(), ds.val_indices().size());

  // Stage 5: write the Darknet layout (images/, labels/, obj.data ...).
  THALI_CHECK_OK(ds.WriteTo(out, ClassDisplayNames(classes)));
  std::printf("Stage 5: dataset written to %s/\n", out.c_str());
  std::printf("  %s/obj.data     (classes/train/valid/names)\n", out.c_str());
  std::printf("  %s/obj.names    (one class per line)\n", out.c_str());
  std::printf("  %s/images/*.ppm + labels/*.txt (YOLO format)\n",
              out.c_str());

  TablePrinter per_class("Per-class box counts");
  per_class.SetHeader({"class", "boxes"});
  for (size_t i = 0; i < classes.size(); ++i) {
    per_class.AddRow({classes[i].display_name,
                      std::to_string(st.per_class_boxes[i])});
  }
  per_class.Print();
  std::printf("\nTrain on it with:  train_custom --images %d\n", images);
  return 0;
}
