// thali_serve: the serving path end to end — build a detector from the
// model zoo, start the in-process inference server, fire a concurrent
// burst of synthetic-platter requests at it (some with tight deadlines),
// and print the serving metrics table on shutdown.
//
// Reuses the cached quickstart/benchmark weights when present (run
// `quickstart` or any bench first for a trained model); otherwise serves
// with random weights — the serving mechanics are identical either way.

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/file_util.h"
#include "core/detector.h"
#include "darknet/model_zoo.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "nn/exec_plan.h"
#include "serve/server.h"

namespace {

using namespace thali;

std::string FindWeights() {
  for (const char* candidate :
       {"thali_cache/main.weights", "thali_cache/quickstart.weights"}) {
    if (PathExists(candidate)) return candidate;
  }
  return "";
}

}  // namespace

int main() {
  using namespace thali;

  const auto& classes = IndianFood10();
  YoloThaliOptions yopts;
  yopts.classes = static_cast<int>(classes.size());
  const std::string cfg = YoloThaliCfg(yopts);
  const std::string weights = FindWeights();
  if (weights.empty()) {
    std::printf("No cached model; serving with random weights (run "
                "`quickstart` first for real detections).\n");
  } else {
    std::printf("Serving model %s\n", weights.c_str());
  }

  // THALI_INT8=1 serves the quantized plan: each worker's detector runs
  // a short calibration pass over rendered platters at startup, which
  // arms the int8 convs and chains the u8 activation edges.
  const bool int8 = Int8Enabled();
  if (int8) {
    std::printf("THALI_INT8=1: serving the calibrated int8 chained plan.\n");
  }

  serve::Server::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 32;
  opts.max_batch_size = 4;
  opts.max_linger = std::chrono::microseconds(2000);
  auto server_or = serve::Server::Create(opts, [&] {
    auto det = weights.empty() ? Detector::FromCfg(cfg)
                               : Detector::FromFiles(cfg, weights);
    if (det.ok() && int8) {
      DatasetSpec spec;
      spec.num_images = 6;
      const FoodDataset calib = FoodDataset::Generate(classes, spec);
      const std::vector<int> idx = {0, 1, 2, 3, 4, 5};
      const int armed = det->CalibrateInt8(calib, idx);
      std::printf("int8: calibrated %d conv layers for this worker\n", armed);
    }
    return det;
  });
  THALI_CHECK(server_or.ok()) << server_or.status().ToString();
  serve::Server& server = **server_or;
  std::printf("Server up: %d workers, queue capacity %d, max batch %d, "
              "linger %lldus\n",
              server.num_workers(), opts.queue_capacity, opts.max_batch_size,
              static_cast<long long>(opts.max_linger.count()));

  // The burst: 4 concurrent clients, 8 platters each, submitted as fast
  // as the bounded queue admits them. Odd requests carry a 250ms deadline.
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> detections{0}, deadline_misses{0}, rejections{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PlatterRenderer renderer(classes, PlatterRenderer::Options{});
      Rng rng(900 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        RenderedScene scene = renderer.RenderRandomPlatter(2 + i % 3, rng);
        auto fut = i % 2 == 1
                       ? server.Submit(std::move(scene.image),
                                       std::chrono::milliseconds(250))
                       : server.Submit(std::move(scene.image));
        if (!fut.ok()) {
          // Queue full: a real frontend would shed or retry; the burst
          // just counts the rejection and moves on.
          rejections.fetch_add(1);
          continue;
        }
        auto result = fut->get();
        if (result.ok()) {
          detections.fetch_add(static_cast<int>(result->size()));
        } else {
          deadline_misses.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  std::printf("\nBurst done: %d boxes detected, %d deadline misses, %d "
              "rejections across %d requests\n",
              detections.load(), deadline_misses.load(), rejections.load(),
              kClients * kPerClient);

  // Shutdown drains the queue, so the server-side counters are final
  // here. Print all three legs of the invariant (submitted = completed +
  // rejected + timed_out) — the client-side tallies above only see the
  // futures each client happened to hold.
  server.Shutdown();
  const serve::MetricsSnapshot snap = server.metrics().Snapshot();
  std::printf("\nServer drained: %lld submitted = %lld completed + %lld "
              "rejected + %lld timed out\n",
              static_cast<long long>(snap.submitted),
              static_cast<long long>(snap.completed),
              static_cast<long long>(snap.rejected),
              static_cast<long long>(snap.timed_out));
  std::printf("\n%s", server.metrics().ToString().c_str());
  return 0;
}
