// thali_cli: Darknet-style command line for the THALI library, driving
// the on-disk dataset/weights formats end to end.
//
//   thali_cli cfg    [--classes N] [--size N]
//   thali_cli render [--out FILE.ppm] [--platter N] [--seed N] [--classes20]
//   thali_cli detect --weights FILE --image FILE.ppm [--thresh F]
//                    [--classes N] [--out annotated.ppm]
//   thali_cli train  --data DIR/obj.data [--iters N] [--out FILE.weights]
//                    [--pretrained FILE --cutoff N]
//   thali_cli map    --data DIR/obj.data --weights FILE
//
// `render` + `train` + `map` compose: render a dataset with
// dataset_builder, train on it from disk, then score it — the same loop a
// Darknet user runs with photographs.

#include <cstdio>
#include <cstring>
#include <string>

#include "base/file_util.h"
#include "base/string_util.h"
#include "core/detector.h"
#include "core/trainer.h"
#include "darknet/model_zoo.h"
#include "darknet/summary.h"
#include "data/annotation.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "eval/report.h"
#include "image/draw.h"
#include "image/image_io.h"

namespace {

using namespace thali;

const char* ArgS(int argc, char** argv, const char* name, const char* def) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return def;
}

int ArgI(int argc, char** argv, const char* name, int def) {
  const char* s = ArgS(argc, argv, name, nullptr);
  return s != nullptr ? std::atoi(s) : def;
}

float ArgF(int argc, char** argv, const char* name, float def) {
  const char* s = ArgS(argc, argv, name, nullptr);
  return s != nullptr ? std::strtof(s, nullptr) : def;
}

bool ArgB(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::string CfgFor(int classes, int size, int iters) {
  YoloThaliOptions o;
  o.classes = classes;
  o.width = size;
  o.height = size;
  if (iters > 0) o.max_batches = iters;
  return YoloThaliCfg(o);
}

int CmdCfg(int argc, char** argv) {
  const int classes = ArgI(argc, argv, "--classes", 10);
  const int size = ArgI(argc, argv, "--size", 96);
  std::fputs(CfgFor(classes, size, 0).c_str(), stdout);
  return 0;
}

int CmdSummary(int argc, char** argv) {
  const int classes = ArgI(argc, argv, "--classes", 10);
  const int size = ArgI(argc, argv, "--size", 96);
  if (ArgB(argc, argv, "--calib")) {
    // Calibrated view: under THALI_INT8=1 a short synthetic calibration
    // pass arms the quantized convs and chains the u8 edges, so the
    // plan table shows the dtypes the net would actually deploy with.
    auto det_or = Detector::FromCfg(CfgFor(classes, size, 0));
    THALI_CHECK(det_or.ok()) << det_or.status().ToString();
    Detector detector = std::move(det_or).value();
    DatasetSpec spec;
    spec.num_images = 6;
    spec.width = size;
    spec.height = size;
    const FoodDataset calib = FoodDataset::Generate(
        classes == 20 ? IndianFood20() : IndianFood10(), spec);
    const std::vector<int> idx = {0, 1, 2, 3, 4, 5};
    detector.CalibrateInt8(calib, idx);
    std::fputs(NetworkSummary(detector.network()).c_str(), stdout);
    return 0;
  }
  Rng rng(1);
  // Inference mode: the summary describes the net as deployed (arena
  // plan, pre-packed weights, dispatched gemm kernel).
  auto built = BuildNetworkFromCfg(CfgFor(classes, size, 0), 1, rng,
                                   ExecMode::kInference);
  THALI_CHECK(built.ok()) << built.status().ToString();
  std::fputs(NetworkSummary(*built->net).c_str(), stdout);
  return 0;
}

int CmdRender(int argc, char** argv) {
  const auto& classes =
      ArgB(argc, argv, "--classes20") ? IndianFood20() : IndianFood10();
  const int platter = ArgI(argc, argv, "--platter", 0);
  const std::string out = ArgS(argc, argv, "--out", "scene.ppm");
  PlatterRenderer::Options ro;
  ro.width = ArgI(argc, argv, "--size", 96);
  ro.height = ro.width;
  PlatterRenderer renderer(classes, ro);
  Rng rng(static_cast<uint64_t>(ArgI(argc, argv, "--seed", 1)));

  RenderedScene scene =
      platter > 0 ? renderer.RenderRandomPlatter(platter, rng)
                  : renderer.RenderSingleDish(
                        rng.NextInt(0, static_cast<int>(classes.size()) - 1),
                        rng);
  THALI_CHECK_OK(WritePpm(scene.image, out));
  std::string label_path = out;
  if (EndsWith(label_path, ".ppm")) {
    label_path.replace(label_path.size() - 4, 4, ".txt");
  } else {
    label_path += ".txt";
  }
  THALI_CHECK_OK(WriteYoloAnnotation(scene.truths, label_path));
  std::printf("wrote %s (+%s)\n", out.c_str(), label_path.c_str());
  for (const TruthBox& t : scene.truths) {
    std::printf("  %s %s\n",
                classes[static_cast<size_t>(t.class_id)].display_name.c_str(),
                t.box.ToString().c_str());
  }
  return 0;
}

int CmdDetect(int argc, char** argv) {
  const char* weights = ArgS(argc, argv, "--weights", nullptr);
  const char* image_path = ArgS(argc, argv, "--image", nullptr);
  if (weights == nullptr || image_path == nullptr) {
    std::fprintf(stderr, "detect needs --weights and --image\n");
    return 2;
  }
  const int classes_n = ArgI(argc, argv, "--classes", 10);
  const float thresh = ArgF(argc, argv, "--thresh", 0.25f);
  const auto& classes = classes_n == 20 ? IndianFood20() : IndianFood10();

  auto img = ReadPpm(image_path);
  THALI_CHECK(img.ok()) << img.status().ToString();
  auto det_or = Detector::FromFiles(
      CfgFor(classes_n, ArgI(argc, argv, "--size", 96), 0), weights);
  THALI_CHECK(det_or.ok()) << det_or.status().ToString();
  Detector detector = std::move(det_or).value();
  detector.FuseBatchNorm();

  std::vector<Detection> dets = detector.Detect(*img, thresh, 0.45f);
  std::printf("%zu detections above %.2f:\n", dets.size(), thresh);
  Image annotated = *img;
  for (const Detection& d : dets) {
    std::printf("  %-16s %.2f  %s\n",
                classes[static_cast<size_t>(d.class_id)].display_name.c_str(),
                d.confidence, d.box.ToString().c_str());
    DrawRect(annotated, static_cast<int>(d.box.Left() * annotated.width()),
             static_cast<int>(d.box.Top() * annotated.height()),
             static_cast<int>(d.box.Right() * annotated.width()),
             static_cast<int>(d.box.Bottom() * annotated.height()),
             Color{1.0f, 0.1f, 0.1f});
  }
  const char* out = ArgS(argc, argv, "--out", nullptr);
  if (out != nullptr) {
    THALI_CHECK_OK(WritePpm(annotated, out));
    std::printf("annotated image written to %s\n", out);
  }
  return 0;
}

int CmdTrain(int argc, char** argv) {
  const char* data = ArgS(argc, argv, "--data", nullptr);
  if (data == nullptr) {
    std::fprintf(stderr, "train needs --data DIR/obj.data\n");
    return 2;
  }
  // The dataset directory is the parent of obj.data.
  std::string dir(data);
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);

  auto ds = FoodDataset::LoadFrom(dir);
  THALI_CHECK(ds.ok()) << ds.status().ToString();
  const int iters = ArgI(argc, argv, "--iters", 600);
  std::printf("loaded %d images (%d classes) from %s; training %d iters\n",
              ds->size(), ds->num_classes(), dir.c_str(), iters);

  TransferTrainer::Options topts;
  topts.cfg_text =
      CfgFor(ds->num_classes(), ds->item(0).image.width(), iters);
  topts.log_every = ArgI(argc, argv, "--log-every", 100);
  const char* pretrained = ArgS(argc, argv, "--pretrained", nullptr);
  if (pretrained != nullptr) {
    topts.pretrained_weights = pretrained;
    topts.transfer_cutoff =
        ArgI(argc, argv, "--cutoff", kYoloThaliBackboneCutoff);
  }
  auto trainer = TransferTrainer::Create(topts);
  THALI_CHECK(trainer.ok()) << trainer.status().ToString();
  THALI_CHECK_OK(trainer->Train(*ds, iters));

  EvalResult r = trainer->Evaluate(*ds, ds->val_indices());
  std::printf("%s\n", RenderSummaryLine(r).c_str());

  const char* out = ArgS(argc, argv, "--out", "thali_trained.weights");
  THALI_CHECK_OK(trainer->SaveWeightsTo(out));
  std::printf("weights written to %s\n", out);
  return 0;
}

int CmdMap(int argc, char** argv) {
  const char* data = ArgS(argc, argv, "--data", nullptr);
  const char* weights = ArgS(argc, argv, "--weights", nullptr);
  if (data == nullptr || weights == nullptr) {
    std::fprintf(stderr, "map needs --data and --weights\n");
    return 2;
  }
  std::string dir(data);
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);

  auto ds = FoodDataset::LoadFrom(dir);
  THALI_CHECK(ds.ok()) << ds.status().ToString();

  TransferTrainer::Options topts;
  topts.cfg_text = CfgFor(ds->num_classes(), ds->item(0).image.width(), 0);
  topts.pretrained_weights = weights;
  topts.log_every = 0;
  auto trainer = TransferTrainer::Create(topts);
  THALI_CHECK(trainer.ok()) << trainer.status().ToString();

  EvalResult r = trainer->Evaluate(*ds, ds->val_indices());
  auto names_or = ReadNamesFile(JoinPath(dir, "obj.names"));
  std::vector<std::string> names =
      names_or.ok() ? *names_or : ClassDisplayNames(IndianFood10());
  std::fputs(RenderClassApTable(r, names).c_str(), stdout);
  std::printf("%s\n", RenderSummaryLine(r).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: thali_cli {cfg|summary|render|detect|train|map} [flags]\n"
                 "see the header comment of thali_cli.cpp for details\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "cfg") return CmdCfg(argc, argv);
  if (cmd == "summary") return CmdSummary(argc, argv);
  if (cmd == "render") return CmdRender(argc, argv);
  if (cmd == "detect") return CmdDetect(argc, argv);
  if (cmd == "train") return CmdTrain(argc, argv);
  if (cmd == "map") return CmdMap(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
