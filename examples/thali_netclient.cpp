// thali_netclient: minimal THL1 client for a running thali_netserve.
//
//   thali_netclient <port> ping
//   thali_netclient <port> stats
//   thali_netclient <port> detect [model] [deadline_ms]
//
// `detect` renders one synthetic platter, submits it (optionally pinned
// to a model id, optionally with a deadline) and prints the boxes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "base/rng.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "net/client.h"

int main(int argc, char** argv) {
  using namespace thali;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <port> ping|stats|detect [model] [deadline_ms]\n",
                 argv[0]);
    return 2;
  }
  const auto port = static_cast<uint16_t>(std::atoi(argv[1]));
  const std::string op = argv[2];

  auto client_or = net::NetClient::Connect(port);
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  net::NetClient client = std::move(client_or).value();

  if (op == "ping") {
    Status s = client.Ping();
    std::printf("ping: %s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }
  if (op == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->c_str());
    return 0;
  }
  if (op == "detect") {
    const auto& classes = IndianFood10();
    PlatterRenderer renderer(classes, PlatterRenderer::Options{});
    Rng rng(42);
    RenderedScene scene = renderer.RenderRandomPlatter(3, rng);

    net::DetectRequest req;
    req.image = std::move(scene.image);
    if (argc > 3) req.model_id = argv[3];
    if (argc > 4) req.deadline_ms = static_cast<uint32_t>(std::atoi(argv[4]));
    auto result = client.Detect(req);
    if (!result.ok()) {
      std::fprintf(stderr, "detect: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu detections\n", result->size());
    for (const Detection& d : *result) {
      const char* name = d.class_id >= 0 &&
                                 d.class_id < static_cast<int>(classes.size())
                             ? classes[d.class_id].display_name.c_str()
                             : "?";
      std::printf("  %-14s conf=%.3f box=(%.3f, %.3f, %.3f, %.3f)\n", name,
                  d.confidence, d.box.x, d.box.y, d.box.w, d.box.h);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown op '%s'\n", op.c_str());
  return 2;
}
