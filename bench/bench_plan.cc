// End-to-end benchmark of the inference execution-plan compiler
// (nn/exec_plan.h): yolov4-thali forward throughput with the fused plan
// (CNHW layout, copy elision, direct 1x1, Winograd 3x3, fast mish)
// against the reference plan (im2col everywhere, NCHW, THALI_NO_FUSE
// semantics), plus per-conv-layer GFLOP/s under both plans. Emits JSON
// on stdout for BENCH_plan.json:
//
//   ./bench_plan [iters] > BENCH_plan.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "nn/conv_layer.h"
#include "nn/exec_plan.h"
#include "nn/network.h"

namespace thali {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LayerStat {
  int index = 0;
  std::string algo;
  int64_t flops = 0;  // direct-conv count: 2*F*C*k^2*OH*OW*batch
  double seconds = 0;
  double gflops = 0;
};

struct PlanRun {
  double img_per_s = 0;
  double ms_per_img = 0;
  std::vector<LayerStat> convs;
};

// Builds the net (fold_bn = deployment configuration), measures the
// end-to-end forward and then each conv layer in isolation. Re-running
// layer i alone is valid because the net's buffers still hold layer
// i-1's activations from the last full forward.
PlanRun RunPlan(int fuse, int iters) {
  internal::SetFusionForTesting(fuse);
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  internal::SetFusionForTesting(-1);
  THALI_CHECK_OK(built.status());
  Network& net = *built->net;
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
    }
  }

  Tensor input(net.input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i) input[i] = irng.NextGaussian();

  PlanRun run;
  for (int i = 0; i < 3; ++i) net.Forward(input);  // warmup + re-pack
  const double t0 = NowSeconds();
  for (int i = 0; i < iters; ++i) net.Forward(input);
  const double dt = NowSeconds() - t0;
  run.img_per_s = iters / dt;
  run.ms_per_img = 1e3 * dt / iters;

  for (int li = 0; li < net.num_layers(); ++li) {
    if (std::string_view(net.layer(li).kind()) != "convolutional") continue;
    ConvLayer& conv = static_cast<ConvLayer&>(net.layer(li));
    const Tensor& lin = li == 0 ? input : net.layer(li - 1).output();
    LayerStat s;
    s.index = li;
    s.algo = ConvAlgoName(net.exec_plan().layers[li].conv_algo);
    const auto& o = conv.options();
    const Shape& in = conv.input_shape();
    const Shape& out = conv.output_shape();
    s.flops = 2LL * o.filters * in.dim(1) * o.ksize * o.ksize * out.dim(2) *
              out.dim(3) * out.dim(0);
    // Layer-local iteration count sized so small layers still get
    // enough samples without letting big ones dominate the run time.
    const int reps = iters * 4;
    conv.Forward(lin, net, /*train=*/false);  // warm
    const double l0 = NowSeconds();
    for (int r = 0; r < reps; ++r) conv.Forward(lin, net, /*train=*/false);
    s.seconds = (NowSeconds() - l0) / reps;
    s.gflops = 1e-9 * static_cast<double>(s.flops) / s.seconds;
    run.convs.push_back(s);
  }
  // Per-layer timing clobbers activations; restore a coherent state.
  net.Forward(input);
  return run;
}

void Emit(const PlanRun& fused, const PlanRun& ref) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"inference plan compiler (PR 6)\",\n");
  std::printf("  \"model\": \"yolov4-thali 96x96, batch 1, batch norm folded"
              "\",\n");
  std::printf("  \"end_to_end\": {\n");
  std::printf("    \"reference_plan\": {\"img_per_s\": %.2f, \"ms_per_img\": "
              "%.3f},\n",
              ref.img_per_s, ref.ms_per_img);
  std::printf("    \"fused_plan\": {\"img_per_s\": %.2f, \"ms_per_img\": "
              "%.3f},\n",
              fused.img_per_s, fused.ms_per_img);
  std::printf("    \"speedup\": %.3f\n", fused.img_per_s / ref.img_per_s);
  std::printf("  },\n");
  std::printf("  \"per_conv_layer\": [\n");
  double worst = 1e30;
  for (size_t i = 0; i < fused.convs.size(); ++i) {
    const LayerStat& f = fused.convs[i];
    const LayerStat& r = ref.convs[i];
    if (f.gflops < worst) worst = f.gflops;
    std::printf("    {\"layer\": %d, \"algo\": \"%s\", \"gflops_fused\": "
                "%.2f, \"gflops_reference\": %.2f, \"speedup\": %.2f}%s\n",
                f.index, f.algo.c_str(), f.gflops, r.gflops,
                f.gflops / r.gflops, i + 1 < fused.convs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"worst_conv_gflops_fused\": %.2f,\n", worst);
  std::printf("  \"notes\": [\n");
  std::printf("    \"GFLOP/s counts direct-convolution FLOPs "
              "(2*F*C*k^2*OH*OW) regardless of algorithm, so Winograd's "
              "2.25x multiply saving shows up as >raw-GEMM rates.\",\n");
  std::printf("    \"reference plan = THALI_NO_FUSE semantics: NCHW, "
              "im2col+GEMM everywhere, route copies performed.\"\n");
  std::printf("  ]\n");
  std::printf("}\n");
}

}  // namespace
}  // namespace thali

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 100;
  thali::PlanRun fused = thali::RunPlan(1, iters);
  thali::PlanRun ref = thali::RunPlan(0, iters);
  thali::Emit(fused, ref);
  return 0;
}
