// Serving benchmark: a closed-loop load generator against the in-process
// inference server (src/serve). Sweeps offered concurrency (number of
// closed-loop clients, each submit -> wait -> submit) against the server's
// max_batch_size and records throughput plus p50/p99 end-to-end latency
// per configuration into BENCH_serving.json.
//
// The acceptance question the sweep answers: does dynamic micro-batching
// (max_batch_size >= 4) beat batch-1 serving throughput once offered
// concurrency reaches 4? Batching amortizes per-forward fixed costs
// (batch re-planning, im2col setup, per-call dispatch) across requests,
// at a bounded latency cost governed by max_linger.
//
// Uses randomly initialized weights (inference cost is independent of
// weight values), so this bench never needs the trained-model cache.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "bench_common.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "nn/exec_plan.h"
#include "serve/server.h"

namespace thali {
namespace {

// Each configuration runs a warmup phase (first forwards pre-pack
// weights, plan the arena for the steady-state batch size, and fault in
// buffers) before the measured window. The few-percent batching effect
// under test is smaller than cold-start noise, so warmup samples are
// discarded.
constexpr double kWarmupSeconds = 0.5;
constexpr double kMeasureSeconds = 2.5;

Image BenchImage(uint64_t seed) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(seed);
  return renderer.RenderRandomPlatter(3, rng).image;
}

struct SweepResult {
  int concurrency = 0;
  int max_batch_size = 0;
  bool int8 = false;
  int64_t requests = 0;
  double throughput_rps = 0.0;
  double mean_batch = 0.0;
  bench::LatencySummary latency;
};

// A few rendered platters for int8 activation-range calibration. The
// bench serves random weights, so the ranges are arbitrary but valid —
// the cost under test (quantize/u8-GEMM/requantize + chained u8 edges)
// is independent of the values.
const FoodDataset& CalibSet() {
  static const FoodDataset* ds = [] {
    DatasetSpec spec;
    spec.num_images = 6;
    return new FoodDataset(FoodDataset::Generate(IndianFood10(), spec));
  }();
  return *ds;
}

// Runs one (concurrency, max_batch_size, int8) configuration for
// kSecondsPerConfig of closed-loop load and reports client-observed
// latency (which includes any backpressure retries).
SweepResult RunConfig(const std::string& cfg, int concurrency,
                      int max_batch_size, bool int8) {
  serve::Server::Options opts;
  opts.num_workers = 1;  // single worker: isolates the batching effect
  opts.queue_capacity = 2 * concurrency + max_batch_size;
  opts.max_batch_size = max_batch_size;
  opts.max_linger = std::chrono::microseconds(2000);
  auto server_or = serve::Server::Create(opts, [&cfg, int8] {
    // Same effect as THALI_INT8=1 in the worker's environment, minus
    // the env juggling; the detector finalizes under the forced value.
    internal::SetInt8ForTesting(int8 ? 1 : 0);
    auto det = Detector::FromCfg(cfg, /*seed=*/7);
    internal::SetInt8ForTesting(-1);
    if (det.ok() && int8) {
      const std::vector<int> idx = {0, 1, 2, 3, 4, 5};
      const int armed = det->CalibrateInt8(CalibSet(), idx);
      THALI_CHECK_GT(armed, 0) << "int8 sweep armed no conv layers";
    }
    return det;
  });
  THALI_CHECK(server_or.ok()) << server_or.status().ToString();
  serve::Server& server = **server_or;

  std::vector<std::vector<double>> client_latencies(
      static_cast<size_t>(concurrency));
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&server, &client_latencies, c] {
      Image img = BenchImage(4242 + static_cast<uint64_t>(c));
      Stopwatch wall;
      while (wall.ElapsedSeconds() < kWarmupSeconds + kMeasureSeconds) {
        Stopwatch request;
        auto fut = server.Submit(img);
        if (!fut.ok()) {
          // Backpressure: closed-loop clients simply retry.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        auto result = fut->get();
        THALI_CHECK(result.ok()) << result.status().ToString();
        if (wall.ElapsedSeconds() >= kWarmupSeconds) {
          client_latencies[static_cast<size_t>(c)].push_back(
              request.ElapsedMillis());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();

  std::vector<double> all;
  for (const auto& v : client_latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  SweepResult r;
  r.concurrency = concurrency;
  r.max_batch_size = max_batch_size;
  r.int8 = int8;
  r.requests = static_cast<int64_t>(all.size());
  r.throughput_rps = static_cast<double>(all.size()) / kMeasureSeconds;
  r.mean_batch = server.metrics().MeanBatchSize();
  r.latency = bench::Summarize(all);
  return r;
}

// ------------------------------------------------------------ open loop --
//
// The closed-loop sweep above can never overload the server: each client
// waits for its future, so offered load self-throttles to capacity. The
// open-loop mode fires requests on a fixed arrival clock regardless of
// completions — the deployment shape the admission-control layer exists
// for — and records what the shedding policy does past saturation:
// per-class accept rate and the latency of the requests that were
// actually accepted (exact client-side samples of completed requests of
// that class only, so rejected requests cannot distort the percentiles).

constexpr double kOverloadSeconds = 3.0;
constexpr uint32_t kInteractiveDeadlineMs = 250;
// Interactive arrival rate as a fraction of measured capacity, held
// constant across all overload multiples (batch makes up the rest).
constexpr double kInteractiveFraction = 0.25;

struct OverloadResult {
  double arrival_multiple = 0.0;  // offered rate / measured capacity
  double offered_rps = 0.0;
  serve::MetricsSnapshot snap;
  // Exact client-observed e2e latency of accepted-and-completed requests
  // per class. The server's geometric histograms quantize percentiles to
  // x1.5 bucket edges — too coarse for the 2x-vs-uncontended acceptance
  // ratio — so the bench measures its own samples, like the closed-loop
  // sweep does.
  bench::LatencySummary interactive_e2e;
  bench::LatencySummary batch_e2e;
};

// FIFO hand-off from the arrival generator to a per-class collector
// thread that waits out each future and records exact e2e latency.
// Completion order within a class tracks pop order, so a FIFO drain
// stays current and the post-get timestamp error is bounded by
// same-batch simultaneity.
struct PendingLane {
  struct Pending {
    std::future<serve::Server::Result> fut;
    std::chrono::steady_clock::time_point start;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> q;
  bool closed = false;

  void Push(std::future<serve::Server::Result> fut,
            std::chrono::steady_clock::time_point start) {
    {
      std::lock_guard<std::mutex> lock(mu);
      q.push_back(Pending{std::move(fut), start});
    }
    cv.notify_one();
  }
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
  // Drains until Close() and the queue is empty; records accepted
  // completions (drops deadline-expired ones — those count as timed_out,
  // not accepted).
  void Collect(std::vector<double>* out_ms) {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return !q.empty() || closed; });
        if (q.empty()) return;
        p = std::move(q.front());
        q.pop_front();
      }
      serve::Server::Result res = p.fut.get();
      if (res.ok()) {
        out_ms->push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - p.start)
                .count());
      }
    }
  }
};

serve::Server::Options OverloadServerOptions() {
  serve::Server::Options opts;
  opts.num_workers = 1;
  // The interactive lane is deliberately shallow: with one worker every
  // queued slot is ~6 ms of wait, so depth past a couple of requests
  // only adds latency, never throughput. Keeping the lane short is what
  // bounds accepted-interactive p99 under overload; batch gets the deep
  // lane because it has no latency target and exists to be shed.
  opts.queue_capacity = 2;
  opts.batch_queue_capacity = 14;
  // Small batch quantum for the same reason: an accepted interactive
  // request waits out the in-flight batch plus its own, so the quantum
  // is a direct tail-latency tax. The closed-loop sweep shows batching
  // amortization is within noise for this model, so a quantum of 2
  // costs no capacity.
  opts.max_batch_size = 2;
  opts.max_linger = std::chrono::microseconds(2000);
  opts.admission.enabled = true;
  return opts;
}

// Offered arrival rate `rate_rps` for kOverloadSeconds on two fixed
// arrival clocks: interactive-class (with a deadline) fires at a
// CONSTANT kInteractiveFraction of capacity in every row — the same
// arrival process uncontended and overloaded, so the p99 comparison is
// apples-to-apples — while batch-class supplies the rest of the arrival
// mass. That is the overload shape the admission layer exists for:
// interactive demand (humans) is roughly constant, background/batch
// traffic is what floods, and the policy question is whether the flood
// degrades the interactive tail. Futures are handed to collector
// threads, so the generator never blocks on results.
OverloadResult RunOverload(const std::string& cfg, double capacity_rps,
                           double multiple) {
  auto server_or = serve::Server::Create(OverloadServerOptions(), [&cfg] {
    return Detector::FromCfg(cfg, /*seed=*/7);
  });
  THALI_CHECK(server_or.ok()) << server_or.status().ToString();
  serve::Server& server = **server_or;

  const double rate_rps = capacity_rps * multiple;
  const double interactive_rps = capacity_rps * kInteractiveFraction;
  const double batch_rps = rate_rps - interactive_rps;
  THALI_CHECK_GT(batch_rps, 0.0) << "overload multiple below the fixed "
                                    "interactive fraction";
  Image img = BenchImage(4242);

  PendingLane interactive_lane;
  PendingLane batch_lane;
  std::vector<double> interactive_ms;
  std::vector<double> batch_ms;
  std::thread interactive_collector(
      [&] { interactive_lane.Collect(&interactive_ms); });
  std::thread batch_collector([&] { batch_lane.Collect(&batch_ms); });

  const auto fire = [&](bool is_interactive) {
    serve::Server::SubmitOptions submit;
    if (is_interactive) {
      submit.priority = serve::Priority::kInteractive;
      submit.deadline = serve::ServeClock::now() +
                        std::chrono::milliseconds(kInteractiveDeadlineMs);
    } else {
      submit.priority = serve::Priority::kBatch;
    }
    const auto start = std::chrono::steady_clock::now();
    auto fut = server.Submit(Image(img), submit);
    if (fut.ok()) {
      (is_interactive ? interactive_lane : batch_lane)
          .Push(std::move(fut).value(), start);
    }
  };

  Stopwatch wall;
  int64_t fired_i = 0;
  int64_t fired_b = 0;
  while (wall.ElapsedSeconds() < kOverloadSeconds) {
    // Fixed arrival clocks: submit every request whose arrival time has
    // passed on either clock, then sleep to the next slot. Never waits
    // on a future.
    const double elapsed = wall.ElapsedSeconds();
    while (static_cast<double>(fired_i) / interactive_rps < elapsed) {
      fire(/*is_interactive=*/true);
      ++fired_i;
    }
    while (static_cast<double>(fired_b) / batch_rps < elapsed) {
      fire(/*is_interactive=*/false);
      ++fired_b;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  interactive_lane.Close();
  batch_lane.Close();
  interactive_collector.join();  // drains accepted work
  batch_collector.join();
  server.Shutdown();

  OverloadResult r;
  r.arrival_multiple = multiple;
  r.offered_rps = rate_rps;
  r.snap = server.metrics().Snapshot();
  r.interactive_e2e = bench::Summarize(interactive_ms);
  r.batch_e2e = bench::Summarize(batch_ms);
  return r;
}

std::string ClassJsonRow(const serve::ClassSnapshot& c,
                         const bench::LatencySummary& e2e) {
  const int64_t accepted = c.submitted - c.rejected;
  const double accept_rate =
      c.submitted > 0
          ? static_cast<double>(accepted) / static_cast<double>(c.submitted)
          : 1.0;
  return StrFormat(
      "{\"submitted\": %lld, \"accepted\": %lld, \"accept_rate\": %.3f, "
      "\"shed\": %lld, \"timed_out\": %lld, \"accepted_p50_ms\": %.3f, "
      "\"accepted_p99_ms\": %.3f}",
      static_cast<long long>(c.submitted), static_cast<long long>(accepted),
      accept_rate, static_cast<long long>(c.shed),
      static_cast<long long>(c.timed_out), e2e.p50_ms, e2e.p99_ms);
}

// Runs the overload section: measures capacity closed-loop, replays an
// uncontended open-loop baseline, then overload at 2x and 3x capacity.
std::string OverloadSectionJson(const std::string& cfg) {
  // Capacity = what a saturating closed-loop sweep config sustains.
  const SweepResult sat = RunConfig(cfg, /*concurrency=*/8,
                                    /*max_batch_size=*/4, /*int8=*/false);
  const double capacity_rps = sat.throughput_rps;
  std::printf("overload: measured capacity %.1f req/s\n", capacity_rps);

  const double multiples[] = {0.5, 2.0, 3.0};
  std::vector<OverloadResult> rows;
  for (double m : multiples) {
    OverloadResult r = RunOverload(cfg, capacity_rps, m);
    const serve::ClassSnapshot& i = r.snap.interactive;
    const serve::ClassSnapshot& b = r.snap.batch;
    std::printf(
        "overload x%.1f (%.0f req/s): interactive %lld/%lld accepted "
        "p99=%.1fms | batch %lld/%lld accepted, %lld shed\n",
        m, r.offered_rps,
        static_cast<long long>(i.submitted - i.rejected),
        static_cast<long long>(i.submitted), r.interactive_e2e.p99_ms,
        static_cast<long long>(b.submitted - b.rejected),
        static_cast<long long>(b.submitted),
        static_cast<long long>(b.shed));
    rows.push_back(std::move(r));
  }

  // The acceptance ratio: accepted interactive p99 under 2x overload
  // relative to the uncontended (0.5x) run. Shedding is doing its job
  // while this stays near 1-2x instead of exploding with the queue.
  const double uncontended_p99 = rows[0].interactive_e2e.p99_ms;
  const double overload_p99 = rows[1].interactive_e2e.p99_ms;
  const double ratio =
      uncontended_p99 > 0.0 ? overload_p99 / uncontended_p99 : 0.0;
  std::printf("overload: interactive accepted-p99 ratio (2x / uncontended) "
              "= %.2f\n", ratio);

  std::string json;
  json +=
      "  \"overload\": {\n"
      "    \"note\": \"open-loop arrival sweep with admission control "
      "(priority lanes, depth-proportional batch shedding, deadline-aware "
      "rejection): requests fire on a fixed clock at a multiple of the "
      "measured closed-loop capacity; interactive-class (with deadline) fires "
      "at a constant fraction of capacity in every row so its arrival "
      "process is identical uncontended and overloaded, batch-class "
      "(without deadline) supplies the rest of the arrival mass. "
      "accept_rate counts requests "
      "that were admitted to a queue lane; accepted_p99_ms is the "
      "exact client-observed e2e p99 over completed requests of that class "
      "only (not a histogram estimate), so shed requests cannot flatter "
      "the tail.\",\n";
  json += StrFormat("    \"measured_capacity_rps\": %.2f,\n", capacity_rps);
  json += StrFormat("    \"interactive_fraction_of_capacity\": %.2f,\n",
                    kInteractiveFraction);
  json += StrFormat("    \"interactive_deadline_ms\": %u,\n",
                    kInteractiveDeadlineMs);
  json += StrFormat(
      "    \"interactive_p99_ratio_2x_vs_uncontended\": %.3f,\n", ratio);
  json += "    \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const OverloadResult& r = rows[i];
    json += StrFormat(
        "      {\"arrival_multiple\": %.1f, \"offered_rps\": %.1f, "
        "\"shed_pressure\": %lld, \"shed_deadline\": %lld,\n"
        "       \"interactive\": %s,\n"
        "       \"batch\": %s}%s\n",
        r.arrival_multiple, r.offered_rps,
        static_cast<long long>(r.snap.shed_pressure),
        static_cast<long long>(r.snap.shed_deadline),
        ClassJsonRow(r.snap.interactive, r.interactive_e2e).c_str(),
        ClassJsonRow(r.snap.batch, r.batch_e2e).c_str(),
        i + 1 == rows.size() ? "" : ",");
  }
  json += "    ]\n  }\n";
  return json;
}

void WriteServingBench() {
  const std::string cfg = bench::StandardCfg();
  const int concurrencies[] = {1, 2, 4, 8};
  const int batch_sizes[] = {1, 4, 8};

  std::vector<SweepResult> results;
  for (int int8 = 0; int8 < 2; ++int8) {
    for (int conc : concurrencies) {
      for (int mbs : batch_sizes) {
        SweepResult r = RunConfig(cfg, conc, mbs, int8 != 0);
        std::printf(
            "concurrency=%d max_batch=%d int8=%d  %7.1f req/s  "
            "mean_batch=%.2f  p50=%.2fms p99=%.2fms\n",
            r.concurrency, r.max_batch_size, r.int8 ? 1 : 0, r.throughput_rps,
            r.mean_batch, r.latency.p50_ms, r.latency.p99_ms);
        results.push_back(r);
      }
    }
  }

  std::string json;
  json += "{\n";
  json +=
      "  \"note\": \"closed-loop serving sweep on yolov4-thali 96x96, 1 "
      "detector worker, 2ms max_linger: N clients each submit one request "
      "and wait for its future before submitting the next. throughput_rps "
      "counts completed requests over the measurement window; latency is "
      "client-observed end-to-end ms (exact sample percentiles, not "
      "histogram estimates). mean_batch is the average formed batch "
      "size. Each config runs a discarded warmup phase before the "
      "measured window. int8=1 rows serve the calibrated THALI_INT8 "
      "quantize-once chained plan (same detector, int8 conv path + u8 "
      "activation edges).\",\n";
  json += "  \"model\": \"yolov4-thali 96x96\",\n";
  json += StrFormat("  \"warmup_seconds\": %.1f,\n", kWarmupSeconds);
  json += StrFormat("  \"seconds_per_config\": %.1f,\n", kMeasureSeconds);
  json += "  \"rows\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json += StrFormat(
        "    {\"concurrency\": %d, \"max_batch_size\": %d, \"int8\": %d, "
        "\"requests\": %lld, \"throughput_rps\": %.2f, \"mean_batch\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": "
        "%.3f}%s\n",
        r.concurrency, r.max_batch_size, r.int8 ? 1 : 0,
        static_cast<long long>(r.requests), r.throughput_rps, r.mean_batch,
        r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
        r.latency.max_ms, i + 1 == results.size() ? "" : ",");
  }
  json += "  ],\n";
  json += OverloadSectionJson(cfg);
  json += "}\n";
  THALI_CHECK_OK(WriteStringToFile("BENCH_serving.json", json));
  THALI_LOG(Info) << "wrote BENCH_serving.json";
}

}  // namespace
}  // namespace thali

int main() {
  // THALI_BENCH_OVERLOAD_ONLY=1 skips the (long) closed-loop sweep and
  // runs just the open-loop overload section — no JSON is written.
  if (const char* env = std::getenv("THALI_BENCH_OVERLOAD_ONLY");
      env != nullptr && env[0] == '1') {
    (void)thali::OverloadSectionJson(thali::bench::StandardCfg());
    return 0;
  }
  thali::WriteServingBench();
  return 0;
}
