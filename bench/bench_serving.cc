// Serving benchmark: a closed-loop load generator against the in-process
// inference server (src/serve). Sweeps offered concurrency (number of
// closed-loop clients, each submit -> wait -> submit) against the server's
// max_batch_size and records throughput plus p50/p99 end-to-end latency
// per configuration into BENCH_serving.json.
//
// The acceptance question the sweep answers: does dynamic micro-batching
// (max_batch_size >= 4) beat batch-1 serving throughput once offered
// concurrency reaches 4? Batching amortizes per-forward fixed costs
// (batch re-planning, im2col setup, per-call dispatch) across requests,
// at a bounded latency cost governed by max_linger.
//
// Uses randomly initialized weights (inference cost is independent of
// weight values), so this bench never needs the trained-model cache.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "bench_common.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "nn/exec_plan.h"
#include "serve/server.h"

namespace thali {
namespace {

// Each configuration runs a warmup phase (first forwards pre-pack
// weights, plan the arena for the steady-state batch size, and fault in
// buffers) before the measured window. The few-percent batching effect
// under test is smaller than cold-start noise, so warmup samples are
// discarded.
constexpr double kWarmupSeconds = 0.5;
constexpr double kMeasureSeconds = 2.5;

Image BenchImage(uint64_t seed) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(seed);
  return renderer.RenderRandomPlatter(3, rng).image;
}

struct SweepResult {
  int concurrency = 0;
  int max_batch_size = 0;
  bool int8 = false;
  int64_t requests = 0;
  double throughput_rps = 0.0;
  double mean_batch = 0.0;
  bench::LatencySummary latency;
};

// A few rendered platters for int8 activation-range calibration. The
// bench serves random weights, so the ranges are arbitrary but valid —
// the cost under test (quantize/u8-GEMM/requantize + chained u8 edges)
// is independent of the values.
const FoodDataset& CalibSet() {
  static const FoodDataset* ds = [] {
    DatasetSpec spec;
    spec.num_images = 6;
    return new FoodDataset(FoodDataset::Generate(IndianFood10(), spec));
  }();
  return *ds;
}

// Runs one (concurrency, max_batch_size, int8) configuration for
// kSecondsPerConfig of closed-loop load and reports client-observed
// latency (which includes any backpressure retries).
SweepResult RunConfig(const std::string& cfg, int concurrency,
                      int max_batch_size, bool int8) {
  serve::Server::Options opts;
  opts.num_workers = 1;  // single worker: isolates the batching effect
  opts.queue_capacity = 2 * concurrency + max_batch_size;
  opts.max_batch_size = max_batch_size;
  opts.max_linger = std::chrono::microseconds(2000);
  auto server_or = serve::Server::Create(opts, [&cfg, int8] {
    // Same effect as THALI_INT8=1 in the worker's environment, minus
    // the env juggling; the detector finalizes under the forced value.
    internal::SetInt8ForTesting(int8 ? 1 : 0);
    auto det = Detector::FromCfg(cfg, /*seed=*/7);
    internal::SetInt8ForTesting(-1);
    if (det.ok() && int8) {
      const std::vector<int> idx = {0, 1, 2, 3, 4, 5};
      const int armed = det->CalibrateInt8(CalibSet(), idx);
      THALI_CHECK_GT(armed, 0) << "int8 sweep armed no conv layers";
    }
    return det;
  });
  THALI_CHECK(server_or.ok()) << server_or.status().ToString();
  serve::Server& server = **server_or;

  std::vector<std::vector<double>> client_latencies(
      static_cast<size_t>(concurrency));
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&server, &client_latencies, c] {
      Image img = BenchImage(4242 + static_cast<uint64_t>(c));
      Stopwatch wall;
      while (wall.ElapsedSeconds() < kWarmupSeconds + kMeasureSeconds) {
        Stopwatch request;
        auto fut = server.Submit(img);
        if (!fut.ok()) {
          // Backpressure: closed-loop clients simply retry.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        auto result = fut->get();
        THALI_CHECK(result.ok()) << result.status().ToString();
        if (wall.ElapsedSeconds() >= kWarmupSeconds) {
          client_latencies[static_cast<size_t>(c)].push_back(
              request.ElapsedMillis());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();

  std::vector<double> all;
  for (const auto& v : client_latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  SweepResult r;
  r.concurrency = concurrency;
  r.max_batch_size = max_batch_size;
  r.int8 = int8;
  r.requests = static_cast<int64_t>(all.size());
  r.throughput_rps = static_cast<double>(all.size()) / kMeasureSeconds;
  r.mean_batch = server.metrics().MeanBatchSize();
  r.latency = bench::Summarize(all);
  return r;
}

void WriteServingBench() {
  const std::string cfg = bench::StandardCfg();
  const int concurrencies[] = {1, 2, 4, 8};
  const int batch_sizes[] = {1, 4, 8};

  std::vector<SweepResult> results;
  for (int int8 = 0; int8 < 2; ++int8) {
    for (int conc : concurrencies) {
      for (int mbs : batch_sizes) {
        SweepResult r = RunConfig(cfg, conc, mbs, int8 != 0);
        std::printf(
            "concurrency=%d max_batch=%d int8=%d  %7.1f req/s  "
            "mean_batch=%.2f  p50=%.2fms p99=%.2fms\n",
            r.concurrency, r.max_batch_size, r.int8 ? 1 : 0, r.throughput_rps,
            r.mean_batch, r.latency.p50_ms, r.latency.p99_ms);
        results.push_back(r);
      }
    }
  }

  std::string json;
  json += "{\n";
  json +=
      "  \"note\": \"closed-loop serving sweep on yolov4-thali 96x96, 1 "
      "detector worker, 2ms max_linger: N clients each submit one request "
      "and wait for its future before submitting the next. throughput_rps "
      "counts completed requests over the measurement window; latency is "
      "client-observed end-to-end ms (exact sample percentiles, not "
      "histogram estimates). mean_batch is the average formed batch "
      "size. Each config runs a discarded warmup phase before the "
      "measured window. int8=1 rows serve the calibrated THALI_INT8 "
      "quantize-once chained plan (same detector, int8 conv path + u8 "
      "activation edges).\",\n";
  json += "  \"model\": \"yolov4-thali 96x96\",\n";
  json += StrFormat("  \"warmup_seconds\": %.1f,\n", kWarmupSeconds);
  json += StrFormat("  \"seconds_per_config\": %.1f,\n", kMeasureSeconds);
  json += "  \"rows\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json += StrFormat(
        "    {\"concurrency\": %d, \"max_batch_size\": %d, \"int8\": %d, "
        "\"requests\": %lld, \"throughput_rps\": %.2f, \"mean_batch\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": "
        "%.3f}%s\n",
        r.concurrency, r.max_batch_size, r.int8 ? 1 : 0,
        static_cast<long long>(r.requests), r.throughput_rps, r.mean_batch,
        r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
        r.latency.max_ms, i + 1 == results.size() ? "" : ",");
  }
  json += "  ]\n}\n";
  THALI_CHECK_OK(WriteStringToFile("BENCH_serving.json", json));
  THALI_LOG(Info) << "wrote BENCH_serving.json";
}

}  // namespace
}  // namespace thali

int main() {
  thali::WriteServingBench();
  return 0;
}
