// Reproduces Fig. 5 — the 10-class confusion matrix over single-dish
// validation images, with the paper's extra "None" column for images
// where the detector predicted nothing (and the structurally-empty None
// row greyed out, since a labelled image always has a true class).

#include <cstdio>

#include "base/string_util.h"
#include "bench_common.h"
#include "core/trainer.h"
#include "data/food_classes.h"
#include "eval/metrics.h"

int main() {
  using namespace thali;
  using namespace thali::bench;

  SharedModel model = EnsureTrainedModel();
  FoodDataset dataset = StandardDataset();

  TransferTrainer::Options topts;
  topts.cfg_text = model.cfg_text;
  topts.pretrained_weights = model.weights_path;
  topts.log_every = 0;
  auto trainer_or = TransferTrainer::Create(topts);
  THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();

  // Single-dish validation images only, as in the paper's figure.
  std::vector<int> single_dish;
  for (int idx : dataset.val_indices()) {
    if (dataset.item(idx).truths.size() == 1) single_dish.push_back(idx);
  }

  std::vector<ImageEval> evals =
      CollectImageEvals(trainer.network(), trainer.heads(), dataset,
                        single_dish, /*conf=*/0.25f, /*nms=*/0.45f);

  ConfusionMatrix cm(10);
  for (const ImageEval& ev : evals) {
    const int true_class = ev.truths[0].class_id;
    // Highest-confidence prediction; -1 (None) when nothing fired.
    int predicted = -1;
    float best = 0.0f;
    for (const Detection& d : ev.detections) {
      if (d.confidence > best) {
        best = d.confidence;
        predicted = d.class_id;
      }
    }
    cm.Add(true_class, predicted);
  }

  std::printf("Fig. 5 — Confusion matrix for 10 classes "
              "(%zu single-dish validation images, conf 0.25)\n\n",
              evals.size());
  std::printf("%s\n", cm.ToString(ClassDisplayNames(IndianFood10())).c_str());
  std::printf("Overall top-prediction accuracy: %.1f%%\n",
              cm.OverallAccuracy() * 100);

  // The paper's dominant confusion: the flat-bread pair.
  const int ap_as_ch = cm.count(0, 2);  // aloo paratha predicted chapati
  const int ch_as_ap = cm.count(2, 0);
  std::printf(
      "Shape check: bread-pair confusion (Aloo Paratha <-> Chapati) "
      "accounts for %d off-diagonal counts.\n",
      ap_as_ch + ch_as_ap);
  return 0;
}
