// Reproduces Fig. 7 — precision-recall curves for all 10 classes. The
// figure is rendered as per-class PR samples (text) plus an ASCII chart
// per class; the raw curves are also written to thali_cache/pr_curves.csv
// for external plotting.

#include <algorithm>
#include <cstdio>
#include <string>

#include "base/file_util.h"
#include "base/string_util.h"
#include "bench_common.h"
#include "core/trainer.h"
#include "eval/report.h"
#include "data/food_classes.h"

int main() {
  using namespace thali;
  using namespace thali::bench;

  SharedModel model = EnsureTrainedModel();
  FoodDataset dataset = StandardDataset();

  TransferTrainer::Options topts;
  topts.cfg_text = model.cfg_text;
  topts.pretrained_weights = model.weights_path;
  topts.log_every = 0;
  auto trainer_or = TransferTrainer::Create(topts);
  THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();
  EvalResult eval = trainer.Evaluate(dataset, dataset.val_indices());

  const auto names = ClassDisplayNames(IndianFood10());

  std::printf("Fig. 7 — PR curves for 10 classes (IoU@0.5)\n\n");
  for (const ClassMetrics& cm : eval.per_class) {
    const std::string& name = names[static_cast<size_t>(cm.class_id)];
    std::printf("%s  (AP %.1f%%, %d truths, %zu curve points)\n", name.c_str(),
                cm.ap * 100, cm.num_truths, cm.pr_curve.size());
    std::printf("%s\n", RenderPrChart(cm.pr_curve).c_str());
  }

  THALI_CHECK_OK(MakeDirs("thali_cache"));
  THALI_CHECK_OK(WriteStringToFile("thali_cache/pr_curves.csv",
                                   PrCurvesToCsv(eval, names)));
  std::printf("Raw curves written to thali_cache/pr_curves.csv\n");
  std::printf(
      "Shape check: every curve should hug precision ~1 at low recall and "
      "drop near its recall ceiling, as in the paper's figure.\n");
  return 0;
}
