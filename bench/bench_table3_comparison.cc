// Reproduces Table III — summary of mAP scores across detector families.
//
// The paper compares its fine-tuned YOLOv4 (91.8%) against two published
// food-detection pipelines it did not rerun: BTBU-Food-60 (67.7%) and
// SSD+InceptionV2 (76.9%). Here all three tiers train on the *same*
// synthetic dataset: a narrow single-anchor legacy detector, a
// single-scale SSD-style detector, and the yolov4-thali model. The shape
// to reproduce is the ordering and the rough gap, not the absolute
// numbers (the published rows come from different datasets).

#include <cstdio>

#include "base/stopwatch.h"
#include "base/string_util.h"
#include "base/table_printer.h"
#include "baseline/ssd_detector.h"
#include "bench_common.h"

namespace {

using namespace thali;
using namespace thali::bench;

// Trains one baseline tier on the standard dataset and returns val mAP.
float TrainBaseline(const FoodDataset& dataset, BaselineTier tier,
                    int iterations) {
  Rng rng(tier == BaselineTier::kLegacy ? 501 : 502);
  auto baseline = BuildSsdBaseline(10, StandardSpec().width,
                                   StandardSpec().height, 4, tier, rng);
  THALI_CHECK(baseline.ok()) << baseline.status().ToString();

  std::vector<DetectionHead*> heads = {baseline->head};
  SgdOptimizer::Options so;
  so.lr.base_lr = 2e-3f;
  so.lr.burn_in = 50;
  so.lr.steps = {iterations * 9 / 10};
  so.lr.scales = {0.1f};
  SgdOptimizer opt(so);

  TrainLoopOptions lo;
  lo.iterations = iterations;
  lo.log_every = 0;
  // The legacy tier predates heavy augmentation; the SSD tier uses flips
  // and mild jitter but no mosaic (a YOLOv4 innovation).
  lo.augment.mosaic = false;
  lo.augment.hue = 0.0f;
  lo.augment.saturation = 1.0f;
  lo.augment.exposure = 1.0f;
  lo.augment.jitter = tier == BaselineTier::kLegacy ? 0.0f : 0.1f;
  lo.augment.flip = tier != BaselineTier::kLegacy;
  RunTrainingLoop(*baseline->net, heads, dataset, dataset.train_indices(),
                  opt, lo);

  EvalOptions eo;
  EvalResult r = EvaluateDetections(*baseline->net, heads, dataset,
                                    dataset.val_indices(), 10, eo);
  return r.map;
}

}  // namespace

int main() {
  using namespace thali;
  using namespace thali::bench;

  SharedModel model = EnsureTrainedModel();
  FoodDataset dataset = StandardDataset();
  const int baseline_iters = kPaperMaxIteration / kIterationDivisor / 2;

  std::printf("training the legacy single-anchor baseline (%d iters)...\n",
              baseline_iters);
  Stopwatch sw;
  const float legacy_map =
      TrainBaseline(dataset, BaselineTier::kLegacy, baseline_iters);
  std::printf("  done in %.0fs (mAP %.1f%%)\n", sw.ElapsedSeconds(),
              legacy_map * 100);

  std::printf("training the SSD-style single-scale baseline (%d iters)...\n",
              baseline_iters);
  sw.Reset();
  const float ssd_map =
      TrainBaseline(dataset, BaselineTier::kModern, baseline_iters);
  std::printf("  done in %.0fs (mAP %.1f%%)\n", sw.ElapsedSeconds(),
              ssd_map * 100);

  TablePrinter table("TABLE III — Summary of mAP scores");
  table.SetHeader({"Model", "mAP paper", "mAP ours (same data)"});
  table.AddRow({"BTBU-Food-60-style (legacy single-anchor)", "67.7%",
                StrFormat("%.1f%%", legacy_map * 100)});
  table.AddRow({"SSD_InceptionV2-style (single-scale)", "76.9%",
                StrFormat("%.1f%%", ssd_map * 100)});
  table.AddRow({"YOLOv4 on IndianFood10 (ours)", "91.8%",
                StrFormat("%.1f%%", model.best_map * 100)});
  table.Print();

  const bool ordering = legacy_map <= ssd_map && ssd_map <= model.best_map;
  std::printf("Shape check: YOLOv4-style > SSD-style > legacy ordering %s "
              "(paper: 91.8 > 76.9 > 67.7).\n",
              ordering ? "holds" : "VIOLATED");
  return 0;
}
