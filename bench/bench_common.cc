#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "base/file_util.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "core/pipeline.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"

namespace thali {
namespace bench {

namespace {

constexpr char kCacheDir[] = "thali_cache";
constexpr char kKeyFile[] = "thali_cache/cache_key.txt";
constexpr char kWeights[] = "thali_cache/main.weights";
constexpr char kBackbone[] = "thali_cache/thali_backbone.weights";
constexpr char kTable2[] = "thali_cache/table2.csv";
constexpr int kPretrainIterations = 250;

std::string CacheKey() {
  // Any change to the recipe invalidates the cache.
  return StrFormat("v4 classes=10 size=%d images=%d iters=%d div=%d",
                   StandardSpec().width, StandardSpec().num_images,
                   kPaperMaxIteration / kIterationDivisor, kIterationDivisor);
}

bool CacheIsFresh() {
  if (!PathExists(kWeights) || !PathExists(kTable2) || !PathExists(kKeyFile)) {
    return false;
  }
  auto key = ReadFileToString(kKeyFile);
  return key.ok() && *key == CacheKey();
}

std::vector<CheckpointMetric> LoadTable2() {
  std::vector<CheckpointMetric> rows;
  auto lines = ReadLines(kTable2);
  if (!lines.ok()) return rows;
  for (const std::string& line : *lines) {
    const auto f = Split(line, ',');
    if (f.size() != 4) continue;
    CheckpointMetric m;
    m.paper_iteration = *ParseInt(f[0]);
    m.our_iteration = *ParseInt(f[1]);
    m.map = *ParseFloat(f[2]);
    m.f1 = *ParseFloat(f[3]);
    rows.push_back(m);
  }
  return rows;
}

}  // namespace

double Percentile(const std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencySummary Summarize(const std::vector<double>& samples_ms) {
  LatencySummary s;
  if (samples_ms.empty()) return s;
  s.count = static_cast<int64_t>(samples_ms.size());
  s.mean_ms = std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
              static_cast<double>(samples_ms.size());
  s.p50_ms = Percentile(samples_ms, 50);
  s.p95_ms = Percentile(samples_ms, 95);
  s.p99_ms = Percentile(samples_ms, 99);
  s.max_ms = *std::max_element(samples_ms.begin(), samples_ms.end());
  return s;
}

DatasetSpec StandardSpec() {
  DatasetSpec spec;
  spec.num_images = 1000;
  spec.width = 96;
  spec.height = 96;
  spec.seed = 20220131;
  return spec;
}

FoodDataset StandardDataset() {
  return FoodDataset::Generate(IndianFood10(), StandardSpec());
}

std::string StandardCfg() {
  YoloThaliOptions o;
  o.classes = 10;
  o.width = StandardSpec().width;
  o.height = StandardSpec().height;
  o.max_batches = kPaperMaxIteration / kIterationDivisor;
  return YoloThaliCfg(o);
}

SharedModel EnsureTrainedModel(bool log) {
  SharedModel model;
  model.cfg_text = StandardCfg();
  model.weights_path = kWeights;
  model.backbone_path = kBackbone;

  if (CacheIsFresh()) {
    model.table2 = LoadTable2();
    for (const CheckpointMetric& m : model.table2) {
      if (m.map > model.best_map) {
        model.best_map = m.map;
        model.best_paper_iteration = m.paper_iteration;
      }
    }
    if (log) {
      std::printf("[cache] reusing trained model (best mAP %.2f%% at paper "
                  "iteration %d); delete ./thali_cache to retrain\n",
                  model.best_map * 100, model.best_paper_iteration);
    }
    return model;
  }

  THALI_CHECK_OK(MakeDirs(kCacheDir));
  if (log) {
    std::printf(
        "[cache] no trained model found; running the full fine-tuning "
        "experiment once (several minutes on one CPU core)...\n");
  }
  Stopwatch total;

  // Stage 1: simulated "COCO" pretraining of the backbone.
  auto backbone = PretrainBackbone(kCacheDir, kPretrainIterations,
                                   StandardSpec().width, /*seed=*/91,
                                   log ? 100 : 0);
  THALI_CHECK(backbone.ok()) << backbone.status().ToString();

  // Stage 2: fine-tune on IndianFood10 with Table II checkpointing.
  FoodDataset dataset = StandardDataset();
  TransferTrainer::Options topts;
  topts.cfg_text = model.cfg_text;
  topts.pretrained_weights = *backbone;
  topts.transfer_cutoff = kYoloThaliBackboneCutoff;
  topts.seed = 20220131;
  topts.log_every = log ? 200 : 0;
  auto trainer_or = TransferTrainer::Create(topts);
  THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();

  const int eval_every = kPaperEvalStep / kIterationDivisor;
  const int eval_start = kPaperEvalStart / kIterationDivisor;
  std::string csv;
  THALI_CHECK_OK(trainer.Train(
      dataset, /*iterations=*/0, eval_every, [&](int iter) {
        if (iter < eval_start) return;
        EvalResult r = trainer.Evaluate(dataset, dataset.val_indices());
        CheckpointMetric m;
        m.our_iteration = iter;
        m.paper_iteration = iter * kIterationDivisor;
        m.map = r.map;
        m.f1 = r.f1;
        model.table2.push_back(m);
        csv += StrFormat("%d,%d,%.6f,%.6f\n", m.paper_iteration,
                         m.our_iteration, m.map, m.f1);
        if (log) {
          std::printf("[checkpoint] paper-iter %5d  mAP=%.2f%%  F1=%.3f\n",
                      m.paper_iteration, m.map * 100, m.f1);
        }
        if (m.map > model.best_map) {
          model.best_map = m.map;
          model.best_paper_iteration = m.paper_iteration;
          THALI_CHECK_OK(trainer.SaveWeightsTo(kWeights));
        }
      }));

  THALI_CHECK_OK(WriteStringToFile(kTable2, csv));
  THALI_CHECK_OK(WriteStringToFile(kKeyFile, CacheKey()));
  if (log) {
    std::printf("[cache] training done in %.0fs; best mAP %.2f%% at paper "
                "iteration %d\n",
                total.ElapsedSeconds(), model.best_map * 100,
                model.best_paper_iteration);
  }
  return model;
}

}  // namespace bench
}  // namespace thali
