// Reproduces Table IV — the IndianFood20 class inventory — plus the
// dataset statistics the paper reports in §IV-B (11,547 images for the
// 10-class set, 17,817 for the 20-class extension, ~7% platters at 2.33
// dishes each). The paper marks its 20-class work preliminary and reports
// no metrics for it; this bench accordingly reports the dataset, not a
// headline score.

#include <cstdio>

#include "base/string_util.h"
#include "base/table_printer.h"
#include "bench_common.h"
#include "data/food_classes.h"
#include "data/hashtag_catalog.h"

int main() {
  using namespace thali;
  using namespace thali::bench;

  const auto& classes = IndianFood20();

  TablePrinter table("TABLE IV — Food classes in IndianFood20");
  table.SetHeader({"List of Food Items", "", ""});
  for (size_t i = 0; i < classes.size(); i += 2) {
    table.AddRow({classes[i].display_name,
                  i + 1 < classes.size() ? classes[i + 1].display_name : "",
                  ""});
  }
  table.Print();

  // Generate the 20-class dataset at the benchmark scale and report the
  // §IV-B statistics alongside the published ones.
  DatasetSpec spec = StandardSpec();
  spec.num_images =
      StandardSpec().num_images * 17817 / 11547;  // keep the paper's ratio
  FoodDataset ds = FoodDataset::Generate(classes, spec);
  DatasetStats st = ds.ComputeStats();

  TablePrinter stats("Dataset statistics (paper vs generated)");
  stats.SetHeader({"Statistic", "Paper IF10", "Paper IF20", "Ours IF20"});
  stats.AddRow({"images", "11,547", "17,817",
                std::to_string(st.num_images)});
  stats.AddRow({"multi-dish share", "7.3%", "n/r",
                StrFormat("%.1f%%",
                          100.0f * st.num_platters / st.num_images)});
  stats.AddRow({"dishes per platter", "2.33", "n/r",
                StrFormat("%.2f", st.avg_dishes_per_platter)});
  stats.AddRow({"classes", "10", "20",
                std::to_string(ds.num_classes())});
  stats.AddRow({"annotations", "n/r", "n/r",
                std::to_string(st.num_annotations)});
  stats.Print();

  // The Fig. 3 class-selection stage at k=20: every IndianFood20 dish must
  // be among the most popular hashtags of the simulated catalog.
  HashtagCatalog catalog = HashtagCatalog::BuildIndianFoodCatalog();
  auto top = catalog.TopK(24);
  int found = 0;
  for (const auto& sig : classes) {
    for (const auto& e : top) {
      if (e.dish == sig.name) {
        ++found;
        break;
      }
    }
  }
  std::printf("Hashtag selection check: %d/20 IndianFood20 dishes inside the "
              "top-24 simulated hashtags.\n",
              found);

  TablePrinter box_table("Per-class annotation counts (generated IF20)");
  box_table.SetHeader({"Class", "boxes"});
  for (size_t i = 0; i < classes.size(); ++i) {
    box_table.AddRow({classes[i].display_name,
                      std::to_string(st.per_class_boxes[i])});
  }
  box_table.Print();
  return 0;
}
