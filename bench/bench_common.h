#ifndef THALI_BENCH_BENCH_COMMON_H_
#define THALI_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"

namespace thali {
namespace bench {

// All paper-reproduction benches share one trained model and dataset so
// the (minutes-long) CPU training cost is paid once. Artifacts live in
// ./thali_cache; delete the directory to retrain from scratch.
//
// Scale mapping (see DESIGN.md / ReproScale): the paper fine-tunes for
// 20,000 iterations evaluating every 1,000 (Table II rows 7000..20000);
// we divide by kIterationDivisor.
inline constexpr int kIterationDivisor = 5;
inline constexpr int kPaperMaxIteration = 20000;
inline constexpr int kPaperEvalStart = 7000;
inline constexpr int kPaperEvalStep = 1000;

// One Table II row measured during the shared training run.
struct CheckpointMetric {
  int paper_iteration = 0;  // 7000..20000
  int our_iteration = 0;    // scaled
  float map = 0.0f;
  float f1 = 0.0f;
};

struct SharedModel {
  std::string cfg_text;          // the yolov4-thali cfg that was trained
  std::string weights_path;      // best-mAP checkpoint
  std::string backbone_path;     // pretrained transfer artifact
  std::vector<CheckpointMetric> table2;
  int best_paper_iteration = 0;
  float best_map = 0.0f;
};

// The standard benchmark dataset: deterministic synthetic IndianFood10
// with the paper's composition statistics.
FoodDataset StandardDataset();

// Returns the standard dataset's spec (for benches that need geometry
// without generating images).
DatasetSpec StandardSpec();

// The standard detector cfg used across benches.
std::string StandardCfg();

// Exact percentile over raw samples: sorts a copy and linearly
// interpolates between the two nearest ranks (p in [0, 100]). Returns 0
// on an empty sample set. This is the ground truth the serving metrics
// tests check the fixed-bucket histogram estimates against.
double Percentile(const std::vector<double>& samples, double p);

// Five-number latency summary computed from raw millisecond samples.
struct LatencySummary {
  int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};
LatencySummary Summarize(const std::vector<double>& samples_ms);

// Trains (or loads from thali_cache) the shared model; `log` enables
// training progress output. Aborts the process on unrecoverable errors —
// benches have no error channel to propagate through.
SharedModel EnsureTrainedModel(bool log = true);

}  // namespace bench
}  // namespace thali

#endif  // THALI_BENCH_BENCH_COMMON_H_
