// Pre/post-processing pipeline benchmark: full batch-1 Detect (image in,
// detections out) on the int8 chained plan, with a stage-level breakdown
// (letterbox / forward / decode+NMS). Emits BENCH_prepost.json.
//
// The acceptance question: after the SIMD letterbox, quantized network
// input, logit-space decode pre-filter and bucketed NMS, is end-to-end
// batch-1 Detect >= 1.3x faster than pre-PR main? Two baselines land in
// the JSON:
//   - reference_paths: this binary with the fast pre/post paths forced
//     off (seed letterbox / decode / NMS), measured back-to-back. A
//     conservative stand-in — its forward still runs this PR's
//     quantized input prefix.
//   - baseline_pre_pr: the recorded pre-PR measurement (methodology at
//     kPrePr below), the number the 1.3x gate compares against.
//
// Uses randomly initialized weights (inference cost is independent of
// weight values), so this bench never needs the trained-model cache.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/fastpre.h"
#include "base/file_util.h"
#include "base/logging.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "bench_common.h"
#include "core/detector.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "image/image.h"
#include "image/image_prepost.h"
#include "nn/exec_plan.h"

namespace thali {
namespace {

constexpr int kWarmupIters = 30;
constexpr double kMeasureSeconds = 3.0;

// Pre-PR main (commit 17e2e79) measured on this box with this same
// bench loop (416x416 platter, int8 calibrated, conf 0.25/nms 0.45),
// built in a scratch worktree immediately before the fast-path run so
// both numbers share machine state. Re-measure when porting the bench
// to another machine.
constexpr double kPrePrMeanMs = 7.5771;
constexpr double kPrePrP50Ms = 7.8218;

Image BenchImage(uint64_t seed) {
  // Camera-resolution platter (the deployment shape): letterboxing down
  // to the network input is part of the measured request.
  PlatterRenderer::Options ropts;
  ropts.width = 416;
  ropts.height = 416;
  PlatterRenderer renderer(IndianFood10(), ropts);
  Rng rng(seed);
  return renderer.RenderRandomPlatter(3, rng).image;
}

const FoodDataset& CalibSet() {
  static const FoodDataset* ds = [] {
    DatasetSpec spec;
    spec.num_images = 6;
    return new FoodDataset(FoodDataset::Generate(IndianFood10(), spec));
  }();
  return *ds;
}

Detector MakeInt8Detector(const std::string& cfg) {
  internal::SetInt8ForTesting(1);
  auto det = Detector::FromCfg(cfg, /*seed=*/7);
  internal::SetInt8ForTesting(-1);
  THALI_CHECK(det.ok()) << det.status().ToString();
  const std::vector<int> idx = {0, 1, 2, 3, 4, 5};
  const int armed = det->CalibrateInt8(CalibSet(), idx);
  THALI_CHECK_GT(armed, 0) << "int8 bench armed no conv layers";
  return std::move(det).value();
}

struct DetectBench {
  bench::LatencySummary e2e;
  bench::LatencySummary preprocess;
  bench::LatencySummary forward;
  bench::LatencySummary postprocess;
};

DetectBench MeasureDetect(Detector& det, const Image& img, float conf,
                          float nms) {
  for (int i = 0; i < kWarmupIters; ++i) det.Detect(img, conf, nms);
  std::vector<double> e2e, pre, fwd, post;
  Stopwatch wall;
  while (wall.ElapsedSeconds() < kMeasureSeconds) {
    Stopwatch iter;
    det.Detect(img, conf, nms);
    e2e.push_back(iter.ElapsedMillis());
    const Detector::StageTimes& st = det.last_stage_times();
    pre.push_back(st.preprocess_ms);
    fwd.push_back(st.forward_ms);
    post.push_back(st.postprocess_ms);
  }
  DetectBench b;
  b.e2e = bench::Summarize(e2e);
  b.preprocess = bench::Summarize(pre);
  b.forward = bench::Summarize(fwd);
  b.postprocess = bench::Summarize(post);
  return b;
}

bench::LatencySummary MeasureLetterbox(const Image& img, int nw, int nh) {
  std::vector<float> dst(static_cast<size_t>(3) * nh * nw);
  volatile float sink = 0.0f;
  for (int i = 0; i < kWarmupIters; ++i) {
    LetterboxIntoPlanes(img, nw, nh, dst.data());
    sink = sink + dst[0];
  }
  std::vector<double> samples;
  Stopwatch wall;
  while (wall.ElapsedSeconds() < 1.0) {
    Stopwatch iter;
    LetterboxIntoPlanes(img, nw, nh, dst.data());
    samples.push_back(iter.ElapsedMillis());
    sink = sink + dst[0];
  }
  (void)sink;
  return bench::Summarize(samples);
}

std::string SummaryJson(const char* name, const bench::LatencySummary& s) {
  return StrFormat(
      "\"%s\": {\"count\": %lld, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
      "\"p95_ms\": %.4f, \"p99_ms\": %.4f}",
      name, static_cast<long long>(s.count), s.mean_ms, s.p50_ms, s.p95_ms,
      s.p99_ms);
}

void Run() {
  const std::string cfg = bench::StandardCfg();
  Image img = BenchImage(4242);

  Detector det = MakeInt8Detector(cfg);
  const int nw = det.network().input_width();
  const int nh = det.network().input_height();
  const int quantized = det.network().exec_plan().quantized_layers;
  THALI_LOG(Info) << "bench image " << img.width() << "x" << img.height()
                  << " -> net " << nw << "x" << nh << ", quantized layers "
                  << quantized << ", resize kernel " << ResizeKernelName()
                  << ", input_u8 "
                  << (det.network().exec_plan().input_u8 ? 1 : 0);

  const DetectBench fast = MeasureDetect(det, img, 0.25f, 0.45f);
  const DetectBench fast_hi = MeasureDetect(det, img, 0.99f, 0.45f);
  const bench::LatencySummary letterbox = MeasureLetterbox(img, nw, nh);

  // Back-to-back reference: same binary, fast pre/post paths off.
  internal::SetFastPreForTesting(0);
  const DetectBench ref = MeasureDetect(det, img, 0.25f, 0.45f);
  internal::SetFastPreForTesting(-1);

  std::printf("e2e batch-1 Detect (fast): mean %.4f ms  p50 %.4f (n=%lld)\n",
              fast.e2e.mean_ms, fast.e2e.p50_ms,
              static_cast<long long>(fast.e2e.count));
  std::printf("  stages: pre %.4f  forward %.4f  post %.4f ms (mean)\n",
              fast.preprocess.mean_ms, fast.forward.mean_ms,
              fast.postprocess.mean_ms);
  std::printf("e2e conf=0.99 (fast):      mean %.4f ms  p50 %.4f\n",
              fast_hi.e2e.mean_ms, fast_hi.e2e.p50_ms);
  std::printf("e2e reference paths:       mean %.4f ms  p50 %.4f\n",
              ref.e2e.mean_ms, ref.e2e.p50_ms);
  std::printf("letterbox (table-driven):  mean %.4f ms\n", letterbox.mean_ms);
  if (kPrePrMeanMs > 0.0) {
    std::printf("pre-PR main:               mean %.4f ms  -> speedup %.2fx\n",
                kPrePrMeanMs, kPrePrMeanMs / fast.e2e.mean_ms);
  }

  std::string json = "{";
  json += StrFormat(
      "\"config\": {\"image\": \"%dx%d\", \"net\": \"%dx%d\", "
      "\"quantized_layers\": %d, \"resize_kernel\": \"%s\", "
      "\"conf_threshold\": 0.25, \"nms_threshold\": 0.45}, ",
      img.width(), img.height(), nw, nh, quantized, ResizeKernelName());
  json += SummaryJson("e2e_detect", fast.e2e) + ", ";
  json += "\"stages\": {";
  json += SummaryJson("letterbox", fast.preprocess) + ", ";
  json += SummaryJson("forward", fast.forward) + ", ";
  json += SummaryJson("decode_nms", fast.postprocess);
  json += "}, ";
  json += SummaryJson("e2e_detect_conf99", fast_hi.e2e) + ", ";
  json += SummaryJson("reference_paths_e2e", ref.e2e) + ", ";
  json += SummaryJson("letterbox_standalone", letterbox) + ", ";
  json += StrFormat(
      "\"baseline_pre_pr\": {\"mean_ms\": %.4f, \"p50_ms\": %.4f, "
      "\"source\": \"commit 17e2e79, same bench loop, scratch worktree on "
      "this box\"}, ",
      kPrePrMeanMs, kPrePrP50Ms);
  json += StrFormat("\"speedup_vs_reference_paths\": %.3f, ",
                    ref.e2e.mean_ms / fast.e2e.mean_ms);
  json += StrFormat("\"speedup_vs_pre_pr\": %.3f",
                    kPrePrMeanMs > 0.0 ? kPrePrMeanMs / fast.e2e.mean_ms
                                       : 0.0);
  json += "}";
  Status st = WriteStringToFile("BENCH_prepost.json", json + "\n");
  THALI_CHECK(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace thali

int main() {
  thali::Run();
  return 0;
}
