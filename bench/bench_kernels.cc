// Micro-benchmarks (google-benchmark) for the compute kernels behind the
// detector: GEMM, im2col, convolution forward/backward, the YOLO loss,
// NMS, IoU and the synthetic renderer / mosaic augmentation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "eval/box.h"
#include "eval/detection.h"
#include "nn/conv_layer.h"
#include "nn/network.h"
#include "nn/yolo_layer.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/gemm_pack.h"
#include "tensor/im2col.h"

namespace thali {
namespace {

// Pins the global pool to `threads` for the duration of one benchmark
// run, restoring single-thread afterwards so the plain (unsuffixed)
// benches always measure the 1-thread baseline.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int threads) { SetMaxParallelism(threads); }
  ~ScopedParallelism() { SetMaxParallelism(1); }
};

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  for (auto& v : a) v = rng.NextGaussian();
  for (auto& v : b) v = rng.NextGaussian();
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Verbatim copy of the pre-packed-GEMM scalar kernel (the repo's seed
// C += alpha*A*B loop nest) so packed-vs-seed speedups can be measured
// inside one binary, under identical compiler flags.
void SeedGemmNnAccum(int64_t m, int64_t n, int64_t k, float alpha,
                     const float* a, int64_t lda, const float* b, int64_t ldb,
                     float* c, int64_t ldc) {
  constexpr int64_t kBlockK = 128;
  constexpr int64_t kBlockM = 64;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t mb = 0; mb < m; mb += kBlockM) {
      const int64_t mb1 = std::min(m, mb + kBlockM);
      for (int64_t i = mb; i < mb1; ++i) {
        float* ci = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float aip = alpha * a[i * lda + p];
          const float* bp = b + p * ldb;
          for (int64_t j = 0; j < n; ++j) {
            ci[j] += aip * bp[j];
          }
        }
      }
    }
  }
}

void BM_GemmSeedScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  for (auto& v : a) v = rng.NextGaussian();
  for (auto& v : b) v = rng.NextGaussian();
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    SeedGemmNnAccum(n, n, n, 1.0f, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmSeedScalar)->Arg(256);

// Packed inference GEMM on one conv shape (m = filters, k = c*ks*ks,
// n = out_h*out_w), weights pre-packed outside the timed loop exactly as
// ConvLayer::PrepackWeights does. Registered dynamically in main() for
// every distinct conv shape of the yolov4-thali model.
void GemmPackedShapeBench(benchmark::State& state, int64_t m, int64_t n,
                          int64_t k) {
  internal::SetGemmPackingForTesting(1);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n)), c(static_cast<size_t>(m * n));
  for (auto& v : a) v = rng.NextGaussian();
  for (auto& v : b) v = rng.NextGaussian();
  std::vector<float> packed(static_cast<size_t>(GemmPackedWeightFloats(m, k)));
  GemmPackWeights(a.data(), m, k, packed.data());
  for (auto _ : state) {
    GemmPrepacked(m, n, k, packed.data(), false, b.data(), n, 0.0f, c.data(),
                  n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * n * k);
  internal::SetGemmPackingForTesting(-1);
}

void BM_GemmPacked(benchmark::State& state) {
  GemmPackedShapeBench(state, state.range(0), state.range(1), state.range(2));
}
BENCHMARK(BM_GemmPacked)->ArgNames({"m", "n", "k"})->Args({256, 256, 256});

// Quantized int8 GEMM on the same conv shapes, operands prepared outside
// the timed loop like the fp32 packed bench (ConvLayer quantizes weights
// once at prepack; the per-item activation quantize+pack is measured by
// the end-to-end BM_ThaliInference instead). Items processed counts
// multiply-accumulate ops (2*m*n*k), so GOPS compares directly against
// BM_GemmPacked's GFLOP/s.
void GemmInt8ShapeBench(benchmark::State& state, int64_t m, int64_t n,
                        int64_t k) {
  Rng rng(1);
  const int64_t kp = Int8PackedK(k);
  std::vector<float> w(static_cast<size_t>(m * k));
  for (auto& v : w) v = rng.NextGaussian();
  std::vector<int8_t> qw(static_cast<size_t>(m * kp));
  std::vector<float> wscale(static_cast<size_t>(m));
  std::vector<int32_t> wcolsum(static_cast<size_t>(m));
  Int8QuantizeWeights(w.data(), m, k, qw.data(), wscale.data(),
                      wcolsum.data());
  float in_scale = 0.0f;
  int32_t in_zp = 0;
  Int8RangeToScaleZp(-3.0f, 3.0f, &in_scale, &in_zp);
  std::vector<float> x(static_cast<size_t>(k * n));
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<uint8_t> qcol(static_cast<size_t>(k * n));
  Int8QuantizeActivations(x.data(), k * n, 1.0f / in_scale, in_zp,
                          qcol.data());
  std::vector<uint8_t> packed(static_cast<size_t>(Int8PackedActBytes(k, n)));
  Int8PackActCols(qcol.data(), k, n, packed.data());
  std::vector<float> bias(static_cast<size_t>(m), 0.1f);
  Int8Epilogue epi;
  epi.in_scale = in_scale;
  epi.in_zp = in_zp;
  epi.wscale = wscale.data();
  epi.wcolsum = wcolsum.data();
  epi.bias = bias.data();
  epi.activation = GemmActivation::kLeaky;
  std::vector<float> c(static_cast<size_t>(m * n));
  std::vector<int32_t> acc(static_cast<size_t>(m * n));
  for (auto _ : state) {
    Int8GemmPrepacked(m, n, k, qw.data(), packed.data(), epi, c.data(), n,
                      acc.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * n * k);
}

void BM_GemmInt8(benchmark::State& state) {
  GemmInt8ShapeBench(state, state.range(0), state.range(1), state.range(2));
}
BENCHMARK(BM_GemmInt8)->ArgNames({"m", "n", "k"})->Args({256, 256, 256});

// Batch-1 end-to-end yolov4-thali inference (img/s), fp32 fused plan vs
// the calibrated THALI_INT8 plan. The int8 run pays the per-item
// activation quantize + u8 im2col + panel pack inside Forward, so this
// is the deployment-facing speedup number.
void BM_ThaliInference(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  internal::SetInt8ForTesting(int8 ? 1 : 0);
  Rng rng(4242);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}),
                                   /*batch_override=*/1, rng,
                                   ExecMode::kInference);
  internal::SetInt8ForTesting(-1);
  THALI_CHECK_OK(built.status());
  Network& net = *built->net;
  for (int i = 0; i < net.num_layers(); ++i) {
    if (std::string_view(net.layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net.layer(i)).FoldBatchNorm();
    }
  }
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  if (int8) {
    net.set_calib_phase(CalibPhase::kRange);
    net.Forward(input, /*train=*/false);
    net.set_calib_phase(CalibPhase::kOff);
    for (int i = 0; i < net.num_layers(); ++i) {
      Layer& l = net.layer(i);
      if (std::string_view(l.kind()) != "convolutional") continue;
      if (l.plan().conv_algo != ConvAlgo::kQuantInt8 &&
          l.plan().conv_algo != ConvAlgo::kQuantInt8Direct1x1) {
        continue;
      }
      static_cast<ConvLayer&>(l).FinalizeCalibration(100.0);
    }
    // Arm the quantize-once chains: the dtype pass only emits u8 edges
    // once every conv in a domain has a calibrated range.
    THALI_CHECK_OK(net.ReplanInference());
  }
  net.Forward(input, /*train=*/false);  // warm: lazy prepack outside timing
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input, /*train=*/false).data());
  }
  state.SetItemsProcessed(state.iterations());  // images
}
BENCHMARK(BM_ThaliInference)->ArgNames({"int8"})->Arg(0)->Arg(1);

void BM_Im2Col(benchmark::State& state) {
  const int c = 32, h = 24, w = 24, k = 3;
  Rng rng(2);
  std::vector<float> im(static_cast<size_t>(c) * h * w);
  for (auto& v : im) v = rng.NextGaussian();
  std::vector<float> col(static_cast<size_t>(c) * k * k * h * w);
  for (auto _ : state) {
    Im2Col(im.data(), c, h, w, k, 1, 1, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Network net(24, 24, channels, 1);
  ConvLayer::Options o;
  o.filters = channels;
  o.ksize = 3;
  o.stride = 1;
  o.pad = 1;
  o.batch_normalize = true;
  o.activation = Activation::kMish;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(3);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(rng);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input).data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(64);

// Inference-mode conv forward with batch norm already folded (the
// deployment configuration): packed=1 runs the pre-packed GEMM with the
// fused bias+leaky epilogue, packed=0 the unpacked reference path.
void BM_ConvForwardInference(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  const bool packed = state.range(1) != 0;
  internal::SetGemmPackingForTesting(packed ? 1 : 0);
  Network net(24, 24, channels, 1);
  ConvLayer::Options o;
  o.filters = channels;
  o.ksize = 3;
  o.stride = 1;
  o.pad = 1;
  o.batch_normalize = false;  // as after FoldBatchNorm
  o.activation = Activation::kLeaky;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize(ExecMode::kInference));
  Rng rng(3);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(rng);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input).data());
  }
  internal::SetGemmPackingForTesting(-1);
}
BENCHMARK(BM_ConvForwardInference)
    ->ArgNames({"channels", "packed"})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_ConvTrainStep(benchmark::State& state) {
  Network net(24, 24, 16, 2);
  ConvLayer::Options o;
  o.filters = 32;
  o.ksize = 3;
  o.stride = 1;
  o.pad = 1;
  o.batch_normalize = true;
  o.activation = Activation::kLeaky;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(4);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(rng);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  for (auto _ : state) {
    net.Forward(input, /*train=*/true);
    net.layer(0).delta().Fill(0.01f);
    net.Backward(input);
    net.ZeroGrads();
  }
}
BENCHMARK(BM_ConvTrainStep);

void BM_YoloLoss(benchmark::State& state) {
  YoloLayer::Options yo;
  yo.anchors = {{10, 10}, {26, 26}, {55, 55}};
  yo.mask = {0, 1, 2};
  yo.classes = 10;
  Network net(12, 12, 45, 4);
  net.Add(std::make_unique<YoloLayer>(yo));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(5);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  net.Forward(input, true);
  TruthBatch truths(4);
  for (auto& t : truths) {
    t.push_back({Box{0.5f, 0.5f, 0.4f, 0.4f}, 3});
    t.push_back({Box{0.2f, 0.7f, 0.2f, 0.25f}, 7});
  }
  auto* yolo = static_cast<YoloLayer*>(&net.layer(0));
  for (auto _ : state) {
    net.ZeroDeltas();
    benchmark::DoNotOptimize(yolo->ComputeLoss(truths, 96, 96));
  }
}
BENCHMARK(BM_YoloLoss);

void BM_Iou(benchmark::State& state) {
  Rng rng(6);
  std::vector<Box> boxes(1000);
  for (auto& b : boxes) {
    b = Box{rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.4f),
            rng.NextFloat(0.05f, 0.4f)};
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Iou(boxes[i % 1000], boxes[(i * 7 + 13) % 1000]));
    ++i;
  }
}
BENCHMARK(BM_Iou);

void BM_CiouGrad(benchmark::State& state) {
  Box p{0.5f, 0.5f, 0.3f, 0.25f};
  Box t{0.55f, 0.45f, 0.28f, 0.3f};
  float g[4];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CiouGrad(p, t, g));
  }
}
BENCHMARK(BM_CiouGrad);

void BM_Nms(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<Detection> dets(static_cast<size_t>(n));
  for (auto& d : dets) {
    d.box = Box{rng.NextFloat(), rng.NextFloat(), rng.NextFloat(0.05f, 0.3f),
                rng.NextFloat(0.05f, 0.3f)};
    d.class_id = rng.NextInt(0, 9);
    d.confidence = rng.NextFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Nms(dets, 0.45f));
  }
}
BENCHMARK(BM_Nms)->Arg(100)->Arg(1000);

void BM_RenderSingleDish(benchmark::State& state) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(8);
  int cls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        renderer.RenderSingleDish(cls++ % 10, rng).image.data());
  }
}
BENCHMARK(BM_RenderSingleDish);

void BM_RenderPlatter(benchmark::State& state) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        renderer.RenderRandomPlatter(3, rng).image.data());
  }
}
BENCHMARK(BM_RenderPlatter);

void BM_MosaicAugment(benchmark::State& state) {
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(10);
  std::array<Sample, 4> parts;
  for (int i = 0; i < 4; ++i) {
    RenderedScene s = renderer.RenderSingleDish(i, rng);
    parts[static_cast<size_t>(i)] = Sample{s.image, s.truths};
  }
  AugmentOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MosaicCombine(parts, opts, rng).image.data());
  }
}
BENCHMARK(BM_MosaicAugment);

// --- Threaded variants: the second benchmark argument is the thread
// count, so `--benchmark_filter=Threaded` sweeps the scaling curve.

void BM_GemmThreaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedParallelism parallelism(static_cast<int>(state.range(1)));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  for (auto& v : a) v = rng.NextGaussian();
  for (auto& v : b) v = rng.NextGaussian();
  for (auto _ : state) {
    Gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmThreaded)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_ConvForwardThreaded(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  ScopedParallelism parallelism(static_cast<int>(state.range(1)));
  Network net(24, 24, channels, 4);  // batch 4: exercises batch parallelism
  ConvLayer::Options o;
  o.filters = channels;
  o.ksize = 3;
  o.stride = 1;
  o.pad = 1;
  o.batch_normalize = true;
  o.activation = Activation::kMish;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(3);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(rng);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(input).data());
  }
}
BENCHMARK(BM_ConvForwardThreaded)
    ->ArgNames({"channels", "threads"})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4});

void BM_ConvTrainStepThreaded(benchmark::State& state) {
  ScopedParallelism parallelism(static_cast<int>(state.range(0)));
  Network net(24, 24, 16, 4);
  ConvLayer::Options o;
  o.filters = 32;
  o.ksize = 3;
  o.stride = 1;
  o.pad = 1;
  o.batch_normalize = true;
  o.activation = Activation::kLeaky;
  net.Add(std::make_unique<ConvLayer>(o));
  THALI_CHECK_OK(net.Finalize());
  Rng rng(4);
  static_cast<ConvLayer&>(net.layer(0)).InitWeights(rng);
  Tensor input(net.input_shape());
  for (int64_t i = 0; i < input.size(); ++i) input[i] = rng.NextGaussian();
  for (auto _ : state) {
    net.Forward(input, /*train=*/true);
    net.layer(0).delta().Fill(0.01f);
    net.Backward(input);
    net.ZeroGrads();
  }
}
BENCHMARK(BM_ConvTrainStepThreaded)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_RenderDatasetThreaded(benchmark::State& state) {
  ScopedParallelism parallelism(static_cast<int>(state.range(0)));
  DatasetSpec spec;
  spec.num_images = 32;
  for (auto _ : state) {
    FoodDataset ds = FoodDataset::Generate(IndianFood10(), spec);
    benchmark::DoNotOptimize(ds.item(0).image.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.num_images);
}
BENCHMARK(BM_RenderDatasetThreaded)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

}  // namespace

// Registers one BM_GemmPacked instance per distinct conv GEMM shape of
// the yolov4-thali model (m = filters, n = out_h*out_w, k = c*ks*ks), so
// the sweep always tracks the real network rather than a hand-kept list.
void RegisterYoloShapeBenches() {
  YoloThaliOptions yo;
  Rng rng(1);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(yo), /*batch_override=*/1,
                                   rng, ExecMode::kInference);
  if (!built.ok()) return;
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  for (int i = 0; i < built->net->num_layers(); ++i) {
    const Layer& l = built->net->layer(i);
    if (std::string_view(l.kind()) != "convolutional") continue;
    const auto& conv = static_cast<const ConvLayer&>(l);
    const int64_t m = conv.options().filters;
    const int64_t k = l.input_shape().dim(1) * conv.options().ksize *
                      conv.options().ksize;
    const int64_t n = l.output_shape().dim(2) * l.output_shape().dim(3);
    if (!seen.insert({m, n, k}).second) continue;
    const std::string suffix = "yolo_m" + std::to_string(m) + "_n" +
                               std::to_string(n) + "_k" + std::to_string(k);
    benchmark::RegisterBenchmark(
        ("BM_GemmPacked/" + suffix).c_str(),
        [m, n, k](benchmark::State& st) {
          GemmPackedShapeBench(st, m, n, k);
        });
    benchmark::RegisterBenchmark(
        ("BM_GemmInt8/" + suffix).c_str(), [m, n, k](benchmark::State& st) {
          GemmInt8ShapeBench(st, m, n, k);
        });
  }
}

}  // namespace thali

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  thali::RegisterYoloShapeBenches();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
