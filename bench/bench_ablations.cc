// Ablation harness for the design choices DESIGN.md calls out: mosaic
// augmentation on/off, transfer vs from-scratch initialization, and the
// CIoU-vs-MSE box objective (via the SSD head). Each arm trains a
// shortened schedule on a reduced dataset — the point is the *relative*
// effect, reported side by side.

#include <cstdio>
#include <string>

#include "base/stopwatch.h"
#include "base/string_util.h"
#include "base/table_printer.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"

namespace {

using namespace thali;
using namespace thali::bench;

constexpr int kAblationImages = 400;
constexpr int kAblationIters = 600;

FoodDataset AblationDataset() {
  DatasetSpec spec;
  spec.num_images = kAblationImages;
  spec.seed = 555;
  return FoodDataset::Generate(IndianFood10(), spec);
}

std::string AblationCfg(bool mosaic, float iou_normalizer) {
  YoloThaliOptions o;
  o.classes = 10;
  o.max_batches = kAblationIters;
  o.mosaic = mosaic;
  std::string cfg = YoloThaliCfg(o);
  if (iou_normalizer != 0.75f) {
    const std::string needle = "iou_normalizer=0.75";
    const std::string repl = StrFormat("iou_normalizer=%.3f", iou_normalizer);
    for (size_t p = cfg.find(needle); p != std::string::npos;
         p = cfg.find(needle, p)) {
      cfg.replace(p, needle.size(), repl);
      p += repl.size();
    }
  }
  return cfg;
}

float RunArm(const std::string& label, const std::string& cfg,
             const std::string& pretrained, const FoodDataset& ds) {
  Stopwatch sw;
  TransferTrainer::Options topts;
  topts.cfg_text = cfg;
  topts.log_every = 0;
  topts.seed = 987;
  if (!pretrained.empty()) {
    topts.pretrained_weights = pretrained;
    topts.transfer_cutoff = kYoloThaliBackboneCutoff;
  }
  auto trainer = TransferTrainer::Create(topts);
  THALI_CHECK(trainer.ok()) << trainer.status().ToString();
  THALI_CHECK_OK(trainer->Train(ds));
  EvalResult r = trainer->Evaluate(ds, ds.val_indices());
  std::printf("  %-28s mAP=%.1f%%  F1=%.2f  (%.0fs)\n", label.c_str(),
              r.map * 100, r.f1, sw.ElapsedSeconds());
  return r.map;
}

}  // namespace

int main() {
  using namespace thali;
  using namespace thali::bench;

  std::printf("Ablations: %d images, %d iterations per arm "
              "(shortened schedule; relative effects only)\n\n",
              kAblationImages, kAblationIters);
  FoodDataset ds = AblationDataset();

  // A shared pretrained backbone for the transfer arm.
  auto backbone =
      PretrainBackbone("thali_cache", /*iterations=*/150, 96, /*seed=*/31, 0);
  THALI_CHECK(backbone.ok()) << backbone.status().ToString();

  const float base =
      RunArm("baseline (mosaic, scratch)", AblationCfg(true, 0.75f), "", ds);
  const float no_mosaic =
      RunArm("no mosaic", AblationCfg(false, 0.75f), "", ds);
  const float transfer = RunArm("with transfer (pretrained)",
                                AblationCfg(true, 0.75f), *backbone, ds);
  const float weak_box = RunArm("weak box loss (iou_norm 0.07)",
                                AblationCfg(true, 0.07f), "", ds);

  TablePrinter table("Ablation summary (validation mAP@0.5)");
  table.SetHeader({"Arm", "mAP", "delta vs baseline"});
  auto row = [&](const char* name, float v) {
    table.AddRow({name, StrFormat("%.1f%%", v * 100),
                  StrFormat("%+.1f", (v - base) * 100)});
  };
  row("baseline (mosaic, scratch init)", base);
  row("no mosaic augmentation", no_mosaic);
  row("transfer from pretrained backbone", transfer);
  row("weak box loss (Darknet 0.07 at short schedule)", weak_box);
  table.Print();

  std::printf(
      "\nExpected shapes: transfer >= scratch (the paper's thesis); the "
      "weak box loss\nunderfits localization at this schedule (see "
      "EXPERIMENTS.md).\n");
  return 0;
}
