// Reproduces Table I — Average Precision for each IndianFood10 class.
//
// Paper setup: YOLOv4 fine-tuned on IndianFood10, evaluated on the 20%
// split at IoU 0.5 with Padilla et al. metrics. This harness runs the
// same pipeline on the synthetic dataset (see DESIGN.md for the scale
// substitutions) and prints the measured APs next to the published ones.

#include <cstdio>

#include "base/string_util.h"
#include "base/table_printer.h"
#include "bench_common.h"
#include "core/detector.h"
#include "data/food_classes.h"

namespace {

// Table I of the paper, in class-id order.
constexpr float kPaperAp[10] = {78.3f, 93.0f, 79.4f, 85.1f, 91.0f,
                                91.9f, 94.3f, 89.7f, 91.5f, 94.9f};

}  // namespace

int main() {
  using namespace thali;
  using namespace thali::bench;

  SharedModel model = EnsureTrainedModel();
  FoodDataset dataset = StandardDataset();

  // Rebuild the training-shaped network and evaluate the best checkpoint.
  TransferTrainer::Options topts;
  topts.cfg_text = model.cfg_text;
  topts.pretrained_weights = model.weights_path;  // full checkpoint
  topts.log_every = 0;
  auto trainer_or = TransferTrainer::Create(topts);
  THALI_CHECK(trainer_or.ok()) << trainer_or.status().ToString();
  TransferTrainer trainer = std::move(trainer_or).value();
  EvalResult eval = trainer.Evaluate(dataset, dataset.val_indices());

  const auto& classes = IndianFood10();
  TablePrinter table(
      "TABLE I — Average Precision for each class (IoU@0.5, every-point "
      "interpolation)");
  table.SetHeader({"Class in IndianFood10", "AP paper (%)", "AP ours (%)",
                   "truths", "TP"});
  for (int c = 0; c < 10; ++c) {
    const ClassMetrics& cm = eval.per_class[static_cast<size_t>(c)];
    table.AddRow({classes[static_cast<size_t>(c)].display_name,
                  StrFormat("%.1f", kPaperAp[c]),
                  StrFormat("%.1f", cm.ap * 100),
                  std::to_string(cm.num_truths),
                  std::to_string(cm.true_positives)});
  }
  table.Print();
  std::printf("mAP@0.5: paper 91.8%%, ours %.1f%%  (F1: paper 0.90, ours "
              "%.2f)\n",
              eval.map * 100, eval.f1);
  std::printf(
      "Shape check: the paper's two lowest APs are the confusable flat "
      "breads\n(Aloo Paratha 78.3, Chapati 79.4); ours: Aloo Paratha "
      "%.1f, Chapati %.1f.\n",
      eval.per_class[0].ap * 100, eval.per_class[2].ap * 100);
  return 0;
}
