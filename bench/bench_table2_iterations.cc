// Reproduces Table II — mean Average Precision at each training
// checkpoint (paper iterations 7000..20000, every 1000; our schedule is
// the same divided by kIterationDivisor).
//
// The shape to reproduce: mAP rises quickly, plateaus around its maximum
// well before the end of training, and the best checkpoint is *not* the
// last one (the paper's best is 91.76% at iteration 10000).

#include <cstdio>

#include "base/string_util.h"
#include "base/table_printer.h"
#include "bench_common.h"

namespace {

struct PaperRow {
  int iterations;
  float map;
  float f1;
};

// Table II of the paper.
constexpr PaperRow kPaper[] = {
    {7000, 90.49f, 0.89f},  {8000, 91.57f, 0.90f},  {9000, 90.75f, 0.89f},
    {10000, 91.76f, 0.90f}, {11000, 90.99f, 0.90f}, {12000, 90.80f, 0.90f},
    {13000, 91.03f, 0.90f}, {14000, 90.41f, 0.90f}, {15000, 90.26f, 0.90f},
    {16000, 90.28f, 0.90f}, {17000, 90.83f, 0.91f}, {18000, 89.89f, 0.90f},
    {19000, 90.16f, 0.91f}, {20000, 90.83f, 0.91f},
};

}  // namespace

int main() {
  using namespace thali;
  using namespace thali::bench;

  SharedModel model = EnsureTrainedModel();

  TablePrinter table(
      "TABLE II — Mean Average Precision for each iterations checkpoint");
  table.SetHeader({"Paper iter", "Ours iter", "mAP paper (%)", "mAP ours (%)",
                   "F1 paper", "F1 ours"});
  for (const PaperRow& p : kPaper) {
    const CheckpointMetric* ours = nullptr;
    for (const CheckpointMetric& m : model.table2) {
      if (m.paper_iteration == p.iterations) ours = &m;
    }
    table.AddRow({std::to_string(p.iterations),
                  ours ? std::to_string(ours->our_iteration) : "-",
                  StrFormat("%.2f", p.map),
                  ours ? StrFormat("%.2f", ours->map * 100) : "-",
                  StrFormat("%.2f", p.f1),
                  ours ? StrFormat("%.2f", ours->f1) : "-"});
  }
  table.Print();

  // Shape statistics: plateau spread and best-checkpoint position.
  float min_map = 1.0f, max_map = 0.0f;
  for (const CheckpointMetric& m : model.table2) {
    min_map = std::min(min_map, m.map);
    max_map = std::max(max_map, m.map);
  }
  std::printf(
      "Best checkpoint: paper iteration %d (mAP %.2f%%). Paper's best: "
      "10000 (91.76%%).\n",
      model.best_paper_iteration, model.best_map * 100);
  std::printf(
      "Plateau spread across checkpoints: ours %.2f points (paper: "
      "%.2f points, 89.89..91.76).\n",
      (max_map - min_map) * 100, 91.76f - 89.89f);
  std::printf(
      "Shape check: best checkpoint precedes the final iteration in both "
      "(paper 10000 < 20000; ours %d < %d).\n",
      model.best_paper_iteration, kPaperMaxIteration);
  return 0;
}
