// End-to-end inference benchmark: the paper's framing of YOLO as "a fast
// one-stage object detector". Measures full Detector::Detect latency
// (forward + decode + NMS) on the yolov4-thali network, with and without
// batch-norm folding, plus the letterboxed path for off-size inputs.
//
// Uses randomly initialized weights: inference cost is independent of the
// weight values, so this bench never needs the trained-model cache.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/detector.h"
#include "data/food_classes.h"
#include "data/renderer.h"

namespace thali {
namespace {

Image BenchImage(int size) {
  PlatterRenderer::Options ro;
  ro.width = size;
  ro.height = size;
  PlatterRenderer renderer(IndianFood10(), ro);
  Rng rng(4242);
  return renderer.RenderRandomPlatter(3, rng).image;
}

void BM_DetectorForward(benchmark::State& state) {
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  Image img = BenchImage(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectorForward)->Unit(benchmark::kMillisecond);

void BM_DetectorForwardFusedBn(benchmark::State& state) {
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  det.FuseBatchNorm();
  Image img = BenchImage(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectorForwardFusedBn)->Unit(benchmark::kMillisecond);

void BM_DetectorLetterboxedInput(benchmark::State& state) {
  // Off-size input exercises letterboxing + box re-mapping.
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  Image img = BenchImage(160);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
}
BENCHMARK(BM_DetectorLetterboxedInput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace thali

BENCHMARK_MAIN();
