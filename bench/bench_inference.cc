// End-to-end inference benchmark: the paper's framing of YOLO as "a fast
// one-stage object detector". Measures full Detector::Detect latency
// (forward + decode + NMS) on the yolov4-thali network, with and without
// batch-norm folding, plus the letterboxed path for off-size inputs and
// DetectBatch throughput at batch 1/4/8.
//
// Before the google-benchmark suite runs, main() sweeps batch 1/4/8 with
// the activation arena planned vs disabled (THALI_NO_ARENA) and writes
// peak activation bytes + images/sec to BENCH_memory.json.
//
// Uses randomly initialized weights: inference cost is independent of the
// weight values, so this bench never needs the trained-model cache.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "base/file_util.h"
#include "base/stopwatch.h"
#include "base/string_util.h"
#include "bench_common.h"
#include "core/detector.h"
#include "data/food_classes.h"
#include "data/renderer.h"

namespace thali {
namespace {

Image BenchImage(int size) {
  PlatterRenderer::Options ro;
  ro.width = size;
  ro.height = size;
  PlatterRenderer renderer(IndianFood10(), ro);
  Rng rng(4242);
  return renderer.RenderRandomPlatter(3, rng).image;
}

void BM_DetectorForward(benchmark::State& state) {
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  Image img = BenchImage(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectorForward)->Unit(benchmark::kMillisecond);

void BM_DetectorForwardFusedBn(benchmark::State& state) {
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  det.FuseBatchNorm();
  Image img = BenchImage(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectorForwardFusedBn)->Unit(benchmark::kMillisecond);

void BM_DetectorLetterboxedInput(benchmark::State& state) {
  // Off-size input exercises letterboxing + box re-mapping.
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  Image img = BenchImage(160);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(img, 0.25f, 0.45f));
  }
}
BENCHMARK(BM_DetectorLetterboxedInput)->Unit(benchmark::kMillisecond);

void BM_DetectBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();
  std::vector<Image> images(static_cast<size_t>(batch), BenchImage(96));
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.DetectBatch(images, 0.25f, 0.45f));
  }
  state.counters["img/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
  state.counters["act_bytes"] = benchmark::Counter(
      static_cast<double>(det.network().ActivationBytes()));
}
BENCHMARK(BM_DetectBatch)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One row of the BENCH_memory.json sweep: `planned` toggles the arena
// via THALI_NO_ARENA before the detector is built.
std::string MemorySweepRow(int batch, bool planned, bool last) {
  if (!planned) setenv("THALI_NO_ARENA", "1", 1);
  auto det_or = Detector::FromCfg(bench::StandardCfg());
  if (!planned) unsetenv("THALI_NO_ARENA");
  THALI_CHECK(det_or.ok());
  Detector det = std::move(det_or).value();

  std::vector<Image> images(static_cast<size_t>(batch), BenchImage(96));
  det.DetectBatch(images, 0.25f, 0.45f);  // warm up + size buffers
  const ArenaPlan& plan = det.network().arena_plan();
  const int64_t bytes = det.network().ActivationBytes();

  int iters = 0;
  Stopwatch sw;
  while (sw.ElapsedSeconds() < 0.2 || iters < 3) {
    det.DetectBatch(images, 0.25f, 0.45f);
    ++iters;
  }
  const double images_per_sec = iters * batch / sw.ElapsedSeconds();

  return StrFormat(
      "    {\"batch\": %d, \"planned\": %s, \"activation_bytes\": %lld, "
      "\"arena_floats\": %lld, \"sum_output_floats\": %lld, "
      "\"images_per_sec\": %.2f}%s\n",
      batch, planned ? "true" : "false", static_cast<long long>(bytes),
      static_cast<long long>(plan.arena_floats),
      static_cast<long long>(plan.sum_output_floats), images_per_sec,
      last ? "" : ",");
}

void WriteMemoryBench() {
  std::string json;
  json += "{\n";
  json +=
      "  \"note\": \"yolov4-thali inference activation footprint: arena "
      "planner (planned=true) vs one-buffer-per-layer seed allocator "
      "(planned=false, THALI_NO_ARENA). activation_bytes is "
      "Network::ActivationBytes() after DetectBatch at the given batch; "
      "images_per_sec is end-to-end DetectBatch throughput on this "
      "host.\",\n";
  json += "  \"model\": \"yolov4-thali 96x96\",\n";
  json += "  \"rows\": [\n";
  const int batches[] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    json += MemorySweepRow(batches[i], /*planned=*/true, /*last=*/false);
    json += MemorySweepRow(batches[i], /*planned=*/false, /*last=*/i == 2);
  }
  json += "  ]\n}\n";
  THALI_CHECK_OK(WriteStringToFile("BENCH_memory.json", json));
  THALI_LOG(Info) << "wrote BENCH_memory.json";
}

}  // namespace
}  // namespace thali

int main(int argc, char** argv) {
  thali::WriteMemoryBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
