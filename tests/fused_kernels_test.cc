// Unit tests for the kernels the fused inference plan dispatches to
// (nn/exec_plan.h): the fast activation family (tensor/act_kernels.h),
// Winograd F(2x2,3x3) convolution (tensor/winograd.h), and the GEMM
// stream-B / masked edge-tile paths that back the direct 1x1 and CNHW
// strided convs. Carries the `asan_smoke` ctest label: a
// -DTHALI_SANITIZE=address build runs these to sweep the fused paths
// (transform scratch, masked loads, arena-aliased full-model forward)
// for out-of-bounds access.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "nn/activation.h"
#include "nn/exec_plan.h"
#include "nn/network.h"
#include "tensor/act_kernels.h"
#include "tensor/gemm.h"
#include "tensor/gemm_pack.h"
#include "tensor/winograd.h"

namespace thali {
namespace {

float MishRef(float x) {
  // The libm reference from nn/activation.cc, including its stable
  // softplus branches.
  float sp;
  if (x > 20.0f) {
    sp = x;
  } else if (x < -20.0f) {
    sp = std::exp(x);
  } else {
    sp = std::log1p(std::exp(x));
  }
  return x * std::tanh(sp);
}

// ---------------------------------------------------------------------
// Fast activation family.

TEST(FastActTest, FastExpAccuracyPin) {
  // The degree-5 Cephes polynomial promises ~2e-7 relative error over
  // the clamped domain; pin at 5e-7 so a coefficient regression trips.
  for (int i = -8700; i <= 8800; ++i) {
    const float x = 0.01f * static_cast<float>(i);
    const float got = internal::FastExpScalar(x);
    const float want = std::exp(x);
    ASSERT_NEAR(got, want, 5e-7f * want) << "x=" << x;
  }
  // Inputs beyond the clamp domain behave like the clamp edge (the top
  // edge exp(88.72) sits at FLT_MAX, so "finite" is not guaranteed —
  // only that wilder inputs don't change the answer).
  EXPECT_EQ(internal::FastExpScalar(1000.0f),
            internal::FastExpScalar(10000.0f));
  EXPECT_GE(internal::FastExpScalar(-1000.0f), 0.0f);
  EXPECT_LE(internal::FastExpScalar(-1000.0f), 1e-37f);
}

TEST(FastActTest, FastMishAccuracyPin) {
  // act_kernels.h documents < 3e-7 * max(1,|x|) against the libm
  // reference; pin at 5e-7 * max(1,|x|).
  std::vector<float> xs;
  for (int i = -3000; i <= 3000; ++i) xs.push_back(0.01f * i);
  std::vector<float> ys = xs;
  internal::SetActKernelForTesting("scalar");
  FastMishInPlace(ys.data(), static_cast<int64_t>(ys.size()));
  internal::SetActKernelForTesting(nullptr);
  for (size_t i = 0; i < xs.size(); ++i) {
    const float want = MishRef(xs[i]);
    const float tol = 5e-7f * std::max(1.0f, std::abs(xs[i]));
    ASSERT_NEAR(ys[i], want, tol) << "x=" << xs[i];
  }
}

TEST(FastActTest, SaturatedBranchIsExactlyIdentity) {
  // For x >= 20 the reference computes x * tanh(x) with tanh saturated
  // to 1.0f; the fast path returns x exactly, bit for bit.
  std::vector<float> xs = {20.0f, 25.5f, 60.0f, 87.0f, 500.0f};
  std::vector<float> ys = xs;
  FastMishInPlace(ys.data(), static_cast<int64_t>(ys.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(std::memcmp(&xs[i], &ys[i], sizeof(float)), 0) << xs[i];
  }
}

TEST(FastActTest, ScalarAndAvx2FamiliesAgreeBitwise) {
  // The determinism contract: both families spell out the identical op
  // sequence, so lane vs remainder placement never changes a value.
  // When this host lacks AVX2 the override is ignored and the test
  // compares scalar to scalar, which is trivially true.
  Rng rng(7);
  std::vector<float> base(1003);  // odd length exercises the remainder
  for (auto& v : base) v = rng.NextFloat() * 40.0f - 20.0f;

  for (void (*kernel)(float*, int64_t) :
       {&FastMishInPlace, &FastLeakyInPlace, &FastReluInPlace}) {
    std::vector<float> a = base, b = base;
    internal::SetActKernelForTesting("scalar");
    kernel(a.data(), static_cast<int64_t>(a.size()));
    internal::SetActKernelForTesting("avx2");
    kernel(b.data(), static_cast<int64_t>(b.size()));
    internal::SetActKernelForTesting(nullptr);
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
  }
}

// ---------------------------------------------------------------------
// Winograd F(2x2, 3x3).

// Reference direct 3x3 stride-1 pad-1 convolution, NCHW single item.
void DirectConv3x3(const float* in, int64_t c, int64_t h, int64_t w,
                   const float* weights, int64_t f, float* out) {
  for (int64_t of = 0; of < f; ++of) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int64_t ic = 0; ic < c; ++ic) {
          for (int64_t ky = 0; ky < 3; ++ky) {
            const int64_t sy = y + ky - 1;
            if (sy < 0 || sy >= h) continue;
            for (int64_t kx = 0; kx < 3; ++kx) {
              const int64_t sx = x + kx - 1;
              if (sx < 0 || sx >= w) continue;
              acc += static_cast<double>(in[(ic * h + sy) * w + sx]) *
                     weights[((of * c + ic) * 3 + ky) * 3 + kx];
            }
          }
        }
        out[(of * h + y) * w + x] = static_cast<float>(acc);
      }
    }
  }
}

void WinogradVsDirectCase(int64_t c, int64_t f, int64_t h, int64_t w,
                          bool packed) {
  Rng rng(static_cast<uint64_t>(c * 1000 + f * 100 + h * 10 + w +
                                (packed ? 7 : 0)));
  std::vector<float> in(static_cast<size_t>(c * h * w));
  std::vector<float> weights(static_cast<size_t>(f * c * 9));
  for (auto& v : in) v = rng.NextFloat() * 2.0f - 1.0f;
  for (auto& v : weights) v = rng.NextFloat() * 2.0f - 1.0f;

  std::vector<float> ref(static_cast<size_t>(f * h * w));
  DirectConv3x3(in.data(), c, h, w, weights.data(), f, ref.data());

  std::vector<float> u(static_cast<size_t>(WinogradWeightFloats(f, c)));
  WinogradTransformWeights(weights.data(), f, c, u.data());
  std::vector<float> u_packed;
  if (packed) {
    u_packed.resize(static_cast<size_t>(WinogradPackedWeightFloats(f, c)));
    WinogradPackWeights(u.data(), f, c, u_packed.data());
  }
  std::vector<float> ws(
      static_cast<size_t>(WinogradWorkspaceFloats(c, f, h, w)));
  std::vector<float> got(static_cast<size_t>(f * h * w), -1.0f);
  WinogradForward(in.data(), h * w, c, h, w, u.data(),
                  packed ? u_packed.data() : nullptr, f, got.data(), h * w,
                  ws.data());

  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-4f + 1e-3f * std::abs(ref[i]))
        << "c=" << c << " f=" << f << " h=" << h << " w=" << w
        << " packed=" << packed << " at " << i;
  }
}

TEST(WinogradTest, MatchesDirectConvWithinTolerance) {
  // Even, odd, and non-square spatial sizes (odd exercises the edge
  // clipping of partial 2x2 output tiles), tiny and yolo-scale channel
  // counts, both the prepacked and plain-GEMM weight paths.
  for (const bool packed : {false, true}) {
    WinogradVsDirectCase(1, 1, 4, 4, packed);
    WinogradVsDirectCase(3, 8, 7, 5, packed);
    WinogradVsDirectCase(16, 32, 12, 12, packed);
    WinogradVsDirectCase(8, 4, 1, 1, packed);
    WinogradVsDirectCase(32, 64, 6, 6, packed);
  }
}

TEST(WinogradTest, StridedLayoutMatchesContiguous) {
  // CNHW at batch > 1 reaches WinogradForward with channel strides
  // batch*H*W; planting the item inside a larger block must read/write
  // exactly the same values as the contiguous run.
  const int64_t c = 5, f = 7, h = 6, w = 6, batch = 3;
  Rng rng(31);
  std::vector<float> weights(static_cast<size_t>(f * c * 9));
  for (auto& v : weights) v = rng.NextFloat() * 2.0f - 1.0f;
  std::vector<float> u(static_cast<size_t>(WinogradWeightFloats(f, c)));
  WinogradTransformWeights(weights.data(), f, c, u.data());
  std::vector<float> ws(
      static_cast<size_t>(WinogradWorkspaceFloats(c, f, h, w)));

  std::vector<float> in_blocked(static_cast<size_t>(c * batch * h * w));
  for (auto& v : in_blocked) v = rng.NextFloat() * 2.0f - 1.0f;
  std::vector<float> out_blocked(static_cast<size_t>(f * batch * h * w), 0.0f);

  const int64_t item = 1;  // middle batch slot
  WinogradForward(in_blocked.data() + item * h * w, batch * h * w, c, h, w,
                  u.data(), nullptr, f, out_blocked.data() + item * h * w,
                  batch * h * w, ws.data());

  // Contiguous control: gather item 1's channels, run, compare bitwise.
  std::vector<float> in_c(static_cast<size_t>(c * h * w));
  for (int64_t ic = 0; ic < c; ++ic) {
    std::memcpy(in_c.data() + ic * h * w,
                in_blocked.data() + (ic * batch + item) * h * w,
                static_cast<size_t>(h * w) * sizeof(float));
  }
  std::vector<float> out_c(static_cast<size_t>(f * h * w), 0.0f);
  WinogradForward(in_c.data(), h * w, c, h, w, u.data(), nullptr, f,
                  out_c.data(), h * w, ws.data());
  for (int64_t of = 0; of < f; ++of) {
    EXPECT_EQ(std::memcmp(out_blocked.data() + (of * batch + item) * h * w,
                          out_c.data() + of * h * w,
                          static_cast<size_t>(h * w) * sizeof(float)),
              0)
        << "filter " << of;
  }
}

// ---------------------------------------------------------------------
// GEMM stream-B / masked ragged-N edge tiles.

TEST(GemmStreamBTest, RaggedNShapesMatchReferenceBitwise) {
  // The yolo-head GEMMs have N = spatial (not a multiple of the 16-wide
  // NR tile); the masked edge-tile kernels must equal the sequential
  // reference bit for bit, per the packed-driver determinism contract.
  const struct {
    int64_t m, n, k;
  } shapes[] = {
      {45, 36, 128},   // yolo head 96/16: 6x6 spatial
      {45, 144, 128},  // yolo head 96/8: 12x12 spatial
      {45, 9, 128},    // 3x3 spatial: under one half-tile
      {33, 7, 64},     // ragged M and N below NR/2
      {6, 17, 40},     // one row tile, 16+1 columns
      {64, 31, 27},    // 16+15: full tile plus widest mask
  };
  for (const auto& s : shapes) {
    Rng rng(static_cast<uint64_t>(s.m * 31 + s.n * 7 + s.k));
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    for (auto& v : a) v = rng.NextFloat() * 2.0f - 1.0f;
    for (auto& v : b) v = rng.NextFloat() * 2.0f - 1.0f;

    std::vector<float> want(static_cast<size_t>(s.m * s.n), 0.0f);
    internal::GemmReference(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k,
                            b.data(), s.n, 0.0f, want.data(), s.n);

    std::vector<float> got(static_cast<size_t>(s.m * s.n), 0.0f);
    Gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
         0.0f, got.data(), s.n);
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          want.size() * sizeof(float)),
              0)
        << "m=" << s.m << " n=" << s.n << " k=" << s.k;

    // Prepacked-A entry point (what the conv layers actually call).
    if (GemmPackingEnabled()) {
      std::vector<float> packed(
          static_cast<size_t>(GemmPackedWeightFloats(s.m, s.k)));
      GemmPackWeights(a.data(), s.m, s.k, packed.data());
      std::vector<float> got2(static_cast<size_t>(s.m * s.n), 0.0f);
      GemmPrepacked(s.m, s.n, s.k, packed.data(), false, b.data(), s.n, 0.0f,
                    got2.data(), s.n);
      EXPECT_EQ(std::memcmp(want.data(), got2.data(),
                            want.size() * sizeof(float)),
                0)
          << "prepacked m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

// ---------------------------------------------------------------------
// Full-model sweep under the fused plan (the ASan workhorse: arena
// aliasing, Winograd scratch, masked loads all run in one pass).

TEST(FusedModelTest, FusedForwardProducesFiniteOutputs) {
  Rng rng(99);
  auto built_or = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}), 2, rng,
                                      ExecMode::kInference);
  ASSERT_TRUE(built_or.ok());
  BuiltNetwork built = std::move(built_or).value();
  ASSERT_TRUE(built.net->exec_plan().fused);

  Tensor input(built.net->input_shape());
  Rng irng(17);
  for (int64_t i = 0; i < input.size(); ++i)
    input.data()[i] = irng.NextFloat();
  built.net->Forward(input, /*train=*/false);
  for (const auto* head : built.yolo_layers) {
    const Tensor& out = head->output();
    ASSERT_GT(out.size(), 0);
    for (int64_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(std::isfinite(out.data()[i])) << "at " << i;
    }
  }
}

}  // namespace
}  // namespace thali
