// Tests for the mode-aware execution model: the inference arena planner
// (liveness over route/shortcut fan-out, bitwise identity with the seed
// per-layer allocator), dynamic batch via Network::SetBatch /
// Detector::DetectBatch, and batch-norm folding on arena-planned nets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>

#include "base/file_util.h"
#include "base/logging.h"
#include "base/rng.h"
#include "core/detector.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "darknet/weights_io.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "nn/conv_layer.h"
#include "nn/exec_plan.h"
#include "nn/network.h"
#include "nn/route_layer.h"
#include "nn/shortcut_layer.h"

namespace thali {
namespace {

void FillDeterministic(Tensor& t, uint64_t seed) {
  Rng rng(seed);
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng.NextFloat();
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

// yolov4-thali built straight from the cfg generator, weights seeded
// identically for every call so nets of different modes agree bitwise.
BuiltNetwork BuildThali(ExecMode mode, int batch) {
  Rng rng(99);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(YoloThaliOptions{}), batch,
                                   rng, mode);
  THALI_CHECK_OK(built.status());
  return std::move(built).value();
}

// A small DAG with *far* fan-out: layer 0 feeds a shortcut at 2 and a
// route at 4, so its buffer stays live across three intermediate layers.
// A planner that freed outputs after their immediate successor would
// hand layer 0's storage to layer 1 or 3 and corrupt the route input.
//
//   0 conv8 ── 1 conv8 ── 2 shortcut(from 0) ── 3 conv8 ── 4 route{0,-1}
//   └────────────────────────┘                               │
//   └──────────────────────────────────────────────────────┘
//                                              5 conv4(1x1) ── output
std::unique_ptr<Network> BuildFanoutNet(ExecMode mode) {
  auto net = std::make_unique<Network>(16, 16, 3, 1);
  auto conv = [](int filters, int ksize) {
    ConvLayer::Options o;
    o.filters = filters;
    o.ksize = ksize;
    o.stride = 1;
    o.pad = ksize / 2;
    o.activation = Activation::kLeaky;
    return std::make_unique<ConvLayer>(o);
  };
  net->Add(conv(8, 3));  // 0
  net->Add(conv(8, 3));  // 1
  ShortcutLayer::Options so;
  so.from = 0;
  net->Add(std::make_unique<ShortcutLayer>(so));  // 2
  net->Add(conv(8, 3));                           // 3
  RouteLayer::Options ro;
  ro.layers = {0, -1};
  net->Add(std::make_unique<RouteLayer>(ro));  // 4
  net->Add(conv(4, 1));                        // 5
  THALI_CHECK_OK(net->Finalize(mode));
  Rng rng(1234);
  for (int i = 0; i < net->num_layers(); ++i) {
    if (std::string_view(net->layer(i).kind()) == "convolutional") {
      static_cast<ConvLayer&>(net->layer(i)).InitWeights(rng);
    }
  }
  return net;
}

TEST(ArenaPlanTest, InferenceModeAllocatesNoDeltas) {
  BuiltNetwork train = BuildThali(ExecMode::kTraining, 1);
  BuiltNetwork infer = BuildThali(ExecMode::kInference, 1);
  for (int i = 0; i < infer.net->num_layers(); ++i) {
    EXPECT_EQ(infer.net->layer(i).delta().size(), 0) << "layer " << i;
    EXPECT_GT(train.net->layer(i).delta().size(), 0) << "layer " << i;
  }
  EXPECT_EQ(train.net->exec_mode(), ExecMode::kTraining);
  EXPECT_EQ(infer.net->exec_mode(), ExecMode::kInference);
  EXPECT_FALSE(train.net->arena_plan().enabled);
  EXPECT_TRUE(infer.net->arena_plan().enabled);
  // Deltas alone halve the footprint; the arena does the rest.
  EXPECT_LT(infer.net->ActivationBytes(), train.net->ActivationBytes() / 2);
}

TEST(ArenaPlanTest, RouteFanoutKeepsSourceLive) {
  std::unique_ptr<Network> net = BuildFanoutNet(ExecMode::kInference);
  const ArenaPlan& plan = net->arena_plan();
  ASSERT_TRUE(plan.enabled);
  ASSERT_EQ(plan.assignments.size(), 6u);
  // Layer 0 is read by the route at 4, so it must stay live through it.
  EXPECT_EQ(plan.assignments[0].last_use, 4);
  // The final layer's output survives the forward pass (virtual consumer
  // one past the end).
  EXPECT_EQ(plan.assignments[5].last_use, net->num_layers());
}

// Live-together blocks must never partially overlap. Under the fused
// plan the compiler deliberately aliases route/shortcut storage onto a
// producer's block, so "i nests fully inside j" (or vice versa) is
// legal; anything else is a planner bug. With fusion latched off the
// old strict-disjoint contract still holds exactly.
TEST(ArenaPlanTest, OverlappingLiveIntervalsNeverShareArenaBytes) {
  struct Case {
    int fuse;          // internal::SetFusionForTesting value
    bool allow_nest;   // aliasing means nesting is legal
  };
  for (const Case c : {Case{1, true}, Case{0, false}}) {
    internal::SetFusionForTesting(c.fuse);
    BuiltNetwork built = BuildThali(ExecMode::kInference, 2);
    internal::SetFusionForTesting(-1);
    const ArenaPlan& plan = built.net->arena_plan();
    ASSERT_TRUE(plan.enabled);
    const auto& a = plan.assignments;
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = i + 1; j < a.size(); ++j) {
        const bool live_together =
            a[i].first_use <= a[j].last_use && a[j].first_use <= a[i].last_use;
        if (!live_together) continue;
        const bool disjoint = a[i].offset + a[i].floats <= a[j].offset ||
                              a[j].offset + a[j].floats <= a[i].offset;
        const bool nested =
            (a[i].offset >= a[j].offset &&
             a[i].offset + a[i].floats <= a[j].offset + a[j].floats) ||
            (a[j].offset >= a[i].offset &&
             a[j].offset + a[j].floats <= a[i].offset + a[i].floats);
        EXPECT_TRUE(disjoint || (c.allow_nest && nested))
            << "layers " << i << " and " << j
            << " are live together but partially overlap in the arena"
            << " (fuse=" << c.fuse << ")";
      }
    }
    // Every assignment fits inside the arena.
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_LE(a[i].offset + a[i].floats, plan.arena_floats) << "layer " << i;
    }
  }
}

// With fusion latched off the inference plan routes every conv through
// the reference im2col path, so the arena-planned forward must agree
// *bitwise* with the seed per-layer allocator — arena placement alone
// can never change arithmetic.
TEST(ArenaPlanTest, ArenaForwardMatchesSeedAllocatorBitwise) {
  std::unique_ptr<Network> seed_net = BuildFanoutNet(ExecMode::kTraining);
  internal::SetFusionForTesting(0);
  std::unique_ptr<Network> arena_net = BuildFanoutNet(ExecMode::kInference);
  internal::SetFusionForTesting(-1);

  Tensor input(seed_net->input_shape());
  FillDeterministic(input, 5);
  const Tensor& seed_out = seed_net->Forward(input, /*train=*/false);
  const Tensor& arena_out = arena_net->Forward(input, /*train=*/false);
  ExpectBitwiseEqual(seed_out, arena_out);
}

// The fused plan (Winograd 3x3, fast mish) is not bitwise vs the
// reference — Winograd reassociates the reduction — but must stay
// inside the documented 1e-4 + 1e-3|ref| envelope.
TEST(ArenaPlanTest, FusedForwardMatchesReferenceWithinTolerance) {
  internal::SetFusionForTesting(0);
  std::unique_ptr<Network> ref_net = BuildFanoutNet(ExecMode::kInference);
  internal::SetFusionForTesting(1);
  std::unique_ptr<Network> fused_net = BuildFanoutNet(ExecMode::kInference);
  internal::SetFusionForTesting(-1);
  ASSERT_FALSE(ref_net->exec_plan().fused);
  ASSERT_TRUE(fused_net->exec_plan().fused);

  Tensor input(ref_net->input_shape());
  FillDeterministic(input, 5);
  const Tensor& a = ref_net->Forward(input, /*train=*/false);
  const Tensor& b = fused_net->Forward(input, /*train=*/false);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i],
                1e-4f + 1e-3f * std::abs(a.data()[i]))
        << "at " << i;
  }
}

TEST(ArenaPlanTest, FullModelArenaMatchesSeedAllocatorBitwise) {
  BuiltNetwork train = BuildThali(ExecMode::kTraining, 1);
  internal::SetFusionForTesting(0);
  BuiltNetwork infer = BuildThali(ExecMode::kInference, 1);
  internal::SetFusionForTesting(-1);

  Tensor input(train.net->input_shape());
  FillDeterministic(input, 11);
  const Tensor& a = train.net->Forward(input, /*train=*/false);
  const Tensor& b = infer.net->Forward(input, /*train=*/false);
  ExpectBitwiseEqual(a, b);
  // Every detection head decodes from identical activations too.
  ASSERT_EQ(train.yolo_layers.size(), infer.yolo_layers.size());
  for (size_t h = 0; h < train.yolo_layers.size(); ++h) {
    ExpectBitwiseEqual(train.yolo_layers[h]->output(),
                       infer.yolo_layers[h]->output());
  }
}

// Same comparison on the full yolov4-thali model with the fused plan:
// every detection head must decode within tolerance of the reference.
TEST(ArenaPlanTest, FullModelFusedMatchesReferenceWithinTolerance) {
  internal::SetFusionForTesting(0);
  BuiltNetwork ref = BuildThali(ExecMode::kInference, 1);
  internal::SetFusionForTesting(1);
  BuiltNetwork fused = BuildThali(ExecMode::kInference, 1);
  internal::SetFusionForTesting(-1);
  ASSERT_TRUE(fused.net->exec_plan().fused);

  Tensor input(ref.net->input_shape());
  FillDeterministic(input, 11);
  ref.net->Forward(input, /*train=*/false);
  fused.net->Forward(input, /*train=*/false);
  ASSERT_EQ(ref.yolo_layers.size(), fused.yolo_layers.size());
  for (size_t h = 0; h < ref.yolo_layers.size(); ++h) {
    const Tensor& a = ref.yolo_layers[h]->output();
    const Tensor& b = fused.yolo_layers[h]->output();
    ASSERT_EQ(a.size(), b.size());
    for (int64_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a.data()[i], b.data()[i],
                  1e-4f + 1e-3f * std::abs(a.data()[i]))
          << "head " << h << " at " << i;
    }
  }
}

TEST(ArenaPlanTest, NoArenaEnvVarDisablesPlacement) {
  ASSERT_EQ(setenv("THALI_NO_ARENA", "1", 1), 0);
  BuiltNetwork gated = BuildThali(ExecMode::kInference, 1);
  ASSERT_EQ(unsetenv("THALI_NO_ARENA"), 0);
  BuiltNetwork planned = BuildThali(ExecMode::kInference, 1);

  EXPECT_FALSE(gated.net->arena_plan().enabled);
  EXPECT_TRUE(planned.net->arena_plan().enabled);
  // Escape hatch costs memory (per-layer outputs) but not correctness.
  EXPECT_GT(gated.net->ActivationBytes(), planned.net->ActivationBytes());
  Tensor input(gated.net->input_shape());
  FillDeterministic(input, 23);
  ExpectBitwiseEqual(gated.net->Forward(input), planned.net->Forward(input));

  // The decision is latched at Finalize: a later SetBatch re-plan (env
  // var long gone) must not silently re-enable the arena.
  ASSERT_TRUE(gated.net->SetBatch(2).ok());
  EXPECT_FALSE(gated.net->arena_plan().enabled);
}

TEST(ExecPlanTest, NoFuseEnvVarDisablesFusedPlan) {
  ASSERT_EQ(setenv("THALI_NO_FUSE", "1", 1), 0);
  BuiltNetwork gated = BuildThali(ExecMode::kInference, 1);
  ASSERT_EQ(unsetenv("THALI_NO_FUSE"), 0);
  BuiltNetwork fused = BuildThali(ExecMode::kInference, 1);

  EXPECT_FALSE(gated.net->exec_plan().fused);
  EXPECT_TRUE(fused.net->exec_plan().fused);
  // The reference plan keeps every conv on im2col in NCHW and elides no
  // copies.
  for (const LayerPlan& lp : gated.net->exec_plan().layers) {
    EXPECT_EQ(lp.conv_algo, ConvAlgo::kIm2col);
    EXPECT_EQ(lp.out_layout, ActLayout::kNCHW);
    EXPECT_FALSE(lp.copy_elided);
    EXPECT_FALSE(lp.fast_act);
  }
  // Latched at Finalize: SetBatch after the env var is gone must not
  // silently re-enable fusion.
  ASSERT_TRUE(gated.net->SetBatch(2).ok());
  EXPECT_FALSE(gated.net->exec_plan().fused);
}

TEST(ExecPlanTest, NoFuseEnvValueParsing) {
  EXPECT_FALSE(internal::NoFuseEnvValueDisables(nullptr));
  EXPECT_FALSE(internal::NoFuseEnvValueDisables(""));
  EXPECT_FALSE(internal::NoFuseEnvValueDisables("0"));
  EXPECT_TRUE(internal::NoFuseEnvValueDisables("1"));
  EXPECT_TRUE(internal::NoFuseEnvValueDisables("yes"));
}

// The fused yolov4-thali plan picks the specialized conv paths the
// geometry allows: every 1x1/s1 conv goes direct, every 3x3/s1 conv
// goes Winograd, and strided 3x3 downsamplers stay on im2col. Routes
// and shortcuts whose layout/liveness permit are elided outright.
TEST(ExecPlanTest, FusedPlanSelectsSpecializedPathsForYoloThali) {
  BuiltNetwork built = BuildThali(ExecMode::kInference, 1);
  const ExecPlan& plan = built.net->exec_plan();
  ASSERT_TRUE(plan.fused);
  int direct = 0, winograd = 0, elided = 0, fast = 0;
  for (int i = 0; i < built.net->num_layers(); ++i) {
    const LayerPlan& lp = plan.layers[static_cast<size_t>(i)];
    if (std::string_view(built.net->layer(i).kind()) != "convolutional") {
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kIm2col) << "layer " << i;
      if (lp.copy_elided) ++elided;
      continue;
    }
    const auto& o = static_cast<const ConvLayer&>(built.net->layer(i)).options();
    if (o.ksize == 1 && o.stride == 1 && o.pad == 0) {
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kDirect1x1) << "layer " << i;
      ++direct;
    } else if (o.ksize == 3 && o.stride == 1 && o.pad == 1) {
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kWinograd) << "layer " << i;
      ++winograd;
    } else {
      EXPECT_EQ(lp.conv_algo, ConvAlgo::kIm2col) << "layer " << i;
    }
    if (lp.fast_act) ++fast;
  }
  // yolov4-thali's backbone: the exact counts are structural, pin them.
  EXPECT_EQ(direct, 10);
  EXPECT_EQ(winograd, 13);
  EXPECT_EQ(elided, 15);
  EXPECT_EQ(fast, 15);
  // Yolo heads and their feeder convs must see NCHW.
  for (int i = 0; i < built.net->num_layers(); ++i) {
    if (std::string_view(built.net->layer(i).kind()) == "yolo") {
      EXPECT_EQ(plan.layers[static_cast<size_t>(i)].in_layout,
                ActLayout::kNCHW)
          << "yolo layer " << i;
    }
  }
}

// SetBatch must re-run the plan compiler, not just resize buffers:
// elision legality and arena grouping depend on the batch.
TEST(ExecPlanTest, SetBatchRecompilesFusedPlan) {
  BuiltNetwork built = BuildThali(ExecMode::kInference, 1);
  Network& net = *built.net;
  ASSERT_TRUE(net.exec_plan().fused);
  const int64_t floats1 = net.arena_plan().arena_floats;

  ASSERT_TRUE(net.SetBatch(4).ok());
  ASSERT_TRUE(net.exec_plan().fused);
  EXPECT_EQ(net.arena_plan().arena_floats, floats1 * 4);

  ASSERT_TRUE(net.SetBatch(1).ok());
  ASSERT_TRUE(net.exec_plan().fused);
  EXPECT_EQ(net.arena_plan().arena_floats, floats1);
}

TEST(ArenaPlanTest, PinnedPeakMemoryForYoloThali) {
  // Pinned so planner regressions show up as a number, not a vague slow
  // drift. Update deliberately if the architecture or planner changes.
  // The reference plan (fusion off) keeps the PR-2 placement exactly;
  // the fused plan's copy elision shrinks the peak further.
  internal::SetFusionForTesting(0);
  BuiltNetwork ref = BuildThali(ExecMode::kInference, 1);
  internal::SetFusionForTesting(1);
  BuiltNetwork fused = BuildThali(ExecMode::kInference, 1);
  internal::SetFusionForTesting(-1);

  const ArenaPlan& ref_plan = ref.net->arena_plan();
  EXPECT_EQ(ref_plan.sum_output_floats, 195282);
  EXPECT_EQ(ref_plan.arena_floats, 36864);
  // The acceptance bar: >= 40% below the one-buffer-per-layer baseline.
  EXPECT_LE(ref_plan.arena_floats * 10, ref_plan.sum_output_floats * 6);

  const ArenaPlan& fused_plan = fused.net->arena_plan();
  EXPECT_EQ(fused_plan.sum_output_floats, 195282);
  EXPECT_EQ(fused_plan.arena_floats, 27648);
  EXPECT_LT(fused_plan.arena_floats, ref_plan.arena_floats);
}

TEST(ArenaPlanTest, ReportListsEveryLayerAndSummary) {
  BuiltNetwork built = BuildThali(ExecMode::kInference, 1);
  const std::string report = built.net->arena_plan().ToString();
  // One header line, one row per layer, one summary line.
  const long rows = std::count(report.begin(), report.end(), '\n');
  EXPECT_EQ(rows, built.net->num_layers() + 2);
  EXPECT_NE(report.find("peak"), std::string::npos);
  EXPECT_NE(report.find("enabled"), std::string::npos);
}

TEST(SetBatchTest, GrowShrinkRegrowIsBitwiseStable) {
  BuiltNetwork built = BuildThali(ExecMode::kInference, 1);
  Network& net = *built.net;

  Tensor item(net.input_shape());
  FillDeterministic(item, 31);
  Tensor single = net.Forward(item);  // deep copy (batch-1 reference)
  const int64_t plane = single.size();

  // Grow to 4: slot 0 carries the same image, others differ.
  ASSERT_TRUE(net.SetBatch(4).ok());
  Tensor batch4(net.input_shape());
  FillDeterministic(batch4, 57);
  std::memcpy(batch4.data(), item.data(),
              static_cast<size_t>(item.size()) * sizeof(float));
  const Tensor& out4 = net.Forward(batch4);
  ASSERT_EQ(out4.size(), plane * 4);
  EXPECT_EQ(std::memcmp(out4.data(), single.data(),
                        static_cast<size_t>(plane) * sizeof(float)),
            0)
      << "batch item 0 diverged from the batch-1 forward";

  // Shrink back to 1 and re-check the original result.
  ASSERT_TRUE(net.SetBatch(1).ok());
  ExpectBitwiseEqual(net.Forward(item), single);

  // Re-grow: planning must be repeatable, not a one-way door.
  ASSERT_TRUE(net.SetBatch(4).ok());
  const Tensor& out4b = net.Forward(batch4);
  EXPECT_EQ(std::memcmp(out4b.data(), single.data(),
                        static_cast<size_t>(plane) * sizeof(float)),
            0);
}

TEST(SetBatchTest, PreservesLoadedParameters) {
  // Rebatch must not re-run parameter init: Configure fills BN scales
  // and rolling variance with ones, which would clobber loaded weights.
  BuiltNetwork built = BuildThali(ExecMode::kInference, 1);
  ConvLayer* conv = nullptr;
  for (int i = 0; i < built.net->num_layers(); ++i) {
    if (std::string_view(built.net->layer(i).kind()) == "convolutional") {
      conv = static_cast<ConvLayer*>(&built.net->layer(i));
      break;
    }
  }
  ASSERT_NE(conv, nullptr);
  ASSERT_GT(conv->scales().size(), 0);
  conv->scales().data()[0] = 2.5f;
  conv->rolling_var().data()[0] = 0.75f;
  ASSERT_TRUE(built.net->SetBatch(3).ok());
  EXPECT_EQ(conv->scales().data()[0], 2.5f);
  EXPECT_EQ(conv->rolling_var().data()[0], 0.75f);
}

TEST(DetectorBatchTest, DetectBatchMatchesSequentialDetect) {
  auto det_or = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), 17);
  ASSERT_TRUE(det_or.ok()) << det_or.status().ToString();
  Detector det = std::move(det_or).value();

  // Mixed sizes: one matching the network, one wide, one tall — the
  // letterbox mapping must come out per-item identical to Detect.
  std::vector<Image> images;
  const int sizes[3][2] = {{96, 96}, {192, 96}, {96, 160}};
  for (int k = 0; k < 3; ++k) {
    PlatterRenderer::Options ro;
    ro.width = sizes[k][0];
    ro.height = sizes[k][1];
    PlatterRenderer renderer(IndianFood10(), ro);
    Rng rng(static_cast<uint64_t>(40 + k));
    images.push_back(renderer.RenderSingleDish(k, rng).image);
  }

  const auto batched = det.DetectBatch(images, 0.01f, 0.45f);
  ASSERT_EQ(batched.size(), images.size());
  for (size_t k = 0; k < images.size(); ++k) {
    const auto solo = det.Detect(images[k], 0.01f, 0.45f);
    ASSERT_EQ(batched[k].size(), solo.size()) << "image " << k;
    for (size_t i = 0; i < solo.size(); ++i) {
      EXPECT_EQ(batched[k][i].box.x, solo[i].box.x);
      EXPECT_EQ(batched[k][i].box.y, solo[i].box.y);
      EXPECT_EQ(batched[k][i].box.w, solo[i].box.w);
      EXPECT_EQ(batched[k][i].box.h, solo[i].box.h);
      EXPECT_EQ(batched[k][i].confidence, solo[i].confidence);
      EXPECT_EQ(batched[k][i].class_id, solo[i].class_id);
    }
  }
}

TEST(DetectorBatchTest, EmptyBatchReturnsEmpty) {
  auto det_or = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), 17);
  ASSERT_TRUE(det_or.ok());
  EXPECT_TRUE(det_or->DetectBatch(std::span<const Image>()).empty());
}

TEST(FuseBatchNormTest, FoldedForwardMatchesUnfoldedOnArenaNet) {
  // Train rolling statistics away from their 0/1 init so folding is a
  // real transform, then compare raw network outputs folded vs not, both
  // running on arena-planned inference networks.
  BuiltNetwork trained = BuildThali(ExecMode::kTraining, 2);
  Tensor batch(trained.net->input_shape());
  for (int it = 0; it < 3; ++it) {
    FillDeterministic(batch, static_cast<uint64_t>(60 + it));
    trained.net->Forward(batch, /*train=*/true);
  }
  const std::string path =
      JoinPath(testing::TempDir(), "thali_exec_plan_fuse.weights");
  ASSERT_TRUE(SaveWeights(*trained.net, path, 3).ok());

  const std::string cfg = YoloThaliCfg(YoloThaliOptions{});
  auto plain_or = Detector::FromFiles(cfg, path, 17);
  auto fused_or = Detector::FromFiles(cfg, path, 17);
  ASSERT_TRUE(plain_or.ok());
  ASSERT_TRUE(fused_or.ok());
  Detector plain = std::move(plain_or).value();
  Detector fused = std::move(fused_or).value();
  ASSERT_TRUE(plain.network().arena_plan().enabled);
  fused.FuseBatchNorm();

  Tensor input(plain.network().input_shape());
  FillDeterministic(input, 71);
  const Tensor& a = plain.network().Forward(input);
  const Tensor& b = fused.network().Forward(input);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i],
                1e-4f + 1e-3f * std::abs(a.data()[i]))
        << "at " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace thali
