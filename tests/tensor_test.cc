#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace thali {
namespace {

TEST(Shape, BasicProperties) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(Shape{}.num_elements(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape({3, 4}));
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillReshapeResize) {
  Tensor t(Shape({2, 6}));
  t.Fill(3.5f);
  EXPECT_EQ(t[11], 3.5f);
  t.Reshape(Shape({3, 4}));
  EXPECT_EQ(t.shape(), Shape({3, 4}));
  EXPECT_EQ(t[0], 3.5f);  // storage preserved
  t.Resize(Shape({5}));
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t[0], 0.0f);  // re-zeroed on size change
}

TEST(Tensor, ResizeFromDefaultAllocatesSingleElement) {
  // Regression: a default Tensor has a rank-0 shape (element product 1)
  // but no storage; Resize to a 1-element shape must still allocate.
  Tensor t;
  t.Resize(Shape({1}));
  EXPECT_EQ(t.size(), 1);
  t[0] = 2.0f;
  EXPECT_EQ(t[0], 2.0f);
}

TEST(Tensor, At4MatchesLinearIndex) {
  Tensor t(Shape({2, 3, 4, 5}));
  for (int64_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  EXPECT_EQ(t.at4(1, 2, 3, 4), static_cast<float>(1 * 60 + 2 * 20 + 3 * 5 + 4));
}

// Reference triple-loop GEMM for validation.
void NaiveGemm(bool ta, bool tb, int m, int n, int k, float alpha,
               const float* a, int lda, const float* b, int ldb, float beta,
               float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        sum += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = alpha * static_cast<float>(sum) + beta * c[i * ldc + j];
    }
  }
}

struct GemmCase {
  bool ta, tb;
  int m, n, k;
  float alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesNaive) {
  const GemmCase gc = GetParam();
  Rng rng(31 + gc.m + gc.n * 10 + gc.k * 100);
  const int a_rows = gc.ta ? gc.k : gc.m;
  const int a_cols = gc.ta ? gc.m : gc.k;
  const int b_rows = gc.tb ? gc.n : gc.k;
  const int b_cols = gc.tb ? gc.k : gc.n;

  std::vector<float> a(static_cast<size_t>(a_rows) * a_cols);
  std::vector<float> b(static_cast<size_t>(b_rows) * b_cols);
  std::vector<float> c(static_cast<size_t>(gc.m) * gc.n);
  for (auto& v : a) v = rng.NextGaussian();
  for (auto& v : b) v = rng.NextGaussian();
  for (auto& v : c) v = rng.NextGaussian();
  std::vector<float> expected = c;

  Gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), a_cols, b.data(),
       b_cols, gc.beta, c.data(), gc.n);
  NaiveGemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), a_cols,
            b.data(), b_cols, gc.beta, expected.data(), gc.n);

  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{false, false, 1, 1, 1, 1.0f, 0.0f},
                      GemmCase{false, false, 7, 9, 5, 1.0f, 0.0f},
                      GemmCase{false, false, 16, 33, 64, 0.5f, 1.0f},
                      GemmCase{false, false, 65, 130, 129, 1.0f, 0.0f},
                      GemmCase{true, false, 8, 12, 6, 1.0f, 1.0f},
                      GemmCase{true, false, 31, 17, 23, 2.0f, 0.0f},
                      GemmCase{false, true, 9, 11, 13, 1.0f, 0.0f},
                      GemmCase{false, true, 24, 48, 36, 1.0f, 0.5f},
                      GemmCase{true, true, 5, 6, 7, 1.0f, 0.0f},
                      GemmCase{false, false, 3, 128, 200, 1.0f, 2.0f}));

TEST(Gemm, ZeroSizedDimensionsAreNoops) {
  float c[4] = {1, 2, 3, 4};
  Gemm(false, false, 0, 2, 3, 1.0f, nullptr, 3, nullptr, 2, 0.0f, c, 2);
  Gemm(false, false, 2, 2, 0, 1.0f, nullptr, 0, nullptr, 2, 1.0f, c, 2);
  EXPECT_EQ(c[0], 1.0f);  // k=0 with beta=1 leaves C untouched
}

TEST(Im2Col, IdentityFor1x1) {
  // 1x1 kernel, stride 1, no pad: col matrix equals the image.
  const int c = 2, h = 3, w = 4;
  std::vector<float> im(static_cast<size_t>(c) * h * w);
  for (size_t i = 0; i < im.size(); ++i) im[i] = static_cast<float>(i);
  std::vector<float> col(im.size(), -1.0f);
  Im2Col(im.data(), c, h, w, 1, 1, 0, col.data());
  EXPECT_EQ(im, col);
}

TEST(Im2Col, KnownValues3x3) {
  // 1 channel, 3x3 image, 3x3 kernel, pad 1: center row of the col matrix
  // (kh=1,kw=1) must be the image itself; corner rows carry zero padding.
  std::vector<float> im = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(9 * 9);
  Im2Col(im.data(), 1, 3, 3, 3, 1, 1, col.data());
  // Row 4 = (kh=1, kw=1): identity.
  for (int i = 0; i < 9; ++i) EXPECT_EQ(col[4 * 9 + i], im[static_cast<size_t>(i)]);
  // Row 0 = (kh=0, kw=0): top-left tap. Output (0,0) reads im(-1,-1) = 0.
  EXPECT_EQ(col[0], 0.0f);
  // Output (2,2) of row 0 reads im(1,1) = 5.
  EXPECT_EQ(col[8], 5.0f);
}

TEST(Im2Col, Col2ImIsAdjoint) {
  // <Col2Im(c), x> == <c, Im2Col(x)> for random tensors: the scatter-add
  // must be the exact transpose of the gather.
  Rng rng(5);
  const int c = 3, h = 7, w = 6, k = 3, stride = 2, pad = 1;
  const int out_h = static_cast<int>(ConvOutSize(h, k, stride, pad));
  const int out_w = static_cast<int>(ConvOutSize(w, k, stride, pad));
  const size_t im_size = static_cast<size_t>(c) * h * w;
  const size_t col_size = static_cast<size_t>(c) * k * k * out_h * out_w;

  std::vector<float> x(im_size), cvec(col_size);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto& v : cvec) v = rng.NextGaussian();

  std::vector<float> col_x(col_size, 0.0f);
  Im2Col(x.data(), c, h, w, k, stride, pad, col_x.data());
  std::vector<float> im_c(im_size, 0.0f);
  Col2Im(cvec.data(), c, h, w, k, stride, pad, im_c.data());

  double lhs = 0, rhs = 0;
  for (size_t i = 0; i < im_size; ++i) lhs += static_cast<double>(im_c[i]) * x[i];
  for (size_t i = 0; i < col_size; ++i) rhs += static_cast<double>(cvec[i]) * col_x[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Im2Col, ConvOutSize) {
  EXPECT_EQ(ConvOutSize(96, 3, 2, 1), 48);
  EXPECT_EQ(ConvOutSize(96, 3, 1, 1), 96);
  EXPECT_EQ(ConvOutSize(96, 1, 1, 0), 96);
  EXPECT_EQ(ConvOutSize(5, 3, 2, 0), 2);
}

TEST(Ops, AxpyScaleSums) {
  Tensor x(Shape({4}), {1, 2, 3, 4});
  Tensor y(Shape({4}), {10, 10, 10, 10});
  Axpy(2.0f, x, y);
  EXPECT_EQ(y[3], 18.0f);
  Scale(0.5f, y);
  EXPECT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(Sum(x), 10.0f);
  EXPECT_FLOAT_EQ(Mean(x), 2.5f);
  EXPECT_FLOAT_EQ(MinValue(x), 1.0f);
  EXPECT_FLOAT_EQ(MaxValue(x), 4.0f);
  EXPECT_FLOAT_EQ(L2Norm(Tensor(Shape({2}), {3, 4})), 5.0f);
}

TEST(Ops, MaxAbsDiff) {
  Tensor a(Shape({3}), {1, 2, 3});
  Tensor b(Shape({3}), {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
}

TEST(Ops, SoftmaxNormalizesAndIsStable) {
  float x[3] = {1000.0f, 1001.0f, 1002.0f};  // would overflow naive exp
  float y[3];
  Softmax(x, 3, y);
  float sum = y[0] + y[1] + y[2];
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(y[2], y[1]);
  EXPECT_GT(y[1], y[0]);
}

TEST(Ops, SigmoidKnownValues) {
  EXPECT_FLOAT_EQ(Sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(Sigmoid(10.0f), 1.0f, 1e-4f);
  EXPECT_NEAR(Sigmoid(-10.0f), 0.0f, 1e-4f);
}

}  // namespace
}  // namespace thali
