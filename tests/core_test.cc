// Tests for the public core API surface (Detector geometry handling,
// reporting, ReproScale) that the heavier integration tests don't pin
// down numerically.

#include <gtest/gtest.h>

#include <cstdio>

#include "base/file_util.h"
#include "core/detector.h"
#include "core/repro_scale.h"
#include "darknet/model_zoo.h"
#include "data/food_classes.h"
#include "data/renderer.h"
#include "eval/report.h"

namespace thali {
namespace {

TEST(ReproScaleTest, MapsPaperIterations) {
  ReproScale scale;
  EXPECT_EQ(scale.ScaledIteration(20000), 20000 / scale.iteration_divisor);
  EXPECT_EQ(scale.ScaledIteration(0), 0);
}

TEST(DetectorTest, BuildsFromCfgWithBatchOne) {
  auto det = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}));
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  EXPECT_EQ(det->network().batch(), 1);
}

TEST(DetectorTest, FromFilesFailsOnMissingWeights) {
  auto det = Detector::FromFiles(YoloThaliCfg(YoloThaliOptions{}),
                                 "/nonexistent/w.weights");
  EXPECT_FALSE(det.ok());
}

TEST(DetectorTest, MatchedSizeInputNeedsNoLetterbox) {
  auto det_or = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), 5);
  ASSERT_TRUE(det_or.ok());
  Detector det = std::move(det_or).value();
  PlatterRenderer renderer(IndianFood10(), PlatterRenderer::Options{});
  Rng rng(3);
  RenderedScene scene = renderer.RenderSingleDish(1, rng);
  // Untrained net: just verify the call succeeds and boxes stay sane.
  auto dets = det.Detect(scene.image, 0.01f, 0.45f);
  for (const Detection& d : dets) {
    EXPECT_GT(d.confidence, 0.0f);
    EXPECT_LE(d.confidence, 1.0f);
  }
}

TEST(DetectorTest, LetterboxedBoxesMapBackToImageFrame) {
  // A wide input image letterboxed into the square network: decoded boxes
  // must be reported in the wide image's normalized frame. With an
  // untrained net the boxes are arbitrary, but they must satisfy the
  // geometric inverse: running the same detector on the pre-letterboxed
  // canvas and mapping manually gives the same result.
  auto det_or = Detector::FromCfg(YoloThaliCfg(YoloThaliOptions{}), 7);
  ASSERT_TRUE(det_or.ok());
  Detector det = std::move(det_or).value();

  PlatterRenderer::Options ro;
  ro.width = 192;
  ro.height = 96;
  PlatterRenderer renderer(IndianFood10(), ro);
  Rng rng(5);
  RenderedScene scene = renderer.RenderSingleDish(2, rng);

  const auto dets_direct = det.Detect(scene.image, 0.01f, 0.45f);

  // Manual letterbox + detect + inverse-map.
  Letterbox lb = LetterboxImage(scene.image, 96, 96);
  const auto dets_canvas = det.Detect(lb.image, 0.01f, 0.45f);
  ASSERT_EQ(dets_direct.size(), dets_canvas.size());
  for (size_t i = 0; i < dets_direct.size(); ++i) {
    const Box& c = dets_canvas[i].box;
    const float px = c.x * 96 - lb.pad_x;
    const float py = c.y * 96 - lb.pad_y;
    EXPECT_NEAR(dets_direct[i].box.x, px / lb.scale / 192.0f, 1e-4f);
    EXPECT_NEAR(dets_direct[i].box.y, py / lb.scale / 96.0f, 1e-4f);
    EXPECT_NEAR(dets_direct[i].box.w, c.w * 96 / lb.scale / 192.0f, 1e-4f);
  }
}

EvalResult FakeEval() {
  std::vector<ImageEval> images(1);
  images[0].detections.push_back(
      {Box{0.5f, 0.5f, 0.2f, 0.2f}, 0, 0.9f});
  images[0].truths.push_back({Box{0.5f, 0.5f, 0.2f, 0.2f}, 0});
  images[0].truths.push_back({Box{0.2f, 0.2f, 0.1f, 0.1f}, 1});
  return Evaluate(images, 2);
}

TEST(ReportTest, ClassApTableContainsNames) {
  const std::string table = RenderClassApTable(FakeEval(), {"A", "B"});
  EXPECT_NE(table.find("| A"), std::string::npos);
  EXPECT_NE(table.find("| B"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);
}

TEST(ReportTest, SummaryLineFormatsMetrics) {
  const std::string line = RenderSummaryLine(FakeEval());
  EXPECT_NE(line.find("mAP@0.5 50.00%"), std::string::npos);
}

TEST(ReportTest, PrChartGeometry) {
  std::vector<PrPoint> curve = {{0.1f, 1.0f, 0.9f}, {0.9f, 0.5f, 0.2f}};
  const std::string chart = RenderPrChart(curve, 40, 8);
  int lines = 0;
  for (char c : chart) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 8 + 3);  // body + two borders + axis label
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  const std::string csv = EvalResultToCsv(FakeEval(), {"A", "B"});
  EXPECT_EQ(csv.rfind("class,ap,truths,tp,fp\n", 0), 0u);
  EXPECT_NE(csv.find("A,1.000000"), std::string::npos);
  const std::string pr = PrCurvesToCsv(FakeEval(), {"A", "B"});
  EXPECT_NE(pr.find("A,"), std::string::npos);
}

TEST(ReportTest, MarkdownReportWrites) {
  const std::string path = testing::TempDir() + "/thali_report.md";
  ASSERT_TRUE(
      WriteMarkdownReport(FakeEval(), {"A", "B"}, "Test Report", path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("# Test Report"), std::string::npos);
  EXPECT_NE(text->find("| A |"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace thali
