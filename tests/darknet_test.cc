#include <gtest/gtest.h>

#include <cstdio>

#include "base/file_util.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "darknet/cfg.h"
#include "darknet/model_zoo.h"
#include "darknet/summary.h"
#include "darknet/weights_io.h"
#include "nn/conv_layer.h"
#include "tensor/ops.h"

namespace thali {
namespace {

constexpr char kTinyCfg[] = R"(
# A comment line
[net]
width=16
height=16
channels=3
batch=2
learning_rate=0.01
momentum=0.9
decay=0.0005
burn_in=5
max_batches=100
steps=80,90
scales=0.1,0.1
mosaic=1

[convolutional]
batch_normalize=1
filters=4
size=3
stride=2
pad=1
activation=mish

[maxpool]
size=2
stride=2

[convolutional]
filters=18
size=1
stride=1
pad=1
activation=linear

[yolo]
mask=0,1,2
anchors=4,4, 8,8, 12,10
classes=1
ignore_thresh=0.7
)";

TEST(CfgParser, ParsesSectionsAndOptions) {
  auto sections = ParseCfg(kTinyCfg);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 5u);
  EXPECT_EQ((*sections)[0].name, "net");
  EXPECT_EQ((*sections)[1].name, "convolutional");
  EXPECT_EQ(*(*sections)[0].GetInt("width"), 16);
  EXPECT_EQ((*sections)[1].GetInt("filters", -1), 4);
  EXPECT_EQ((*sections)[1].GetString("activation", ""), "mish");
  auto anchors = (*sections)[4].GetFloatList("anchors");
  ASSERT_TRUE(anchors.ok());
  EXPECT_EQ(anchors->size(), 6u);
}

TEST(CfgParser, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCfg("").ok());
  EXPECT_FALSE(ParseCfg("width=1\n[net]\n").ok());      // option before section
  EXPECT_FALSE(ParseCfg("[convolutional]\n").ok());     // must start with net
  EXPECT_FALSE(ParseCfg("[net\nwidth=1\n").ok());       // unterminated header
  EXPECT_FALSE(ParseCfg("[net]\nwidth 16\n").ok());     // missing '='
}

TEST(CfgParser, CommentsAndBlanksIgnored) {
  auto s = ParseCfg("# c\n\n[net]\n; semicolon comment\nwidth=8\n");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*(*s)[0].GetInt("width"), 8);
}

TEST(BuildNetwork, TinyCfgBuildsAndRuns) {
  Rng rng(1);
  auto built = BuildNetworkFromCfg(kTinyCfg, 0, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->net->num_layers(), 4);
  EXPECT_EQ(built->yolo_layers.size(), 1u);
  EXPECT_EQ(built->options.batch, 2);
  EXPECT_EQ(built->options.burn_in, 5);
  ASSERT_EQ(built->options.steps.size(), 2u);
  EXPECT_EQ(built->options.steps[0], 80);

  Tensor input(built->net->input_shape());
  const Tensor& out = built->net->Forward(input);
  // 16 -> conv/2 -> 8 -> maxpool/2 -> 4; channels 3*(5+1) = 18.
  EXPECT_EQ(out.shape(), Shape({2, 18, 4, 4}));
}

TEST(BuildNetwork, RejectsUnknownSection) {
  Rng rng(1);
  auto built = BuildNetworkFromCfg("[net]\nwidth=16\nheight=16\n"
                                   "[gru]\nunits=4\n",
                                   0, rng);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kUnimplemented);
}

TEST(ModelZoo, YoloThaliBuildsWithThreeHeads) {
  YoloThaliOptions o;
  o.classes = 10;
  Rng rng(2);
  auto built = BuildNetworkFromCfg(YoloThaliCfg(o), 1, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->yolo_layers.size(), 3u);
  // Grids at strides 32/16/8 of a 96 input.
  EXPECT_EQ(built->yolo_layers[0]->grid_w(), 3);
  EXPECT_EQ(built->yolo_layers[1]->grid_w(), 6);
  EXPECT_EQ(built->yolo_layers[2]->grid_w(), 12);
  // Nine anchors shared, three per head.
  EXPECT_EQ(built->yolo_layers[0]->options().anchors.size(), 9u);
  EXPECT_EQ(built->yolo_layers[0]->options().mask.size(), 3u);
  // The backbone cutoff marker must match the first head region: layer 35
  // is the first head conv, so layers [0, 35) are class-independent.
  EXPECT_EQ(kYoloThaliBackboneCutoff, 35);
  EXPECT_EQ(std::string_view(built->net->layer(37).kind()), "yolo");
}

TEST(ModelZoo, ClassCountOnlyChangesHeadConvs) {
  YoloThaliOptions a, b;
  a.classes = 10;
  b.classes = 20;
  Rng rng(3);
  auto na = BuildNetworkFromCfg(YoloThaliCfg(a), 1, rng);
  auto nb = BuildNetworkFromCfg(YoloThaliCfg(b), 1, rng);
  ASSERT_TRUE(na.ok());
  ASSERT_TRUE(nb.ok());
  ASSERT_EQ(na->net->num_layers(), nb->net->num_layers());
  for (int i = 0; i < kYoloThaliBackboneCutoff; ++i) {
    EXPECT_EQ(na->net->layer(i).output_shape(),
              nb->net->layer(i).output_shape())
        << "backbone layer " << i << " depends on class count";
  }
}

TEST(ModelZoo, FullYoloV4StructureParses) {
  // Structure check only (no Finalize at full width): the emitted cfg must
  // parse, start with [net], and contain the CSPDarknet53 + PAN layout.
  const std::string cfg = FullYoloV4Cfg(80, 416, 416, 1);
  auto sections = ParseCfg(cfg);
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  int convs = 0, shortcuts = 0, routes = 0, yolos = 0, maxpools = 0;
  for (const CfgSection& s : *sections) {
    if (s.name == "convolutional") ++convs;
    if (s.name == "shortcut") ++shortcuts;
    if (s.name == "route") ++routes;
    if (s.name == "yolo") ++yolos;
    if (s.name == "maxpool") ++maxpools;
  }
  // CSPDarknet53 has 23 residual blocks (1+2+8+8+4).
  EXPECT_EQ(shortcuts, 23);
  EXPECT_EQ(yolos, 3);
  EXPECT_EQ(maxpools, 3);  // SPP
  EXPECT_GT(convs, 100);   // 110 convolutions in yolov4.cfg
}

TEST(ModelZoo, FullYoloV4NarrowVariantFinalizes) {
  // A width-divided variant must Configure end to end: this validates all
  // route/shortcut indices of the emitted full architecture.
  Rng rng(4);
  auto built = BuildNetworkFromCfg(FullYoloV4Cfg(3, 128, 128, 16), 1, rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->yolo_layers.size(), 3u);
  EXPECT_EQ(built->yolo_layers[0]->grid_w(), 16);  // stride 8 of 128
  Tensor input(built->net->input_shape());
  built->net->Forward(input);  // smoke: runs without shape CHECKs
}

TEST(SummaryTest, ListsEveryLayerAndTotals) {
  Rng rng(2);
  auto built = BuildNetworkFromCfg(kTinyCfg, 1, rng);
  ASSERT_TRUE(built.ok());
  const std::string summary = NetworkSummary(*built->net);
  EXPECT_NE(summary.find("convolutional"), std::string::npos);
  EXPECT_NE(summary.find("maxpool"), std::string::npos);
  EXPECT_NE(summary.find("yolo"), std::string::npos);
  // Parameter total = sum over layers; the tiny cfg has
  // conv1: 4*3*9 + 4 bias + 4 scales = 116... verify against the network.
  const std::string want =
      StrFormat("total: %lld parameters",
                static_cast<long long>(built->net->NumParameters()));
  EXPECT_NE(summary.find(want), std::string::npos);
  // One line per layer plus header and two footer lines (totals, gemm).
  int lines = 0;
  for (char c : summary) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, built->net->num_layers() + 3);
  EXPECT_NE(summary.find("gemm: "), std::string::npos);
}

class WeightsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/thali_weights_test.weights";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(WeightsIoTest, RoundTripsBitExact) {
  Rng rng(5);
  auto built = BuildNetworkFromCfg(kTinyCfg, 0, rng);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveWeights(*built->net, path_, /*seen=*/12345).ok());

  auto seen = ReadWeightsSeen(path_);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, 12345u);

  Rng rng2(99);  // different init
  auto other = BuildNetworkFromCfg(kTinyCfg, 0, rng2);
  ASSERT_TRUE(other.ok());
  auto loaded = LoadWeights(*other->net, path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2);  // two conv layers

  for (int i = 0; i < built->net->num_layers(); ++i) {
    if (std::string_view(built->net->layer(i).kind()) != "convolutional") {
      continue;
    }
    auto& a = static_cast<ConvLayer&>(built->net->layer(i));
    auto& b = static_cast<ConvLayer&>(other->net->layer(i));
    EXPECT_EQ(MaxAbsDiff(a.weights(), b.weights()), 0.0f);
    EXPECT_EQ(MaxAbsDiff(a.biases(), b.biases()), 0.0f);
    if (a.options().batch_normalize) {
      EXPECT_EQ(MaxAbsDiff(a.rolling_mean(), b.rolling_mean()), 0.0f);
      EXPECT_EQ(MaxAbsDiff(a.rolling_var(), b.rolling_var()), 0.0f);
      EXPECT_EQ(MaxAbsDiff(a.scales(), b.scales()), 0.0f);
    }
  }
}

TEST_F(WeightsIoTest, PartialLoadWithCutoff) {
  Rng rng(6);
  auto src = BuildNetworkFromCfg(kTinyCfg, 0, rng);
  ASSERT_TRUE(src.ok());
  // Save only the first layer (the "backbone").
  ASSERT_TRUE(SaveWeights(*src->net, path_, 0, /*cutoff=*/1).ok());

  Rng rng2(7);
  auto dst = BuildNetworkFromCfg(kTinyCfg, 0, rng2);
  ASSERT_TRUE(dst.ok());
  auto& head_before = static_cast<ConvLayer&>(dst->net->layer(2));
  Tensor head_weights = head_before.weights();

  auto loaded = LoadWeights(*dst->net, path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1);

  // Backbone layer now equals the source; head untouched.
  auto& src_conv = static_cast<ConvLayer&>(src->net->layer(0));
  auto& dst_conv = static_cast<ConvLayer&>(dst->net->layer(0));
  EXPECT_EQ(MaxAbsDiff(src_conv.weights(), dst_conv.weights()), 0.0f);
  EXPECT_EQ(MaxAbsDiff(head_before.weights(), head_weights), 0.0f);
}

TEST_F(WeightsIoTest, TruncatedFileIsCorruption) {
  Rng rng(8);
  auto built = BuildNetworkFromCfg(kTinyCfg, 0, rng);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveWeights(*built->net, path_).ok());
  auto data = ReadFileToString(path_);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteStringToFile(path_, data->substr(0, data->size() / 2)).ok());
  auto loaded = LoadWeights(*built->net, path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(WeightsIoTest, HeaderOnlyFileLoadsZeroLayers) {
  // A header with no payload loads nothing (valid for a 0-conv prefix).
  std::string header(12, '\0');
  header[4] = 2;  // minor = 2 -> 64-bit seen
  header += std::string(8, '\0');
  ASSERT_TRUE(WriteStringToFile(path_, header).ok());
  Rng rng(9);
  auto built = BuildNetworkFromCfg(kTinyCfg, 0, rng);
  ASSERT_TRUE(built.ok());
  auto loaded = LoadWeights(*built->net, path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 0);
}

}  // namespace
}  // namespace thali
